//! Offline stand-in for `serde_json`.
//!
//! JSON text encoding/decoding over the vendored serde shim's
//! [`Value`] tree. Numbers print with Rust's shortest-roundtrip float
//! formatting, so `to_string` → `from_str` round trips are lossless
//! for every type the workspace serializes.

use serde::Serialize;
pub use serde::{Error, Value};

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses a value from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T, Error> {
    let v = parse_value(text)?;
    T::from_value(&v)
}

/// Converts a [`Value`] tree into a concrete type.
pub fn from_value<T: serde::de::DeserializeOwned>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

// ---- writer ----------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if n.is_finite() {
                out.push_str(&format!("{n}"));
            } else {
                // JSON has no NaN/Inf; mirror serde_json's strictness
                // loosely by emitting null instead of invalid text.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(&format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(&format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(&format!("unexpected byte at {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 starting at pos-1.
                    let start = self.pos - 1;
                    let width = utf8_width(c);
                    if width == 1 {
                        out.push(c as char);
                    } else {
                        let end = start + width;
                        if end > self.bytes.len() {
                            return Err(Error::new("truncated UTF-8"));
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| Error::new("invalid UTF-8"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(&format!("invalid number `{text}`")))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::I64(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::U64(n))
        } else {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(&format!("invalid number `{text}`")))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for text in ["null", "true", "false", "0", "-7", "3.25", "\"hi\""] {
            let v = parse_value(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
    }

    #[test]
    fn roundtrip_nested() {
        let text = r#"{"a":[1,2.5,"x"],"b":{"c":null}}"#;
        let v = parse_value(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1f64 + 0.2;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = parse_value(r#"{"a":1}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn escapes_roundtrip() {
        let s = "line\n\"quoted\"\ttab\\slash";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
