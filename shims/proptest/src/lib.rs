//! Offline stand-in for `proptest`.
//!
//! Provides the subset the workspace's property tests use: the
//! [`proptest!`] macro, range and `any::<T>()` strategies, tuple and
//! `prop::collection::vec` combinators, and the `prop_assert*` /
//! `prop_assume!` macros. Inputs are drawn from a deterministic
//! generator seeded from the test name, so failures reproduce across
//! runs. The case count defaults to 64 and can be overridden with the
//! `PROPTEST_CASES` environment variable. Unlike real proptest there
//! is no shrinking: a failing case panics with the drawn inputs left
//! to the assertion message.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A source of random test inputs.
pub trait Strategy {
    /// The generated input type.
    type Value;
    /// Draws one input.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Strategy produced by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy drawing any value of `T`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut SmallRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        // Finite values spanning a wide magnitude range.
        let mag = rng.gen_range(-300.0f64..300.0);
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D)
);

/// Combinator namespace mirroring `proptest::prelude::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;

        /// Strategy for vectors with lengths drawn from a range.
        pub struct VecStrategy<S> {
            elem: S,
            min: usize,
            max: usize,
        }

        /// Vector sizes accepted by [`vec()`].
        pub trait SizeRange {
            /// Inclusive lower, exclusive upper bound.
            fn bounds(&self) -> (usize, usize);
        }

        impl SizeRange for std::ops::Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        impl SizeRange for std::ops::RangeInclusive<usize> {
            fn bounds(&self) -> (usize, usize) {
                (*self.start(), *self.end() + 1)
            }
        }

        impl SizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }

        /// Vector-of-`elem` strategy with a size range.
        pub fn vec<S: Strategy>(elem: S, size: impl SizeRange) -> VecStrategy<S> {
            let (min, max) = size.bounds();
            assert!(min < max, "empty size range");
            VecStrategy { elem, min, max }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let len = rng.gen_range(self.min..self.max);
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }
    }
}

/// The number of cases each property runs.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Builds the deterministic per-test generator.
pub fn test_rng(test_name: &str) -> SmallRng {
    // FNV-1a over the test name: stable across runs and platforms.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    SmallRng::seed_from_u64(h)
}

/// Everything the workspace imports via `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_rng(stringify!($name));
                for case in 0..$crate::cases() {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                    // The body runs in a closure so `prop_assume!` can
                    // skip the rest of a case with `return`.
                    let run = move || { $body };
                    let _ = case;
                    run();
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return;
        }
    };
}
