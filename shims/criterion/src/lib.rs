//! Offline stand-in for `criterion`.
//!
//! The build container cannot reach crates.io; this crate lets the
//! workspace's `[[bench]]` targets compile and run without the real
//! statistical harness. Each `bench_function` runs a short calibrated
//! loop and prints the mean wall-clock time per iteration. When the
//! binary is invoked with `--test` (as `cargo test` does for bench
//! targets), benchmarks run exactly one iteration as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement settings carried by groups (subset of the real API).
#[derive(Debug, Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }
}

/// The bench harness handle passed to registered bench functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("# group {name}");
        BenchmarkGroup {
            name: name.to_string(),
            settings: Settings::default(),
        }
    }

    /// Registers a benchmark outside any group. Accepts `&str` or
    /// `String` ids like the real API's `IntoBenchmarkId`.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_bench(id.as_ref(), Settings::default(), f);
        self
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    settings: Settings,
}

impl BenchmarkGroup {
    /// Overrides the sample count (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement window.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Registers a benchmark in the group. Accepts `&str` or `String`
    /// ids like the real API's `IntoBenchmarkId`.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, id.as_ref()), self.settings, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to the closure registered per benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the harness-chosen iteration count.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Appends one JSON-lines record per finished benchmark to the file
/// named by `CRITERION_JSON`, so a collector script can assemble the
/// per-PR `BENCH_*.json` trajectory without parsing stdout.
fn export(id: &str, mean_ns: f64, iters: u64) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.trim().is_empty() {
        return;
    }
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        // Bench ids are code literals; escape the one char that could
        // break the framing.
        let id = id.replace('"', "'");
        let _ = writeln!(
            f,
            "{{\"id\":\"{id}\",\"mean_ns\":{mean_ns:.3},\"iters\":{iters}}}"
        );
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, settings: Settings, mut f: F) {
    if test_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {id} ... ok (1 iter smoke)");
        return;
    }
    // Calibrate: one timed iteration decides how many fit the window.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = settings.measurement_time;
    let iters = (budget.as_secs_f64() / per_iter.as_secs_f64())
        .clamp(1.0, settings.sample_size as f64 * 10.0) as u64;
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let mean = b.elapsed.as_secs_f64() / iters as f64;
    export(id, mean * 1e9, iters);
    println!(
        "bench {id:<48} {:>12.3} ms/iter ({iters} iters)",
        mean * 1e3
    );
}

/// Registers bench functions under a group name (compatible macro).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the registered groups (compatible macro).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
