//! Offline stand-in for `serde_derive`.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a minimal serde that serializes through a JSON
//! `Value` tree. This proc-macro derives that crate's `Serialize` /
//! `Deserialize` traits for the plain structs and enums the workspace
//! uses. Supported shapes: unit/tuple/named structs and enums with
//! unit, tuple, and struct variants (externally tagged, like serde's
//! default). Generics and `#[serde(...)]` attributes are not supported
//! — the workspace does not use them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field: optional name (None for tuple fields) plus the
/// flat text of its type (used only to special-case `Option`).
struct Field {
    name: Option<String>,
    ty: String,
}

enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(i) if i.to_string() == s)
}

/// Consumes leading attributes (`#[...]`) and visibility modifiers.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        if i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == '#' {
                    i += 2; // '#' + bracket group
                    continue;
                }
            }
            if is_ident(&toks[i], "pub") {
                i += 1;
                // `pub(crate)` / `pub(in ...)`
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
        }
        return i;
    }
}

/// Splits the tokens of a field list on top-level commas, tracking
/// `<...>` depth so generic arguments do not split fields.
fn split_top_level(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut depth = 0i32;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if !cur.is_empty() {
                        out.push(std::mem::take(&mut cur));
                    }
                    continue;
                }
                _ => {}
            }
        }
        cur.push(t.clone());
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn tokens_to_type_string(toks: &[TokenTree]) -> String {
    toks.iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level(&toks)
        .into_iter()
        .filter_map(|field_toks| {
            let start = skip_attrs_and_vis(&field_toks, 0);
            let name = match field_toks.get(start) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            // Skip the ':' and keep the type tokens.
            let ty = tokens_to_type_string(&field_toks[start + 2..]);
            Some(Field {
                name: Some(name),
                ty,
            })
        })
        .collect()
}

fn parse_tuple_fields(group: &proc_macro::Group) -> Vec<Field> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level(&toks)
        .into_iter()
        .map(|field_toks| {
            let start = skip_attrs_and_vis(&field_toks, 0);
            Field {
                name: None,
                ty: tokens_to_type_string(&field_toks[start..]),
            }
        })
        .collect()
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = group.stream().into_iter().collect();
    split_top_level(&toks)
        .into_iter()
        .filter_map(|var_toks| {
            let start = skip_attrs_and_vis(&var_toks, 0);
            let name = match var_toks.get(start) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            let shape = match var_toks.get(start + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g))
                }
                // Unit variant, possibly with `= discriminant` (ignored).
                _ => Shape::Unit,
            };
            Some(Variant { name, shape })
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let is_enum = if is_ident(&toks[i], "struct") {
        false
    } else if is_ident(&toks[i], "enum") {
        true
    } else {
        panic!(
            "serde shim derive: expected `struct` or `enum`, got {:?}",
            toks[i].to_string()
        );
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!(
            "serde shim derive: expected type name, got {:?}",
            t.to_string()
        ),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic type `{name}` is not supported");
        }
    }
    if is_enum {
        let body = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            _ => panic!("serde shim derive: malformed enum `{name}`"),
        };
        Item::Enum {
            name,
            variants: parse_variants(body),
        }
    } else {
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(parse_tuple_fields(g))
            }
            _ => Shape::Unit,
        };
        Item::Struct { name, shape }
    }
}

fn is_option(ty: &str) -> bool {
    let t = ty.replace(' ', "");
    t.starts_with("Option<")
        || t.starts_with("std::option::Option<")
        || t.starts_with("core::option::Option<")
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(fields) if fields.len() == 1 => {
                    "::serde::Serialize::to_value(&self.0)".to_string()
                }
                Shape::Tuple(fields) => {
                    let items: Vec<String> = (0..fields.len())
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => {
                    let pushes: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            let n = f.name.as_ref().unwrap();
                            format!(
                                "(String::from(\"{n}\"), ::serde::Serialize::to_value(&self.{n}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", pushes.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(String::from(\"{vn}\")),"
                        ),
                        Shape::Tuple(fields) if fields.len() == 1 => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Shape::Tuple(fields) => {
                            let binds: Vec<String> =
                                (0..fields.len()).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds: Vec<String> = fields
                                .iter()
                                .map(|f| f.name.clone().unwrap())
                                .collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("(String::from(\"{b}\"), ::serde::Serialize::to_value({b}))"))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Object(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("{{ let _ = v; Ok({name}) }}"),
                Shape::Tuple(fields) if fields.len() == 1 => {
                    format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
                }
                Shape::Tuple(fields) => {
                    let items: Vec<String> = (0..fields.len())
                        .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                        .collect();
                    format!(
                        "{{ let arr = v.as_array().ok_or_else(|| ::serde::Error::new(\"expected array for {name}\"))?;\n\
                           if arr.len() != {n} {{ return Err(::serde::Error::new(\"wrong tuple arity for {name}\")); }}\n\
                           Ok({name}({items})) }}",
                        n = fields.len(),
                        items = items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let items: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            let n = f.name.as_ref().unwrap();
                            if is_option(&f.ty) {
                                format!("{n}: ::serde::field_opt(obj, \"{n}\")?")
                            } else {
                                format!("{n}: ::serde::field(obj, \"{n}\")?")
                            }
                        })
                        .collect();
                    format!(
                        "{{ let obj = v.as_object().ok_or_else(|| ::serde::Error::new(\"expected object for {name}\"))?;\n\
                           Ok({name} {{ {items} }}) }}",
                        items = items.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn}),", vn = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(fields) if fields.len() == 1 => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                        )),
                        Shape::Tuple(fields) => {
                            let items: Vec<String> = (0..fields.len())
                                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let arr = inner.as_array().ok_or_else(|| ::serde::Error::new(\"expected array for {name}::{vn}\"))?;\n\
                                   if arr.len() != {n} {{ return Err(::serde::Error::new(\"wrong arity for {name}::{vn}\")); }}\n\
                                   Ok({name}::{vn}({items})) }}",
                                n = fields.len(),
                                items = items.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let n = f.name.as_ref().unwrap();
                                    if is_option(&f.ty) {
                                        format!("{n}: ::serde::field_opt(obj, \"{n}\")?")
                                    } else {
                                        format!("{n}: ::serde::field(obj, \"{n}\")?")
                                    }
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let obj = inner.as_object().ok_or_else(|| ::serde::Error::new(\"expected object for {name}::{vn}\"))?;\n\
                                   Ok({name}::{vn} {{ {items} }}) }}",
                                items = items.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {units}\n\
                                 other => Err(::serde::Error::new(&format!(\"unknown variant {{other}} for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(o) if o.len() == 1 => {{\n\
                                 let (tag, inner) = &o[0];\n\
                                 match tag.as_str() {{\n\
                                     {datas}\n\
                                     other => Err(::serde::Error::new(&format!(\"unknown variant {{other}} for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => Err(::serde::Error::new(\"expected string or single-key object for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                datas = data_arms.join("\n"),
            )
        }
    };
    code.parse()
        .expect("serde shim derive: generated Deserialize impl parses")
}
