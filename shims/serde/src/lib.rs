//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so the workspace vendors
//! this minimal serialization framework. Unlike real serde's
//! visitor-based design, everything funnels through a JSON [`Value`]
//! tree: `Serialize` renders to a `Value`, `Deserialize` parses from
//! one. The companion `serde_json` shim adds the text encoding. The
//! API surface intentionally covers exactly what the workspace uses:
//! `#[derive(Serialize, Deserialize)]` on plain structs/enums,
//! `serde::Serialize` bounds, and `serde::de::DeserializeOwned`.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree.
///
/// Objects preserve insertion order (a `Vec` of pairs) so that derived
/// serialization is deterministic and matches field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` on other shapes or a missing key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64`, if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(n) => Some(n as f64),
            Value::U64(n) => Some(n as f64),
            Value::F64(n) => Some(n),
            _ => None,
        }
    }

    /// Numeric view as `u64`, when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(n) if n >= 0 => Some(n as u64),
            Value::U64(n) => Some(n),
            Value::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => Some(n as u64),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with a message.
    pub fn new(msg: &str) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves to a [`Value`].
pub trait Serialize {
    /// Renders to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can parse themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;

    /// Result for a field absent from its object. Overridden by
    /// `Option` to yield `None`, mirroring serde's implicit-default
    /// behavior for optional fields.
    fn missing_field(name: &str) -> Result<Self, Error> {
        Err(Error(format!("missing field `{name}`")))
    }
}

/// Compatibility aliases matching `serde::de`.
pub mod de {
    /// Owned deserialization marker; every shim `Deserialize` qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
    pub use crate::Error;
}

/// Looks up a required field in a derived-struct object.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => T::missing_field(name),
    }
}

/// Looks up an `Option` field; missing keys become `None`.
pub fn field_opt<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => T::missing_field(name),
    }
}

// ---- primitive impls -------------------------------------------------

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                #[allow(unused_comparisons)]
                if (*self as i128) >= 0 && (*self as i128) > i64::MAX as i128 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match *v {
                    Value::I64(n) => n as $t,
                    Value::U64(n) => n as $t,
                    Value::F64(n) if n.fract() == 0.0 => n as $t,
                    // Map keys arrive stringified; accept parseable text.
                    Value::Str(ref s) => s
                        .parse::<$t>()
                        .map_err(|_| Error(format!("invalid integer `{s}`")))?,
                    _ => return Err(Error(format!("expected integer, got {v:?}"))),
                };
                Ok(out)
            }
        }
    )*};
}

ser_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        Value::U64(*self as u64)
    }
}

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error(format!("expected number, got {v:?}")))
            }
        }
    )*};
}

ser_de_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error(format!("expected bool, got {v:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            // Deserializing into a `&'static str` field has no owner to
            // borrow from; leak the (small, config-label) string.
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(Error(format!("expected string, got {v:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error(format!("expected single-char string, got {v:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn missing_field(_name: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| Error(format!("expected array tuple, got {v:?}")))?;
                Ok(($($t::from_value(
                    arr.get($n)
                        .ok_or_else(|| Error("tuple too short".to_string()))?,
                )?,)+))
            }
        }
    )+};
}

ser_de_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

/// Converts a serialized key to the string JSON objects require.
fn key_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("serde shim: unsupported map key {other:?}"),
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
            .collect();
        // HashMap iteration order is nondeterministic; sort for stable output.
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error(format!("expected object map, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error(format!("expected object map, got {v:?}")))?
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
