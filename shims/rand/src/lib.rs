//! Offline stand-in for `rand` 0.8.
//!
//! The build container cannot reach crates.io; this crate provides the
//! slice of the `rand` API the workspace uses: [`rngs::SmallRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256** with SplitMix64 seeding — deterministic across
//! platforms, which is all the workspace's reproducibility tests
//! require (no cross-version stream compatibility with real rand).

/// Uniformly samplable types for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws a uniformly distributed value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// The random-generator interface.
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A uniform value in the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::draw(self) < p
    }

    /// Fills a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface matching `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                self.start + <$t as Standard>::draw(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                start + <$t as Standard>::draw(rng) * (end - start)
            }
        }
    )*};
}

float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(4);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
