#![warn(missing_docs)]

//! Umbrella crate for the CXL-ASIC reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use
//! a single dependency. See `README.md` for the workspace tour.

pub use cxl_alloc as alloc;
pub use cxl_calib as calib;
pub use cxl_core as core_api;
pub use cxl_cost as cost;
pub use cxl_ctl as ctl;
pub use cxl_fault as fault;
pub use cxl_heap as heap;
pub use cxl_kv as kv;
pub use cxl_llm as llm;
pub use cxl_mlc as mlc;
pub use cxl_obs as obs;
pub use cxl_perf as perf;
pub use cxl_pool as pool;
pub use cxl_serve as serve;
pub use cxl_sim as sim;
pub use cxl_spark as spark;
pub use cxl_stats as stats;
pub use cxl_tier as tier;
pub use cxl_topology as topology;
pub use cxl_ycsb as ycsb;

/// Convenience re-exports for downstream users.
///
/// ```
/// use cxl_repro::prelude::*;
///
/// let sys = MemSystem::new(&Topology::paper_testbed(SncMode::Snc4));
/// let bw = sys.max_bandwidth_gbps(SocketId(0), NodeId(0), AccessMix::read_only());
/// assert!(bw > 60.0);
/// ```
pub mod prelude {
    pub use cxl_core::CapacityConfig;
    pub use cxl_cost::{CostModel, CostModelParams, RevenueModel};
    pub use cxl_ctl::{Controller, ControllerConfig, Guardrails, KnobSpec, Plant};
    pub use cxl_fault::{FaultEvent, FaultKind, FaultSchedule};
    pub use cxl_perf::{AccessMix, FlowSpec, MemSystem, PerfTuning};
    pub use cxl_sim::{Engine, SimTime};
    pub use cxl_stats::{Histogram, Summary};
    pub use cxl_tier::{AllocPolicy, MigrationMode, TierConfig, TierManager};
    pub use cxl_topology::{CxlDevice, NodeId, SncMode, SocketId, Topology, TopologyBuilder};
    pub use cxl_ycsb::Workload;
}
