//! The simulated KeyDB store and its YCSB run loop.

use serde::{Deserialize, Serialize};

use std::collections::HashSet;
use std::collections::VecDeque;

use cxl_perf::{calib, MemSystem, ResourceKind};

/// Extra software latency per operation when FLASH mode is on: KeyDB
/// routes reads through the RocksDB memtable/block-cache path even for
/// memory-resident values.
const FLASH_READPATH_NS: f64 = 1_500.0;

/// Extra cost of a FLASH miss beyond the raw SSD read: RocksDB index /
/// filter block lookups and read amplification.
const ROCKSDB_MISS_NS: f64 = 30_000.0;
use cxl_sim::{MultiServer, SimTime};
use cxl_stats::Histogram;
use cxl_tier::{
    EvacuationReport, Location, PageId, Rw, TierConfig, TierError, TierManager, TierStats,
};
use cxl_topology::{NodeId, Topology};
use cxl_ycsb::{Generator, GeneratorConfig, Op, Workload};

/// Ops pre-generated per block in the run loops. Blocks amortize the
/// generator's per-op obs flush ([`Generator::batch`] tallies counters
/// locally) without changing the op stream — generation order is
/// independent of store state, so drawing ahead is observationally
/// equivalent.
const GEN_BLOCK: usize = 1024;

/// Pulls the next op off `buf`, refilling it with a block when empty.
/// `remaining` is the number of ops still owed including this one, so
/// the final block never over-draws the generator.
fn next_buffered_op(generator: &mut Generator, buf: &mut VecDeque<Op>, remaining: u64) -> Op {
    if buf.is_empty() {
        let n = (remaining as usize).min(GEN_BLOCK);
        buf.extend(generator.batch(n));
    }
    buf.pop_front().expect("refilled with remaining >= 1")
}

/// CPU/memory cost profile of one KeyDB operation.
///
/// The paper's two KeyDB experiments sit in different locality regimes:
/// the 512 GB capacity runs (§4.1, Fig. 5) take a TLB/page-walk miss on
/// nearly every access, so each op performs many dependent memory
/// accesses and interleaving onto CXL costs 1.2–1.5×; the 100 GB
/// vCPU-ratio run (§4.3, Fig. 8) is lighter, and running fully on CXL
/// costs only ~12.5 % of throughput. Both regimes are expressed as
/// profiles instead of hidden constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemProfile {
    /// Pure CPU time per operation, ns (parsing, dispatch, networking).
    pub cpu_ns_per_op: f64,
    /// Dependent memory accesses per operation (dict walk, value chase,
    /// page-table walks).
    pub mem_chases: u32,
}

impl MemProfile {
    /// The 512 GB capacity-experiment regime (§4.1).
    pub fn capacity_strained() -> Self {
        Self {
            cpu_ns_per_op: 3_000.0,
            mem_chases: 24,
        }
    }

    /// The 100 GB elastic-compute regime (§4.3).
    pub fn standard() -> Self {
        Self {
            cpu_ns_per_op: 5_000.0,
            mem_chases: 5,
        }
    }
}

/// `maxmemory` eviction policy for FLASH mode, mirroring Redis's
/// `maxmemory-policy` choices at page granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// CLOCK second chance — approximates `allkeys-lru` (the default).
    Clock,
    /// Uniform random resident page — `allkeys-random`.
    Random,
    /// Least-frequently-used among a small random sample, with periodic
    /// counter decay — `allkeys-lfu`.
    Lfu,
}

/// Store configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KvConfig {
    /// Pre-loaded record count.
    pub record_count: u64,
    /// Value size in bytes (1 KiB default, the YCSB default in §4.1.1).
    pub value_size: u64,
    /// KeyDB server threads (7 in the paper).
    pub server_threads: usize,
    /// Closed-loop client concurrency.
    pub client_concurrency: usize,
    /// Cost profile.
    pub profile: MemProfile,
    /// Refresh contention-priced latencies every this many operations.
    pub epoch_ops: u64,
    /// FLASH-mode eviction policy.
    pub eviction: EvictionPolicy,
    /// Root seed.
    pub seed: u64,
}

impl Default for KvConfig {
    fn default() -> Self {
        Self {
            record_count: 100_000,
            value_size: 1024,
            server_threads: 7,
            client_concurrency: 28,
            profile: MemProfile::capacity_strained(),
            epoch_ops: 2_000,
            eviction: EvictionPolicy::Clock,
            seed: 42,
        }
    }
}

/// Result of one workload run.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Completed operations.
    pub ops: u64,
    /// Virtual wall time of the run.
    pub duration: SimTime,
    /// Operations per second.
    pub throughput_ops: f64,
    /// Sojourn (client-observed) latency histogram, ns, all ops.
    pub latency: Histogram,
    /// Sojourn latency histogram for reads only (Fig. 8(a) CDF).
    pub read_latency: Histogram,
    /// Operations that had to fetch from SSD.
    pub ssd_hits: u64,
    /// Tier-manager statistics at the end of the run.
    pub tier_stats: TierStats,
}

impl RunResult {
    /// Throughput in thousands of ops/s (the unit of Fig. 5(a)).
    pub fn kops(&self) -> f64 {
        self.throughput_ops / 1e3
    }
}

/// Persistent generator session for the queue-fed serving entry point
/// ([`KvStore::service_request`]): requests trickle in one at a time,
/// but the op stream must stay one continuous deterministic YCSB trace
/// (and re-building a Zipfian generator per request would re-pay the
/// zeta-normalization setup on every call).
struct ServeSession {
    workload: Workload,
    generator: Generator,
    buf: VecDeque<Op>,
    ops: u64,
}

/// The simulated store.
pub struct KvStore {
    sys: MemSystem,
    tm: TierManager,
    cfg: KvConfig,
    /// Page directory: data page index -> allocated page id.
    pages: Vec<PageId>,
    /// Per-node average access latency, ns, refreshed every epoch.
    lat_ns: Vec<f64>,
    /// CLOCK ring of memory-resident pages for `maxmemory` eviction.
    ring: VecDeque<PageId>,
    referenced: HashSet<PageId>,
    flash: bool,
    now: SimTime,
    epoch_start: SimTime,
    runs: u64,
    /// Deterministic sampler for Random/LFU eviction.
    evict_rng: rand::rngs::SmallRng,
    /// Page access frequencies for LFU (decayed periodically).
    freq: std::collections::HashMap<PageId, u32>,
    ops_since_decay: u64,
    /// Live serving session, if a `service_request` stream is open.
    serve: Option<ServeSession>,
}

impl KvStore {
    /// Builds the store and loads `record_count` values through the
    /// placement policy.
    ///
    /// `flash` enables KeyDB-FLASH semantics: pages that do not fit in
    /// the (possibly `maxmemory`-limited) nodes spill to SSD, and SSD
    /// pages are cached back in memory on access with CLOCK eviction.
    ///
    /// # Panics
    ///
    /// Panics if the dataset cannot be placed (no SSD and nodes too
    /// small).
    pub fn new(topo: &Topology, mut tier_cfg: TierConfig, cfg: KvConfig, flash: bool) -> Self {
        tier_cfg.allow_ssd_spill = flash;
        let sys = MemSystem::new(topo);
        let mut tm = TierManager::new(topo, tier_cfg);
        let total_bytes = cfg.record_count * cfg.value_size;
        let n_pages = total_bytes.div_ceil(tm.page_size());
        let pages = tm
            .alloc_n(n_pages, SimTime::ZERO)
            .expect("dataset does not fit; enable flash or enlarge nodes");
        let mut ring = VecDeque::new();
        for &p in &pages {
            if !tm.location(p).is_ssd() {
                ring.push_back(p);
            }
        }
        let lat_ns = Self::idle_latency_table(&sys, &tm);
        let cfg_seed = cfg.seed;
        let mut store = Self {
            sys,
            tm,
            cfg,
            pages,
            lat_ns,
            ring,
            referenced: HashSet::new(),
            flash,
            now: SimTime::ZERO,
            epoch_start: SimTime::ZERO,
            runs: 0,
            evict_rng: {
                use rand::SeedableRng;
                rand::rngs::SmallRng::seed_from_u64(cxl_stats::rng::derive_seed(cfg_seed, "evict"))
            },
            freq: std::collections::HashMap::new(),
            ops_since_decay: 0,
            serve: None,
        };
        store.tm.drain_epoch(); // Discard load-phase traffic.
        store
    }

    fn idle_latency_table(sys: &MemSystem, tm: &TierManager) -> Vec<f64> {
        let _ = tm;
        sys.nodes()
            .iter()
            .map(|n| {
                // Offline (failed) expanders have no latency; infinity
                // keeps any stale access to them visibly wrong without
                // panicking the pricing path.
                sys.try_idle_latency_ns(sys.sockets()[0], n.id, cxl_perf::AccessMix::read_only())
                    .unwrap_or(f64::INFINITY)
            })
            .collect()
    }

    /// The tier manager (for inspection in tests and reports).
    pub fn tier(&self) -> &TierManager {
        &self.tm
    }

    /// Current page residency distribution.
    pub fn residency(&self) -> Vec<(Location, u64)> {
        self.tm.residency()
    }

    /// Idle read latency to `node` under the store's current (possibly
    /// degraded) performance model, ns; `None` when the node is offline.
    pub fn idle_latency_ns(&self, node: NodeId) -> Option<f64> {
        self.sys
            .try_idle_latency_ns(
                self.sys.sockets()[0],
                node,
                cxl_perf::AccessMix::read_only(),
            )
            .ok()
    }

    /// Rebuilds the performance model for a (possibly degraded) topology
    /// and re-derives the idle-latency table. Call after device health
    /// changes (link downgrade, latency inflation) that do not require
    /// moving pages; the store keeps serving at the recomputed
    /// latencies.
    pub fn apply_topology(&mut self, topo: &Topology) {
        self.sys = MemSystem::new(topo);
        self.lat_ns = Self::idle_latency_table(&self.sys, &self.tm);
    }

    /// Reacts to an expander failure: fences and drains `node` through
    /// the tier manager (under the promotion rate limiter), advances the
    /// store clock to the end of the drain, and reprices accesses on the
    /// degraded topology.
    ///
    /// `topo` must already carry the failure (the device marked
    /// offline); pass the same topology the simulation's fault injector
    /// mutated.
    pub fn fail_expander(
        &mut self,
        topo: &Topology,
        node: NodeId,
    ) -> Result<EvacuationReport, TierError> {
        let report = self.tm.evacuate(node, self.now)?;
        self.now = self.now.max(report.completed_at);
        self.apply_topology(topo);
        self.refresh_epoch();
        cxl_obs::counter_add("kv/expander_failures_survived", 1);
        Ok(report)
    }

    /// Reacts to a capacity-loss fault: shrinks `node`, draining the
    /// overflow, and reprices on the degraded topology.
    pub fn shrink_expander(
        &mut self,
        topo: &Topology,
        node: NodeId,
        new_capacity_bytes: u64,
    ) -> Result<EvacuationReport, TierError> {
        let report = self.tm.shrink_node(node, new_capacity_bytes, self.now)?;
        self.now = self.now.max(report.completed_at);
        self.apply_topology(topo);
        self.refresh_epoch();
        Ok(report)
    }

    /// Raises `node`'s capacity (a pool lease granted mid-run). Newly
    /// granted room is picked up by the next SSD cache-in or insert —
    /// no repricing is needed until traffic actually lands there.
    pub fn grow_expander(
        &mut self,
        node: NodeId,
        new_capacity_bytes: u64,
    ) -> Result<(), TierError> {
        self.tm.grow_node(node, new_capacity_bytes)
    }

    /// Retunes the live promotion rate limit (see
    /// [`TierManager::set_promote_rate`]), effective at the store's
    /// current clock.
    pub fn set_promote_rate(&mut self, bytes_per_sec: f64) -> Result<(), TierError> {
        self.tm.set_promote_rate(self.now, bytes_per_sec)
    }

    /// Retunes the bandwidth-aware demote batch (see
    /// [`TierManager::set_demote_batch`]).
    pub fn set_demote_batch(&mut self, batch: usize) -> Result<(), TierError> {
        self.tm.set_demote_batch(batch)
    }

    /// The store's tiering clock (advances as workload runs execute).
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn page_index_of_key(&self, key: u64) -> usize {
        ((key * self.cfg.value_size) / self.tm.page_size()) as usize
    }

    /// Ensures the page directory covers `index` (workload D growth).
    fn ensure_page(&mut self, index: usize) {
        while self.pages.len() <= index {
            let p = self
                .tm
                .alloc(self.now)
                .expect("insert failed: out of memory without flash");
            if !self.tm.location(p).is_ssd() {
                self.ring.push_back(p);
            }
            self.pages.push(p);
        }
    }

    /// Picks an eviction victim from the resident ring per the policy.
    /// Returns `None` when no resident page can be found.
    fn pick_victim(&mut self) -> Option<PageId> {
        use rand::Rng;
        match self.cfg.eviction {
            EvictionPolicy::Clock => {
                let mut guard = self.ring.len();
                while guard > 0 {
                    guard -= 1;
                    let victim = self.ring.pop_front()?;
                    if self.tm.location(victim).is_ssd() {
                        continue; // Stale entry.
                    }
                    if self.referenced.remove(&victim) {
                        self.ring.push_back(victim);
                        continue;
                    }
                    return Some(victim);
                }
                // Everything referenced: take the next resident page.
                while let Some(victim) = self.ring.pop_front() {
                    if !self.tm.location(victim).is_ssd() {
                        self.referenced.remove(&victim);
                        return Some(victim);
                    }
                }
                None
            }
            EvictionPolicy::Random => {
                let mut guard = self.ring.len().max(8) * 2;
                while guard > 0 && !self.ring.is_empty() {
                    guard -= 1;
                    let idx = self.evict_rng.gen_range(0..self.ring.len());
                    self.ring.swap(idx, 0);
                    let victim = self.ring.pop_front()?;
                    if self.tm.location(victim).is_ssd() {
                        continue;
                    }
                    self.referenced.remove(&victim);
                    return Some(victim);
                }
                None
            }
            EvictionPolicy::Lfu => {
                // Redis-style: sample a few candidates, evict the
                // least-frequently-used resident one.
                const SAMPLE: usize = 5;
                let mut guard = 16;
                while guard > 0 && !self.ring.is_empty() {
                    guard -= 1;
                    let mut candidates: Vec<(usize, u32)> = Vec::with_capacity(SAMPLE);
                    for _ in 0..SAMPLE.min(self.ring.len()) {
                        let idx = self.evict_rng.gen_range(0..self.ring.len());
                        let page = self.ring[idx];
                        if self.tm.location(page).is_ssd() {
                            continue;
                        }
                        let f = self.freq.get(&page).copied().unwrap_or(0);
                        candidates.push((idx, f));
                    }
                    if let Some((idx, _)) = cxl_stats::argmin_by(candidates, |&(_, f)| f) {
                        self.ring.swap(idx, 0);
                        let victim = self.ring.pop_front()?;
                        self.referenced.remove(&victim);
                        self.freq.remove(&victim);
                        return Some(victim);
                    }
                }
                None
            }
        }
    }

    /// Caches an SSD page into memory, evicting policy-chosen pages as
    /// needed. Returns the number of evictions performed.
    ///
    /// Gives up (leaving the page on SSD) when no victim can make room —
    /// after an evacuation shrank memory, a store must keep serving at
    /// SSD latency rather than abort.
    fn cache_in(&mut self, page: PageId) -> u64 {
        let mut evictions = 0;
        loop {
            match self.tm.load_from_ssd(page, self.now) {
                Ok(()) => {
                    self.ring.push_back(page);
                    self.referenced.insert(page);
                    return evictions;
                }
                Err(_) => {
                    let Some(victim) = self.pick_victim() else {
                        cxl_obs::counter_add("kv/cache_in_give_ups", 1);
                        return evictions;
                    };
                    if self.tm.evict_to_ssd(victim).is_err() {
                        // Stale victim (already spilled, e.g. by an
                        // evacuation racing the CLOCK ring); try another.
                        continue;
                    }
                    evictions += 1;
                }
            }
        }
    }

    /// Prices a single-page access: touch, fault costs, SSD caching.
    /// Returns `(service_ns, hit_ssd)` for that page.
    fn access_page(&mut self, idx: usize, rw: Rw, chases: f64, bytes: u64) -> (f64, bool) {
        let page = self.pages[idx];
        let outcome = self.tm.touch(page, rw, bytes, self.now);
        self.referenced.insert(page);
        if self.cfg.eviction == EvictionPolicy::Lfu && self.flash {
            *self.freq.entry(page).or_insert(0) += 1;
            self.ops_since_decay += 1;
            // Periodic halving keeps counters adaptive (Redis LFU decay).
            if self.ops_since_decay >= 100_000 {
                self.ops_since_decay = 0;
                for f in self.freq.values_mut() {
                    *f /= 2;
                }
            }
        }
        let mut ns = outcome.fault_cost.as_ns() as f64;
        let mut hit_ssd = false;
        match outcome.location {
            Location::Node(node) => {
                ns += chases * self.lat_ns[node.0];
            }
            Location::Ssd => {
                hit_ssd = true;
                ns += calib::SSD_READ_LATENCY_NS + ROCKSDB_MISS_NS;
                if self.flash {
                    let evictions = self.cache_in(page);
                    // Dirty evictions add a write-back (charged as SSD
                    // bandwidth, asynchronous to the op).
                    let _ = evictions;
                }
                // Re-price the chases at the page's new home.
                if let Location::Node(node) = self.tm.location(page) {
                    ns += chases * self.lat_ns[node.0];
                }
            }
        }
        if cxl_obs::active() {
            let metric = match outcome.location {
                Location::Ssd => "kv/access_ns/ssd",
                Location::Node(node) => match self.sys.node(node).tier {
                    cxl_topology::MemoryTier::LocalDram => "kv/access_ns/mmem",
                    cxl_topology::MemoryTier::CxlExpander => "kv/access_ns/cxl",
                },
            };
            cxl_obs::record(metric, ns as u64);
            if hit_ssd {
                cxl_obs::counter_add("kv/ssd_hits", 1);
            }
        }
        (ns, hit_ssd)
    }

    /// Prices one operation at the current epoch latencies and advances
    /// tiering state. Returns `(service_ns, hit_ssd)`.
    fn service_op(&mut self, op: Op) -> (f64, bool) {
        let key = op.key();
        let idx = self.page_index_of_key(key);
        if matches!(op, Op::Insert(_)) {
            self.ensure_page(idx);
        }

        let mut ns = self.cfg.profile.cpu_ns_per_op;
        if self.flash {
            ns += FLASH_READPATH_NS;
        }
        let chases = self.cfg.profile.mem_chases as f64;
        let mut hit_ssd = false;

        match op {
            Op::Read(_) | Op::Update(_) | Op::Insert(_) => {
                let rw = if op.is_write() { Rw::Write } else { Rw::Read };
                let (a, h) = self.access_page(idx, rw, chases, self.cfg.value_size);
                ns += a;
                hit_ssd |= h;
            }
            Op::ReadModifyWrite(_) => {
                // Read, then write the same record: the read pays the
                // full chase chain, the write-back a short one.
                let (a, h) = self.access_page(idx, Rw::Read, chases, self.cfg.value_size);
                let (b, h2) = self.access_page(idx, Rw::Write, 2.0, self.cfg.value_size);
                ns += a + b;
                hit_ssd |= h | h2;
            }
            Op::Scan { start, len } => {
                // Sequential range: full chase chain on the first page,
                // streaming cost (two dependent accesses) per page after.
                let last_key = start + len as u64 - 1;
                let first = self.page_index_of_key(start);
                let last = self.page_index_of_key(last_key).min(self.pages.len() - 1);
                for (i, pg) in (first..=last).enumerate() {
                    let c = if i == 0 { chases } else { 2.0 };
                    let (a, h) = self.access_page(pg, Rw::Read, c, self.cfg.value_size);
                    ns += a;
                    hit_ssd |= h;
                }
            }
        }
        (ns, hit_ssd)
    }

    /// Refreshes the per-node latency table from the traffic of the
    /// closing epoch and runs tier-manager periodic work.
    fn refresh_epoch(&mut self) {
        let dur = self.now.saturating_sub(self.epoch_start);
        let epoch = self.tm.drain_epoch();
        if dur > SimTime::ZERO {
            // KeyDB stores are regular (allocating) writes, not NT streams.
            let mut flows = epoch.flows(self.sys.sockets()[0], dur, false);
            // Traffic recorded on a node that has since failed cannot be
            // priced on the degraded topology; drop it (the pages are
            // gone from that node too).
            flows.retain(|f| self.sys.node_online(f.node));
            if !flows.is_empty() {
                let res = self.sys.solve(&flows);
                for (f, o) in flows.iter().zip(res.flows.iter()) {
                    self.lat_ns[f.node.0] = o.latency_ns;
                }
                // Feed the §5.3 bandwidth-awareness input from the same
                // solve: the accessor socket's DRAM DDR-group
                // utilization drives the tier manager's promote/demote
                // watermark logic on the tick below. A no-op unless the
                // bandwidth-aware migration mode is configured.
                let socket = self.sys.sockets()[0];
                if let Some(dram) =
                    self.sys.nodes().iter().find(|n| {
                        n.socket == socket && n.tier == cxl_topology::MemoryTier::LocalDram
                    })
                {
                    self.tm.set_dram_bandwidth_util(
                        res.utilization_of(ResourceKind::DdrGroup(dram.id)),
                    );
                }
            }
        }
        self.tm.tick(self.now);
        self.epoch_start = self.now;
    }

    /// Runs an **open-loop** YCSB load: operations arrive at
    /// `rate_ops_per_sec` with exponential inter-arrival times and queue
    /// at the server threads regardless of completion — the setup for
    /// latency-vs-offered-load (SLO) analysis. Contrast with [`run`],
    /// whose closed-loop clients self-limit at saturation.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    ///
    /// [`run`]: KvStore::run
    pub fn run_open_loop(
        &mut self,
        workload: Workload,
        rate_ops_per_sec: f64,
        ops: u64,
    ) -> RunResult {
        assert!(
            rate_ops_per_sec > 0.0 && rate_ops_per_sec.is_finite(),
            "invalid arrival rate {rate_ops_per_sec}"
        );
        let run_seed =
            cxl_stats::rng::derive_seed(self.cfg.seed, &format!("openloop.{}", self.runs));
        self.runs += 1;
        let gen_cfg = GeneratorConfig {
            record_count: self.cfg.record_count,
            value_size: self.cfg.value_size,
            seed: run_seed,
        };
        let mut generator = Generator::new(workload, gen_cfg);
        let mut arrival_rng = cxl_stats::rng::stream_rng(run_seed, "arrivals");
        let interarrival = cxl_stats::Exponential::new(rate_ops_per_sec);
        let mut servers = MultiServer::new(self.cfg.server_threads);
        let mut latency = Histogram::new();
        let mut read_latency = Histogram::new();
        let mut ssd_hits = 0u64;
        let start = self.now;
        let mut arrival_s = start.as_secs_f64();
        let mut op_buf = VecDeque::new();

        for i in 0..ops {
            let op = next_buffered_op(&mut generator, &mut op_buf, ops - i);
            arrival_s += interarrival.sample(&mut arrival_rng);
            let arrival = SimTime::from_secs_f64(arrival_s);
            // `self.now` is the tiering clock; keep it monotone. Epoch
            // refreshes below advance it to a completion time, which can
            // lie past the next arrival.
            self.now = self.now.max(arrival);
            let (service_ns, hit_ssd) = self.service_op(op);
            let completion = servers.submit(arrival, SimTime::from_ns_f64(service_ns));
            let sojourn = completion.sojourn(arrival).as_ns();
            latency.record(sojourn);
            cxl_obs::record("kv/op_sojourn_ns", sojourn);
            if !op.is_write() {
                read_latency.record(sojourn);
            }
            if hit_ssd {
                ssd_hits += 1;
            }
            if (i + 1) % self.cfg.epoch_ops == 0 {
                self.now = self.now.max(completion.finish);
                self.refresh_epoch();
            }
        }

        self.now = servers.makespan().max(self.now);
        self.refresh_epoch();
        let duration = self.now.saturating_sub(start);
        let throughput = if duration > SimTime::ZERO {
            ops as f64 / duration.as_secs_f64()
        } else {
            0.0
        };
        RunResult {
            ops,
            duration,
            throughput_ops: throughput,
            latency,
            read_latency,
            ssd_hits,
            tier_stats: self.tm.stats().clone(),
        }
    }

    /// Queue-fed serving entry point: prices one request of `ops`
    /// operations at the store's **current** state and returns its
    /// service time.
    ///
    /// This is the per-request analog of [`run_open_loop`] for external
    /// serving layers (`cxl-serve`) that own the arrival process, the
    /// queue, and the concurrency themselves: the caller advances the
    /// virtual clock to the request's dispatch instant `now`, the store
    /// draws the next ops from a persistent deterministic YCSB session
    /// (continued across calls, like repeated [`run`]s continue the
    /// trace), prices them against the live tier layout, and keeps its
    /// epoch-refresh cadence (`epoch_ops`) ticking on the same op
    /// counter the run loops use.
    ///
    /// The tiering clock only moves forward: dispatch instants from a
    /// well-ordered event loop are monotone, and internal epoch
    /// refreshes never rewind.
    ///
    /// Switching `workload` mid-stream closes the session and opens a
    /// fresh one (a new tenant mix, not a continuation).
    ///
    /// # Panics
    ///
    /// Panics if `ops == 0`.
    ///
    /// [`run`]: KvStore::run
    /// [`run_open_loop`]: KvStore::run_open_loop
    pub fn service_request(&mut self, now: SimTime, workload: Workload, ops: u64) -> SimTime {
        assert!(ops > 0, "a request must carry at least one op");
        self.now = self.now.max(now);
        let fresh = !matches!(&self.serve, Some(s) if s.workload == workload);
        if fresh {
            let run_seed =
                cxl_stats::rng::derive_seed(self.cfg.seed, &format!("serve.{}", self.runs));
            self.runs += 1;
            let gen_cfg = GeneratorConfig {
                record_count: self.cfg.record_count,
                value_size: self.cfg.value_size,
                seed: run_seed,
            };
            self.serve = Some(ServeSession {
                workload,
                generator: Generator::new(workload, gen_cfg),
                buf: VecDeque::new(),
                ops: 0,
            });
        }
        // Take the session out so `service_op`/`refresh_epoch` can
        // borrow `self` mutably; put it back before returning.
        let mut session = self.serve.take().expect("session opened above");
        let mut total_ns = 0.0f64;
        for _ in 0..ops {
            // The session's stream never ends, so refills always draw a
            // full block (generation is state-independent; drawing ahead
            // is observationally equivalent and amortizes across the
            // small per-request op counts).
            let op = next_buffered_op(&mut session.generator, &mut session.buf, GEN_BLOCK as u64);
            let (service_ns, _hit_ssd) = self.service_op(op);
            total_ns += service_ns;
            session.ops += 1;
            if session.ops.is_multiple_of(self.cfg.epoch_ops) {
                self.refresh_epoch();
            }
        }
        self.serve = Some(session);
        SimTime::from_ns_f64(total_ns)
    }

    /// Runs `ops` operations of a YCSB workload against the store.
    ///
    /// Each call draws a fresh (deterministic) operation stream: repeated
    /// runs on one store continue the workload rather than replaying the
    /// identical trace, so warm-up runs do not pre-answer the measured
    /// run's exact key sequence.
    pub fn run(&mut self, workload: Workload, ops: u64) -> RunResult {
        let run_seed = cxl_stats::rng::derive_seed(self.cfg.seed, &format!("run.{}", self.runs));
        self.runs += 1;
        let gen_cfg = GeneratorConfig {
            record_count: self.cfg.record_count,
            value_size: self.cfg.value_size,
            seed: run_seed,
        };
        let mut generator = Generator::new(workload, gen_cfg);
        let mut servers = MultiServer::new(self.cfg.server_threads);
        let mut clients: Vec<SimTime> = vec![SimTime::ZERO; self.cfg.client_concurrency];
        let mut latency = Histogram::new();
        let mut read_latency = Histogram::new();
        let mut ssd_hits = 0u64;
        let start = self.now;
        let mut op_buf = VecDeque::new();

        for i in 0..ops {
            let op = next_buffered_op(&mut generator, &mut op_buf, ops - i);
            let client = (i as usize) % clients.len();
            let arrival = clients[client].max(start);
            // Concurrent clients complete out of order, so one client's
            // arrival can precede another's completion. `self.now` is
            // the tiering clock and must stay monotone: the tier
            // manager's rate limiter and recency tracking observe it.
            self.now = self.now.max(arrival);
            let (service_ns, hit_ssd) = self.service_op(op);
            let completion = servers.submit(arrival, SimTime::from_ns_f64(service_ns));
            clients[client] = completion.finish;
            let sojourn = completion.sojourn(arrival).as_ns();
            latency.record(sojourn);
            cxl_obs::record("kv/op_sojourn_ns", sojourn);
            if !op.is_write() {
                read_latency.record(sojourn);
            }
            if hit_ssd {
                ssd_hits += 1;
            }
            if (i + 1) % self.cfg.epoch_ops == 0 {
                self.now = self.now.max(completion.finish);
                self.refresh_epoch();
            }
        }

        self.now = servers.makespan().max(self.now);
        self.refresh_epoch();
        let duration = self.now.saturating_sub(start);
        let throughput = if duration > SimTime::ZERO {
            ops as f64 / duration.as_secs_f64()
        } else {
            0.0
        };
        RunResult {
            ops,
            duration,
            throughput_ops: throughput,
            latency,
            read_latency,
            ssd_hits,
            tier_stats: self.tm.stats().clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_tier::{AllocPolicy, HotPageConfig, MigrationMode, NumaBalancingConfig};
    use cxl_topology::{NodeId, SncMode, Topology};

    // SNC disabled: node 0,1 = DRAM; 2,3 = CXL (both on socket 0).
    const DRAM0: NodeId = NodeId(0);
    const CXL0: NodeId = NodeId(2);

    fn topo() -> Topology {
        Topology::paper_testbed(SncMode::Disabled)
    }

    fn kv_cfg() -> KvConfig {
        KvConfig {
            record_count: 50_000,
            ..Default::default()
        }
    }

    fn mmem_store() -> KvStore {
        KvStore::new(&topo(), TierConfig::bind(vec![DRAM0]), kv_cfg(), false)
    }

    fn interleaved_store(n: u32, m: u32) -> KvStore {
        let mut tc = TierConfig::bind(vec![DRAM0]);
        tc.policy = AllocPolicy::interleave(vec![DRAM0], vec![CXL0], n, m);
        KvStore::new(&topo(), tc, kv_cfg(), false)
    }

    fn ssd_store(mem_fraction: f64) -> KvStore {
        let cfg = kv_cfg();
        let bytes = (cfg.record_count * cfg.value_size) as f64;
        let mut tc = TierConfig::bind(vec![DRAM0]);
        tc.capacity_override = vec![
            (DRAM0, (bytes * mem_fraction) as u64),
            (NodeId(1), 0),
            (CXL0, 0),
            (NodeId(3), 0),
        ];
        KvStore::new(&topo(), tc, cfg, true)
    }

    const OPS: u64 = 60_000;

    #[test]
    fn mmem_beats_interleave_beats_ssd() {
        let t_mmem = mmem_store().run(Workload::C, OPS).throughput_ops;
        let t_il = interleaved_store(1, 1).run(Workload::C, OPS).throughput_ops;
        let t_ssd = ssd_store(0.6).run(Workload::C, OPS).throughput_ops;
        assert!(t_mmem > t_il, "MMEM {t_mmem} vs 1:1 {t_il}");
        assert!(t_il > t_ssd, "1:1 {t_il} vs SSD {t_ssd}");
    }

    #[test]
    fn interleave_slowdown_in_papers_band() {
        // §4.1.2: interleaving costs 1.2–1.5x vs pure MMEM.
        let t_mmem = mmem_store().run(Workload::C, OPS).throughput_ops;
        for (n, m) in [(3u32, 1u32), (1, 1), (1, 3)] {
            let t = interleaved_store(n, m).run(Workload::C, OPS).throughput_ops;
            let slow = t_mmem / t;
            assert!((1.10..=1.60).contains(&slow), "{n}:{m} slowdown {slow}");
        }
    }

    #[test]
    fn more_cxl_means_slower() {
        let t31 = interleaved_store(3, 1).run(Workload::C, OPS).throughput_ops;
        let t11 = interleaved_store(1, 1).run(Workload::C, OPS).throughput_ops;
        let t13 = interleaved_store(1, 3).run(Workload::C, OPS).throughput_ops;
        assert!(t31 > t11, "3:1 {t31} vs 1:1 {t11}");
        assert!(t11 > t13, "1:1 {t11} vs 1:3 {t13}");
    }

    #[test]
    fn ssd_spill_hits_ssd_but_zipfian_mostly_cached() {
        let mut s = ssd_store(0.8);
        let r = s.run(Workload::C, OPS);
        assert!(r.ssd_hits > 0, "no SSD hits despite 20 % spill");
        let hit_rate = r.ssd_hits as f64 / r.ops as f64;
        assert!(hit_rate < 0.25, "hit rate {hit_rate}");
    }

    #[test]
    fn ssd_40_slower_than_ssd_20() {
        let t20 = ssd_store(0.8).run(Workload::C, OPS).throughput_ops;
        let t40 = ssd_store(0.6).run(Workload::C, OPS).throughput_ops;
        assert!(t20 > t40, "SSD-0.2 {t20} vs SSD-0.4 {t40}");
    }

    fn hot_promote_store() -> KvStore {
        let cfg = kv_cfg();
        let bytes = cfg.record_count * cfg.value_size;
        let mut tc = TierConfig::bind(vec![DRAM0]);
        tc.policy = AllocPolicy::interleave(vec![DRAM0], vec![CXL0], 1, 1);
        // Main memory limited to half the dataset (§4.1.1).
        tc.capacity_override = vec![(DRAM0, bytes / 2), (NodeId(1), 0), (NodeId(3), 0)];
        tc.migration = MigrationMode::HotPageSelection(HotPageConfig {
            balancing: NumaBalancingConfig {
                scan_period: SimTime::from_ms(5),
                scan_pages: 4096,
                hot_threshold: SimTime::from_ms(100),
                // Amortized per-faulting-access cost: most accesses check
                // the hint without the full fault path.
                hint_fault_cost: SimTime::from_ns(300),
            },
            promote_rate_limit_bytes_per_sec: 4e9,
            dynamic_threshold: false,
            adjust_period: SimTime::from_ms(100),
            promote_after_faults: 1,
        });
        KvStore::new(&topo(), tc, cfg, false)
    }

    #[test]
    fn hot_promote_recovers_most_of_mmem_performance() {
        // §4.1.2: Hot-Promote "performs nearly as well as running the
        // workload entirely on MMEM" thanks to the Zipfian hot set.
        let t_mmem = mmem_store().run(Workload::C, 150_000).throughput_ops;
        let mut hp = hot_promote_store();
        // Warm-up run lets the hot set migrate.
        hp.run(Workload::C, 150_000);
        let t_hp = hp.run(Workload::C, 150_000).throughput_ops;
        let t_il = interleaved_store(1, 1)
            .run(Workload::C, 150_000)
            .throughput_ops;
        assert!(t_hp > t_il, "hot-promote {t_hp} vs interleave {t_il}");
        assert!(
            t_hp > 0.85 * t_mmem,
            "hot-promote {t_hp} below 85 % of MMEM {t_mmem}"
        );
        assert!(hp.tier().stats().promotions > 0);
    }

    #[test]
    fn cxl_only_penalty_matches_section_4_3() {
        // §4.3.2: ~12.5 % lower throughput, 9–27 % read latency penalty.
        let cfg = KvConfig {
            record_count: 50_000,
            profile: MemProfile::standard(),
            ..Default::default()
        };
        let mut mmem = KvStore::new(&topo(), TierConfig::bind(vec![DRAM0]), cfg.clone(), false);
        let mut cxl = KvStore::new(&topo(), TierConfig::bind(vec![CXL0]), cfg, false);
        let rm = mmem.run(Workload::C, OPS);
        let rc = cxl.run(Workload::C, OPS);
        let tp_loss = 1.0 - rc.throughput_ops / rm.throughput_ops;
        assert!(
            (0.08..=0.20).contains(&tp_loss),
            "throughput loss {tp_loss}"
        );
        let p50m = rm.read_latency.percentile(50.0) as f64;
        let p50c = rc.read_latency.percentile(50.0) as f64;
        let lat_penalty = p50c / p50m - 1.0;
        assert!(
            (0.05..=0.30).contains(&lat_penalty),
            "latency penalty {lat_penalty}"
        );
    }

    #[test]
    fn workload_d_grows_the_dataset() {
        let mut s = mmem_store();
        let pages_before = s.pages.len();
        s.run(Workload::D, OPS);
        assert!(s.pages.len() > pages_before);
    }

    #[test]
    fn workload_e_scans_run_and_cost_more_than_reads() {
        let mut s1 = mmem_store();
        let re = s1.run(Workload::E, 30_000);
        let mut s2 = mmem_store();
        let rc = s2.run(Workload::C, 30_000);
        assert_eq!(re.ops, 30_000);
        // Scans touch many pages: mean latency clearly above point reads.
        assert!(
            re.latency.mean() > 1.25 * rc.latency.mean(),
            "E {} vs C {}",
            re.latency.mean(),
            rc.latency.mean()
        );
    }

    #[test]
    fn workload_f_read_modify_writes_register_as_writes() {
        let mut sf = mmem_store();
        let rf = sf.run(Workload::F, 30_000);
        let mut sc = mmem_store();
        let rc = sc.run(Workload::C, 30_000);
        // The RMW write-back adds a small service cost; throughputs stay
        // within a few percent, with F no faster than C's regime.
        assert!(rf.throughput_ops < rc.throughput_ops * 1.02);
        assert!(rf.throughput_ops > 0.8 * rc.throughput_ops);
        // Half of F's ops are writes, so its read histogram holds ~50 %.
        let read_frac = rf.read_latency.count() as f64 / rf.latency.count() as f64;
        assert!((read_frac - 0.5).abs() < 0.05, "read fraction {read_frac}");
    }

    #[test]
    fn open_loop_latency_grows_with_offered_rate() {
        let mut s1 = mmem_store();
        let light = s1.run_open_loop(Workload::C, 100_000.0, 30_000);
        let mut s2 = mmem_store();
        let heavy = s2.run_open_loop(Workload::C, 1_200_000.0, 30_000);
        // Light load: sojourn ~ service time. Heavy (near capacity):
        // queueing inflates the tail sharply.
        assert!(
            heavy.latency.percentile(99.0) > 2 * light.latency.percentile(99.0),
            "light p99 {} heavy p99 {}",
            light.latency.percentile(99.0),
            heavy.latency.percentile(99.0)
        );
        // Delivered throughput tracks the offered rate under light load.
        assert!((light.throughput_ops - 100_000.0).abs() / 100_000.0 < 0.05);
    }

    #[test]
    fn open_loop_is_deterministic() {
        let a = mmem_store().run_open_loop(Workload::B, 200_000.0, 10_000);
        let b = mmem_store().run_open_loop(Workload::B, 200_000.0, 10_000);
        assert_eq!(a.latency.percentile(99.0), b.latency.percentile(99.0));
    }

    #[test]
    #[should_panic(expected = "invalid arrival rate")]
    fn open_loop_rejects_bad_rate() {
        mmem_store().run_open_loop(Workload::C, 0.0, 10);
    }

    fn ssd_store_with_policy(policy: EvictionPolicy) -> KvStore {
        let cfg = KvConfig {
            record_count: 50_000,
            eviction: policy,
            ..Default::default()
        };
        let bytes = cfg.record_count * cfg.value_size;
        let mut tc = TierConfig::bind(vec![DRAM0]);
        tc.capacity_override = vec![
            (DRAM0, (bytes as f64 * 0.6) as u64),
            (NodeId(1), 0),
            (CXL0, 0),
            (NodeId(3), 0),
        ];
        KvStore::new(&topo(), tc, cfg, true)
    }

    #[test]
    fn recency_aware_eviction_beats_random_on_zipfian() {
        // allkeys-lru-style CLOCK keeps the Zipfian hot set resident;
        // random eviction throws warm pages out.
        let runs = |p: EvictionPolicy| {
            let mut s = ssd_store_with_policy(p);
            s.run(Workload::C, 60_000);
            let r = s.run(Workload::C, 60_000);
            (r.throughput_ops, r.ssd_hits)
        };
        let (t_clock, h_clock) = runs(EvictionPolicy::Clock);
        let (t_rand, h_rand) = runs(EvictionPolicy::Random);
        assert!(
            h_rand > h_clock,
            "random hits {h_rand} <= clock hits {h_clock}"
        );
        assert!(t_clock > t_rand, "clock {t_clock} vs random {t_rand}");
    }

    #[test]
    fn lfu_competes_with_clock_on_skewed_keys() {
        let runs = |p: EvictionPolicy| {
            let mut s = ssd_store_with_policy(p);
            s.run(Workload::C, 60_000);
            s.run(Workload::C, 60_000).throughput_ops
        };
        let t_clock = runs(EvictionPolicy::Clock);
        let t_lfu = runs(EvictionPolicy::Lfu);
        // LFU should land in the same class as CLOCK (within 15 %).
        assert!(t_lfu > 0.85 * t_clock, "lfu {t_lfu} vs clock {t_clock}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = mmem_store().run(Workload::A, 20_000);
        let b = mmem_store().run(Workload::A, 20_000);
        assert_eq!(a.throughput_ops, b.throughput_ops);
        assert_eq!(a.latency.percentile(99.0), b.latency.percentile(99.0));
    }

    #[test]
    fn update_heavy_tail_above_read_only_tail() {
        let ra = mmem_store().run(Workload::A, OPS);
        let rc = mmem_store().run(Workload::C, OPS);
        // Same service structure, but A's histogram must include writes.
        assert!(ra.latency.count() == OPS && rc.latency.count() == OPS);
        assert!(ra.read_latency.count() < ra.latency.count());
        assert_eq!(rc.read_latency.count(), rc.latency.count());
    }

    #[test]
    fn survives_expander_failure_mid_run() {
        let mut s = interleaved_store(1, 1);
        let before = s.run(Workload::C, 20_000);
        assert!(
            s.tier().node_usage(CXL0).0 > 0,
            "no pages on CXL before fault"
        );

        // The expander dies: mark it offline and let the store react.
        let mut degraded = topo();
        degraded.cxl_device_mut(CXL0).unwrap().health.online = false;
        let report = s.fail_expander(&degraded, CXL0).unwrap();
        assert!(report.total_pages() > 0);
        assert_eq!(s.tier().node_usage(CXL0), (0, 0));
        assert_eq!(s.tier().stats().evacuations, 1);

        // The store keeps serving — every op completes, no panic — on
        // the surviving nodes only.
        let after = s.run(Workload::C, 20_000);
        assert_eq!(after.ops, 20_000);
        assert!(after.throughput_ops > 0.0);
        assert!(after.latency.mean().is_finite());
        for (loc, count) in s.residency() {
            if count > 0 {
                assert_ne!(loc, Location::Node(CXL0), "page still on failed node");
            }
        }
        // Dropping a tier is survivable, not free or catastrophic.
        let ratio = after.throughput_ops / before.throughput_ops;
        assert!(ratio > 0.5, "post-fault throughput collapsed: {ratio}");
    }

    #[test]
    fn latency_inflation_fault_reprices_accesses() {
        let mut s = interleaved_store(1, 1);
        let healthy = s.run(Workload::C, 20_000);

        // A marginal link retrains and the device doubles its load-to-use
        // latency; no pages move, only the pricing changes.
        let mut degraded = topo();
        degraded.cxl_device_mut(CXL0).unwrap().health.latency_factor = 3.0;
        s.apply_topology(&degraded);
        let slow = s.run(Workload::C, 20_000);
        assert_eq!(slow.ops, 20_000);
        assert!(
            slow.throughput_ops < healthy.throughput_ops,
            "inflated CXL latency did not slow the store: {} vs {}",
            slow.throughput_ops,
            healthy.throughput_ops
        );
    }

    #[test]
    fn service_request_is_deterministic_and_monotone() {
        let mut a = mmem_store();
        let mut b = mmem_store();
        let mut t = SimTime::ZERO;
        for i in 0..500u64 {
            t += SimTime::from_us(50);
            let sa = a.service_request(t, Workload::A, 4);
            let sb = b.service_request(t, Workload::A, 4);
            assert_eq!(sa, sb, "request {i} diverged");
            assert!(sa > SimTime::ZERO);
        }
        // The tiering clock never ran backwards and tracked dispatch.
        assert!(a.tier().stats().promotions == b.tier().stats().promotions);
    }

    #[test]
    fn service_request_continues_one_stream() {
        // 100 requests of 10 ops each must walk the same deterministic
        // op stream as one session: epoch refreshes land on the same op
        // counts, so tier activity matches a single long-lived session
        // rather than 100 fresh generators replaying the same hot keys.
        let mut split = ssd_store(0.8);
        let mut total = SimTime::ZERO;
        for i in 0..100u64 {
            total += split.service_request(SimTime::from_us(i * 100), Workload::C, 10);
        }
        assert!(total > SimTime::ZERO);
        // Switching workloads opens a new session instead of continuing
        // the old trace.
        let before = split.tier().stats().clone();
        split.service_request(SimTime::from_ms(100), Workload::A, 10);
        let _ = before;
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn service_request_rejects_empty_request() {
        mmem_store().service_request(SimTime::ZERO, Workload::C, 0);
    }
}
