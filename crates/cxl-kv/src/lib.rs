#![warn(missing_docs)]

//! A KeyDB-like key-value store over tiered memory (§4.1).
//!
//! KeyDB extends Redis with multiple server threads running the event
//! loop and a FLASH mode that spills data to disk (RocksDB in the real
//! system). This simulation keeps the pieces that matter for the paper's
//! capacity study:
//!
//! * a page-backed value heap placed by a [`cxl_tier::TierManager`]
//!   (bind / N:M interleave / hot-promote policies from Table 1),
//! * a `maxmemory` limit with LRU (CLOCK second-chance) caching of hot
//!   pages in memory and cold pages on SSD (the `MMEM-SSD-x` configs),
//! * a closed-loop YCSB client and a multi-threaded server modeled on
//!   the `cxl-sim` virtual clock,
//! * per-operation service times combining a CPU component with
//!   dependent memory accesses priced by the `cxl-perf` model under the
//!   measured traffic (so bandwidth contention and migration churn feed
//!   back into op latency).

pub mod store;

pub use store::{EvictionPolicy, KvConfig, KvStore, MemProfile, RunResult};
