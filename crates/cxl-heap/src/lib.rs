#![warn(missing_docs)]

//! Deterministic managed-runtime heap workload over tiered memory.
//!
//! A reproduction-side stand-in for the garbage-collected services
//! (KeyDB-like caches, JVM/Go backends) the paper places on ASIC CXL
//! expanders: most of a managed heap is cold tenured data that tiering
//! happily parks in far memory — until the collector's trace phase
//! sweeps *every* live page in a tight window. To a recency-based
//! hot-page policy that sweep is indistinguishable from a working-set
//! shift, so it answers with a **promotion storm** that evicts the
//! mutator's genuinely hot pages and burns migration bandwidth right
//! when the runtime is paused.
//!
//! The crate has two layers:
//!
//! - [`graph`]: pure, seeded object-graph generation — sized object
//!   classes bump-allocated region-by-region onto pages, a spanning
//!   edge per object guaranteeing full reachability, fan-in skew, and
//!   old→young pointers.
//! - [`workload`]: the phase machine driven as `cxl-sim` events — a
//!   pointer-chasing mutator with nursery allocation churn, a
//!   stop-the-world BFS trace per GC cycle, epoch repricing through
//!   `cxl-perf`, and an optional mid-trace expander failure.
//!
//! Everything is bit-deterministic in the seed; runs under a parallel
//! study runner must produce identical reports at any job count.

pub mod graph;
pub mod workload;

pub use graph::{GraphConfig, ObjectClass, ObjectGraph};
pub use workload::{FaultPlan, HeapParams, HeapReport, HeapWorkload};
