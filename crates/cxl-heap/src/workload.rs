//! The heap workload proper: mutator pointer-chasing with nursery
//! churn, stop-the-world GC trace phases, and epoch-based pricing of
//! every page touch through `cxl-perf` — all driven as `cxl-sim`
//! events.
//!
//! The interesting dynamics are the **promotion storms**: a GC trace
//! sweeps every live page — including the cold tail — twice or more in
//! a short window (field scan plus mark-bit checks from every
//! referrer), which a recency-based hot-page policy cannot distinguish
//! from genuine reuse. The storm both burns the promotion budget and
//! evicts the mutator's resident hot set from DRAM, so the damage
//! shows up in *mutator* tail latency after the trace, not just in the
//! trace itself.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::Rng;
use serde::Serialize;

use cxl_perf::{AccessMix, MemSystem, ResourceKind};
use cxl_sim::{Engine, SimTime};
use cxl_stats::Histogram;
use cxl_tier::{EvacuationReport, Location, PageId, Rw, TierConfig, TierManager};
use cxl_topology::{MemoryTier, NodeId, Topology};

use crate::graph::{GraphConfig, ObjectGraph};

/// Sizing and pacing knobs of one heap run.
#[derive(Debug, Clone, Serialize)]
pub struct HeapParams {
    /// Heap shape.
    pub graph: GraphConfig,
    /// Root seed (graph and mutator streams derive from it).
    pub seed: u64,
    /// Stop-the-world GC traces to run; mutator phases run between
    /// them and once more after the last (so `0` is a no-GC control).
    pub gc_cycles: u32,
    /// Mutator operations (pointer chases) per mutator phase.
    pub mutator_ops_per_cycle: u64,
    /// Pointer dereferences per mutator operation.
    pub chase_len: u32,
    /// Probability a chased object is also written.
    pub write_fraction: f64,
    /// Fraction of the heap (low ids, which fan-in also favours)
    /// forming the mutator's hot set.
    pub hot_fraction: f64,
    /// Probability a chase starts in the hot set.
    pub hot_bias: f64,
    /// A nursery page is allocated (and the oldest freed beyond the
    /// window) every this many mutator ops.
    pub alloc_every_ops: u64,
    /// Live nursery pages kept before the oldest is freed.
    pub nursery_pages: u64,
    /// Touches between epoch repricings (flow solve + tier tick).
    pub epoch_ops: u64,
    /// Fixed CPU cost per mutator op, ns.
    pub cpu_ns_per_op: f64,
    /// Stall charged to an access whose hint fault promotes the page —
    /// the migrate-on-fault cost the faulting thread pays in the
    /// kernel (page copy, PTE swap, TLB shootdown). This is what makes
    /// a promotion storm visible in the *victim phase's* tail.
    pub promote_stall_ns: f64,
    /// CPU cost per traced object (header decode + ref enumeration), ns.
    pub trace_cpu_ns_per_obj: f64,
    /// Bytes touched per object field read.
    pub field_bytes: u64,
    /// Mutator ops executed per engine event.
    pub mutator_chunk: u64,
    /// Objects traced per engine event.
    pub trace_chunk: u32,
}

impl Default for HeapParams {
    fn default() -> Self {
        Self {
            graph: GraphConfig::default(),
            seed: 42,
            gc_cycles: 3,
            mutator_ops_per_cycle: 60_000,
            chase_len: 8,
            write_fraction: 0.2,
            hot_fraction: 0.05,
            hot_bias: 0.8,
            alloc_every_ops: 64,
            nursery_pages: 64,
            epoch_ops: 4_000,
            cpu_ns_per_op: 120.0,
            promote_stall_ns: 8_000.0,
            trace_cpu_ns_per_obj: 40.0,
            field_bytes: 64,
            mutator_chunk: 512,
            trace_chunk: 1_024,
        }
    }
}

impl HeapParams {
    /// A fast variant for tests.
    pub fn smoke() -> Self {
        Self {
            graph: GraphConfig {
                old_objects: 12_000,
                young_objects: 1_500,
                ..GraphConfig::default()
            },
            gc_cycles: 2,
            mutator_ops_per_cycle: 15_000,
            ..Self::default()
        }
    }
}

/// A mid-trace expander failure: during GC cycle `cycle`, once the
/// trace has visited `at_progress` of the heap, `node` goes offline
/// and its pages evacuate under the promotion rate limiter.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FaultPlan {
    /// GC cycle (0-based) the fault lands in.
    pub cycle: u32,
    /// Trace progress fraction (of objects visited) at the trigger.
    pub at_progress: f64,
    /// The failing node.
    pub node: NodeId,
}

/// What one run measured.
#[derive(Debug, Clone, Serialize)]
pub struct HeapReport {
    /// Per-op mutator latency, ns — all mutator phases.
    pub mutator: Histogram,
    /// Per-op mutator latency in phases *after* the first GC trace
    /// (where storm damage to the resident hot set shows up).
    pub mutator_post_gc: Histogram,
    /// Per-object trace cost, ns.
    pub trace: Histogram,
    /// Pages promoted during trace phases (the storm, in pages).
    pub trace_promotions: u64,
    /// Pages demoted during trace phases (hot-set eviction collateral).
    pub trace_demotions: u64,
    /// Pages promoted during mutator phases.
    pub mutator_promotions: u64,
    /// Far-memory (CXL or SSD) touches during trace phases.
    pub trace_far_touches: u64,
    /// All touches during trace phases.
    pub trace_touches: u64,
    /// Far-memory touches during mutator phases.
    pub mutator_far_touches: u64,
    /// All touches during mutator phases.
    pub mutator_touches: u64,
    /// Total virtual time spent tracing, ns.
    pub trace_duration_ns: u64,
    /// Objects visited across all traces.
    pub objects_traced: u64,
    /// GC cycles completed.
    pub gc_cycles: u32,
    /// Nursery pages allocated / freed (allocation churn volume).
    pub nursery_allocated: u64,
    /// Nursery pages freed.
    pub nursery_freed: u64,
    /// The evacuation report, when a fault plan fired.
    pub evacuation: Option<EvacuationReport>,
    /// Pages still resident on the failed node at run end (must be 0).
    pub stranded_pages: u64,
    /// Final tier-manager counters.
    pub tier: cxl_tier::TierStats,
    /// Virtual run duration.
    pub elapsed: SimTime,
}

impl HeapReport {
    /// Far-touch fraction of the trace phases.
    pub fn trace_far_fraction(&self) -> f64 {
        if self.trace_touches == 0 {
            0.0
        } else {
            self.trace_far_touches as f64 / self.trace_touches as f64
        }
    }

    /// Promotion-storm magnitude: trace-phase promotions per traced
    /// object. A recency policy misreading the sweep promotes a large
    /// fraction of the cold tail; a storm-aware one keeps this near 0.
    pub fn storm_magnitude(&self) -> f64 {
        if self.objects_traced == 0 {
            0.0
        } else {
            self.trace_promotions as f64 / self.objects_traced as f64
        }
    }
}

#[derive(Debug)]
struct TraceState {
    queue: VecDeque<u32>,
    visited: Vec<bool>,
    visited_count: u32,
    started_at: SimTime,
}

enum Phase {
    Mutator { remaining: u64, post_gc: bool },
    Trace(TraceState),
    Done,
}

/// The workload: a tiered heap plus the phase state machine the engine
/// pumps.
pub struct HeapWorkload {
    sys: MemSystem,
    tm: TierManager,
    graph: ObjectGraph,
    /// Graph page index → tier page.
    pages: Vec<PageId>,
    nursery: VecDeque<PageId>,
    params: HeapParams,
    segregate: bool,
    fault: Option<FaultPlan>,
    base_topo: Topology,
    /// True once per-node: is this a top-tier (DRAM) node.
    is_top: Vec<bool>,
    lat_ns: Vec<f64>,
    now: SimTime,
    epoch_start: SimTime,
    ops_since_epoch: u64,
    rng: SmallRng,
    cycle: u32,
    phase: Phase,
    // Accumulators for the report.
    mutator_hist: Histogram,
    mutator_post_hist: Histogram,
    trace_hist: Histogram,
    trace_promotions: u64,
    trace_demotions: u64,
    mutator_promotions: u64,
    trace_far: u64,
    trace_touches: u64,
    mutator_far: u64,
    mutator_touches: u64,
    trace_duration: SimTime,
    objects_traced: u64,
    nursery_allocated: u64,
    nursery_freed: u64,
    evacuation: Option<EvacuationReport>,
    /// Stats snapshot at the current phase's start, for deltas.
    phase_promotions_start: u64,
    phase_demotions_start: u64,
}

impl HeapWorkload {
    /// Builds the heap: generates the object graph and places its
    /// pages through the tier manager.
    ///
    /// With `segregate`, old-generation pages prefer the slowest
    /// (non-top-tier) node on the accessor socket and young/nursery
    /// pages prefer DRAM — the placement a generational runtime that
    /// knows its tenured region is cold would pick. Without it, every
    /// page follows `tier.policy`.
    ///
    /// # Panics
    ///
    /// Panics if the heap does not fit the configured capacities.
    pub fn new(
        topo: &Topology,
        tier: TierConfig,
        params: HeapParams,
        segregate: bool,
        fault: Option<FaultPlan>,
    ) -> Self {
        let page_size = tier.page_size;
        let graph = ObjectGraph::build(&params.graph, page_size, params.seed);
        let sys = MemSystem::new(topo);
        let mut tm = TierManager::new(topo, tier);
        let socket = sys.sockets()[0];
        let old_node = sys
            .nodes()
            .iter()
            .find(|n| n.socket == socket && n.tier == MemoryTier::CxlExpander)
            .map(|n| n.id);
        let young_node = sys
            .nodes()
            .iter()
            .find(|n| n.socket == socket && n.tier == MemoryTier::LocalDram)
            .map(|n| n.id);
        let young_page_start = graph.first_page[graph.young_start as usize];
        let pages: Vec<PageId> = (0..graph.page_count)
            .map(|p| {
                let prefer = if !segregate {
                    None
                } else if p >= young_page_start {
                    young_node
                } else {
                    old_node
                };
                match prefer {
                    Some(n) => tm
                        .alloc_preferring(n, SimTime::ZERO)
                        .expect("heap does not fit the configured capacities"),
                    None => tm
                        .alloc(SimTime::ZERO)
                        .expect("heap does not fit the configured capacities"),
                }
            })
            .collect();
        tm.drain_epoch(); // Discard load-phase traffic.
        let is_top = sys
            .nodes()
            .iter()
            .map(|n| n.tier == MemoryTier::LocalDram)
            .collect();
        let lat_ns = Self::idle_latency_table(&sys);
        let rng_seed = cxl_stats::rng::derive_seed(params.seed, "heap/mutator");
        let mutator_ops = params.mutator_ops_per_cycle;
        Self {
            sys,
            tm,
            graph,
            pages,
            nursery: VecDeque::new(),
            params,
            segregate,
            fault,
            base_topo: topo.clone(),
            is_top,
            lat_ns,
            now: SimTime::ZERO,
            epoch_start: SimTime::ZERO,
            ops_since_epoch: 0,
            rng: {
                use rand::SeedableRng;
                SmallRng::seed_from_u64(rng_seed)
            },
            cycle: 0,
            phase: Phase::Mutator {
                remaining: mutator_ops,
                post_gc: false,
            },
            mutator_hist: Histogram::new(),
            mutator_post_hist: Histogram::new(),
            trace_hist: Histogram::new(),
            trace_promotions: 0,
            trace_demotions: 0,
            mutator_promotions: 0,
            trace_far: 0,
            trace_touches: 0,
            mutator_far: 0,
            mutator_touches: 0,
            trace_duration: SimTime::ZERO,
            objects_traced: 0,
            nursery_allocated: 0,
            nursery_freed: 0,
            evacuation: None,
            phase_promotions_start: 0,
            phase_demotions_start: 0,
        }
    }

    fn idle_latency_table(sys: &MemSystem) -> Vec<f64> {
        sys.nodes()
            .iter()
            .map(|n| {
                sys.try_idle_latency_ns(sys.sockets()[0], n.id, AccessMix::read_only())
                    .unwrap_or(f64::INFINITY)
            })
            .collect()
    }

    /// The tier manager (inspection in tests and reports).
    pub fn tier(&self) -> &TierManager {
        &self.tm
    }

    /// Touches one page, pricing the access at the current epoch
    /// latencies; `far` reports whether it landed off the top tier.
    fn touch(&mut self, page: PageId, rw: Rw, bytes: u64, far: &mut bool) -> f64 {
        let outcome = self.tm.touch(page, rw, bytes, self.now);
        let mut ns = outcome.fault_cost.as_ns() as f64;
        if outcome.promoted {
            ns += self.params.promote_stall_ns;
        }
        match outcome.location {
            Location::Node(node) => {
                ns += self.lat_ns[node.0];
                *far |= !self.is_top[node.0];
            }
            Location::Ssd => {
                ns += cxl_perf::calib::SSD_READ_LATENCY_NS;
                *far = true;
            }
        }
        ns
    }

    /// Runs one mutator operation: a pointer chase from a (biased)
    /// start object, with occasional field writes and nursery churn.
    /// Returns its service time in ns.
    fn mutator_op(&mut self, op_index: u64) -> f64 {
        let n = self.graph.object_count();
        let hot_n = ((n as f64 * self.params.hot_fraction) as u32).max(1);
        let mut cur = if self.rng.gen_bool(self.params.hot_bias) {
            self.rng.gen_range(0..hot_n)
        } else {
            self.rng.gen_range(0..n)
        };
        let mut ns = self.params.cpu_ns_per_op;
        let mut far = false;
        let mut touches = 0u64;
        for _ in 0..self.params.chase_len {
            let page = self.pages[self.graph.first_page[cur as usize] as usize];
            let rw = if self.rng.gen_bool(self.params.write_fraction) {
                Rw::Write
            } else {
                Rw::Read
            };
            ns += self.touch(page, rw, self.params.field_bytes, &mut far);
            touches += 1;
            let edges = self.graph.out_edges(cur);
            if edges.is_empty() {
                break;
            }
            cur = edges[self.rng.gen_range(0..edges.len())];
        }
        // Bump-pointer allocation writes into the newest nursery page.
        if let Some(&newest) = self.nursery.back() {
            ns += self.touch(newest, Rw::Write, self.params.field_bytes, &mut far);
            touches += 1;
        }
        if self.params.alloc_every_ops > 0 && op_index.is_multiple_of(self.params.alloc_every_ops) {
            let page = if self.segregate {
                let socket = self.sys.sockets()[0];
                let young = self
                    .sys
                    .nodes()
                    .iter()
                    .find(|nd| nd.socket == socket && nd.tier == MemoryTier::LocalDram)
                    .map(|nd| nd.id);
                match young {
                    Some(nd) => self.tm.alloc_preferring(nd, self.now).ok(),
                    None => self.tm.alloc(self.now).ok(),
                }
            } else {
                self.tm.alloc(self.now).ok()
            };
            if let Some(p) = page {
                self.nursery_allocated += 1;
                ns += self.touch(p, Rw::Write, self.tm.page_size(), &mut far);
                touches += 1;
                self.nursery.push_back(p);
                if self.nursery.len() as u64 > self.params.nursery_pages {
                    let dead = self.nursery.pop_front().expect("nursery non-empty");
                    self.tm.free(dead);
                    self.nursery_freed += 1;
                }
            }
        }
        if far {
            self.mutator_far += 1;
        }
        self.mutator_touches += touches;
        ns
    }

    /// Visits one object in the BFS trace: scan its fields, check the
    /// mark bit of every referent, mark (write) newly discovered ones.
    /// Returns the visit's service time in ns.
    fn trace_visit(&mut self, id: u32, ts: &mut TraceState) -> f64 {
        let mut ns = self.params.trace_cpu_ns_per_obj;
        let mut far = false;
        let mut touches = 1u64;
        let page = self.pages[self.graph.first_page[id as usize] as usize];
        ns += self.touch(page, Rw::Read, self.params.field_bytes, &mut far);
        let start = self.graph.edge_index[id as usize] as usize;
        let end = self.graph.edge_index[id as usize + 1] as usize;
        for ei in start..end {
            let t = self.graph.edges[ei];
            let tpage = self.pages[self.graph.first_page[t as usize] as usize];
            // Mark-bit check: a header read on the referent.
            ns += self.touch(tpage, Rw::Read, 8, &mut far);
            touches += 1;
            if !ts.visited[t as usize] {
                ts.visited[t as usize] = true;
                ts.visited_count += 1;
                ts.queue.push_back(t);
                // Set the mark bit.
                ns += self.touch(tpage, Rw::Write, 8, &mut far);
                touches += 1;
            }
        }
        if far {
            self.trace_far += 1;
            cxl_obs::counter_add("heap/trace_far_objects", 1);
        }
        self.trace_touches += touches;
        ns
    }

    /// Repricing: drain the traffic epoch, solve for per-node
    /// latencies, feed DRAM utilization back, and run tier periodic
    /// work. Mirrors the KV store's epoch loop.
    fn refresh_epoch(&mut self) {
        let dur = self.now.saturating_sub(self.epoch_start);
        let epoch = self.tm.drain_epoch();
        if dur > SimTime::ZERO {
            let mut flows = epoch.flows(self.sys.sockets()[0], dur, false);
            flows.retain(|f| self.sys.node_online(f.node));
            if !flows.is_empty() {
                let res = self.sys.solve(&flows);
                for (f, o) in flows.iter().zip(res.flows.iter()) {
                    self.lat_ns[f.node.0] = o.latency_ns;
                }
                let socket = self.sys.sockets()[0];
                if let Some(dram) = self
                    .sys
                    .nodes()
                    .iter()
                    .find(|n| n.socket == socket && n.tier == MemoryTier::LocalDram)
                {
                    self.tm.set_dram_bandwidth_util(
                        res.utilization_of(ResourceKind::DdrGroup(dram.id)),
                    );
                }
            }
        }
        self.tm.tick(self.now);
        self.epoch_start = self.now;
        self.ops_since_epoch = 0;
    }

    fn maybe_refresh(&mut self) {
        if self.ops_since_epoch >= self.params.epoch_ops {
            self.refresh_epoch();
        }
    }

    /// The mid-trace expander failure: fence and drain the node, then
    /// reprice on the degraded topology.
    fn fire_fault(&mut self, plan: FaultPlan) {
        let mut degraded = self.base_topo.clone();
        cxl_fault::FaultKind::ExpanderOffline { node: plan.node }
            .apply(&mut degraded)
            .expect("fault plan references a CXL node");
        let report = self
            .tm
            .evacuate(plan.node, self.now)
            .expect("evacuation succeeds (survivors or SSD must have room)");
        self.now = self.now.max(report.completed_at);
        self.sys = MemSystem::new(&degraded);
        self.lat_ns = Self::idle_latency_table(&self.sys);
        self.evacuation = Some(report);
        cxl_obs::counter_add("heap/fault_evacuated_pages", report.total_pages());
        self.refresh_epoch();
    }

    fn snapshot_phase_start(&mut self) {
        self.phase_promotions_start = self.tm.stats().promotions;
        self.phase_demotions_start = self.tm.stats().demotions;
    }

    fn start_trace(&mut self) {
        self.snapshot_phase_start();
        let n = self.graph.object_count() as usize;
        let mut ts = TraceState {
            queue: VecDeque::new(),
            visited: vec![false; n],
            visited_count: 0,
            started_at: self.now,
        };
        let mut ns = 0.0;
        let mut far = false;
        for r in 0..self.graph.roots {
            if !ts.visited[r as usize] {
                ts.visited[r as usize] = true;
                ts.visited_count += 1;
                ts.queue.push_back(r);
                let page = self.pages[self.graph.first_page[r as usize] as usize];
                ns += self.touch(page, Rw::Write, 8, &mut far);
            }
        }
        // Live nursery pages are scanned once up front (they are the
        // remembered set's young side).
        let nursery: Vec<PageId> = self.nursery.iter().copied().collect();
        for p in nursery {
            ns += self.touch(p, Rw::Read, self.tm.page_size(), &mut far);
        }
        self.now += SimTime::from_ns_f64(ns);
        self.phase = Phase::Trace(ts);
    }

    /// Ends the current phase, folding its promotion/demotion deltas
    /// into the right accumulator.
    fn end_phase(&mut self, was_trace: bool) {
        let promos = self.tm.stats().promotions - self.phase_promotions_start;
        let demos = self.tm.stats().demotions - self.phase_demotions_start;
        if was_trace {
            self.trace_promotions += promos;
            self.trace_demotions += demos;
            cxl_obs::counter_add("heap/trace_promotions", promos);
            cxl_obs::counter_add("heap/trace_demotions", demos);
        } else {
            self.mutator_promotions += promos;
        }
    }

    /// Executes one chunk of the current phase. Returns `false` when
    /// the workload is done.
    fn pump_chunk(&mut self) -> bool {
        match std::mem::replace(&mut self.phase, Phase::Done) {
            Phase::Mutator {
                mut remaining,
                post_gc,
            } => {
                let batch = remaining.min(self.params.mutator_chunk);
                let done_before = self.params.mutator_ops_per_cycle - remaining;
                for i in 0..batch {
                    let ns = self.mutator_op(done_before + i);
                    self.now += SimTime::from_ns_f64(ns);
                    let v = ns as u64;
                    self.mutator_hist.record(v);
                    if post_gc {
                        self.mutator_post_hist.record(v);
                    }
                    if cxl_obs::active() {
                        cxl_obs::record("heap/mutator_op_ns", v);
                    }
                    self.ops_since_epoch += 1;
                }
                cxl_obs::counter_add("heap/mutator_ops", batch);
                remaining -= batch;
                self.maybe_refresh();
                if remaining > 0 {
                    self.phase = Phase::Mutator { remaining, post_gc };
                } else if self.cycle < self.params.gc_cycles {
                    self.end_phase(false);
                    self.start_trace();
                } else {
                    self.end_phase(false);
                    return false;
                }
                true
            }
            Phase::Trace(mut ts) => {
                let mut visited_this_chunk = 0u32;
                while visited_this_chunk < self.params.trace_chunk {
                    let Some(id) = ts.queue.pop_front() else {
                        break;
                    };
                    let ns = self.trace_visit(id, &mut ts);
                    self.now += SimTime::from_ns_f64(ns);
                    let v = ns as u64;
                    self.trace_hist.record(v);
                    if cxl_obs::active() {
                        cxl_obs::record("heap/trace_obj_ns", v);
                    }
                    self.objects_traced += 1;
                    self.ops_since_epoch += 1;
                    visited_this_chunk += 1;
                    if let Some(plan) = self.fault {
                        if plan.cycle == self.cycle
                            && ts.visited_count as f64
                                >= plan.at_progress * self.graph.object_count() as f64
                        {
                            self.fault = None;
                            self.fire_fault(plan);
                        }
                    }
                }
                cxl_obs::counter_add("heap/objects_traced", visited_this_chunk as u64);
                self.maybe_refresh();
                if ts.queue.is_empty() {
                    self.trace_duration += self.now.saturating_sub(ts.started_at);
                    self.end_phase(true);
                    self.cycle += 1;
                    self.snapshot_phase_start();
                    self.phase = Phase::Mutator {
                        remaining: self.params.mutator_ops_per_cycle,
                        post_gc: true,
                    };
                    cxl_obs::counter_add("heap/gc_cycles", 1);
                } else {
                    self.phase = Phase::Trace(ts);
                }
                true
            }
            Phase::Done => false,
        }
    }

    /// Drives the workload to completion on a fresh event engine and
    /// returns the report.
    pub fn run(mut self) -> HeapReport {
        self.snapshot_phase_start();
        let mut engine = Engine::new(self);
        fn pump(e: &mut Engine<HeapWorkload>) {
            if e.state_mut().pump_chunk() {
                let at = e.state().now.max(e.now());
                e.schedule_at(at, pump);
            }
        }
        engine.schedule_at(SimTime::ZERO, pump);
        engine.run();
        let w = engine.into_state();

        let failed_node = w.evacuation.map(|r| r.node);
        let stranded = match failed_node {
            None => 0,
            Some(node) => w
                .pages
                .iter()
                .chain(w.nursery.iter())
                .filter(|&&p| w.tm.location(p) == Location::Node(node))
                .count() as u64,
        };
        cxl_obs::counter_max("heap/stranded_pages", stranded);

        HeapReport {
            mutator: w.mutator_hist,
            mutator_post_gc: w.mutator_post_hist,
            trace: w.trace_hist,
            trace_promotions: w.trace_promotions,
            trace_demotions: w.trace_demotions,
            mutator_promotions: w.mutator_promotions,
            trace_far_touches: w.trace_far,
            trace_touches: w.trace_touches,
            mutator_far_touches: w.mutator_far,
            mutator_touches: w.mutator_touches,
            trace_duration_ns: w.trace_duration.as_ns(),
            objects_traced: w.objects_traced,
            gc_cycles: w.cycle,
            nursery_allocated: w.nursery_allocated,
            nursery_freed: w.nursery_freed,
            evacuation: w.evacuation,
            stranded_pages: stranded,
            tier: w.tm.stats().clone(),
            elapsed: w.now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_tier::AllocPolicy;
    use cxl_topology::SncMode;

    const DRAM0: NodeId = NodeId(0);
    const CXL0: NodeId = NodeId(2);

    fn lean_tier(page_size: u64, heap_pages: u64) -> TierConfig {
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.policy = AllocPolicy::interleave(vec![DRAM0], vec![CXL0], 1, 3);
        cfg.capacity_override = vec![
            (DRAM0, heap_pages / 2 * page_size),
            (NodeId(1), 0),
            (CXL0, 2 * heap_pages * page_size),
            (NodeId(3), 0),
        ];
        cfg.allow_ssd_spill = true;
        cfg
    }

    fn smoke_workload(segregate: bool, fault: Option<FaultPlan>) -> HeapWorkload {
        let topo = Topology::paper_testbed(SncMode::Disabled);
        let params = HeapParams::smoke();
        let g = ObjectGraph::build(&params.graph, 4096, params.seed);
        let tier = lean_tier(4096, g.page_count as u64 + params.nursery_pages + 8);
        HeapWorkload::new(&topo, tier, params, segregate, fault)
    }

    #[test]
    fn smoke_run_completes_and_traces_everything() {
        let r = smoke_workload(false, None).run();
        let p = HeapParams::smoke();
        assert_eq!(r.gc_cycles, p.gc_cycles);
        assert_eq!(
            r.objects_traced,
            p.gc_cycles as u64 * p.graph.object_count() as u64,
            "every live object is traced each cycle"
        );
        assert_eq!(
            r.mutator.count(),
            (p.gc_cycles as u64 + 1) * p.mutator_ops_per_cycle
        );
        assert!(r.elapsed > SimTime::ZERO);
        assert!(r.nursery_allocated > r.nursery_freed);
    }

    #[test]
    fn runs_are_bit_identical() {
        let a = smoke_workload(false, None).run();
        let b = smoke_workload(false, None).run();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn segregation_changes_placement_not_determinism() {
        let a = smoke_workload(true, None).run();
        let b = smoke_workload(true, None).run();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn mid_trace_fault_strands_nothing() {
        let plan = FaultPlan {
            cycle: 1,
            at_progress: 0.5,
            node: CXL0,
        };
        let r = smoke_workload(false, Some(plan)).run();
        let ev = r.evacuation.expect("fault fired");
        assert_eq!(ev.node, CXL0);
        assert!(ev.total_pages() > 0);
        assert_eq!(r.stranded_pages, 0, "no page may stay on the dead node");
        assert_eq!(r.gc_cycles, HeapParams::smoke().gc_cycles);
    }

    #[test]
    fn no_gc_control_never_traces() {
        let topo = Topology::paper_testbed(SncMode::Disabled);
        let mut params = HeapParams::smoke();
        params.gc_cycles = 0;
        let g = ObjectGraph::build(&params.graph, 4096, params.seed);
        let tier = lean_tier(4096, g.page_count as u64 + params.nursery_pages + 8);
        let r = HeapWorkload::new(&topo, tier, params, false, None).run();
        assert_eq!(r.objects_traced, 0);
        assert_eq!(r.trace.count(), 0);
        assert_eq!(r.trace_promotions, 0);
    }
}
