//! Seeded object-graph generation: sized object classes packed
//! region-by-region onto pages, plus a pointer structure with
//! configurable out-degree, fan-in skew, and old→young edges.
//!
//! The graph is pure data — no tier manager involved — so generation
//! determinism can be tested in isolation. [`ObjectGraph::build`] is a
//! pure function of `(config, page_size, seed)`; the workload layer
//! maps the graph's dense page indices onto `cxl-tier` pages in index
//! order, preserving the clustering.

use rand::rngs::SmallRng;
use rand::Rng;
use serde::Serialize;

/// One object size class with a selection weight (a coarse stand-in
/// for a runtime's size-class histogram).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ObjectClass {
    /// Object size in bytes (header + fields).
    pub size_bytes: u32,
    /// Relative selection weight.
    pub weight: u32,
}

/// Shape of the generated heap.
#[derive(Debug, Clone, Serialize)]
pub struct GraphConfig {
    /// Objects in the old (tenured) generation, allocated first.
    pub old_objects: u32,
    /// Surviving young-generation objects, allocated after the old
    /// region (the nursery churn on top of these is the workload
    /// layer's job).
    pub young_objects: u32,
    /// Size classes; must be non-empty with positive weights.
    pub classes: Vec<ObjectClass>,
    /// Mean extra out-edges per object on top of the spanning edge
    /// that keeps every object reachable (degree is drawn uniformly
    /// from `0..=2*mean`).
    pub mean_out_degree: f64,
    /// Objects per allocation region; in-region edges model the
    /// locality of objects allocated together.
    pub region_objects: u32,
    /// Fraction of extra edges that stay inside the source's region.
    pub cluster_locality: f64,
    /// Fraction of old objects' non-local edges that cross into the
    /// young generation (remembered-set pressure).
    pub old_to_young_fraction: f64,
    /// GC roots: the first `root_count` old objects.
    pub root_count: u32,
}

impl Default for GraphConfig {
    fn default() -> Self {
        Self {
            old_objects: 60_000,
            young_objects: 6_000,
            classes: vec![
                // Small/medium/large split loosely after managed-heap
                // size-class surveys: mostly small objects, a thin
                // tail of kilobyte-scale arrays.
                ObjectClass {
                    size_bytes: 32,
                    weight: 12,
                },
                ObjectClass {
                    size_bytes: 256,
                    weight: 6,
                },
                ObjectClass {
                    size_bytes: 2048,
                    weight: 1,
                },
            ],
            mean_out_degree: 2.0,
            region_objects: 512,
            cluster_locality: 0.6,
            old_to_young_fraction: 0.15,
            root_count: 64,
        }
    }
}

impl GraphConfig {
    /// Total objects (old + young survivors).
    pub fn object_count(&self) -> u32 {
        self.old_objects + self.young_objects
    }

    /// Panics on an unusable configuration (empty generations or
    /// classes, zero-sized regions, fractions outside `[0, 1]`).
    pub fn validate(&self) {
        assert!(self.old_objects > 0, "old generation is empty");
        assert!(!self.classes.is_empty(), "no object classes");
        assert!(
            self.classes
                .iter()
                .all(|c| c.size_bytes > 0 && c.weight > 0),
            "classes need positive sizes and weights"
        );
        assert!(self.region_objects > 0, "region_objects must be nonzero");
        assert!(
            (0.0..=1.0).contains(&self.cluster_locality)
                && (0.0..=1.0).contains(&self.old_to_young_fraction),
            "edge fractions must lie in [0, 1]"
        );
        assert!(
            self.root_count > 0 && self.root_count <= self.old_objects,
            "roots must be a non-empty prefix of the old generation"
        );
        assert!(self.mean_out_degree >= 0.0);
    }
}

/// The generated heap: per-object placement plus a CSR adjacency.
#[derive(Debug, Clone, Serialize)]
pub struct ObjectGraph {
    /// Page index (dense, from 0) holding each object's header.
    pub first_page: Vec<u32>,
    /// CSR row offsets into `edges`; length `object_count + 1`.
    pub edge_index: Vec<u32>,
    /// Flat out-edge targets.
    pub edges: Vec<u32>,
    /// Ids at or above this are young-generation objects.
    pub young_start: u32,
    /// Pages the heap spans.
    pub page_count: u32,
    /// Total object bytes.
    pub total_bytes: u64,
    /// GC roots: ids `0..roots`.
    pub roots: u32,
}

/// Draws a target id in `0..n` with quadratic skew toward low ids, so
/// a small set of objects accumulates most of the fan-in (the shared
/// interned/cache objects whose mark-bit checks a trace repeats).
fn skewed_target(rng: &mut SmallRng, n: u32) -> u32 {
    let r: f64 = rng.gen();
    ((r * r * n as f64) as u32).min(n - 1)
}

impl ObjectGraph {
    /// Generates a heap. Pure in `(cfg, page_size, seed)`.
    ///
    /// Every object is reachable from the roots: object `i > 0` gets a
    /// spanning edge from an earlier object in its neighbourhood (its
    /// allocator, in runtime terms), so the trace's cold tail is the
    /// whole heap, not a lucky subset.
    pub fn build(cfg: &GraphConfig, page_size: u64, seed: u64) -> Self {
        cfg.validate();
        let n = cfg.object_count();
        let mut rng = cxl_stats::rng::stream_rng(seed, "heap/graph");
        let weight_sum: u64 = cfg.classes.iter().map(|c| c.weight as u64).sum();

        // Bump-allocate objects in id order; an object is attributed to
        // the page holding its header (field reads land there — the
        // cache-line-granular tail of large objects is second-order for
        // page-level tiering).
        let mut first_page = Vec::with_capacity(n as usize);
        let mut offset = 0u64;
        for _ in 0..n {
            let mut pick = rng.gen_range(0..weight_sum);
            let mut size = cfg.classes[0].size_bytes;
            for c in &cfg.classes {
                if pick < c.weight as u64 {
                    size = c.size_bytes;
                    break;
                }
                pick -= c.weight as u64;
            }
            first_page.push((offset / page_size) as u32);
            offset += size as u64;
        }
        let page_count = offset.div_ceil(page_size) as u32;

        // Edge list in deterministic generation order, then a counting
        // sort into CSR form (stable, so per-source edge order is the
        // generation order).
        let old = cfg.old_objects;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        let max_extra = (2.0 * cfg.mean_out_degree).round() as u32;
        for i in 0..n {
            if i > 0 {
                // Spanning edge: a nearby earlier object points here.
                let lo = i.saturating_sub(cfg.region_objects);
                pairs.push((rng.gen_range(lo..i), i));
            }
            let extra = if max_extra == 0 {
                0
            } else {
                rng.gen_range(0..=max_extra)
            };
            let (gen_start, gen_len) = if i < old { (0, old) } else { (old, n - old) };
            let region_start =
                gen_start + (i - gen_start) / cfg.region_objects * cfg.region_objects;
            let region_end = (region_start + cfg.region_objects).min(gen_start + gen_len);
            for _ in 0..extra {
                let target = if rng.gen_bool(cfg.cluster_locality) {
                    rng.gen_range(region_start..region_end)
                } else if i < old && n > old && rng.gen_bool(cfg.old_to_young_fraction) {
                    old + skewed_target(&mut rng, n - old)
                } else {
                    // Fan-in-skewed draw within the whole heap for young
                    // sources, within the old generation for old ones.
                    if i < old {
                        skewed_target(&mut rng, old)
                    } else {
                        skewed_target(&mut rng, n)
                    }
                };
                pairs.push((i, target));
            }
        }

        let mut counts = vec![0u32; n as usize + 1];
        for &(src, _) in &pairs {
            counts[src as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let edge_index = counts.clone();
        let mut edges = vec![0u32; pairs.len()];
        let mut cursor = counts;
        for &(src, dst) in &pairs {
            edges[cursor[src as usize] as usize] = dst;
            cursor[src as usize] += 1;
        }

        Self {
            first_page,
            edge_index,
            edges,
            young_start: old,
            page_count,
            total_bytes: offset,
            roots: cfg.root_count,
        }
    }

    /// Number of objects.
    pub fn object_count(&self) -> u32 {
        self.first_page.len() as u32
    }

    /// Out-edges of an object.
    pub fn out_edges(&self, id: u32) -> &[u32] {
        &self.edges
            [self.edge_index[id as usize] as usize..self.edge_index[id as usize + 1] as usize]
    }

    /// True for young-generation objects.
    pub fn is_young(&self, id: u32) -> bool {
        id >= self.young_start
    }

    /// Deterministic BFS order over the reachable graph (the GC trace's
    /// visit order): roots in id order, then CSR edge order, each
    /// object once.
    pub fn trace_order(&self) -> Vec<u32> {
        let n = self.object_count() as usize;
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        let mut queue = std::collections::VecDeque::new();
        for r in 0..self.roots {
            if !visited[r as usize] {
                visited[r as usize] = true;
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &t in self.out_edges(id) {
                if !visited[t as usize] {
                    visited[t as usize] = true;
                    queue.push_back(t);
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GraphConfig {
        GraphConfig {
            old_objects: 2_000,
            young_objects: 400,
            region_objects: 128,
            root_count: 8,
            ..Default::default()
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = ObjectGraph::build(&small(), 4096, 7);
        let b = ObjectGraph::build(&small(), 4096, 7);
        assert_eq!(a.first_page, b.first_page);
        assert_eq!(a.edges, b.edges);
        let c = ObjectGraph::build(&small(), 4096, 8);
        assert_ne!(a.edges, c.edges, "seed must matter");
    }

    #[test]
    fn every_object_is_reachable() {
        let g = ObjectGraph::build(&small(), 4096, 1);
        assert_eq!(g.trace_order().len(), g.object_count() as usize);
    }

    #[test]
    fn trace_order_is_deterministic_and_complete() {
        let g = ObjectGraph::build(&small(), 4096, 3);
        let t1 = g.trace_order();
        let t2 = g.trace_order();
        assert_eq!(t1, t2);
        let mut sorted = t1.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), g.object_count() as usize, "no repeats");
    }

    #[test]
    fn pages_are_region_clustered() {
        let g = ObjectGraph::build(&small(), 4096, 2);
        // Bump allocation in id order ⇒ first_page is monotone.
        assert!(g.first_page.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            g.page_count,
            g.total_bytes.div_ceil(4096) as u32,
            "page span matches total bytes"
        );
    }

    #[test]
    fn old_to_young_edges_exist_and_point_forward() {
        let g = ObjectGraph::build(&small(), 4096, 5);
        let cross = (0..g.young_start)
            .flat_map(|i| g.out_edges(i).iter().copied())
            .filter(|&t| t >= g.young_start)
            .count();
        assert!(cross > 0, "expected some old→young edges");
    }

    #[test]
    #[should_panic(expected = "roots")]
    fn zero_roots_rejected() {
        let cfg = GraphConfig {
            root_count: 0,
            ..small()
        };
        ObjectGraph::build(&cfg, 4096, 1);
    }
}
