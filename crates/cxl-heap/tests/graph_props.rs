//! Property tests over the object-graph generator: for any seed and
//! any (reasonable) shape, generation is a pure function of its
//! inputs, every object stays reachable, the CSR stays well-formed,
//! and the page layout stays monotone.

use proptest::prelude::*;

use cxl_heap::{GraphConfig, ObjectClass, ObjectGraph};

fn cfg(old: u32, young: u32, region: u32, mean_deg: f64, roots: u32) -> GraphConfig {
    GraphConfig {
        old_objects: old,
        young_objects: young,
        region_objects: region,
        mean_out_degree: mean_deg,
        root_count: roots,
        ..GraphConfig::default()
    }
}

proptest! {
    #[test]
    fn generation_is_a_pure_function_of_inputs(
        seed in 0u64..u64::MAX,
        old in 100u32..3_000,
        young in 0u32..500,
        region in 16u32..512,
        deg in 0.0f64..4.0,
    ) {
        let roots = (old / 10).max(1);
        let c = cfg(old, young, region, deg, roots);
        let a = ObjectGraph::build(&c, 4096, seed);
        let b = ObjectGraph::build(&c, 4096, seed);
        prop_assert_eq!(&a.first_page, &b.first_page);
        prop_assert_eq!(&a.edge_index, &b.edge_index);
        prop_assert_eq!(&a.edges, &b.edges);
        prop_assert_eq!(a.page_count, b.page_count);
    }

    #[test]
    fn every_object_reachable_from_roots(
        seed in 0u64..u64::MAX,
        old in 100u32..2_000,
        young in 0u32..400,
        deg in 0.0f64..3.0,
    ) {
        let c = cfg(old, young, 128, deg, 8);
        let g = ObjectGraph::build(&c, 4096, seed);
        // The spanning edge per object guarantees the trace sweeps the
        // whole heap regardless of degree or seed.
        prop_assert_eq!(g.trace_order().len(), g.object_count() as usize);
    }

    #[test]
    fn csr_is_well_formed(
        seed in 0u64..u64::MAX,
        old in 100u32..2_000,
        young in 0u32..400,
        deg in 0.0f64..3.0,
    ) {
        let c = cfg(old, young, 64, deg, 4);
        let g = ObjectGraph::build(&c, 4096, seed);
        let n = g.object_count();
        prop_assert_eq!(g.edge_index.len(), n as usize + 1);
        prop_assert!(g.edge_index.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*g.edge_index.last().unwrap() as usize, g.edges.len());
        prop_assert!(g.edges.iter().all(|&t| t < n));
        // Young objects never receive the old→young skew as sources of
        // old-generation-only draws; all ids stay in range either way.
        for id in 0..n {
            prop_assert_eq!(g.is_young(id), id >= g.young_start);
        }
    }

    #[test]
    fn page_layout_is_monotone_and_sized(
        seed in 0u64..u64::MAX,
        old in 100u32..2_000,
        page_exp in 10u32..15,
    ) {
        let page_size = 1u64 << page_exp;
        let c = cfg(old, 100, 128, 2.0, 8);
        let g = ObjectGraph::build(&c, page_size, seed);
        prop_assert!(g.first_page.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(g.page_count as u64, g.total_bytes.div_ceil(page_size));
        prop_assert!(u64::from(*g.first_page.last().unwrap()) < u64::from(g.page_count));
    }

    #[test]
    fn different_seeds_differ(seed in 0u64..u64::MAX - 1) {
        let c = cfg(1_000, 100, 128, 2.0, 8);
        let a = ObjectGraph::build(&c, 4096, seed);
        let b = ObjectGraph::build(&c, 4096, seed + 1);
        // Distinct seeds must not collapse onto the same stream (edges
        // are the most seed-sensitive artifact).
        prop_assert_ne!(&a.edges, &b.edges);
    }

    #[test]
    fn single_class_heap_packs_exactly(
        seed in 0u64..u64::MAX,
        n in 100u32..2_000,
    ) {
        let c = GraphConfig {
            old_objects: n,
            young_objects: 0,
            classes: vec![ObjectClass { size_bytes: 256, weight: 1 }],
            root_count: 1,
            ..GraphConfig::default()
        };
        let g = ObjectGraph::build(&c, 4096, seed);
        prop_assert_eq!(g.total_bytes, 256 * u64::from(n));
        // 16 objects of 256 B per 4 KiB page, bump-allocated.
        for (i, &p) in g.first_page.iter().enumerate() {
            prop_assert_eq!(u64::from(p), (i as u64 * 256) / 4096);
        }
    }
}
