//! Property tests for [`cxl_tier::TierManager::touch_batch`].
//!
//! The batched entry point exists so workload drivers can amortize
//! per-access dispatch on the touch hot path, but it must be a pure
//! performance change: for any access sequence, any chunking of that
//! sequence into batches, and any interleaving of scan ticks, the
//! batched and unbatched managers must produce identical
//! [`cxl_tier::AccessOutcome`] streams, identical [`cxl_tier::TierStats`],
//! and identical page placement.

use cxl_sim::SimTime;
use cxl_tier::{
    AccessOutcome, AllocPolicy, HotPageConfig, MigrationMode, NumaBalancingConfig, Rw, TierConfig,
    TierManager,
};
use cxl_topology::{NodeId, SncMode, Topology};
use proptest::prelude::*;

/// SNC-disabled paper testbed: 0,1 = DRAM sockets; 2,3 = CXL on s0.
const DRAM0: NodeId = NodeId(0);
const CXL0: NodeId = NodeId(2);
const PAGE: u64 = 4096;

/// A manager whose allocation policy lands most pages on the slow tier
/// (so hint faults have promotions to drive) with a scanner aggressive
/// enough that a short random sequence takes hint faults at all.
fn manager(mode: u8, pages: u64) -> (TierManager, Vec<cxl_tier::PageId>) {
    let balancing = NumaBalancingConfig {
        scan_period: SimTime::from_ms(10),
        scan_pages: 16,
        hot_threshold: SimTime::from_ms(500),
        ..Default::default()
    };
    let mut cfg = TierConfig::bind(vec![CXL0, DRAM0]);
    cfg.policy = AllocPolicy::interleave(vec![DRAM0], vec![CXL0], 1, 3);
    cfg.capacity_override = vec![
        (DRAM0, 24 * PAGE),
        (NodeId(1), 0),
        (CXL0, 64 * PAGE),
        (NodeId(3), 0),
    ];
    cfg.allow_ssd_spill = true;
    cfg.migration = match mode % 3 {
        0 => MigrationMode::NumaBalancing(balancing),
        1 => MigrationMode::HotPageSelection(HotPageConfig {
            balancing,
            ..Default::default()
        }),
        _ => MigrationMode::None,
    };
    let mut tm = TierManager::new(&Topology::paper_testbed(SncMode::Disabled), cfg);
    let ids = tm.alloc_n(pages, SimTime::ZERO).expect("spill enabled");
    (tm, ids)
}

proptest! {
    #[test]
    fn batched_touch_equals_unbatched(
        mode in 0u8..3,
        pages in 4u64..48,
        accesses in prop::collection::vec((0usize..48, any::<bool>(), 64u64..8192), 1..200),
        chunk in 1usize..17,
    ) {
        let (mut a, ids_a) = manager(mode, pages);
        let (mut b, ids_b) = manager(mode, pages);
        prop_assert_eq!(&ids_a, &ids_b);

        let mut out_a: Vec<AccessOutcome> = Vec::new();
        let mut out_b: Vec<AccessOutcome> = Vec::new();
        // Each chunk advances time and runs a scan tick first, so hint
        // installation interleaves with accesses in both replicas.
        for (step, window) in accesses.chunks(chunk).enumerate() {
            let now = SimTime::from_ms(10 * (step as u64 + 1));
            a.tick(now);
            b.tick(now);
            let batch: Vec<(cxl_tier::PageId, Rw, u64)> = window
                .iter()
                .map(|&(i, w, bytes)| {
                    let page = ids_a[i % ids_a.len()];
                    (page, if w { Rw::Write } else { Rw::Read }, bytes)
                })
                .collect();
            for &(page, rw, bytes) in &batch {
                out_a.push(a.touch(page, rw, bytes, now));
            }
            out_b.extend(b.touch_batch(&batch, now));
        }

        prop_assert_eq!(out_a, out_b, "AccessOutcome streams diverged");
        prop_assert_eq!(a.stats(), b.stats(), "TierStats diverged");
        prop_assert_eq!(a.snapshot(), b.snapshot(), "placement diverged");
        prop_assert_eq!(a.residency(), b.residency());
    }
}
