//! Property tests for [`cxl_tier::TierManager::evacuate`].
//!
//! Pins the invariants graceful degradation rests on: draining a failed
//! expander leaves no page behind on it, never loses or invents pages
//! (the population is conserved across DRAM, surviving CXL, and SSD),
//! and accounts migration traffic exactly (`migration_bytes` grows by
//! pages moved × page size — SSD spills are not migrations and must not
//! inflate it).

use cxl_sim::SimTime;
use cxl_tier::{Location, TierConfig, TierError, TierManager};
use cxl_topology::{NodeId, SncMode, Topology};
use proptest::prelude::*;

/// SNC-disabled paper testbed: 0,1 = DRAM sockets; 2,3 = CXL on s0.
const DRAM0: NodeId = NodeId(0);
const CXL0: NodeId = NodeId(2);
const CXL1: NodeId = NodeId(3);
const PAGE: u64 = 4096;

fn total_pages(tm: &TierManager) -> u64 {
    tm.residency().iter().map(|&(_, c)| c).sum()
}

fn pages_on(tm: &TierManager, loc: Location) -> u64 {
    tm.residency()
        .iter()
        .find(|&&(l, _)| l == loc)
        .map_or(0, |&(_, c)| c)
}

proptest! {
    #[test]
    fn evacuation_conserves_pages_and_accounts_bytes(
        dram_pages in 0u64..12,
        cxl0_pages in 1u64..24,
        cxl1_pages in 0u64..12,
        allocs in 1u64..40,
        frees in prop::collection::vec(0u64..40, 0..12),
        spill in any::<bool>(),
    ) {
        let mut cfg = TierConfig::bind(vec![CXL0, DRAM0]);
        cfg.allow_ssd_spill = spill;
        cfg.capacity_override = vec![
            (DRAM0, dram_pages * PAGE),
            (NodeId(1), 0),
            (CXL0, cxl0_pages * PAGE),
            (CXL1, cxl1_pages * PAGE),
        ];
        let mut tm = TierManager::new(&Topology::paper_testbed(SncMode::Disabled), cfg);

        // Fill (allocation may legitimately run out of room), then poke
        // holes so the drain walks a non-contiguous resident set.
        let mut pages = Vec::new();
        for _ in 0..allocs {
            match tm.alloc(SimTime::ZERO) {
                Ok(p) => pages.push(p),
                Err(_) => break,
            }
        }
        for &f in &frees {
            if let Some(&p) = pages.get(f as usize) {
                if tm.location(p) != Location::Ssd && !pages.is_empty() {
                    tm.free(p);
                    pages.retain(|&q| q != p);
                }
            }
        }

        let before_total = total_pages(&tm);
        let before_ssd = pages_on(&tm, Location::Ssd);
        let before_bytes = tm.stats().migration_bytes;

        match tm.evacuate(CXL0, SimTime::from_ms(1)) {
            Ok(report) => {
                // 1. No page remains on the failed node, and it cannot
                //    take new ones.
                prop_assert_eq!(pages_on(&tm, Location::Node(CXL0)), 0);
                prop_assert_eq!(tm.node_usage(CXL0), (0, 0));
                for &p in &pages {
                    prop_assert_ne!(tm.location(p), Location::Node(CXL0));
                }

                // 2. The page population is conserved across tiers.
                prop_assert_eq!(total_pages(&tm), before_total);
                prop_assert_eq!(
                    pages_on(&tm, Location::Ssd),
                    before_ssd + report.pages_to_ssd
                );

                // 3. Migration bytes grow by exactly the node-to-node
                //    moves; SSD spills are not migrations.
                prop_assert_eq!(
                    tm.stats().migration_bytes - before_bytes,
                    report.pages_moved * PAGE
                );
                prop_assert_eq!(
                    tm.stats().evacuated_pages,
                    report.pages_moved + report.pages_to_ssd
                );
            }
            Err(e) => {
                // Only possible when SSD spill is off and the survivors
                // are full — and even then nothing may be lost.
                prop_assert!(!spill, "spill-enabled evacuation failed: {e}");
                prop_assert!(matches!(e, TierError::OutOfMemory(_)), "{e:?}");
                prop_assert_eq!(total_pages(&tm), before_total);
                let moved_bytes = tm.stats().migration_bytes - before_bytes;
                prop_assert_eq!(moved_bytes % PAGE, 0);
            }
        }
    }

    #[test]
    fn shrink_preserves_population_and_capacity_bound(
        cxl0_pages in 2u64..24,
        keep in 0u64..24,
        allocs in 1u64..30,
    ) {
        let mut cfg = TierConfig::bind(vec![CXL0]);
        cfg.allow_ssd_spill = true;
        cfg.capacity_override = vec![
            (DRAM0, 4 * PAGE),
            (NodeId(1), 0),
            (CXL0, cxl0_pages * PAGE),
            (CXL1, 0),
        ];
        let mut tm = TierManager::new(&Topology::paper_testbed(SncMode::Disabled), cfg);
        for _ in 0..allocs {
            if tm.alloc(SimTime::ZERO).is_err() {
                break;
            }
        }
        let before_total = total_pages(&tm);
        let report = tm.shrink_node(CXL0, keep * PAGE, SimTime::from_ms(1)).unwrap();
        prop_assert_eq!(total_pages(&tm), before_total);
        let (used, cap) = tm.node_usage(CXL0);
        prop_assert!(used <= cap, "shrunk node over capacity: {used} > {cap}");
        prop_assert!(used <= keep.min(cxl0_pages));
        prop_assert_eq!(report.started_at, SimTime::from_ms(1));
        prop_assert!(report.completed_at >= report.started_at);
    }
}
