//! Migration mechanisms: NUMA balancing and hot-page selection.
//!
//! Configuration types for the two kernel patches the paper compares
//! (§2.3). The mechanics live in [`crate::manager::TierManager`]; the
//! parameters mirror the kernel sysctls.

use serde::{Deserialize, Serialize};

use cxl_sim::SimTime;

/// Which migration mechanism is active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MigrationMode {
    /// No migrations; pages stay where allocation put them.
    None,
    /// The NUMA-balancing patch: latency-aware MRU promotion driven by
    /// hint faults from page-table scanning.
    NumaBalancing(NumaBalancingConfig),
    /// The v6.1 hot-page-selection patch: NUMA balancing plus a
    /// promotion rate limit and dynamic hot threshold. This is the
    /// paper's "Hot-Promote" configuration (Table 1).
    HotPageSelection(HotPageConfig),
    /// Hot-page selection extended with the bandwidth awareness the
    /// paper calls for in §5.3: promotion into DRAM is suppressed — and
    /// load is actively demoted back to CXL — when DRAM bandwidth
    /// utilization exceeds a watermark, instead of packing hot pages
    /// into an already-contended top tier.
    BandwidthAware(BandwidthAwareConfig),
}

impl MigrationMode {
    /// True when any promotion mechanism is active.
    pub fn is_active(&self) -> bool {
        !matches!(self, MigrationMode::None)
    }
}

/// Parameters of the NUMA-balancing scanner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NumaBalancingConfig {
    /// Interval between scan passes (kernel: `numa_balancing_scan_period`).
    pub scan_period: SimTime,
    /// Pages hinted per scan pass (kernel scans a VA window per pass).
    pub scan_pages: usize,
    /// A second hint fault within this window marks the page hot (MRU).
    pub hot_threshold: SimTime,
    /// Extra latency charged to an access that takes a hint fault.
    pub hint_fault_cost: SimTime,
}

impl Default for NumaBalancingConfig {
    fn default() -> Self {
        Self {
            scan_period: SimTime::from_ms(100),
            scan_pages: 4096,
            hot_threshold: SimTime::from_secs(1),
            hint_fault_cost: SimTime::from_us(2),
        }
    }
}

/// Parameters of hot-page selection (rate-limited promotion).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotPageConfig {
    /// Base NUMA-balancing scanner parameters.
    pub balancing: NumaBalancingConfig,
    /// Promotion rate limit in bytes/second (kernel:
    /// `numa_balancing_promote_rate_limit_MBps`, default 65536 MB/s is
    /// effectively unlimited; the paper-relevant regimes are lower).
    pub promote_rate_limit_bytes_per_sec: f64,
    /// Enable the automatic hot-threshold adjustment the later patch
    /// versions added (§4.2.2 finds it "falls short" for Spark).
    pub dynamic_threshold: bool,
    /// Interval at which the dynamic threshold is re-evaluated.
    pub adjust_period: SimTime,
    /// Consecutive in-threshold repeat faults a page needs before it is
    /// treated as a promotion candidate. The kernel patch promotes on
    /// the first repeat fault (`1`, the default); raising this filters
    /// one-shot sweeps — a GC trace re-walking a cold graph produces at
    /// most a couple of in-window faults per page, while a genuinely
    /// hot page keeps faulting scan after scan — at the cost of slower
    /// reaction to real workload shifts. Must be nonzero.
    pub promote_after_faults: u32,
}

impl Default for HotPageConfig {
    fn default() -> Self {
        Self {
            balancing: NumaBalancingConfig::default(),
            promote_rate_limit_bytes_per_sec: 256.0 * 1024.0 * 1024.0,
            dynamic_threshold: true,
            adjust_period: SimTime::from_secs(1),
            promote_after_faults: 1,
        }
    }
}

impl HotPageConfig {
    /// Checks the config is internally consistent: a zero
    /// `promote_after_faults` would make every page permanently
    /// ineligible for promotion, silently disabling the mechanism.
    pub fn validate(&self) -> Result<(), crate::TierError> {
        if self.promote_after_faults == 0 {
            return Err(crate::TierError::InvalidConfig(
                "promote_after_faults must be nonzero (0 disables promotion silently)".to_string(),
            ));
        }
        Ok(())
    }
}

/// Parameters of the §5.3 bandwidth-aware extension.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BandwidthAwareConfig {
    /// Underlying hot-page-selection mechanics.
    pub base: HotPageConfig,
    /// DRAM bandwidth utilization above which promotions stop and
    /// demotion pressure starts (§5.3's example: ~0.7 is already risky).
    pub high_watermark: f64,
    /// Utilization below which promotions resume.
    pub low_watermark: f64,
    /// Pages demoted per tick while above the high watermark, shifting
    /// streaming load onto the expander's spare bandwidth.
    pub demote_batch: usize,
}

impl Default for BandwidthAwareConfig {
    fn default() -> Self {
        Self {
            base: HotPageConfig::default(),
            high_watermark: 0.75,
            low_watermark: 0.60,
            demote_batch: 64,
        }
    }
}

impl BandwidthAwareConfig {
    /// Checks the config is internally consistent.
    ///
    /// A `low_watermark >= high_watermark` makes the promote/demote
    /// hysteresis band empty (the manager would oscillate every tick),
    /// and `demote_batch == 0` silently turns the above-watermark
    /// demotion into a no-op. Both used to be accepted and misbehave
    /// quietly; now they are rejected where the config is used
    /// ([`crate::TierManager::try_new`]).
    pub fn validate(&self) -> Result<(), crate::TierError> {
        self.base.validate()?;
        // NaN watermarks fall through to the range check below.
        if self.low_watermark >= self.high_watermark {
            return Err(crate::TierError::InvalidConfig(format!(
                "bandwidth-aware watermarks must satisfy low < high, got low {} >= high {}",
                self.low_watermark, self.high_watermark
            )));
        }
        if !(0.0..=1.0).contains(&self.low_watermark) || !(0.0..=1.0).contains(&self.high_watermark)
        {
            return Err(crate::TierError::InvalidConfig(format!(
                "bandwidth-aware watermarks must lie in [0, 1], got low {} high {}",
                self.low_watermark, self.high_watermark
            )));
        }
        if self.demote_batch == 0 {
            return Err(crate::TierError::InvalidConfig(
                "bandwidth-aware demote_batch must be nonzero (0 disables demotion silently)"
                    .to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_activity() {
        assert!(!MigrationMode::None.is_active());
        assert!(MigrationMode::NumaBalancing(NumaBalancingConfig::default()).is_active());
        assert!(MigrationMode::HotPageSelection(HotPageConfig::default()).is_active());
        assert!(MigrationMode::BandwidthAware(BandwidthAwareConfig::default()).is_active());
    }

    #[test]
    fn bandwidth_aware_defaults_ordered() {
        let c = BandwidthAwareConfig::default();
        assert!(c.low_watermark < c.high_watermark);
        assert!(c.demote_batch > 0);
    }

    #[test]
    fn inverted_watermarks_are_rejected() {
        let mut c = BandwidthAwareConfig::default();
        assert!(c.validate().is_ok());
        c.low_watermark = 0.80;
        c.high_watermark = 0.75;
        let err = c.validate().expect_err("low >= high must be rejected");
        assert!(err.to_string().contains("low < high"), "{err}");
        // Equal watermarks leave no hysteresis band either.
        c.low_watermark = 0.75;
        assert!(c.validate().is_err());
    }

    #[test]
    fn zero_demote_batch_is_rejected() {
        let c = BandwidthAwareConfig {
            demote_batch: 0,
            ..Default::default()
        };
        let err = c.validate().expect_err("demote_batch 0 must be rejected");
        assert!(err.to_string().contains("demote_batch"), "{err}");
    }

    #[test]
    fn defaults_are_sane() {
        let nb = NumaBalancingConfig::default();
        assert!(nb.scan_period > SimTime::ZERO);
        assert!(nb.scan_pages > 0);
        let hp = HotPageConfig::default();
        assert!(hp.promote_rate_limit_bytes_per_sec > 0.0);
        assert!(hp.dynamic_threshold);
        // The default streak requirement reproduces the kernel patch:
        // promote on the first in-threshold repeat fault.
        assert_eq!(hp.promote_after_faults, 1);
        assert!(hp.validate().is_ok());
    }

    #[test]
    fn zero_promote_after_faults_is_rejected() {
        let hp = HotPageConfig {
            promote_after_faults: 0,
            ..Default::default()
        };
        let err = hp.validate().expect_err("streak 0 must be rejected");
        assert!(err.to_string().contains("promote_after_faults"), "{err}");
        // The check also reaches bandwidth-aware configs through `base`.
        let bw = BandwidthAwareConfig {
            base: hp,
            ..Default::default()
        };
        assert!(bw.validate().is_err());
    }
}
