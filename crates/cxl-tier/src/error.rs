//! Typed errors for the tiering layer.
//!
//! Before fault injection, states like "page already on SSD" could only
//! arise from caller bugs and aborted the process with `panic!`. With
//! expanders that fail mid-run and user-supplied migration configs,
//! those states are ordinary runtime conditions; they surface as
//! [`TierError`] values a degraded-but-serving caller can handle.

use crate::manager::OutOfMemory;
use crate::page::PageId;
use cxl_topology::NodeId;

/// A recoverable tiering-layer failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierError {
    /// An operation required a different allocation policy (e.g.
    /// [`crate::TierManager::set_interleave`] without an N:M interleave
    /// policy in force). Carries the requirement's description.
    WrongPolicy(&'static str),
    /// The page is already on SSD, so it cannot be evicted again.
    AlreadyOnSsd(PageId),
    /// The page is not on SSD, so it cannot be loaded from there.
    NotOnSsd(PageId),
    /// No node (or SSD, if spill is disabled) can absorb the page(s).
    OutOfMemory(OutOfMemory),
    /// A user-supplied configuration is internally inconsistent; the
    /// message says which constraint failed.
    InvalidConfig(String),
    /// The node id is not part of the managed topology.
    UnknownNode(NodeId),
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::WrongPolicy(req) => write!(f, "{req}"),
            TierError::AlreadyOnSsd(p) => write!(f, "page {p:?} already on SSD"),
            TierError::NotOnSsd(p) => write!(f, "page {p:?} not on SSD"),
            TierError::OutOfMemory(e) => write!(f, "{e}"),
            TierError::InvalidConfig(msg) => write!(f, "{msg}"),
            TierError::UnknownNode(n) => write!(f, "node {n:?} is not part of this topology"),
        }
    }
}

impl std::error::Error for TierError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TierError::OutOfMemory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<OutOfMemory> for TierError {
    fn from(e: OutOfMemory) -> Self {
        TierError::OutOfMemory(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_panic_phrases() {
        // Callers that upgraded from catching panics grep these.
        assert!(TierError::AlreadyOnSsd(PageId(3))
            .to_string()
            .contains("already on SSD"));
        assert!(TierError::NotOnSsd(PageId(3))
            .to_string()
            .contains("not on SSD"));
        let e: TierError = OutOfMemory.into();
        assert!(matches!(e, TierError::OutOfMemory(_)));
    }
}
