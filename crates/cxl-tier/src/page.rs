//! Page identity and per-page metadata.

use serde::{Deserialize, Serialize};

use cxl_sim::SimTime;
use cxl_topology::NodeId;

/// Identifier of a simulated page (dense index into the page directory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u64);

/// Where a page currently lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    /// Resident on a NUMA node (DRAM or CXL).
    Node(NodeId),
    /// Spilled to the SSD swap tier.
    Ssd,
}

impl Location {
    /// The NUMA node, if resident.
    pub fn node(self) -> Option<NodeId> {
        match self {
            Location::Node(n) => Some(n),
            Location::Ssd => None,
        }
    }

    /// True when the page is on the SSD tier.
    pub fn is_ssd(self) -> bool {
        matches!(self, Location::Ssd)
    }
}

/// Metadata tracked per page.
#[derive(Debug, Clone)]
pub(crate) struct PageMeta {
    pub location: Location,
    /// Page has been freed (touching or re-freeing it is a bug).
    pub freed: bool,
    /// Last touch time (any access).
    pub last_access: SimTime,
    /// Time of the most recent hint fault on this page, used by the MRU
    /// promotion check; `SimTime::MAX` when never faulted.
    pub last_hint_fault: SimTime,
    /// A NUMA-balancing scan installed a hint (PROT_NONE) on this page.
    pub hint_installed: bool,
    /// Referenced since last demotion scan pass (CLOCK bit).
    pub referenced: bool,
    /// Consecutive hint faults that landed inside the hot threshold;
    /// reset by an out-of-window fault or a migration. Compared against
    /// `HotPageConfig::promote_after_faults`.
    pub fault_streak: u32,
}

impl PageMeta {
    pub(crate) fn new(location: Location) -> Self {
        Self {
            location,
            freed: false,
            last_access: SimTime::ZERO,
            last_hint_fault: SimTime::MAX,
            hint_installed: false,
            referenced: false,
            fault_streak: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_helpers() {
        let n = Location::Node(NodeId(3));
        assert_eq!(n.node(), Some(NodeId(3)));
        assert!(!n.is_ssd());
        assert_eq!(Location::Ssd.node(), None);
        assert!(Location::Ssd.is_ssd());
    }

    #[test]
    fn fresh_page_meta() {
        let m = PageMeta::new(Location::Node(NodeId(0)));
        assert!(!m.hint_installed);
        assert!(!m.referenced);
        assert_eq!(m.last_hint_fault, SimTime::MAX);
    }
}
