//! The tier manager: allocation, access tracking, migration, demotion.

use std::collections::VecDeque;

use cxl_sim::{SimTime, TokenBucket};
use cxl_topology::{MemoryTier, NodeId, SocketId, Topology};

use crate::error::TierError;
use crate::migration::MigrationMode;
use crate::page::{Location, PageId, PageMeta};
use crate::policy::{AllocPolicy, PolicyCursor};
use crate::stats::{TierSnapshot, TierStats};
use crate::trace::{TierEvent, TraceRing};
use crate::traffic::TrafficEpoch;

/// Read or write access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rw {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl Rw {
    fn is_write(self) -> bool {
        matches!(self, Rw::Write)
    }
}

/// Configuration of a [`TierManager`].
#[derive(Debug, Clone)]
pub struct TierConfig {
    /// Simulated page size in bytes. The kernel migrates 4 KiB pages;
    /// large experiments may coarsen this to keep page counts tractable
    /// (behaviour is granularity-invariant for the studied policies).
    pub page_size: u64,
    /// Placement policy for new pages.
    pub policy: AllocPolicy,
    /// Active migration mechanism.
    pub migration: MigrationMode,
    /// Per-node capacity overrides in bytes (e.g. a `maxmemory` limit).
    pub capacity_override: Vec<(NodeId, u64)>,
    /// Top-tier occupancy fraction that triggers background demotion.
    pub demotion_watermark: f64,
    /// Allow allocations to spill to SSD when all candidate nodes are
    /// full (Table 1's `MMEM-SSD-x` configurations).
    pub allow_ssd_spill: bool,
    /// Socket the workload's threads run on (traffic accounting and
    /// promotion targets).
    pub accessor_socket: SocketId,
}

impl TierConfig {
    /// A reasonable default: 4 KiB pages, bind to the given nodes, no
    /// migration, no SSD.
    pub fn bind(nodes: Vec<NodeId>) -> Self {
        Self {
            page_size: 4096,
            policy: AllocPolicy::Bind(nodes),
            migration: MigrationMode::None,
            capacity_override: Vec::new(),
            demotion_watermark: 0.98,
            allow_ssd_spill: false,
            accessor_socket: SocketId(0),
        }
    }
}

/// Outcome of one page access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Where the page was at access time (before any promotion).
    pub location: Location,
    /// The access took a NUMA hint fault.
    pub hint_fault: bool,
    /// The access triggered a promotion to DRAM.
    pub promoted: bool,
    /// Extra software latency incurred (hint fault handling).
    pub fault_cost: SimTime,
}

/// Out-of-memory error: every candidate node was full and SSD spill was
/// disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfMemory;

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "all candidate NUMA nodes are full and SSD spill is disabled"
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// Outcome of draining pages off a node (see [`TierManager::evacuate`]
/// and [`TierManager::shrink_node`]).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize)]
pub struct EvacuationReport {
    /// The node that was drained.
    pub node: NodeId,
    /// Pages relocated to surviving DRAM/CXL nodes.
    pub pages_moved: u64,
    /// Pages that spilled to SSD because no node had room.
    pub pages_to_ssd: u64,
    /// Virtual time the drain started.
    pub started_at: SimTime,
    /// Virtual time the rate-limited drain completes: the drained bytes
    /// are charged against the promotion rate limiter, so this trails
    /// `started_at` by `excess bytes / promote rate`.
    pub completed_at: SimTime,
}

impl EvacuationReport {
    /// Total pages that left the node.
    pub fn total_pages(&self) -> u64 {
        self.pages_moved + self.pages_to_ssd
    }

    /// Rate-limited drain duration.
    pub fn duration(&self) -> SimTime {
        self.completed_at.saturating_sub(self.started_at)
    }
}

#[derive(Debug, Clone)]
struct NodeInfo {
    id: NodeId,
    tier: MemoryTier,
    socket: SocketId,
    capacity_pages: u64,
    used_pages: u64,
}

/// Page-granular tiered memory manager over a topology.
#[derive(Debug)]
pub struct TierManager {
    cfg: TierConfig,
    nodes: Vec<NodeInfo>,
    pages: Vec<PageMeta>,
    cursor: PolicyCursor,
    /// CLOCK rings per node (lazy deletion: entries are validated on pop).
    rings: Vec<VecDeque<PageId>>,
    scan_cursor: u64,
    next_scan: SimTime,
    promo_bucket: Option<TokenBucket>,
    hot_threshold: SimTime,
    promote_after_faults: u32,
    promo_candidates_period: u64,
    next_adjust: SimTime,
    epoch: TrafficEpoch,
    /// Per-node application byte accumulators (indexed by node id),
    /// folded into `epoch` on drain. Touching is the hottest path in
    /// the workspace; a dense array add beats a `BTreeMap` entry walk
    /// per access by an order of magnitude.
    node_reads: Vec<u64>,
    node_writes: Vec<u64>,
    stats: TierStats,
    /// Last reported DRAM bandwidth utilization (set by the application
    /// layer from the performance model each epoch; §5.3 policy input).
    dram_bw_util: f64,
    /// Optional event trace (see [`crate::trace`]).
    trace: Option<TraceRing>,
}

impl TierManager {
    /// Builds a manager for a topology.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; see
    /// [`TierManager::try_new`] for the error-returning form.
    pub fn new(topo: &Topology, cfg: TierConfig) -> Self {
        Self::try_new(topo, cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a manager for a topology, rejecting invalid
    /// configurations: a policy referencing nodes missing from the
    /// topology, a demotion watermark outside `(0, 1]`, or an
    /// inconsistent bandwidth-aware migration config (see
    /// [`crate::BandwidthAwareConfig::validate`]).
    pub fn try_new(topo: &Topology, cfg: TierConfig) -> Result<Self, TierError> {
        if !(cfg.demotion_watermark > 0.0 && cfg.demotion_watermark <= 1.0) {
            return Err(TierError::InvalidConfig(format!(
                "watermark out of range: {} not in (0, 1]",
                cfg.demotion_watermark
            )));
        }
        if let MigrationMode::BandwidthAware(b) = &cfg.migration {
            b.validate()?;
        }
        let nodes: Vec<NodeInfo> = topo
            .nodes()
            .iter()
            .map(|n| {
                let cap_bytes = cfg
                    .capacity_override
                    .iter()
                    .find(|(id, _)| *id == n.id)
                    .map(|&(_, b)| b)
                    .unwrap_or_else(|| n.capacity_bytes());
                NodeInfo {
                    id: n.id,
                    tier: n.tier,
                    socket: n.socket,
                    capacity_pages: cap_bytes / cfg.page_size,
                    used_pages: 0,
                }
            })
            .collect();
        let check = |id: &NodeId| {
            if nodes.iter().any(|n| n.id == *id) {
                Ok(())
            } else {
                Err(TierError::InvalidConfig(format!(
                    "policy references unknown node {id:?}"
                )))
            }
        };
        match &cfg.policy {
            AllocPolicy::Bind(v) => v.iter().try_for_each(check)?,
            AllocPolicy::Preferred { node, fallback } => {
                check(node)?;
                fallback.iter().try_for_each(check)?;
            }
            AllocPolicy::InterleaveNm { top, low, .. } => {
                top.iter().try_for_each(check)?;
                low.iter().try_for_each(check)?;
            }
        }
        let (promo_bucket, hot_threshold, promote_after_faults) = match &cfg.migration {
            MigrationMode::HotPageSelection(h)
            | MigrationMode::BandwidthAware(crate::migration::BandwidthAwareConfig {
                base: h,
                ..
            }) => {
                h.validate()?;
                (
                    Some(TokenBucket::new(
                        h.promote_rate_limit_bytes_per_sec,
                        // One-second burst, like the kernel's per-interval budget.
                        h.promote_rate_limit_bytes_per_sec,
                    )),
                    h.balancing.hot_threshold,
                    h.promote_after_faults,
                )
            }
            MigrationMode::NumaBalancing(b) => (None, b.hot_threshold, 1),
            MigrationMode::None => (None, SimTime::ZERO, 1),
        };
        let rings = vec![VecDeque::new(); nodes.len()];
        let cursor = PolicyCursor::new(cfg.policy.clone());
        let node_count = nodes.len();
        Ok(Self {
            cfg,
            nodes,
            pages: Vec::new(),
            cursor,
            rings,
            scan_cursor: 0,
            next_scan: SimTime::ZERO,
            promo_bucket,
            hot_threshold,
            promote_after_faults,
            promo_candidates_period: 0,
            next_adjust: SimTime::ZERO,
            epoch: TrafficEpoch::default(),
            node_reads: vec![0; node_count],
            node_writes: vec![0; node_count],
            stats: TierStats::default(),
            dram_bw_util: 0.0,
            trace: None,
        })
    }

    /// Records an application access into the per-node accumulators.
    /// Folded into the public [`TrafficEpoch`] on [`Self::drain_epoch`].
    #[inline]
    fn record_node_access(&mut self, node: NodeId, bytes: u64, is_write: bool) {
        if is_write {
            self.node_writes[node.0] += bytes;
        } else {
            self.node_reads[node.0] += bytes;
        }
    }

    /// Enables event tracing with a bounded ring of `capacity` events.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(TraceRing::new(capacity));
    }

    /// The trace ring, if enabled.
    pub fn trace(&self) -> Option<&TraceRing> {
        self.trace.as_ref()
    }

    /// Mutable access to the trace ring (e.g. to drain it), if enabled.
    pub fn trace_mut(&mut self) -> Option<&mut TraceRing> {
        self.trace.as_mut()
    }

    fn record_trace(&mut self, at: SimTime, event: TierEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.record(at, event);
        }
    }

    /// Reports the current DRAM bandwidth utilization (0..1), the input
    /// to the §5.3 bandwidth-aware policy. Applications call this each
    /// epoch with the utilization the performance model observed.
    /// Non-finite inputs (a NaN from a degenerate bandwidth ratio,
    /// say 0/0 on an idle node) are treated as 0.0 — `f64::clamp`
    /// propagates NaN, which would otherwise disable every watermark
    /// comparison in the policy from here on.
    pub fn set_dram_bandwidth_util(&mut self, util: f64) {
        self.dram_bw_util = if util.is_finite() {
            util.clamp(0.0, 1.0)
        } else if util == f64::INFINITY {
            1.0
        } else {
            0.0
        };
    }

    /// Last reported DRAM bandwidth utilization.
    pub fn dram_bandwidth_util(&self) -> f64 {
        self.dram_bw_util
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.cfg.page_size
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &TierStats {
        &self.stats
    }

    /// Current hot threshold (dynamic under hot-page selection).
    pub fn hot_threshold(&self) -> SimTime {
        self.hot_threshold
    }

    /// `(used, capacity)` pages of a node.
    pub fn node_usage(&self, node: NodeId) -> (u64, u64) {
        let n = &self.nodes[node.0];
        (n.used_pages, n.capacity_pages)
    }

    /// Number of allocated pages currently resident on each node plus SSD,
    /// as `(location, pages)` pairs (only non-empty locations).
    pub fn residency(&self) -> Vec<(Location, u64)> {
        let mut out: Vec<(Location, u64)> = self
            .nodes
            .iter()
            .filter(|n| n.used_pages > 0)
            .map(|n| (Location::Node(n.id), n.used_pages))
            .collect();
        let ssd = self.pages.iter().filter(|p| p.location.is_ssd()).count() as u64;
        if ssd > 0 {
            out.push((Location::Ssd, ssd));
        }
        out
    }

    /// Captures a point-in-time placement snapshot.
    pub fn snapshot(&self) -> TierSnapshot {
        let nodes: Vec<(usize, u64, u64)> = self
            .nodes
            .iter()
            .filter(|n| n.capacity_pages > 0 || n.used_pages > 0)
            .map(|n| (n.id.0, n.used_pages, n.capacity_pages))
            .collect();
        let top: u64 = self
            .nodes
            .iter()
            .filter(|n| n.tier.is_top_tier())
            .map(|n| n.used_pages)
            .sum();
        let resident: u64 = self.nodes.iter().map(|n| n.used_pages).sum();
        let ssd = self
            .pages
            .iter()
            .filter(|p| !p.freed && p.location.is_ssd())
            .count() as u64;
        TierSnapshot {
            nodes,
            ssd_pages: ssd,
            top_tier_fraction: if resident > 0 {
                top as f64 / resident as f64
            } else {
                0.0
            },
            stats: self.stats.clone(),
        }
    }

    /// Reconfigures the N:M interleave ratio at runtime, mirroring the
    /// `vm.numa_tier_interleave` sysctl (§2.3). Only subsequent
    /// allocations are affected; resident pages stay where they are.
    ///
    /// Errors (leaving the policy unchanged) if the current policy is
    /// not an N:M interleave or the new cycle is empty — these used to
    /// abort the process, but a bad sysctl write should never take the
    /// serving path down with it.
    pub fn set_interleave(&mut self, n: u32, m: u32) -> Result<(), TierError> {
        if n + m == 0 {
            return Err(TierError::InvalidConfig(
                "N:M interleave needs a nonzero cycle".to_string(),
            ));
        }
        let AllocPolicy::InterleaveNm { top, low, .. } = self.cfg.policy.clone() else {
            return Err(TierError::WrongPolicy(
                "set_interleave requires an InterleaveNm policy",
            ));
        };
        self.cfg.policy = AllocPolicy::interleave(top, low, n, m);
        self.cursor = PolicyCursor::new(self.cfg.policy.clone());
        Ok(())
    }

    /// The configured promotion rate limit in bytes/second, when a
    /// rate-limited migration mode (hot-page selection or
    /// bandwidth-aware) is active.
    pub fn promote_rate(&self) -> Option<f64> {
        match &self.cfg.migration {
            MigrationMode::HotPageSelection(h)
            | MigrationMode::BandwidthAware(crate::migration::BandwidthAwareConfig {
                base: h,
                ..
            }) => Some(h.promote_rate_limit_bytes_per_sec),
            _ => None,
        }
    }

    /// Retunes the promotion rate limit at runtime, mirroring a write
    /// to `numa_balancing_promote_rate_limit_MBps` (§2.3) on a live
    /// system. Both the configured limit and the live token bucket
    /// change (rate and one-second burst, matching construction);
    /// already-accrued budget is settled at the old rate first, so the
    /// retune never re-prices an elapsed interval.
    ///
    /// Errors (leaving everything unchanged) when no rate-limited
    /// migration mode is active or the rate is not positive and finite.
    pub fn set_promote_rate(&mut self, now: SimTime, bytes_per_sec: f64) -> Result<(), TierError> {
        if !(bytes_per_sec > 0.0 && bytes_per_sec.is_finite()) {
            return Err(TierError::InvalidConfig(format!(
                "promotion rate limit must be positive and finite, got {bytes_per_sec}"
            )));
        }
        let h = match &mut self.cfg.migration {
            MigrationMode::HotPageSelection(h) => h,
            MigrationMode::BandwidthAware(b) => &mut b.base,
            _ => {
                return Err(TierError::WrongPolicy(
                    "set_promote_rate requires a rate-limited migration mode",
                ))
            }
        };
        h.promote_rate_limit_bytes_per_sec = bytes_per_sec;
        self.promo_bucket
            .as_mut()
            .expect("rate-limited modes always carry a promo bucket")
            .retune(now, bytes_per_sec, bytes_per_sec);
        Ok(())
    }

    /// The configured promotion fault-streak requirement, when a
    /// rate-limited migration mode is active.
    pub fn promote_after_faults(&self) -> Option<u32> {
        match &self.cfg.migration {
            MigrationMode::HotPageSelection(_) | MigrationMode::BandwidthAware(_) => {
                Some(self.promote_after_faults)
            }
            _ => None,
        }
    }

    /// Retunes the promotion fault-streak requirement at runtime — the
    /// storm-aware knob: raising it mid-run (say before a known GC
    /// cycle) filters one-shot trace sweeps without rebuilding the
    /// manager. Accrued per-page streaks are kept; only the bar moves.
    ///
    /// Errors (leaving everything unchanged) when no rate-limited
    /// migration mode is active or `n` is zero (which would silently
    /// disable promotion; see [`crate::HotPageConfig::validate`]).
    pub fn set_promote_after_faults(&mut self, n: u32) -> Result<(), TierError> {
        let h = match &mut self.cfg.migration {
            MigrationMode::HotPageSelection(h) => h,
            MigrationMode::BandwidthAware(b) => &mut b.base,
            _ => {
                return Err(TierError::WrongPolicy(
                    "set_promote_after_faults requires a rate-limited migration mode",
                ))
            }
        };
        let candidate = crate::migration::HotPageConfig {
            promote_after_faults: n,
            ..*h
        };
        candidate.validate()?;
        *h = candidate;
        self.promote_after_faults = n;
        Ok(())
    }

    /// The configured bandwidth-aware demote batch (pages per tick
    /// while DRAM is over the high watermark), when that mode is active.
    pub fn demote_batch(&self) -> Option<usize> {
        match &self.cfg.migration {
            MigrationMode::BandwidthAware(b) => Some(b.demote_batch),
            _ => None,
        }
    }

    /// Retunes the bandwidth-aware demote batch at runtime.
    ///
    /// Errors (leaving the config unchanged) when the migration mode is
    /// not bandwidth-aware, or when `batch` is zero — the same
    /// constraint [`crate::migration::BandwidthAwareConfig::validate`]
    /// enforces at construction, since a zero batch silently disables
    /// over-watermark demotion.
    pub fn set_demote_batch(&mut self, batch: usize) -> Result<(), TierError> {
        let MigrationMode::BandwidthAware(b) = &mut self.cfg.migration else {
            return Err(TierError::WrongPolicy(
                "set_demote_batch requires the bandwidth-aware migration mode",
            ));
        };
        let candidate = crate::migration::BandwidthAwareConfig {
            demote_batch: batch,
            ..*b
        };
        candidate.validate()?;
        *b = candidate;
        Ok(())
    }

    /// Allocates one page per the placement policy.
    pub fn alloc(&mut self, now: SimTime) -> Result<PageId, OutOfMemory> {
        let candidates = self.cursor.next_candidates();
        for node in candidates {
            if self.has_room(node) {
                return Ok(self.place_new_page(node, now));
            }
        }
        if self.cfg.allow_ssd_spill {
            let id = PageId(self.pages.len() as u64);
            self.pages.push(PageMeta::new(Location::Ssd));
            self.stats.allocated += 1;
            self.stats.ssd_spills += 1;
            cxl_obs::counter_add("tier/ssd_spills", 1);
            Ok(id)
        } else {
            Err(OutOfMemory)
        }
    }

    /// Allocates `n` pages, returning their ids.
    pub fn alloc_n(&mut self, n: u64, now: SimTime) -> Result<Vec<PageId>, OutOfMemory> {
        (0..n).map(|_| self.alloc(now)).collect()
    }

    /// Allocates one page preferring `node`, falling back to the
    /// configured policy (and SSD spill, if enabled) when it is full.
    ///
    /// This is the segregation hook for allocators that know more than
    /// the global policy does — a generational runtime binding its
    /// nursery to DRAM and the tenured region to the expander, say —
    /// without the caller having to juggle two managers over one
    /// topology.
    ///
    /// Errors with [`TierError::UnknownNode`] on an out-of-range node;
    /// otherwise fails only as [`TierManager::alloc`] does, reported as
    /// [`TierError::OutOfMemory`].
    pub fn alloc_preferring(&mut self, node: NodeId, now: SimTime) -> Result<PageId, TierError> {
        if node.0 >= self.nodes.len() {
            return Err(TierError::UnknownNode(node));
        }
        if self.has_room(node) {
            return Ok(self.place_new_page(node, now));
        }
        self.alloc(now).map_err(TierError::OutOfMemory)
    }

    fn has_room(&self, node: NodeId) -> bool {
        let n = &self.nodes[node.0];
        n.used_pages < n.capacity_pages
    }

    fn place_new_page(&mut self, node: NodeId, now: SimTime) -> PageId {
        let id = PageId(self.pages.len() as u64);
        let mut meta = PageMeta::new(Location::Node(node));
        meta.last_access = now;
        self.pages.push(meta);
        self.nodes[node.0].used_pages += 1;
        self.rings[node.0].push_back(id);
        self.stats.allocated += 1;
        id
    }

    /// Frees a page.
    ///
    /// # Panics
    ///
    /// Panics on a double free.
    pub fn free(&mut self, page: PageId) {
        let meta = &mut self.pages[page.0 as usize];
        assert!(!meta.freed, "double free of {page:?}");
        meta.freed = true;
        if let Location::Node(n) = meta.location {
            self.nodes[n.0].used_pages -= 1;
        }
        self.stats.freed += 1;
    }

    /// Current location of a page.
    pub fn location(&self, page: PageId) -> Location {
        self.pages[page.0 as usize].location
    }

    /// Records an access of `bytes` to a page and runs fault-driven
    /// promotion logic.
    pub fn touch(&mut self, page: PageId, rw: Rw, bytes: u64, now: SimTime) -> AccessOutcome {
        let idx = page.0 as usize;
        debug_assert!(!self.pages[idx].freed, "touch of freed {page:?}");
        let location = self.pages[idx].location;
        match location {
            Location::Node(node) => self.record_node_access(node, bytes, rw.is_write()),
            Location::Ssd => self.epoch.record_ssd(bytes, rw.is_write()),
        }
        let meta = &mut self.pages[idx];
        meta.last_access = now;
        meta.referenced = true;

        let mut outcome = AccessOutcome {
            location,
            hint_fault: false,
            promoted: false,
            fault_cost: SimTime::ZERO,
        };

        if !meta.hint_installed || !self.cfg.migration.is_active() {
            return outcome;
        }

        // Take the hint fault.
        meta.hint_installed = false;
        let prev_fault = meta.last_hint_fault;
        meta.last_hint_fault = now;
        self.stats.hint_faults += 1;
        cxl_obs::counter_add("tier/hint_faults", 1);
        outcome.hint_fault = true;
        outcome.fault_cost = match &self.cfg.migration {
            MigrationMode::NumaBalancing(b) => b.hint_fault_cost,
            MigrationMode::HotPageSelection(h) => h.balancing.hint_fault_cost,
            MigrationMode::BandwidthAware(b) => b.base.balancing.hint_fault_cost,
            MigrationMode::None => SimTime::ZERO,
        };

        // Promotion applies to slow-tier pages only.
        let Location::Node(node) = location else {
            return outcome;
        };
        if self.nodes[node.0].tier.is_top_tier() {
            return outcome;
        }

        match self.cfg.migration.clone() {
            MigrationMode::None => {}
            MigrationMode::NumaBalancing(_) => {
                // The balancing patch promotes on MRU: the faulting access
                // itself is the recency evidence.
                outcome.promoted = self.promote(page, node, now);
            }
            MigrationMode::HotPageSelection(_) => {
                outcome.promoted = self.hot_page_promotion(page, node, prev_fault, now);
            }
            MigrationMode::BandwidthAware(b) => {
                // §5.3: never promote into a bandwidth-saturated top tier.
                if self.dram_bw_util > b.high_watermark {
                    self.stats.promotions_bw_suppressed += 1;
                    cxl_obs::counter_add("tier/promotions_bw_suppressed", 1);
                    self.record_trace(now, TierEvent::PromotionSuppressed { page });
                } else {
                    outcome.promoted = self.hot_page_promotion(page, node, prev_fault, now);
                }
            }
        }
        outcome
    }

    /// Records a batch of accesses sharing one timestamp, returning one
    /// [`AccessOutcome`] per access in order.
    ///
    /// Semantically identical to calling [`TierManager::touch`] per
    /// access (the property tests in `tests/touch_props.rs` pin the
    /// equivalence), but the common no-hint-fault case — every access
    /// between NUMA balancing scans — skips the per-call migration-mode
    /// dispatch and runs a tight epoch-record + recency-update loop,
    /// which is what batched workload drivers (KV op blocks) want from
    /// the hot path.
    pub fn touch_batch(
        &mut self,
        accesses: &[(PageId, Rw, u64)],
        now: SimTime,
    ) -> Vec<AccessOutcome> {
        let migration_active = self.cfg.migration.is_active();
        accesses
            .iter()
            .map(|&(page, rw, bytes)| {
                let idx = page.0 as usize;
                debug_assert!(!self.pages[idx].freed, "touch of freed {page:?}");
                if migration_active && self.pages[idx].hint_installed {
                    // Hint fault pending: the full promotion machinery
                    // runs, exactly as an unbatched touch would.
                    return self.touch(page, rw, bytes, now);
                }
                // Fast path: mirror `touch` up to its early return.
                let location = self.pages[idx].location;
                match location {
                    Location::Node(node) => self.record_node_access(node, bytes, rw.is_write()),
                    Location::Ssd => self.epoch.record_ssd(bytes, rw.is_write()),
                }
                let meta = &mut self.pages[idx];
                meta.last_access = now;
                meta.referenced = true;
                AccessOutcome {
                    location,
                    hint_fault: false,
                    promoted: false,
                    fault_cost: SimTime::ZERO,
                }
            })
            .collect()
    }

    /// The hot-page-selection promotion path: a repeat fault within the
    /// (dynamic) hot threshold, charged against the rate limit.
    fn hot_page_promotion(
        &mut self,
        page: PageId,
        node: NodeId,
        prev_fault: SimTime,
        now: SimTime,
    ) -> bool {
        let recent =
            prev_fault != SimTime::MAX && now.saturating_sub(prev_fault) <= self.hot_threshold;
        if !recent {
            self.pages[page.0 as usize].fault_streak = 0;
            self.stats.promotions_not_hot += 1;
            cxl_obs::counter_add("tier/promotions_not_hot", 1);
            return false;
        }
        let streak = {
            let meta = &mut self.pages[page.0 as usize];
            meta.fault_streak = meta.fault_streak.saturating_add(1);
            meta.fault_streak
        };
        if streak < self.promote_after_faults {
            self.stats.promotions_below_streak += 1;
            cxl_obs::counter_add("tier/promotions_below_streak", 1);
            return false;
        }
        self.promo_candidates_period += 1;
        let bytes = self.cfg.page_size as f64;
        let allowed = self
            .promo_bucket
            .as_mut()
            .map(|b| b.try_take(now, bytes))
            .unwrap_or(true);
        if allowed {
            self.promote(page, node, now)
        } else {
            self.stats.promotions_rate_limited += 1;
            cxl_obs::counter_add("tier/promotions_rate_limited", 1);
            false
        }
    }

    /// Moves a page to a DRAM node on the accessor socket, demoting a
    /// cold page if necessary. Returns `true` on success.
    fn promote(&mut self, page: PageId, from: NodeId, now: SimTime) -> bool {
        let Some(target) = self.promotion_target(now) else {
            return false;
        };
        self.move_page(page, from, target, now);
        self.stats.promotions += 1;
        if cxl_obs::active() {
            cxl_obs::counter_add("tier/promotions", 1);
            cxl_obs::counter_add(&format!("tier/promotions/to_node{}", target.0), 1);
        }
        true
    }

    /// Picks a DRAM node on the accessor socket, making room by demoting
    /// one cold page when every candidate is full.
    fn promotion_target(&mut self, now: SimTime) -> Option<NodeId> {
        let socket = self.cfg.accessor_socket;
        let candidates: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| n.tier.is_top_tier() && n.socket == socket)
            .map(|n| n.id)
            .collect();
        for &c in &candidates {
            if self.has_room(c) {
                return Some(c);
            }
        }
        // All full: demote one cold page from the first candidate.
        candidates
            .iter()
            .find(|&&c| self.demote_one(c, now))
            .copied()
    }

    /// Picks the node demoted pages should land on: a non-top-tier node
    /// with room, preferring the accessor socket. A remote-socket CXL
    /// hop costs ~485 ns per access against ~250 ns local (§3.2), so
    /// locality is worth preserving whenever local capacity remains.
    fn demotion_target(&self, prefer: SocketId) -> Option<NodeId> {
        cxl_stats::argmin_by(
            self.nodes
                .iter()
                .filter(|n| !n.tier.is_top_tier() && n.used_pages < n.capacity_pages),
            |n| (n.socket != prefer, n.id.0),
        )
        .map(|n| n.id)
    }

    /// Moves an already-unlinked demotion victim to `target`,
    /// re-validating capacity at move time: the CLOCK walk between
    /// target selection and the move can consume ring entries, and a
    /// stale target would silently over-fill a node. On a stale target
    /// the miss is counted, a fresh target is resolved, and if none
    /// exists the victim is re-linked at the ring front. Returns `true`
    /// if the page moved.
    fn demote_move(
        &mut self,
        page: PageId,
        from: NodeId,
        mut target: NodeId,
        now: SimTime,
    ) -> bool {
        if !self.has_room(target) {
            self.stats.demotions_target_full += 1;
            cxl_obs::counter_add("tier/demotions_target_full", 1);
            match self.demotion_target(self.cfg.accessor_socket) {
                Some(fresh) => target = fresh,
                None => {
                    self.rings[from.0].push_front(page);
                    return false;
                }
            }
        }
        let remote = self.nodes[target.0].socket != self.cfg.accessor_socket;
        self.move_page(page, from, target, now);
        self.stats.demotions += 1;
        if remote {
            self.stats.demotions_remote_socket += 1;
        }
        if cxl_obs::active() {
            cxl_obs::counter_add("tier/demotions", 1);
            cxl_obs::counter_add(
                if remote {
                    "tier/demotions_remote_socket"
                } else {
                    "tier/demotions_local_socket"
                },
                1,
            );
            cxl_obs::counter_add(&format!("tier/demotions/to_node{}", target.0), 1);
        }
        true
    }

    /// Demotes one cold page from a DRAM node to a CXL node with room,
    /// preferring same-socket targets. Returns `true` if a page moved.
    fn demote_one(&mut self, from: NodeId, now: SimTime) -> bool {
        let Some(target) = self.demotion_target(self.cfg.accessor_socket) else {
            return false;
        };
        // CLOCK second chance over the ring, bounded by its length.
        let mut passes = self.rings[from.0].len();
        while passes > 0 {
            passes -= 1;
            let Some(pid) = self.rings[from.0].pop_front() else {
                return false;
            };
            let meta = &mut self.pages[pid.0 as usize];
            // Lazy deletion: skip freed pages and entries that moved.
            if meta.freed || meta.location != Location::Node(from) {
                continue;
            }
            if meta.referenced {
                meta.referenced = false;
                self.rings[from.0].push_back(pid);
                continue;
            }
            return self.demote_move(pid, from, target, now);
        }
        // Everything was referenced: demote the current front anyway
        // (memory pressure wins, as in kernel reclaim).
        while let Some(pid) = self.rings[from.0].pop_front() {
            let meta = &self.pages[pid.0 as usize];
            if !meta.freed && meta.location == Location::Node(from) {
                return self.demote_move(pid, from, target, now);
            }
        }
        false
    }

    fn move_page(&mut self, page: PageId, from: NodeId, to: NodeId, now: SimTime) {
        debug_assert_ne!(from, to);
        let meta = &mut self.pages[page.0 as usize];
        debug_assert_eq!(meta.location, Location::Node(from));
        meta.location = Location::Node(to);
        meta.hint_installed = false;
        meta.fault_streak = 0;
        self.nodes[from.0].used_pages -= 1;
        self.nodes[to.0].used_pages += 1;
        self.rings[to.0].push_back(page);
        self.epoch.record_migration(from, to, self.cfg.page_size);
        self.stats.migration_bytes += self.cfg.page_size;
        cxl_obs::counter_add("tier/migration_bytes", self.cfg.page_size);
        if self.trace.is_some() {
            let event = if self.nodes[to.0].tier.is_top_tier() {
                TierEvent::Promoted { page, from, to }
            } else {
                TierEvent::Demoted { page, from, to }
            };
            self.record_trace(now, event);
        }
    }

    /// Explicitly evicts a page to SSD (application-managed tiering, e.g.
    /// KeyDB FLASH cold-value eviction).
    ///
    /// Errors if the page is already on SSD; under concurrent eviction
    /// pressure (or an evacuation racing an application's own cold-value
    /// logic) a stale victim choice is routine, not fatal.
    pub fn evict_to_ssd(&mut self, page: PageId) -> Result<(), TierError> {
        let meta = &mut self.pages[page.0 as usize];
        let Location::Node(node) = meta.location else {
            return Err(TierError::AlreadyOnSsd(page));
        };
        meta.location = Location::Ssd;
        meta.hint_installed = false;
        self.nodes[node.0].used_pages -= 1;
        self.stats.evictions_to_ssd += 1;
        cxl_obs::counter_add("tier/evictions_to_ssd", 1);
        self.epoch.record_ssd(self.cfg.page_size, true);
        self.record_trace(
            SimTime::ZERO.max(self.last_trace_time()),
            TierEvent::EvictedToSsd { page },
        );
        Ok(())
    }

    fn last_trace_time(&self) -> SimTime {
        // Evictions are application-driven and carry no explicit clock;
        // reuse the most recent traced timestamp for ordering.
        self.trace
            .as_ref()
            .and_then(|t| t.events().last().map(|e| e.at))
            .unwrap_or(SimTime::ZERO)
    }

    /// Loads a page back from SSD via the allocation policy.
    ///
    /// Errors with [`TierError::NotOnSsd`] if the page is resident, or
    /// [`TierError::OutOfMemory`] when no policy node has room.
    pub fn load_from_ssd(&mut self, page: PageId, now: SimTime) -> Result<(), TierError> {
        if !self.pages[page.0 as usize].location.is_ssd() {
            return Err(TierError::NotOnSsd(page));
        }
        let candidates = self.cursor.next_candidates();
        let target = candidates.into_iter().find(|&n| self.has_room(n));
        let Some(target) = target else {
            return Err(TierError::OutOfMemory(OutOfMemory));
        };
        let meta = &mut self.pages[page.0 as usize];
        meta.location = Location::Node(target);
        meta.last_access = now;
        self.nodes[target.0].used_pages += 1;
        self.rings[target.0].push_back(page);
        self.stats.ssd_loads += 1;
        cxl_obs::counter_add("tier/ssd_loads", 1);
        self.epoch.record_ssd(self.cfg.page_size, false);
        self.record_node_access(target, self.cfg.page_size, true);
        self.record_trace(now, TierEvent::LoadedFromSsd { page, to: target });
        Ok(())
    }

    /// Drains every resident page off `node` and fences it against
    /// future placements — the graceful-degradation path a failing
    /// expander triggers.
    ///
    /// The node's capacity drops to zero first (the allocator, demotion
    /// targeting, and SSD reload all test capacity, so nothing new can
    /// land while the drain runs), then resident pages move in id order
    /// to the best surviving node — other non-top-tier nodes first,
    /// preferring the accessor socket, then DRAM — and spill to SSD once
    /// nothing has room. The drained bytes are charged against the
    /// promotion rate limiter, so the report's `completed_at` reflects
    /// the same migration budget ordinary promotions compete for, and
    /// promotions right after a fault find the bucket drained.
    ///
    /// Errors with [`TierError::OutOfMemory`] when the survivors cannot
    /// absorb the pages and SSD spill is disabled; pages moved before
    /// the error stay moved (the node is already fenced, so a retry
    /// after freeing memory makes progress).
    pub fn evacuate(&mut self, node: NodeId, now: SimTime) -> Result<EvacuationReport, TierError> {
        if node.0 >= self.nodes.len() {
            return Err(TierError::UnknownNode(node));
        }
        self.nodes[node.0].capacity_pages = 0;
        self.drain_node(node, 0, now)
    }

    /// Shrinks `node` to `new_capacity_bytes`, draining overflow pages
    /// exactly like [`TierManager::evacuate`] — the partial-failure
    /// variant for capacity-loss faults (rows of backing DRAM mapped
    /// out rather than a dead device).
    pub fn shrink_node(
        &mut self,
        node: NodeId,
        new_capacity_bytes: u64,
        now: SimTime,
    ) -> Result<EvacuationReport, TierError> {
        if node.0 >= self.nodes.len() {
            return Err(TierError::UnknownNode(node));
        }
        let new_pages = new_capacity_bytes / self.cfg.page_size;
        if new_pages < self.nodes[node.0].capacity_pages {
            self.nodes[node.0].capacity_pages = new_pages;
        }
        self.drain_node(node, new_pages, now)
    }

    /// Raises `node`'s capacity to `new_capacity_bytes` — the inverse of
    /// [`TierManager::shrink_node`], used when a pool lease grows a
    /// host's window onto shared capacity. Growth never moves pages, so
    /// there is no report; a `new_capacity_bytes` at or below the
    /// current capacity is a no-op (shrinking must go through the
    /// draining path).
    pub fn grow_node(&mut self, node: NodeId, new_capacity_bytes: u64) -> Result<(), TierError> {
        if node.0 >= self.nodes.len() {
            return Err(TierError::UnknownNode(node));
        }
        let new_pages = new_capacity_bytes / self.cfg.page_size;
        if new_pages > self.nodes[node.0].capacity_pages {
            self.nodes[node.0].capacity_pages = new_pages;
        }
        Ok(())
    }

    /// Moves all but the first `keep_pages` resident pages (in id
    /// order) off `node`; shared tail of evacuate/shrink.
    fn drain_node(
        &mut self,
        node: NodeId,
        keep_pages: u64,
        now: SimTime,
    ) -> Result<EvacuationReport, TierError> {
        let victims: Vec<PageId> = self
            .pages
            .iter()
            .enumerate()
            .filter(|(_, m)| !m.freed && m.location == Location::Node(node))
            .map(|(i, _)| PageId(i as u64))
            .skip(keep_pages as usize)
            .collect();
        let mut moved = 0u64;
        let mut to_ssd = 0u64;
        for pid in victims {
            match self.evacuation_target(node) {
                Some(target) => {
                    self.move_page(pid, node, target, now);
                    moved += 1;
                }
                None if self.cfg.allow_ssd_spill => {
                    self.evict_to_ssd(pid)
                        .expect("evacuation victim is resident");
                    to_ssd += 1;
                }
                None => return Err(TierError::OutOfMemory(OutOfMemory)),
            }
        }
        if keep_pages == 0 {
            // A fully fenced node never yields its stale ring entries
            // again; free them instead of leaving them to lazy deletion.
            self.rings[node.0].clear();
        }

        // Charge the drained bytes against the promotion budget: burst
        // absorbs what it can now, the remainder extends the drain at
        // the configured rate.
        let total_pages = moved + to_ssd;
        let total_bytes = (total_pages * self.cfg.page_size) as f64;
        let completed_at = match self.promo_bucket.as_mut() {
            Some(b) if total_bytes > 0.0 => {
                let take = b.available(now).min(total_bytes);
                if take > 0.0 {
                    b.try_take(now, take);
                }
                now + SimTime::from_secs_f64((total_bytes - take) / b.rate_per_sec())
            }
            _ => now,
        };

        self.stats.evacuations += 1;
        self.stats.evacuated_pages += total_pages;
        self.stats.evacuated_to_ssd += to_ssd;
        if cxl_obs::active() {
            cxl_obs::counter_add("tier/evacuations", 1);
            cxl_obs::counter_add("tier/evacuated_pages", total_pages);
            cxl_obs::counter_add("tier/evacuated_to_ssd", to_ssd);
            cxl_obs::record("tier/evacuation_duration_ns", (completed_at - now).as_ns());
        }
        Ok(EvacuationReport {
            node,
            pages_moved: moved,
            pages_to_ssd: to_ssd,
            started_at: now,
            completed_at,
        })
    }

    /// Picks where an evacuated page should land: any surviving node
    /// with room, non-top-tier first (evacuated pages were already
    /// cold enough to live on an expander), preferring the accessor
    /// socket, lowest id as the tiebreak.
    fn evacuation_target(&self, failed: NodeId) -> Option<NodeId> {
        let prefer = self.cfg.accessor_socket;
        cxl_stats::argmin_by(
            self.nodes
                .iter()
                .filter(|n| n.id != failed && n.used_pages < n.capacity_pages),
            |n| (n.tier.is_top_tier(), n.socket != prefer, n.id.0),
        )
        .map(|n| n.id)
    }

    /// Samples per-node occupancy into `tier/node{N}/occupancy_pages`
    /// histograms, one point per tick. Ticks advance in simulated time,
    /// so the sampled distribution is deterministic.
    fn sample_occupancy(&self) {
        if !cxl_obs::active() {
            return;
        }
        for n in &self.nodes {
            if n.capacity_pages > 0 {
                cxl_obs::record(
                    &format!("tier/node{}/occupancy_pages", n.id.0),
                    n.used_pages,
                );
            }
        }
    }

    /// Runs periodic work up to `now`: hint-fault scanning, dynamic
    /// threshold adjustment, and watermark demotion.
    pub fn tick(&mut self, now: SimTime) {
        self.sample_occupancy();
        let (scan_period, scan_pages) = match &self.cfg.migration {
            MigrationMode::None => {
                self.demote_to_watermark(now);
                return;
            }
            MigrationMode::NumaBalancing(b) => (b.scan_period, b.scan_pages),
            MigrationMode::HotPageSelection(h) => (h.balancing.scan_period, h.balancing.scan_pages),
            MigrationMode::BandwidthAware(b) => {
                (b.base.balancing.scan_period, b.base.balancing.scan_pages)
            }
        };

        while self.next_scan <= now {
            self.scan_pass(scan_pages);
            self.next_scan += scan_period;
        }

        match &self.cfg.migration.clone() {
            MigrationMode::HotPageSelection(h)
                if h.dynamic_threshold => {
                    while self.next_adjust <= now {
                        self.adjust_threshold(h.promote_rate_limit_bytes_per_sec, h.adjust_period);
                        self.next_adjust += h.adjust_period;
                    }
                }
            MigrationMode::BandwidthAware(b)
                // Above the high watermark: actively shift load to CXL by
                // demoting (CLOCK-cold first) pages from DRAM nodes.
                if self.dram_bw_util > b.high_watermark => {
                    let ids: Vec<NodeId> = self
                        .nodes
                        .iter()
                        .filter(|n| n.tier.is_top_tier() && n.used_pages > 0)
                        .map(|n| n.id)
                        .collect();
                    let mut budget = b.demote_batch;
                    'outer: loop {
                        let mut any = false;
                        for &id in &ids {
                            if budget == 0 {
                                break 'outer;
                            }
                            if self.demote_one(id, now) {
                                budget -= 1;
                                any = true;
                            }
                        }
                        if !any {
                            break;
                        }
                    }
                }
            _ => {}
        }

        self.demote_to_watermark(now);
    }

    /// Installs hints on the next window of allocated pages (wraps).
    fn scan_pass(&mut self, scan_pages: usize) {
        if self.pages.is_empty() {
            return;
        }
        let len = self.pages.len() as u64;
        for _ in 0..scan_pages.min(self.pages.len()) {
            let idx = (self.scan_cursor % len) as usize;
            self.scan_cursor += 1;
            let meta = &mut self.pages[idx];
            if !meta.freed && matches!(meta.location, Location::Node(_)) {
                meta.hint_installed = true;
            }
        }
    }

    /// The patch's automatic threshold adjustment: compare the candidate
    /// promotion rate over the last period with the rate limit and nudge
    /// the hot threshold toward balance.
    fn adjust_threshold(&mut self, limit_bytes_per_sec: f64, period: SimTime) {
        let candidate_bytes = self.promo_candidates_period as f64 * self.cfg.page_size as f64;
        let budget = limit_bytes_per_sec * period.as_secs_f64();
        let t = self.hot_threshold.as_ns() as f64;
        let new = if candidate_bytes > budget * 1.1 {
            // Too many candidates: tighten (halve) the window.
            (t * 0.5).max(1e6)
        } else if candidate_bytes < budget * 0.5 {
            // Underusing the budget: loosen the window.
            (t * 1.5).min(10e9)
        } else {
            t
        };
        self.hot_threshold = SimTime::from_ns_f64(new);
        self.promo_candidates_period = 0;
    }

    /// Demotes cold pages from DRAM nodes above the watermark.
    fn demote_to_watermark(&mut self, now: SimTime) {
        let ids: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| n.tier.is_top_tier() && n.capacity_pages > 0)
            .map(|n| n.id)
            .collect();
        for id in ids {
            loop {
                let n = &self.nodes[id.0];
                let fill = n.used_pages as f64 / n.capacity_pages as f64;
                if fill <= self.cfg.demotion_watermark || !self.demote_one(id, now) {
                    break;
                }
            }
        }
    }

    /// Drains and returns the traffic accumulated since the last drain.
    pub fn drain_epoch(&mut self) -> TrafficEpoch {
        let mut e = std::mem::take(&mut self.epoch);
        for (i, b) in self.node_reads.iter_mut().enumerate() {
            if *b > 0 {
                *e.node_read_bytes.entry(NodeId(i)).or_insert(0) += *b;
                *b = 0;
            }
        }
        for (i, b) in self.node_writes.iter_mut().enumerate() {
            if *b > 0 {
                *e.node_write_bytes.entry(NodeId(i)).or_insert(0) += *b;
                *b = 0;
            }
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::migration::{HotPageConfig, NumaBalancingConfig};
    use crate::trace::TierEvent;
    use cxl_topology::{SncMode, Topology};

    fn topo() -> Topology {
        Topology::paper_testbed(SncMode::Disabled)
    }

    // Node layout with SNC disabled: 0,1 = DRAM sockets; 2,3 = CXL on s0.
    const DRAM0: NodeId = NodeId(0);
    const CXL0: NodeId = NodeId(2);

    fn small_caps(dram_pages: u64, cxl_pages: u64) -> Vec<(NodeId, u64)> {
        vec![
            (DRAM0, dram_pages * 4096),
            (NodeId(1), 0),
            (CXL0, cxl_pages * 4096),
            (NodeId(3), 0),
        ]
    }

    #[test]
    fn bind_allocates_on_bound_node_then_errors() {
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.capacity_override = small_caps(2, 0);
        let mut tm = TierManager::new(&topo(), cfg);
        let a = tm.alloc(SimTime::ZERO).unwrap();
        let b = tm.alloc(SimTime::ZERO).unwrap();
        assert_eq!(tm.location(a), Location::Node(DRAM0));
        assert_eq!(tm.location(b), Location::Node(DRAM0));
        assert_eq!(tm.alloc(SimTime::ZERO), Err(OutOfMemory));
        assert_eq!(tm.node_usage(DRAM0), (2, 2));
    }

    #[test]
    fn full_bind_spills_to_ssd_when_allowed() {
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.capacity_override = small_caps(1, 0);
        cfg.allow_ssd_spill = true;
        let mut tm = TierManager::new(&topo(), cfg);
        tm.alloc(SimTime::ZERO).unwrap();
        let spilled = tm.alloc(SimTime::ZERO).unwrap();
        assert_eq!(tm.location(spilled), Location::Ssd);
        assert_eq!(tm.stats().ssd_spills, 1);
    }

    #[test]
    fn interleave_1_1_splits_pages() {
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.policy = AllocPolicy::interleave(vec![DRAM0], vec![CXL0], 1, 1);
        let mut tm = TierManager::new(&topo(), cfg);
        for _ in 0..100 {
            tm.alloc(SimTime::ZERO).unwrap();
        }
        assert_eq!(tm.node_usage(DRAM0).0, 50);
        assert_eq!(tm.node_usage(CXL0).0, 50);
    }

    #[test]
    fn interleave_falls_through_when_tier_full() {
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.policy = AllocPolicy::interleave(vec![DRAM0], vec![CXL0], 3, 1);
        cfg.capacity_override = small_caps(10, 1000);
        let mut tm = TierManager::new(&topo(), cfg);
        for _ in 0..100 {
            tm.alloc(SimTime::ZERO).unwrap();
        }
        assert_eq!(tm.node_usage(DRAM0).0, 10);
        assert_eq!(tm.node_usage(CXL0).0, 90);
    }

    #[test]
    fn touch_accumulates_traffic() {
        let mut tm = TierManager::new(&topo(), TierConfig::bind(vec![DRAM0]));
        let p = tm.alloc(SimTime::ZERO).unwrap();
        tm.touch(p, Rw::Read, 64, SimTime::from_ns(10));
        tm.touch(p, Rw::Write, 128, SimTime::from_ns(20));
        let e = tm.drain_epoch();
        assert_eq!(e.node_read_bytes[&DRAM0], 64);
        assert_eq!(e.node_write_bytes[&DRAM0], 128);
        // Drain resets.
        assert_eq!(tm.drain_epoch().total_node_bytes(), 0);
    }

    fn hinted_manager(mode: MigrationMode) -> (TierManager, PageId) {
        let mut cfg = TierConfig::bind(vec![CXL0]);
        cfg.migration = mode;
        let mut tm = TierManager::new(&topo(), cfg);
        let p = tm.alloc(SimTime::ZERO).unwrap();
        // Force a scan so the page gets a hint.
        tm.tick(SimTime::from_ms(200));
        (tm, p)
    }

    #[test]
    fn numa_balancing_promotes_on_hint_fault() {
        let (mut tm, p) =
            hinted_manager(MigrationMode::NumaBalancing(NumaBalancingConfig::default()));
        assert_eq!(tm.location(p), Location::Node(CXL0));
        let out = tm.touch(p, Rw::Read, 64, SimTime::from_ms(300));
        assert!(out.hint_fault);
        assert!(out.promoted);
        assert!(out.fault_cost > SimTime::ZERO);
        // Promoted to a DRAM node on socket 0.
        assert_eq!(tm.location(p), Location::Node(DRAM0));
        assert_eq!(tm.stats().promotions, 1);
        assert!(tm.stats().migration_bytes >= 4096);
    }

    #[test]
    fn hot_page_selection_needs_two_faults_within_threshold() {
        let (mut tm, p) = hinted_manager(MigrationMode::HotPageSelection(HotPageConfig::default()));
        // First fault: not yet hot.
        let o1 = tm.touch(p, Rw::Read, 64, SimTime::from_ms(300));
        assert!(o1.hint_fault && !o1.promoted);
        assert_eq!(tm.stats().promotions_not_hot, 1);
        // Re-install hint, fault again inside the threshold: promotes.
        tm.tick(SimTime::from_ms(400));
        let o2 = tm.touch(p, Rw::Read, 64, SimTime::from_ms(500));
        assert!(o2.hint_fault && o2.promoted, "{o2:?}");
        assert_eq!(tm.location(p), Location::Node(DRAM0));
    }

    #[test]
    fn rate_limit_blocks_promotions() {
        let mut cfg = TierConfig::bind(vec![CXL0]);
        let hp = HotPageConfig {
            // Budget of ~1 page per second.
            promote_rate_limit_bytes_per_sec: 4096.0,
            dynamic_threshold: false,
            ..Default::default()
        };
        cfg.migration = MigrationMode::HotPageSelection(hp);
        let mut tm = TierManager::new(&topo(), cfg);
        let pages = tm.alloc_n(64, SimTime::ZERO).unwrap();
        // Burst allows one page; prime every page with a first fault.
        tm.tick(SimTime::from_ms(200));
        for &p in &pages {
            tm.touch(p, Rw::Read, 64, SimTime::from_ms(300));
        }
        tm.tick(SimTime::from_ms(400));
        let mut promoted = 0;
        for &p in &pages {
            if tm.touch(p, Rw::Read, 64, SimTime::from_ms(500)).promoted {
                promoted += 1;
            }
        }
        assert!(promoted <= 2, "promoted {promoted} despite rate limit");
        assert!(tm.stats().promotions_rate_limited > 0);
    }

    /// Builds a CXL-bound manager with a hot-page config requiring a
    /// streak of `n` in-window faults, plus one allocated page.
    fn streak_manager(n: u32) -> (TierManager, PageId) {
        let mut cfg = TierConfig::bind(vec![CXL0]);
        cfg.migration = MigrationMode::HotPageSelection(HotPageConfig {
            dynamic_threshold: false,
            promote_after_faults: n,
            ..Default::default()
        });
        let mut tm = TierManager::new(&topo(), cfg);
        let p = tm.alloc(SimTime::ZERO).unwrap();
        (tm, p)
    }

    /// Re-hints the page and faults it, returning the outcome.
    fn hint_and_fault(tm: &mut TierManager, p: PageId, at_ms: u64) -> AccessOutcome {
        tm.tick(SimTime::from_ms(at_ms));
        tm.touch(p, Rw::Read, 64, SimTime::from_ms(at_ms + 1))
    }

    #[test]
    fn promote_after_faults_defers_until_streak_builds() {
        let (mut tm, p) = streak_manager(3);
        // Fault 1: no previous fault, not hot.
        assert!(!hint_and_fault(&mut tm, p, 200).promoted);
        assert_eq!(tm.stats().promotions_not_hot, 1);
        // Faults 2 and 3: in-window but the streak (1, then 2) is below 3.
        assert!(!hint_and_fault(&mut tm, p, 300).promoted);
        assert!(!hint_and_fault(&mut tm, p, 400).promoted);
        assert_eq!(tm.stats().promotions_below_streak, 2);
        // Fault 4: streak reaches 3 — promoted.
        let out = hint_and_fault(&mut tm, p, 500);
        assert!(out.promoted, "{out:?}");
        assert_eq!(tm.location(p), Location::Node(DRAM0));
    }

    #[test]
    fn out_of_window_fault_resets_the_streak() {
        let (mut tm, p) = streak_manager(2);
        assert!(!hint_and_fault(&mut tm, p, 200).promoted); // First fault.
        assert!(!hint_and_fault(&mut tm, p, 300).promoted); // Streak 1 of 2.
                                                            // A fault outside the 1 s hot threshold zeroes the streak...
        assert!(!hint_and_fault(&mut tm, p, 2400).promoted);
        assert_eq!(tm.stats().promotions_not_hot, 2);
        // ...so the next in-window fault is streak 1 again, still deferred.
        assert!(!hint_and_fault(&mut tm, p, 2500).promoted);
        // And one more completes the streak.
        assert!(hint_and_fault(&mut tm, p, 2600).promoted);
    }

    #[test]
    fn set_promote_after_faults_retunes_live_manager() {
        let (mut tm, p) = streak_manager(1);
        assert_eq!(tm.promote_after_faults(), Some(1));
        tm.set_promote_after_faults(2).unwrap();
        assert_eq!(tm.promote_after_faults(), Some(2));
        assert!(!hint_and_fault(&mut tm, p, 200).promoted); // Not hot.
        assert!(!hint_and_fault(&mut tm, p, 300).promoted); // Streak 1 of 2.
        assert!(hint_and_fault(&mut tm, p, 400).promoted);
        // Zero is rejected, config untouched.
        assert!(tm.set_promote_after_faults(0).is_err());
        assert_eq!(tm.promote_after_faults(), Some(2));
    }

    #[test]
    fn set_promote_after_faults_requires_rate_limited_mode() {
        let mut tm = TierManager::new(&topo(), TierConfig::bind(vec![DRAM0]));
        assert!(tm.promote_after_faults().is_none());
        assert!(tm.set_promote_after_faults(2).is_err());
    }

    #[test]
    fn alloc_preferring_overrides_policy_until_full() {
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.capacity_override = small_caps(4, 1);
        let mut tm = TierManager::new(&topo(), cfg);
        // Preferred node wins over the Bind(DRAM0) policy.
        let a = tm.alloc_preferring(CXL0, SimTime::ZERO).unwrap();
        assert_eq!(tm.location(a), Location::Node(CXL0));
        // CXL full: falls back to the policy node.
        let b = tm.alloc_preferring(CXL0, SimTime::ZERO).unwrap();
        assert_eq!(tm.location(b), Location::Node(DRAM0));
        // Unknown node is an error, not a panic.
        assert!(tm.alloc_preferring(NodeId(99), SimTime::ZERO).is_err());
    }

    #[test]
    fn promotion_demotes_cold_page_when_dram_full() {
        let mut cfg = TierConfig::bind(vec![CXL0]);
        cfg.migration = MigrationMode::NumaBalancing(NumaBalancingConfig::default());
        cfg.capacity_override = small_caps(1, 100);
        // Watermark 1.0 disables background demotion; only promotion
        // pressure forces the swap.
        cfg.demotion_watermark = 1.0;
        let mut tm = TierManager::new(&topo(), cfg);
        let cold = {
            // Fill the single DRAM slot with a direct allocation.
            let mut c2 = TierConfig::bind(vec![DRAM0]);
            c2.capacity_override = small_caps(1, 100);
            // Reuse the same manager instead: allocate via policy Bind(CXL),
            // so place the cold page manually through promotion.
            drop(c2);
            let p = tm.alloc(SimTime::ZERO).unwrap(); // On CXL.
            tm.tick(SimTime::from_ms(200));
            tm.touch(p, Rw::Read, 64, SimTime::from_ms(250)); // Promote: DRAM now full.
            assert_eq!(tm.location(p), Location::Node(DRAM0));
            p
        };
        // Age the cold page's CLOCK bit via a demotion attempt cycle.
        let hot = tm.alloc(SimTime::ZERO).unwrap();
        tm.tick(SimTime::from_ms(400));
        let out = tm.touch(hot, Rw::Read, 64, SimTime::from_ms(450));
        assert!(out.promoted, "{out:?}");
        assert_eq!(tm.location(hot), Location::Node(DRAM0));
        // The cold page was pushed out to CXL.
        assert_eq!(tm.location(cold), Location::Node(CXL0));
        assert!(tm.stats().demotions >= 1);
    }

    #[test]
    fn watermark_demotion_drains_overfull_dram() {
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.capacity_override = small_caps(10, 100);
        cfg.demotion_watermark = 0.5;
        cfg.migration = MigrationMode::NumaBalancing(NumaBalancingConfig::default());
        let mut tm = TierManager::new(&topo(), cfg);
        tm.alloc_n(10, SimTime::ZERO).unwrap();
        assert_eq!(tm.node_usage(DRAM0).0, 10);
        tm.tick(SimTime::from_ms(100));
        assert_eq!(tm.node_usage(DRAM0).0, 5);
        assert_eq!(tm.node_usage(CXL0).0, 5);
    }

    #[test]
    fn evict_and_reload_ssd() {
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.allow_ssd_spill = true;
        let mut tm = TierManager::new(&topo(), cfg);
        let p = tm.alloc(SimTime::ZERO).unwrap();
        tm.evict_to_ssd(p).unwrap();
        assert!(tm.location(p).is_ssd());
        assert_eq!(tm.node_usage(DRAM0).0, 0);
        tm.load_from_ssd(p, SimTime::from_ms(1)).unwrap();
        assert_eq!(tm.location(p), Location::Node(DRAM0));
        assert_eq!(tm.stats().ssd_loads, 1);
    }

    #[test]
    fn dynamic_threshold_tightens_under_candidate_flood() {
        let mut cfg = TierConfig::bind(vec![CXL0]);
        let hp = HotPageConfig {
            promote_rate_limit_bytes_per_sec: 4096.0, // 1 page/s budget.
            dynamic_threshold: true,
            ..Default::default()
        };
        cfg.migration = MigrationMode::HotPageSelection(hp);
        let mut tm = TierManager::new(&topo(), cfg);
        let before = tm.hot_threshold();
        let pages = tm.alloc_n(512, SimTime::ZERO).unwrap();
        // Generate many candidates: two fault rounds per page.
        tm.tick(SimTime::from_ms(100));
        for &p in &pages {
            tm.touch(p, Rw::Read, 64, SimTime::from_ms(150));
        }
        tm.tick(SimTime::from_ms(300));
        for &p in &pages {
            tm.touch(p, Rw::Read, 64, SimTime::from_ms(350));
        }
        // Cross an adjustment boundary.
        tm.tick(SimTime::from_ms(1100));
        assert!(
            tm.hot_threshold() < before,
            "threshold {:?} not tightened from {:?}",
            tm.hot_threshold(),
            before
        );
    }

    #[test]
    fn residency_reports_all_locations() {
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.policy = AllocPolicy::interleave(vec![DRAM0], vec![CXL0], 1, 1);
        cfg.allow_ssd_spill = true;
        let mut tm = TierManager::new(&topo(), cfg);
        for _ in 0..10 {
            tm.alloc(SimTime::ZERO).unwrap();
        }
        let p = tm.alloc(SimTime::ZERO).unwrap();
        tm.evict_to_ssd(p).unwrap();
        let res = tm.residency();
        let total: u64 = res.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 11);
        assert!(res.iter().any(|&(l, _)| l == Location::Ssd));
    }

    fn bw_aware_manager() -> TierManager {
        use crate::migration::BandwidthAwareConfig;
        let mut cfg = TierConfig::bind(vec![CXL0]);
        cfg.migration = MigrationMode::BandwidthAware(BandwidthAwareConfig {
            base: HotPageConfig {
                balancing: NumaBalancingConfig {
                    scan_period: SimTime::from_ms(10),
                    scan_pages: 4096,
                    hot_threshold: SimTime::from_secs(1),
                    hint_fault_cost: SimTime::from_ns(300),
                },
                promote_rate_limit_bytes_per_sec: 1e12,
                dynamic_threshold: false,
                adjust_period: SimTime::from_secs(1),
                promote_after_faults: 1,
            },
            high_watermark: 0.75,
            low_watermark: 0.60,
            demote_batch: 8,
        });
        TierManager::new(&topo(), cfg)
    }

    #[test]
    fn bandwidth_aware_promotes_when_dram_is_calm() {
        let mut tm = bw_aware_manager();
        let p = tm.alloc(SimTime::ZERO).unwrap();
        tm.set_dram_bandwidth_util(0.30);
        tm.tick(SimTime::from_ms(20));
        tm.touch(p, Rw::Read, 64, SimTime::from_ms(25)); // First fault.
        tm.tick(SimTime::from_ms(40));
        let out = tm.touch(p, Rw::Read, 64, SimTime::from_ms(45));
        assert!(out.promoted, "{out:?}");
        assert_eq!(tm.location(p), Location::Node(DRAM0));
    }

    #[test]
    fn bandwidth_aware_suppresses_promotion_under_pressure() {
        let mut tm = bw_aware_manager();
        let p = tm.alloc(SimTime::ZERO).unwrap();
        tm.set_dram_bandwidth_util(0.90);
        tm.tick(SimTime::from_ms(20));
        tm.touch(p, Rw::Read, 64, SimTime::from_ms(25));
        tm.tick(SimTime::from_ms(40));
        let out = tm.touch(p, Rw::Read, 64, SimTime::from_ms(45));
        assert!(!out.promoted, "{out:?}");
        assert_eq!(tm.location(p), Location::Node(CXL0));
        assert!(tm.stats().promotions_bw_suppressed > 0);
    }

    #[test]
    fn bandwidth_aware_demotes_under_pressure() {
        use crate::migration::BandwidthAwareConfig;
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.migration = MigrationMode::BandwidthAware(BandwidthAwareConfig {
            demote_batch: 8,
            ..Default::default()
        });
        let mut tm = TierManager::new(&topo(), cfg);
        tm.alloc_n(100, SimTime::ZERO).unwrap();
        assert_eq!(tm.node_usage(DRAM0).0, 100);
        tm.set_dram_bandwidth_util(0.95);
        tm.tick(SimTime::from_ms(200));
        // One tick demotes up to demote_batch cold pages to CXL.
        let (dram_used, _) = tm.node_usage(DRAM0);
        assert!(dram_used <= 92, "dram used {dram_used}");
        assert!(tm.node_usage(CXL0).0 >= 8);
        // Pressure released: no further demotion.
        tm.set_dram_bandwidth_util(0.40);
        let before = tm.node_usage(DRAM0).0;
        tm.tick(SimTime::from_ms(400));
        assert_eq!(tm.node_usage(DRAM0).0, before);
    }

    #[test]
    fn dram_util_is_clamped() {
        let mut tm = bw_aware_manager();
        tm.set_dram_bandwidth_util(7.0);
        assert_eq!(tm.dram_bandwidth_util(), 1.0);
        tm.set_dram_bandwidth_util(-1.0);
        assert_eq!(tm.dram_bandwidth_util(), 0.0);
    }

    #[test]
    fn trace_captures_migration_timeline() {
        let (mut tm, p) =
            hinted_manager(MigrationMode::NumaBalancing(NumaBalancingConfig::default()));
        tm.enable_trace(16);
        tm.touch(p, Rw::Read, 64, SimTime::from_ms(300));
        let trace = tm.trace().expect("trace enabled");
        assert_eq!(
            trace.count_matching(|e| matches!(e, TierEvent::Promoted { .. })),
            1
        );
        let ev = trace.events().next().unwrap();
        assert_eq!(ev.at, SimTime::from_ms(300));
        // Draining empties it.
        assert_eq!(tm.trace_mut().unwrap().drain().len(), 1);
        assert!(tm.trace().unwrap().is_empty());
    }

    #[test]
    fn trace_disabled_by_default() {
        let tm = TierManager::new(&topo(), TierConfig::bind(vec![DRAM0]));
        assert!(tm.trace().is_none());
    }

    #[test]
    fn bandwidth_util_sanitizes_non_finite_input() {
        let mut tm = TierManager::new(&topo(), TierConfig::bind(vec![DRAM0]));
        tm.set_dram_bandwidth_util(0.5);
        assert_eq!(tm.dram_bandwidth_util(), 0.5);
        // A NaN ratio (0/0 from an idle interval) must not stick: every
        // later watermark comparison against a NaN util is false, which
        // would silently disable the §5.3 policy.
        tm.set_dram_bandwidth_util(f64::NAN);
        assert_eq!(tm.dram_bandwidth_util(), 0.0);
        tm.set_dram_bandwidth_util(f64::INFINITY);
        assert_eq!(tm.dram_bandwidth_util(), 1.0);
        tm.set_dram_bandwidth_util(f64::NEG_INFINITY);
        assert_eq!(tm.dram_bandwidth_util(), 0.0);
        tm.set_dram_bandwidth_util(-3.0);
        assert_eq!(tm.dram_bandwidth_util(), 0.0);
        tm.set_dram_bandwidth_util(7.0);
        assert_eq!(tm.dram_bandwidth_util(), 1.0);
    }

    #[test]
    fn empty_manager_snapshot_has_finite_ratios() {
        // Zero resident pages: top_tier_fraction's denominator is 0 and
        // the accessor must return 0.0, not NaN.
        let tm = TierManager::new(&topo(), TierConfig::bind(vec![DRAM0]));
        let snap = tm.snapshot();
        assert_eq!(snap.resident_pages(), 0);
        assert_eq!(snap.top_tier_fraction, 0.0);
        assert_eq!(snap.stats.promotion_rate(), 0.0);
    }

    #[test]
    fn snapshot_reflects_placement() {
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.policy = AllocPolicy::interleave(vec![DRAM0], vec![CXL0], 3, 1);
        let mut tm = TierManager::new(&topo(), cfg);
        tm.alloc_n(100, SimTime::ZERO).unwrap();
        let snap = tm.snapshot();
        assert_eq!(snap.resident_pages(), 100);
        assert!((snap.top_tier_fraction - 0.75).abs() < 1e-9);
        assert_eq!(snap.ssd_pages, 0);
        assert!(snap.summary().contains("75% top tier"));
    }

    #[test]
    fn set_interleave_retunes_future_allocations() {
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.policy = AllocPolicy::interleave(vec![DRAM0], vec![CXL0], 1, 1);
        let mut tm = TierManager::new(&topo(), cfg);
        tm.alloc_n(100, SimTime::ZERO).unwrap();
        assert_eq!(tm.node_usage(DRAM0).0, 50);
        // Retune to 3:1 like echoing into the sysctl.
        tm.set_interleave(3, 1).unwrap();
        tm.alloc_n(100, SimTime::ZERO).unwrap();
        assert_eq!(tm.node_usage(DRAM0).0, 125);
        assert_eq!(tm.node_usage(CXL0).0, 75);
    }

    #[test]
    fn set_interleave_requires_interleave_policy() {
        let mut tm = TierManager::new(&topo(), TierConfig::bind(vec![DRAM0]));
        let err = tm
            .set_interleave(1, 1)
            .expect_err("bind policy must reject");
        assert!(matches!(err, TierError::WrongPolicy(_)), "{err:?}");
        assert!(err.to_string().contains("requires an InterleaveNm policy"));
    }

    #[test]
    fn set_promote_rate_retunes_config_and_bucket() {
        let mut tm = bw_aware_manager();
        assert_eq!(tm.promote_rate(), Some(1e12));
        tm.set_promote_rate(SimTime::from_ms(10), 4096.0).unwrap();
        assert_eq!(tm.promote_rate(), Some(4096.0));
        // The live bucket follows: the old (effectively unlimited)
        // budget is gone, so a promotion-sized take beyond the new
        // one-second burst fails.
        let b = tm.promo_bucket.as_mut().unwrap();
        assert_eq!(b.rate_per_sec(), 4096.0);
        assert_eq!(b.burst(), 4096.0);
        assert!(!b.try_take(SimTime::from_ms(10), 8192.0));
    }

    #[test]
    fn set_promote_rate_rejects_bad_inputs() {
        let mut tm = bw_aware_manager();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = tm
                .set_promote_rate(SimTime::ZERO, bad)
                .expect_err("invalid rate must be rejected");
            assert!(matches!(err, TierError::InvalidConfig(_)), "{err:?}");
        }
        assert_eq!(tm.promote_rate(), Some(1e12), "config unchanged");
        // Non-rate-limited modes have no bucket to retune.
        let mut plain = TierManager::new(&topo(), TierConfig::bind(vec![DRAM0]));
        assert_eq!(plain.promote_rate(), None);
        let err = plain
            .set_promote_rate(SimTime::ZERO, 4096.0)
            .expect_err("MigrationMode::None must reject");
        assert!(matches!(err, TierError::WrongPolicy(_)), "{err:?}");
    }

    #[test]
    fn set_demote_batch_retunes_bandwidth_aware_mode() {
        let mut tm = bw_aware_manager();
        assert_eq!(tm.demote_batch(), Some(8));
        tm.set_demote_batch(32).unwrap();
        assert_eq!(tm.demote_batch(), Some(32));
        // Zero re-checks the construction-time validation.
        let err = tm.set_demote_batch(0).expect_err("zero batch rejected");
        assert!(matches!(err, TierError::InvalidConfig(_)), "{err:?}");
        assert_eq!(tm.demote_batch(), Some(32), "config unchanged");
        // Other modes cannot demote by batch at all.
        let mut plain = TierManager::new(&topo(), TierConfig::bind(vec![DRAM0]));
        assert_eq!(plain.demote_batch(), None);
        assert!(matches!(
            plain.set_demote_batch(8),
            Err(TierError::WrongPolicy(_))
        ));
    }

    #[test]
    fn set_demote_batch_changes_live_demotion_pressure() {
        use crate::migration::BandwidthAwareConfig;
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.migration = MigrationMode::BandwidthAware(BandwidthAwareConfig {
            demote_batch: 4,
            ..Default::default()
        });
        let mut tm = TierManager::new(&topo(), cfg);
        tm.alloc_n(100, SimTime::ZERO).unwrap();
        tm.set_dram_bandwidth_util(0.95);
        tm.tick(SimTime::from_ms(200));
        let after_small = tm.node_usage(CXL0).0;
        assert!((4..=8).contains(&after_small), "{after_small}");
        // Widen the batch: the next over-watermark tick demotes more.
        tm.set_demote_batch(32).unwrap();
        tm.tick(SimTime::from_ms(400));
        assert!(
            tm.node_usage(CXL0).0 >= after_small + 16,
            "batch retune had no effect: {}",
            tm.node_usage(CXL0).0
        );
    }

    #[test]
    fn free_releases_capacity_once() {
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.capacity_override = small_caps(2, 0);
        let mut tm = TierManager::new(&topo(), cfg);
        let a = tm.alloc(SimTime::ZERO).unwrap();
        tm.alloc(SimTime::ZERO).unwrap();
        assert!(tm.alloc(SimTime::ZERO).is_err());
        tm.free(a);
        assert_eq!(tm.node_usage(DRAM0).0, 1);
        assert!(tm.alloc(SimTime::ZERO).is_ok());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut tm = TierManager::new(&topo(), TierConfig::bind(vec![DRAM0]));
        let p = tm.alloc(SimTime::ZERO).unwrap();
        tm.free(p);
        tm.free(p);
    }

    #[test]
    #[should_panic(expected = "policy references unknown node")]
    fn unknown_node_in_policy_panics() {
        TierManager::new(&topo(), TierConfig::bind(vec![NodeId(99)]));
    }

    /// Two sockets, each with DRAM + one CXL expander.
    /// Nodes: 0 = DRAM s0, 1 = DRAM s1, 2 = CXL s0, 3 = CXL s1.
    fn two_socket_cxl_topo() -> Topology {
        use cxl_topology::builder::TopologyBuilder;
        use cxl_topology::{CxlDevice, DdrGeneration};
        TopologyBuilder::new()
            .socket(56, 8, DdrGeneration::Ddr5_4800, 512)
            .with_cxl(CxlDevice::a1000())
            .socket(56, 8, DdrGeneration::Ddr5_4800, 512)
            .with_cxl(CxlDevice::a1000())
            .upi_links(2, 62.4, 30.0)
            .build()
    }

    #[test]
    fn demotion_prefers_accessor_socket_cxl() {
        // Workload runs on socket 1; node-id-order first-fit would pick
        // the socket-0 expander (node 2) even though the local one
        // (node 3) has room.
        let mut cfg = TierConfig::bind(vec![NodeId(1)]);
        cfg.accessor_socket = SocketId(1);
        cfg.capacity_override = vec![
            (NodeId(0), 0),
            (NodeId(1), 10 * 4096),
            (NodeId(2), 100 * 4096),
            (NodeId(3), 4 * 4096),
        ];
        cfg.demotion_watermark = 0.5;
        cfg.migration = MigrationMode::NumaBalancing(NumaBalancingConfig::default());
        let mut tm = TierManager::new(&two_socket_cxl_topo(), cfg);

        let reg = std::sync::Arc::new(cxl_obs::Registry::new());
        let guard = cxl_obs::scope(reg.clone());
        tm.alloc_n(10, SimTime::ZERO).unwrap();
        tm.tick(SimTime::from_ms(100));
        drop(guard);

        // Watermark 0.5 demotes 5 pages: local CXL takes its full 4,
        // only the overflow page crosses the UPI link.
        assert_eq!(tm.node_usage(NodeId(1)).0, 5);
        assert_eq!(tm.node_usage(NodeId(3)).0, 4);
        assert_eq!(tm.node_usage(NodeId(2)).0, 1);
        assert_eq!(reg.counter("tier/demotions/to_node3"), Some(4));
        assert_eq!(reg.counter("tier/demotions/to_node2"), Some(1));
        assert_eq!(reg.counter("tier/demotions_local_socket"), Some(4));
        assert_eq!(reg.counter("tier/demotions_remote_socket"), Some(1));
        assert_eq!(tm.stats().demotions, 5);
        assert_eq!(tm.stats().demotions_remote_socket, 1);
        // The move-time re-validation never fired: each demote_one call
        // resolved a fresh in-capacity target.
        assert_eq!(tm.stats().demotions_target_full, 0);
    }

    #[test]
    fn demotion_stays_local_until_local_cxl_exhausted() {
        let mut cfg = TierConfig::bind(vec![NodeId(0)]);
        cfg.accessor_socket = SocketId(0);
        cfg.capacity_override = vec![
            (NodeId(0), 8 * 4096),
            (NodeId(1), 0),
            (NodeId(2), 8 * 4096),
            (NodeId(3), 8 * 4096),
        ];
        cfg.demotion_watermark = 0.25;
        cfg.migration = MigrationMode::NumaBalancing(NumaBalancingConfig::default());
        let mut tm = TierManager::new(&two_socket_cxl_topo(), cfg);

        let reg = std::sync::Arc::new(cxl_obs::Registry::new());
        let guard = cxl_obs::scope(reg.clone());
        tm.alloc_n(8, SimTime::ZERO).unwrap();
        tm.tick(SimTime::from_ms(1));
        drop(guard);
        // Six pages leave DRAM to reach the 0.25 watermark; the local
        // expander had room for all of them, so none crossed sockets.
        assert_eq!(tm.node_usage(NodeId(2)).0, 6);
        assert_eq!(tm.node_usage(NodeId(3)).0, 0);
        assert_eq!(reg.counter("tier/demotions_local_socket"), Some(6));
        assert_eq!(reg.counter("tier/demotions_remote_socket"), None);
    }

    #[test]
    fn occupancy_histograms_sampled_each_tick() {
        let mut cfg = TierConfig::bind(vec![DRAM0]);
        cfg.capacity_override = small_caps(10, 100);
        let mut tm = TierManager::new(&topo(), cfg);
        let reg = std::sync::Arc::new(cxl_obs::Registry::new());
        let guard = cxl_obs::scope(reg.clone());
        tm.alloc_n(4, SimTime::ZERO).unwrap();
        tm.tick(SimTime::from_ms(1));
        tm.alloc_n(3, SimTime::ZERO).unwrap();
        tm.tick(SimTime::from_ms(2));
        drop(guard);
        let h = reg
            .histogram("tier/node0/occupancy_pages")
            .expect("occupancy sampled");
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 4);
        assert_eq!(h.max(), 7);
        // Zero-capacity nodes are not sampled.
        assert!(reg.histogram("tier/node1/occupancy_pages").is_none());
    }

    #[test]
    fn evacuate_moves_every_page_and_fences_the_node() {
        let mut cfg = TierConfig::bind(vec![CXL0]);
        cfg.capacity_override = small_caps(8, 8);
        let mut tm = TierManager::new(&topo(), cfg);
        tm.alloc_n(8, SimTime::ZERO).unwrap();
        assert_eq!(tm.node_usage(CXL0).0, 8);

        let report = tm.evacuate(CXL0, SimTime::from_ms(1)).unwrap();
        assert_eq!(report.pages_moved, 8);
        assert_eq!(report.pages_to_ssd, 0);
        assert_eq!(report.total_pages(), 8);
        // Only DRAM0 has room, so every page lands there.
        assert_eq!(tm.node_usage(CXL0), (0, 0));
        assert_eq!(tm.node_usage(DRAM0).0, 8);
        assert_eq!(tm.stats().evacuations, 1);
        assert_eq!(tm.stats().evacuated_pages, 8);
        // The fenced node rejects future placements.
        assert!(tm.alloc(SimTime::from_ms(2)).is_err());
    }

    #[test]
    fn evacuation_prefers_surviving_expander_over_dram() {
        let mut cfg = TierConfig::bind(vec![NodeId(2)]);
        cfg.capacity_override = vec![
            (NodeId(0), 64 * 4096),
            (NodeId(1), 64 * 4096),
            (NodeId(2), 64 * 4096),
            (NodeId(3), 64 * 4096),
        ];
        let mut tm = TierManager::new(&two_socket_cxl_topo(), cfg);
        tm.alloc_n(6, SimTime::ZERO).unwrap();
        tm.evacuate(NodeId(2), SimTime::from_ms(1)).unwrap();
        // Node 3 is the surviving expander (CXL on socket 1); cold
        // evacuated pages should stay off DRAM while it has room.
        assert_eq!(tm.node_usage(NodeId(3)).0, 6);
        assert_eq!(tm.node_usage(NodeId(0)).0, 0);
        assert_eq!(tm.node_usage(NodeId(1)).0, 0);
    }

    #[test]
    fn evacuation_spills_to_ssd_when_survivors_are_full() {
        let mut cfg = TierConfig::bind(vec![CXL0]);
        cfg.capacity_override = small_caps(2, 4);
        cfg.allow_ssd_spill = true;
        let mut tm = TierManager::new(&topo(), cfg);
        tm.alloc_n(4, SimTime::ZERO).unwrap();
        let report = tm.evacuate(CXL0, SimTime::from_ms(1)).unwrap();
        assert_eq!(report.pages_moved, 2);
        assert_eq!(report.pages_to_ssd, 2);
        assert_eq!(tm.node_usage(DRAM0).0, 2);
        assert_eq!(tm.stats().evacuated_to_ssd, 2);
        let on_ssd = tm
            .residency()
            .iter()
            .find(|&&(l, _)| l == Location::Ssd)
            .map(|&(_, c)| c);
        assert_eq!(on_ssd, Some(2));
    }

    #[test]
    fn evacuation_without_spill_errors_when_survivors_are_full() {
        let mut cfg = TierConfig::bind(vec![CXL0]);
        cfg.capacity_override = small_caps(2, 4);
        cfg.allow_ssd_spill = false;
        let mut tm = TierManager::new(&topo(), cfg);
        tm.alloc_n(4, SimTime::ZERO).unwrap();
        let err = tm.evacuate(CXL0, SimTime::from_ms(1)).expect_err("no room");
        assert!(matches!(err, TierError::OutOfMemory(_)), "{err:?}");
        // The node stays fenced even though the drain was partial, so a
        // retry after freeing memory makes progress.
        assert_eq!(tm.node_usage(CXL0).1, 0);
    }

    #[test]
    fn evacuation_is_charged_against_the_promotion_budget() {
        let mut cfg = TierConfig::bind(vec![CXL0]);
        cfg.capacity_override = small_caps(16, 16);
        cfg.migration = MigrationMode::HotPageSelection(HotPageConfig {
            // 1 page/s budget with a one-second (1-page) burst.
            promote_rate_limit_bytes_per_sec: 4096.0,
            ..Default::default()
        });
        let mut tm = TierManager::new(&topo(), cfg);
        tm.alloc_n(8, SimTime::ZERO).unwrap();
        let report = tm.evacuate(CXL0, SimTime::from_secs(1)).unwrap();
        // Burst covers 1 page instantly; the other 7 drain at 1 page/s.
        assert_eq!(report.started_at, SimTime::from_secs(1));
        assert_eq!(report.completed_at, SimTime::from_secs(8));
        assert_eq!(report.duration(), SimTime::from_secs(7));
    }

    #[test]
    fn shrink_node_drains_only_the_overflow() {
        let mut cfg = TierConfig::bind(vec![CXL0]);
        cfg.capacity_override = small_caps(8, 4);
        let mut tm = TierManager::new(&topo(), cfg);
        tm.alloc_n(4, SimTime::ZERO).unwrap();
        let report = tm.shrink_node(CXL0, 2 * 4096, SimTime::from_ms(1)).unwrap();
        assert_eq!(report.pages_moved, 2);
        assert_eq!(tm.node_usage(CXL0), (2, 2));
        assert_eq!(tm.node_usage(DRAM0).0, 2);
        // Growing back via shrink_node is a no-op on capacity.
        let report = tm
            .shrink_node(CXL0, 64 * 4096, SimTime::from_ms(2))
            .unwrap();
        assert_eq!(report.total_pages(), 0);
        assert_eq!(tm.node_usage(CXL0), (2, 2));
    }

    #[test]
    fn evacuate_unknown_node_is_an_error() {
        let mut tm = TierManager::new(&topo(), TierConfig::bind(vec![DRAM0]));
        let err = tm.evacuate(NodeId(9), SimTime::ZERO).expect_err("bad node");
        assert!(matches!(err, TierError::UnknownNode(NodeId(9))), "{err:?}");
    }

    #[test]
    fn grow_node_raises_capacity_without_moving_pages() {
        let mut cfg = TierConfig::bind(vec![CXL0]);
        cfg.capacity_override = small_caps(8, 4);
        let mut tm = TierManager::new(&topo(), cfg);
        tm.alloc_n(4, SimTime::ZERO).unwrap();
        tm.grow_node(CXL0, 16 * 4096).unwrap();
        assert_eq!(tm.node_usage(CXL0), (4, 16));
        // Growth is monotone: a smaller target never shrinks.
        tm.grow_node(CXL0, 2 * 4096).unwrap();
        assert_eq!(tm.node_usage(CXL0), (4, 16));
        // Lease-shrink then re-grow round-trips through both paths.
        let report = tm.shrink_node(CXL0, 2 * 4096, SimTime::from_ms(1)).unwrap();
        assert_eq!(report.pages_moved, 2);
        tm.grow_node(CXL0, 8 * 4096).unwrap();
        assert_eq!(tm.node_usage(CXL0), (2, 8));
        let err = tm.grow_node(NodeId(9), 4096).expect_err("bad node");
        assert!(matches!(err, TierError::UnknownNode(NodeId(9))), "{err:?}");
    }
}
