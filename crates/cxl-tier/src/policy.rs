//! Allocation policies.

use serde::{Deserialize, Serialize};

use cxl_topology::NodeId;

/// Where new pages are placed.
///
/// Mirrors the placement tools the paper uses: `numactl` binding
/// (§4.1.1, §4.3.1), the N:M tiered interleave kernel patch (§2.3), and
/// default local-first allocation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocPolicy {
    /// Fill the listed nodes in order; spill to SSD (if enabled) when all
    /// are full. `Bind([dram])` models `numactl --membind`.
    Bind(Vec<NodeId>),
    /// Try the preferred node first, then the fallbacks in order.
    Preferred {
        /// First-choice node.
        node: NodeId,
        /// Fallback nodes, tried in order when the preferred one is full.
        fallback: Vec<NodeId>,
    },
    /// The N:M tiered interleave patch: per cycle, `n` pages go to the
    /// `top` nodes (round-robin) and `m` pages to the `low` nodes.
    ///
    /// The paper's "3:1" is `n = 3, m = 1` (75 % MMEM / 25 % CXL).
    InterleaveNm {
        /// Top-tier (DRAM) nodes.
        top: Vec<NodeId>,
        /// Lower-tier (CXL) nodes.
        low: Vec<NodeId>,
        /// Pages per cycle to the top tier.
        n: u32,
        /// Pages per cycle to the lower tier.
        m: u32,
    },
}

impl AllocPolicy {
    /// Builds an N:M interleave from the paper's ratio notation
    /// (`3:1`, `1:1`, `1:3`).
    ///
    /// # Panics
    ///
    /// Panics if `n + m == 0` or either node list is empty while its
    /// share is nonzero.
    pub fn interleave(top: Vec<NodeId>, low: Vec<NodeId>, n: u32, m: u32) -> Self {
        assert!(n + m > 0, "N:M interleave needs a nonzero cycle");
        assert!(n == 0 || !top.is_empty(), "top share with no top nodes");
        assert!(m == 0 || !low.is_empty(), "low share with no low nodes");
        AllocPolicy::InterleaveNm { top, low, n, m }
    }

    /// Fraction of pages directed to the top tier.
    pub fn top_fraction(&self) -> f64 {
        match self {
            AllocPolicy::InterleaveNm { n, m, .. } => *n as f64 / (*n + *m) as f64,
            _ => 1.0,
        }
    }
}

/// Iterator-like cursor implementing a policy's placement order.
#[derive(Debug, Clone)]
pub(crate) struct PolicyCursor {
    policy: AllocPolicy,
    /// Position in the N+M interleave cycle.
    cycle_pos: u32,
    /// Round-robin counters within top/low node lists.
    top_rr: usize,
    low_rr: usize,
}

impl PolicyCursor {
    pub(crate) fn new(policy: AllocPolicy) -> Self {
        Self {
            policy,
            cycle_pos: 0,
            top_rr: 0,
            low_rr: 0,
        }
    }

    /// Returns the candidate node order for the next allocation and
    /// advances interleave state.
    pub(crate) fn next_candidates(&mut self) -> Vec<NodeId> {
        match &self.policy {
            AllocPolicy::Bind(nodes) => nodes.clone(),
            AllocPolicy::Preferred { node, fallback } => {
                let mut v = vec![*node];
                v.extend_from_slice(fallback);
                v
            }
            AllocPolicy::InterleaveNm { top, low, n, m } => {
                let in_top = self.cycle_pos < *n;
                self.cycle_pos = (self.cycle_pos + 1) % (n + m);
                // Round-robin within the selected tier; if it is full the
                // manager falls through to the other tier's nodes.
                let (primary, secondary, rr) = if in_top {
                    let rr = self.top_rr;
                    self.top_rr = (self.top_rr + 1) % top.len().max(1);
                    (top, low, rr)
                } else {
                    let rr = self.low_rr;
                    self.low_rr = (self.low_rr + 1) % low.len().max(1);
                    (low, top, rr)
                };
                let mut v = Vec::with_capacity(primary.len() + secondary.len());
                for i in 0..primary.len() {
                    v.push(primary[(rr + i) % primary.len()]);
                }
                v.extend_from_slice(secondary);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_order_is_stable() {
        let mut c = PolicyCursor::new(AllocPolicy::Bind(vec![NodeId(2), NodeId(5)]));
        assert_eq!(c.next_candidates(), vec![NodeId(2), NodeId(5)]);
        assert_eq!(c.next_candidates(), vec![NodeId(2), NodeId(5)]);
    }

    #[test]
    fn preferred_puts_fallback_after() {
        let mut c = PolicyCursor::new(AllocPolicy::Preferred {
            node: NodeId(1),
            fallback: vec![NodeId(0)],
        });
        assert_eq!(c.next_candidates(), vec![NodeId(1), NodeId(0)]);
    }

    #[test]
    fn interleave_3_1_sends_three_quarters_to_top() {
        let mut c = PolicyCursor::new(AllocPolicy::interleave(
            vec![NodeId(0)],
            vec![NodeId(8)],
            3,
            1,
        ));
        let mut top = 0;
        for _ in 0..400 {
            if c.next_candidates()[0] == NodeId(0) {
                top += 1;
            }
        }
        assert_eq!(top, 300);
    }

    #[test]
    fn interleave_round_robins_within_tier() {
        let mut c = PolicyCursor::new(AllocPolicy::interleave(
            vec![NodeId(0), NodeId(1)],
            vec![NodeId(8)],
            2,
            1,
        ));
        let a = c.next_candidates()[0];
        let b = c.next_candidates()[0];
        assert_ne!(a, b);
        assert_eq!(c.next_candidates()[0], NodeId(8));
    }

    #[test]
    fn top_fraction() {
        let p = AllocPolicy::interleave(vec![NodeId(0)], vec![NodeId(8)], 1, 3);
        assert!((p.top_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(AllocPolicy::Bind(vec![NodeId(0)]).top_fraction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "nonzero cycle")]
    fn zero_cycle_panics() {
        AllocPolicy::interleave(vec![NodeId(0)], vec![NodeId(1)], 0, 0);
    }

    #[test]
    #[should_panic(expected = "top share with no top nodes")]
    fn empty_top_panics() {
        AllocPolicy::interleave(vec![], vec![NodeId(1)], 1, 1);
    }
}
