//! Per-epoch traffic aggregation: the bridge from page-level accesses to
//! the `cxl-perf` flow solver.

use std::collections::BTreeMap;

use serde::Serialize;

use cxl_perf::{AccessMix, FlowSpec};
use cxl_sim::SimTime;
use cxl_topology::{NodeId, SocketId};

/// Bytes moved during one accounting epoch, split by node and direction.
///
/// Application traffic and migration traffic are tracked separately so
/// the thrashing cost of aggressive promotion (§4.2.2) is visible as
/// extra offered load on the memory system.
#[derive(Debug, Clone, Default, Serialize)]
pub struct TrafficEpoch {
    /// Application bytes read from each node.
    pub node_read_bytes: BTreeMap<NodeId, u64>,
    /// Application bytes written to each node.
    pub node_write_bytes: BTreeMap<NodeId, u64>,
    /// Application bytes read from the SSD tier.
    pub ssd_read_bytes: u64,
    /// Application bytes written to the SSD tier.
    pub ssd_write_bytes: u64,
    /// Migration bytes read from each node (source side of page copies).
    pub migration_read_bytes: BTreeMap<NodeId, u64>,
    /// Migration bytes written to each node (destination side).
    pub migration_write_bytes: BTreeMap<NodeId, u64>,
}

impl TrafficEpoch {
    /// Records an application access.
    pub fn record_access(&mut self, node: NodeId, bytes: u64, is_write: bool) {
        let map = if is_write {
            &mut self.node_write_bytes
        } else {
            &mut self.node_read_bytes
        };
        *map.entry(node).or_insert(0) += bytes;
    }

    /// Records an SSD access.
    pub fn record_ssd(&mut self, bytes: u64, is_write: bool) {
        if is_write {
            self.ssd_write_bytes += bytes;
        } else {
            self.ssd_read_bytes += bytes;
        }
    }

    /// Records a page migration from `src` to `dst`.
    pub fn record_migration(&mut self, src: NodeId, dst: NodeId, bytes: u64) {
        *self.migration_read_bytes.entry(src).or_insert(0) += bytes;
        *self.migration_write_bytes.entry(dst).or_insert(0) += bytes;
    }

    /// Total application + migration bytes through NUMA nodes.
    pub fn total_node_bytes(&self) -> u64 {
        self.node_read_bytes.values().sum::<u64>()
            + self.node_write_bytes.values().sum::<u64>()
            + self.migration_read_bytes.values().sum::<u64>()
            + self.migration_write_bytes.values().sum::<u64>()
    }

    /// Converts the epoch into per-node [`FlowSpec`]s for the solver.
    ///
    /// Application and migration bytes are merged per node; the mix is
    /// the observed byte-weighted read fraction. Returns an empty vector
    /// for a zero-length epoch.
    pub fn flows(&self, from: SocketId, duration: SimTime, nt_writes: bool) -> Vec<FlowSpec> {
        if duration == SimTime::ZERO {
            return Vec::new();
        }
        let secs = duration.as_secs_f64();
        let mut per_node: BTreeMap<NodeId, (u64, u64)> = BTreeMap::new();
        for (&n, &b) in &self.node_read_bytes {
            per_node.entry(n).or_insert((0, 0)).0 += b;
        }
        for (&n, &b) in &self.migration_read_bytes {
            per_node.entry(n).or_insert((0, 0)).0 += b;
        }
        for (&n, &b) in &self.node_write_bytes {
            per_node.entry(n).or_insert((0, 0)).1 += b;
        }
        for (&n, &b) in &self.migration_write_bytes {
            per_node.entry(n).or_insert((0, 0)).1 += b;
        }
        per_node
            .into_iter()
            .filter(|&(_, (r, w))| r + w > 0)
            .map(|(node, (r, w))| {
                let total = (r + w) as f64;
                let mut mix = AccessMix::from_read_fraction(r as f64 / total);
                mix.nt_writes = nt_writes;
                FlowSpec::new(from, node, mix, total / secs / 1e9)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut e = TrafficEpoch::default();
        e.record_access(NodeId(0), 100, false);
        e.record_access(NodeId(0), 50, true);
        e.record_access(NodeId(8), 25, false);
        e.record_migration(NodeId(8), NodeId(0), 4096);
        e.record_ssd(500, true);
        assert_eq!(e.total_node_bytes(), 100 + 50 + 25 + 2 * 4096);
        assert_eq!(e.ssd_write_bytes, 500);
    }

    #[test]
    fn flows_blend_mix_and_rate() {
        let mut e = TrafficEpoch::default();
        // 3 GB read + 1 GB written over one second.
        e.record_access(NodeId(0), 3_000_000_000, false);
        e.record_access(NodeId(0), 1_000_000_000, true);
        let flows = e.flows(SocketId(0), SimTime::from_secs(1), true);
        assert_eq!(flows.len(), 1);
        let f = &flows[0];
        assert_eq!(f.node, NodeId(0));
        assert!((f.mix.read_fraction - 0.75).abs() < 1e-9);
        assert!((f.offered_gbps - 4.0).abs() < 1e-9);
    }

    #[test]
    fn migration_traffic_enters_flows() {
        let mut e = TrafficEpoch::default();
        e.record_migration(NodeId(8), NodeId(0), 1_000_000_000);
        let flows = e.flows(SocketId(0), SimTime::from_secs(1), true);
        assert_eq!(flows.len(), 2);
        // Source side is a pure read; destination a pure write.
        let src = flows.iter().find(|f| f.node == NodeId(8)).unwrap();
        let dst = flows.iter().find(|f| f.node == NodeId(0)).unwrap();
        assert_eq!(src.mix.read_fraction, 1.0);
        assert_eq!(dst.mix.read_fraction, 0.0);
    }

    #[test]
    fn zero_duration_yields_no_flows() {
        let mut e = TrafficEpoch::default();
        e.record_access(NodeId(0), 100, false);
        assert!(e.flows(SocketId(0), SimTime::ZERO, true).is_empty());
    }

    #[test]
    fn empty_epoch_yields_no_flows() {
        let e = TrafficEpoch::default();
        assert!(e.flows(SocketId(0), SimTime::from_secs(1), true).is_empty());
    }
}
