#![warn(missing_docs)]

//! OS-level tiered memory management for the CXL reproduction.
//!
//! This crate reimplements, at page granularity on the simulator's
//! virtual clock, the Linux mechanisms the paper evaluates (§2.3):
//!
//! * **Allocation policies** — node binding (`numactl`-style), preferred
//!   node, and the *N:M interleave* patch that directs N pages to
//!   top-tier (DRAM) nodes and M pages to lower-tier (CXL) nodes
//!   (`vm.numa_tier_interleave`).
//! * **NUMA balancing** — periodic page-table scanning installs hint
//!   faults; a fault on a slow-tier page promotes recently used (MRU)
//!   pages to DRAM.
//! * **Hot page selection** — the v6.1 kernel patch: a promotion rate
//!   limit (`numa_balancing_promote_rate_limit_MBps`) enforced with a
//!   token bucket, plus automatic hot-threshold adjustment to match the
//!   observed candidate rate to the limit.
//! * **Demotion** — when top-tier occupancy crosses a watermark, cold
//!   pages (CLOCK second-chance order) demote to CXL.
//! * **SSD spill** — an unbounded swap tier for the `MMEM-SSD-x`
//!   configurations of Table 1 and Spark shuffle spill.
//!
//! The manager also aggregates per-epoch traffic (application reads and
//! writes plus migration copies) into `cxl-perf` [`cxl_perf::FlowSpec`]s
//! so applications can price memory accesses under contention.

pub mod error;
pub mod manager;
pub mod migration;
pub mod page;
pub mod policy;
pub mod stats;
pub mod trace;
pub mod traffic;

pub use error::TierError;
pub use manager::{AccessOutcome, EvacuationReport, OutOfMemory, Rw, TierConfig, TierManager};
pub use migration::{BandwidthAwareConfig, HotPageConfig, MigrationMode, NumaBalancingConfig};
pub use page::{Location, PageId};
pub use policy::AllocPolicy;
pub use stats::{TierSnapshot, TierStats};
pub use trace::{TierEvent, TraceRing, TracedEvent};
pub use traffic::TrafficEpoch;
