//! Event tracing for tiering decisions.
//!
//! Debugging tiered-memory policies needs the *timeline*: when pages
//! were promoted or demoted, when the SSD was hit, when the bandwidth
//! guard fired. The [`TraceRing`] is a bounded ring buffer of
//! [`TierEvent`]s the manager can record into at negligible cost; tools
//! drain it to print migration timelines (see the `tiering_trace`
//! example).

use std::collections::VecDeque;

use serde::Serialize;

use cxl_sim::SimTime;
use cxl_topology::NodeId;

use crate::page::PageId;

/// One traced tiering event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TierEvent {
    /// Page promoted from a slow node to a DRAM node.
    Promoted {
        /// The page.
        page: PageId,
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
    /// Page demoted from DRAM to a slow node.
    Demoted {
        /// The page.
        page: PageId,
        /// Source node.
        from: NodeId,
        /// Destination node.
        to: NodeId,
    },
    /// Page evicted to SSD.
    EvictedToSsd {
        /// The page.
        page: PageId,
    },
    /// Page loaded back from SSD.
    LoadedFromSsd {
        /// The page.
        page: PageId,
        /// Destination node.
        to: NodeId,
    },
    /// A promotion was suppressed by the bandwidth guard (§5.3).
    PromotionSuppressed {
        /// The page.
        page: PageId,
    },
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TracedEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// What happened.
    pub event: TierEvent,
}

/// Bounded ring buffer of tiering events.
#[derive(Debug, Clone)]
pub struct TraceRing {
    buf: VecDeque<TracedEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    /// Creates a ring holding up to `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring needs capacity");
        Self {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event, evicting the oldest when full.
    pub fn record(&mut self, at: SimTime, event: TierEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TracedEvent { at, event });
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TracedEvent> {
        self.buf.iter()
    }

    /// Number of events evicted due to capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Drains all retained events.
    pub fn drain(&mut self) -> Vec<TracedEvent> {
        self.buf.drain(..).collect()
    }

    /// Counts retained events matching a predicate.
    pub fn count_matching(&self, pred: impl Fn(&TierEvent) -> bool) -> usize {
        self.buf.iter().filter(|e| pred(&e.event)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(page: u64) -> TierEvent {
        TierEvent::EvictedToSsd { page: PageId(page) }
    }

    #[test]
    fn records_in_order() {
        let mut r = TraceRing::new(8);
        for i in 0..5 {
            r.record(SimTime::from_ns(i), ev(i));
        }
        let times: Vec<u64> = r.events().map(|e| e.at.as_ns()).collect();
        assert_eq!(times, vec![0, 1, 2, 3, 4]);
        assert_eq!(r.len(), 5);
        assert!(!r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn evicts_oldest_when_full() {
        let mut r = TraceRing::new(3);
        for i in 0..10 {
            r.record(SimTime::from_ns(i), ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        let pages: Vec<u64> = r
            .events()
            .map(|e| match e.event {
                TierEvent::EvictedToSsd { page } => page.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pages, vec![7, 8, 9]);
    }

    #[test]
    fn drain_empties_the_ring() {
        let mut r = TraceRing::new(4);
        r.record(SimTime::ZERO, ev(1));
        let drained = r.drain();
        assert_eq!(drained.len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn count_matching_filters() {
        let mut r = TraceRing::new(8);
        r.record(SimTime::ZERO, ev(1));
        r.record(
            SimTime::ZERO,
            TierEvent::Promoted {
                page: PageId(2),
                from: NodeId(2),
                to: NodeId(0),
            },
        );
        assert_eq!(
            r.count_matching(|e| matches!(e, TierEvent::Promoted { .. })),
            1
        );
        assert_eq!(
            r.count_matching(|e| matches!(e, TierEvent::EvictedToSsd { .. })),
            1
        );
    }

    #[test]
    #[should_panic(expected = "trace ring needs capacity")]
    fn zero_capacity_rejected() {
        TraceRing::new(0);
    }
}
