//! Counters exposed by the tier manager.

use serde::Serialize;

/// Cumulative event counters for a [`crate::TierManager`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct TierStats {
    /// Pages allocated.
    pub allocated: u64,
    /// Pages freed.
    pub freed: u64,
    /// Allocations that spilled to SSD because every candidate node was
    /// full.
    pub ssd_spills: u64,
    /// Hint faults taken (NUMA balancing / hot-page selection).
    pub hint_faults: u64,
    /// Pages promoted to a top-tier node.
    pub promotions: u64,
    /// Promotions skipped because the rate limit had no budget.
    pub promotions_rate_limited: u64,
    /// Promotions skipped because the page failed the hot threshold.
    pub promotions_not_hot: u64,
    /// Promotions deferred because the page's consecutive in-window
    /// fault streak was still below
    /// [`crate::HotPageConfig::promote_after_faults`]. Always zero at
    /// the default streak requirement of 1.
    pub promotions_below_streak: u64,
    /// Promotions suppressed by the §5.3 bandwidth-aware policy (DRAM
    /// bandwidth above the high watermark).
    pub promotions_bw_suppressed: u64,
    /// Pages demoted from DRAM to CXL.
    pub demotions: u64,
    /// Demotions that landed on a CXL node off the accessor socket
    /// (every later access pays the ~485 ns remote-CXL path, §3.2).
    pub demotions_remote_socket: u64,
    /// Demotions whose selected target was full by move time and had to
    /// be re-resolved (or abandoned) after the victim was already
    /// unlinked from its CLOCK ring.
    pub demotions_target_full: u64,
    /// Pages explicitly moved to SSD by the application (eviction).
    pub evictions_to_ssd: u64,
    /// Pages explicitly brought back from SSD.
    pub ssd_loads: u64,
    /// Bytes copied by migrations (promotions + demotions).
    pub migration_bytes: u64,
    /// Node drains run (full evacuations plus capacity shrinks).
    pub evacuations: u64,
    /// Pages drained off failing/shrinking nodes (any destination).
    pub evacuated_pages: u64,
    /// Evacuated pages that had to spill to SSD because no surviving
    /// node had room.
    pub evacuated_to_ssd: u64,
}

impl TierStats {
    /// Promotion success ratio among hint faults on slow-tier pages.
    pub fn promotion_rate(&self) -> f64 {
        let attempts = self.promotions
            + self.promotions_rate_limited
            + self.promotions_not_hot
            + self.promotions_below_streak;
        if attempts == 0 {
            0.0
        } else {
            self.promotions as f64 / attempts as f64
        }
    }

    /// Promotion + demotion churn in pages.
    pub fn churn(&self) -> u64 {
        self.promotions + self.demotions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = TierStats::default();
        assert_eq!(s.allocated, 0);
        assert_eq!(s.promotion_rate(), 0.0);
        assert_eq!(s.churn(), 0);
    }

    #[test]
    fn promotion_rate_math() {
        let s = TierStats {
            promotions: 3,
            promotions_rate_limited: 1,
            promotions_not_hot: 0,
            ..Default::default()
        };
        assert!((s.promotion_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.churn(), 3);
    }
}

/// Point-in-time view of a [`crate::TierManager`]'s placement state.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TierSnapshot {
    /// `(node id, used pages, capacity pages)` per NUMA node.
    pub nodes: Vec<(usize, u64, u64)>,
    /// Pages on the SSD tier.
    pub ssd_pages: u64,
    /// Fraction of resident pages on top-tier (DRAM) nodes.
    pub top_tier_fraction: f64,
    /// Cumulative statistics at snapshot time.
    pub stats: TierStats,
}

impl TierSnapshot {
    /// Total resident pages across nodes.
    pub fn resident_pages(&self) -> u64 {
        self.nodes.iter().map(|&(_, used, _)| used).sum()
    }

    /// Renders a one-line summary.
    pub fn summary(&self) -> String {
        format!(
            "resident {} pages ({:.0}% top tier), ssd {}, promotions {}, demotions {}",
            self.resident_pages(),
            100.0 * self.top_tier_fraction,
            self.ssd_pages,
            self.stats.promotions,
            self.stats.demotions
        )
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    #[test]
    fn snapshot_summary_renders() {
        let s = TierSnapshot {
            nodes: vec![(0, 10, 20), (2, 5, 100)],
            ssd_pages: 3,
            top_tier_fraction: 10.0 / 15.0,
            stats: TierStats::default(),
        };
        assert_eq!(s.resident_pages(), 15);
        assert!(s.summary().contains("15 pages"));
        assert!(s.summary().contains("67% top tier"));
    }
}
