#![warn(missing_docs)]

//! CPU LLM inference over CXL-extended memory bandwidth (§5).
//!
//! The paper's framework (Fig. 9) routes tokenized requests to CPU
//! inference backends, each with 12 threads and a KV cache, all bound to
//! **one SNC-4 domain** (two DDR5-4800 channels) plus one A1000 CXL
//! expander. Token generation streams the full model weights (Alpaca-7B,
//! 4.1 GB) plus the growing KV cache each step, making serving rate a
//! function of memory bandwidth — and, past the §3.2 contention knee, of
//! latency spikes that stall the compute pipeline.
//!
//! Model:
//!
//! * Per-backend demand grows ~1.05 GB/s per thread and plateaus at
//!   24.2 GB/s around 24 threads (Fig. 10(b)).
//! * Backends stripe their traffic over DRAM and CXL according to the
//!   N:M interleave policy; the achieved bandwidth comes from the
//!   `cxl-perf` water-filling solver (synchronized stripes).
//! * A latency penalty derates delivered tokens when the blended loaded
//!   latency spikes: `1 / (1 + (lat − lat_ref)/penalty_scale)`. The
//!   scale is calibrated (635 ns) so that at 60 threads the 3:1 interleave
//!   out-serves MMEM-only by ≈95 % and MMEM-only lands ≈14 % below 1:3
//!   beyond 64 threads (Fig. 10(a)).
//! * KV-cache growth raises per-token traffic from a 12 GB/s model-load
//!   floor to a ≈21 GB/s plateau (Fig. 10(c)).

pub mod server;

use serde::{Deserialize, Serialize};

use cxl_perf::{AccessMix, FlowSpec, MemSystem};
use cxl_topology::{MemoryTier, NodeId, SocketId, Topology};

/// Inference workload and platform constants.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LlmConfig {
    /// Model weight footprint, GB (Alpaca-7B: 4.1).
    pub model_gb: f64,
    /// Effective weight bytes streamed per generated token, GB
    /// (weights divided by the serving batch size).
    pub bytes_per_token_gb: f64,
    /// Per-thread streaming demand, GB/s.
    pub per_thread_gbps: f64,
    /// Single-backend bandwidth plateau, GB/s (Fig. 10(b): 24.2).
    pub backend_plateau_gbps: f64,
    /// Threads per CPU inference backend (12 in §5.1).
    pub threads_per_backend: usize,
    /// Reference (uncontended) latency for the penalty, ns.
    pub lat_ref_ns: f64,
    /// Latency-penalty scale, ns: extra blended latency that halves
    /// delivered throughput.
    pub penalty_scale_ns: f64,
    /// Utilization at which spiking latency is evaluated (a closed
    /// system hovers just under the cap).
    pub util_cap: f64,
    /// I/O-thread model-load bandwidth floor, GB/s (Fig. 10(c): ~12).
    pub kv_floor_gbps: f64,
    /// KV-cache bandwidth plateau, GB/s (Fig. 10(c): ~21).
    pub kv_plateau_gbps: f64,
    /// Read fraction of inference traffic (weights are read-only; the
    /// KV cache appends).
    pub read_fraction: f64,
}

impl Default for LlmConfig {
    fn default() -> Self {
        Self {
            model_gb: 4.1,
            bytes_per_token_gb: 0.51, // Batch of 8 over 4.1 GB.
            per_thread_gbps: 1.05,
            backend_plateau_gbps: 24.2,
            threads_per_backend: 12,
            lat_ref_ns: 97.0,
            penalty_scale_ns: 635.0,
            util_cap: 0.97,
            kv_floor_gbps: 12.0,
            kv_plateau_gbps: 21.0,
            read_fraction: 0.95,
        }
    }
}

/// Memory placement for the inference backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LlmPlacement {
    /// All traffic to the SNC domain's DRAM.
    MmemOnly,
    /// N:M interleave between DRAM and the CXL expander (Table 1).
    Interleave {
        /// Pages to DRAM per cycle.
        n: u32,
        /// Pages to CXL per cycle.
        m: u32,
    },
}

impl LlmPlacement {
    /// Fraction of traffic on DRAM.
    pub fn dram_fraction(self) -> f64 {
        match self {
            LlmPlacement::MmemOnly => 1.0,
            LlmPlacement::Interleave { n, m } => n as f64 / (n + m) as f64,
        }
    }

    /// Paper-style label.
    pub fn label(self) -> String {
        match self {
            LlmPlacement::MmemOnly => "MMEM".to_string(),
            LlmPlacement::Interleave { n, m } => format!("{n}:{m}"),
        }
    }
}

/// One point of the Fig. 10(a) serving-rate curve.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServingPoint {
    /// Total inference threads (backends × threads/backend).
    pub threads: usize,
    /// Delivered serving rate, tokens/s.
    pub tokens_per_sec: f64,
    /// Achieved memory bandwidth, GB/s.
    pub achieved_gbps: f64,
    /// Blended loaded latency, ns.
    pub latency_ns: f64,
}

/// The inference-serving simulator over one SNC domain + one CXL card.
pub struct LlmCluster {
    cfg: LlmConfig,
    sys: MemSystem,
    socket: SocketId,
    dram: NodeId,
    cxl: NodeId,
}

impl LlmCluster {
    /// Builds the §5.1 platform: one SNC-4 domain (2 × DDR5-4800) plus
    /// one A1000.
    pub fn new(cfg: LlmConfig) -> Self {
        let topo = Topology::snc_domain_with_cxl();
        Self::with_topology(cfg, &topo)
    }

    /// Builds over a custom topology (first DRAM node + first CXL node).
    ///
    /// # Panics
    ///
    /// Panics if the topology lacks a DRAM or CXL node.
    pub fn with_topology(cfg: LlmConfig, topo: &Topology) -> Self {
        Self::with_system(cfg, MemSystem::new(topo))
    }

    /// Builds over a prebuilt memory system (tuned platforms, ablations).
    ///
    /// # Panics
    ///
    /// Panics if the system lacks a DRAM or CXL node.
    pub fn with_system(cfg: LlmConfig, sys: MemSystem) -> Self {
        let nodes = sys.nodes().to_vec();
        let dram = nodes
            .iter()
            .find(|n| n.tier == MemoryTier::LocalDram)
            .expect("topology needs a DRAM node")
            .id;
        let cxl = nodes
            .iter()
            .find(|n| n.tier == MemoryTier::CxlExpander)
            .expect("topology needs a CXL node")
            .id;
        let socket = sys.sockets()[0];
        Self {
            cfg,
            sys,
            socket,
            dram,
            cxl,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LlmConfig {
        &self.cfg
    }

    /// Aggregate demand of `threads` inference threads, GB/s
    /// (per-backend plateau applied — Fig. 10(b)).
    pub fn offered_demand_gbps(&self, threads: usize) -> f64 {
        let tpb = self.cfg.threads_per_backend;
        let full_backends = threads / tpb;
        let rem = threads % tpb;
        let backend_bw =
            |t: usize| (t as f64 * self.cfg.per_thread_gbps).min(self.cfg.backend_plateau_gbps);
        full_backends as f64 * backend_bw(tpb) + backend_bw(rem)
    }

    /// Swaps in a degraded topology (downgraded link, inflated latency,
    /// or a dead expander); serving continues on the recomputed curves,
    /// rerouting the CXL stripe to DRAM if the expander is offline.
    pub fn apply_topology(&mut self, topo: &Topology) {
        self.sys = MemSystem::new(topo);
    }

    fn stripes(&self, placement: LlmPlacement) -> Vec<(NodeId, f64)> {
        let f = placement.dram_fraction();
        // A dead expander collapses every interleave to MMEM-only: the
        // pages were evacuated to DRAM, and the traffic follows them.
        if f >= 1.0 || !self.sys.node_online(self.cxl) {
            return vec![(self.dram, 1.0)];
        }
        vec![(self.dram, f), (self.cxl, 1.0 - f)]
    }

    /// Serving rate at a total thread count under a placement.
    pub fn serving_rate(&self, placement: LlmPlacement, threads: usize) -> ServingPoint {
        let demand = self.offered_demand_gbps(threads);
        let mix = AccessMix::from_read_fraction(self.cfg.read_fraction);
        let stripes = self.stripes(placement);

        if demand <= 0.0 {
            return ServingPoint {
                threads,
                tokens_per_sec: 0.0,
                achieved_gbps: 0.0,
                latency_ns: self.sys.idle_latency_ns(self.socket, self.dram, mix),
            };
        }

        // Pass 1: full demand — find the synchronized-stripe throughput.
        let flows: Vec<FlowSpec> = stripes
            .iter()
            .map(|&(n, f)| FlowSpec::new(self.socket, n, mix, demand * f))
            .collect();
        let solved = self.sys.solve(&flows);
        let mut scale: f64 = 1.0;
        for (out, flow) in solved.flows.iter().zip(&flows) {
            if flow.offered_gbps > 0.0 {
                scale = scale.min(out.achieved_gbps / flow.offered_gbps);
            }
        }
        let achieved = demand * scale.min(1.0);

        // Pass 2: latency at the (clamped) steady-state utilization. When
        // demand exceeds capacity the queues sit just under full.
        let lat_scale = if scale < 1.0 {
            scale * self.cfg.util_cap
        } else {
            1.0
        };
        let flows2: Vec<FlowSpec> = stripes
            .iter()
            .map(|&(n, f)| FlowSpec::new(self.socket, n, mix, demand * f * lat_scale))
            .collect();
        let solved2 = self.sys.solve(&flows2);
        let latency_ns: f64 = stripes
            .iter()
            .zip(solved2.flows.iter())
            .map(|(&(_, f), out)| f * out.latency_ns)
            .sum();

        // Latency spikes stall the decode pipeline.
        let penalty =
            1.0 / (1.0 + (latency_ns - self.cfg.lat_ref_ns).max(0.0) / self.cfg.penalty_scale_ns);
        let effective = achieved * penalty;
        ServingPoint {
            threads,
            tokens_per_sec: effective / self.cfg.bytes_per_token_gb,
            achieved_gbps: achieved,
            latency_ns,
        }
    }

    /// Sweeps the Fig. 10(a) thread axis for one placement.
    pub fn sweep(&self, placement: LlmPlacement, thread_counts: &[usize]) -> Vec<ServingPoint> {
        thread_counts
            .iter()
            .map(|&t| self.serving_rate(placement, t))
            .collect()
    }

    /// Fig. 10(b): single-backend memory bandwidth vs thread count.
    pub fn backend_bandwidth_gbps(&self, threads_in_backend: usize) -> f64 {
        (threads_in_backend as f64 * self.cfg.per_thread_gbps).min(self.cfg.backend_plateau_gbps)
    }

    /// Fig. 10(c): single-backend bandwidth vs KV-cache size.
    ///
    /// The floor is the I/O threads streaming model weights; KV reads
    /// add linearly until the backend's decode loop saturates.
    pub fn kv_bandwidth_gbps(&self, kv_cache_gb: f64) -> f64 {
        let slope = (self.cfg.kv_plateau_gbps - self.cfg.kv_floor_gbps) / self.cfg.model_gb;
        (self.cfg.kv_floor_gbps + slope * kv_cache_gb).min(self.cfg.kv_plateau_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> LlmCluster {
        LlmCluster::new(LlmConfig::default())
    }

    const MMEM: LlmPlacement = LlmPlacement::MmemOnly;
    const I31: LlmPlacement = LlmPlacement::Interleave { n: 3, m: 1 };
    const I11: LlmPlacement = LlmPlacement::Interleave { n: 1, m: 1 };
    const I13: LlmPlacement = LlmPlacement::Interleave { n: 1, m: 3 };

    #[test]
    fn near_linear_scaling_at_low_threads() {
        let c = cluster();
        let r12 = c.serving_rate(MMEM, 12).tokens_per_sec;
        let r36 = c.serving_rate(MMEM, 36).tokens_per_sec;
        let ratio = r36 / r12;
        assert!((2.6..=3.05).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn mmem_saturates_near_48_threads() {
        let c = cluster();
        let r48 = c.serving_rate(MMEM, 48).tokens_per_sec;
        let r60 = c.serving_rate(MMEM, 60).tokens_per_sec;
        // Growth stalls (and reverses) past 48 threads (§5.2).
        assert!(r60 < r48 * 1.05, "r48 {r48} r60 {r60}");
    }

    #[test]
    fn interleave_3_1_beats_mmem_by_95_percent_at_60_threads() {
        let c = cluster();
        let mmem = c.serving_rate(MMEM, 60).tokens_per_sec;
        let i31 = c.serving_rate(I31, 60).tokens_per_sec;
        let gain = i31 / mmem - 1.0;
        assert!((0.70..=1.25).contains(&gain), "gain {gain}");
    }

    #[test]
    fn mmem_14_percent_below_1_3_beyond_64_threads() {
        let c = cluster();
        for threads in [66, 72, 84] {
            let mmem = c.serving_rate(MMEM, threads).tokens_per_sec;
            let i13 = c.serving_rate(I13, threads).tokens_per_sec;
            let deficit = 1.0 - mmem / i13;
            assert!(
                (0.02..=0.35).contains(&deficit),
                "threads {threads}: deficit {deficit}"
            );
        }
    }

    #[test]
    fn higher_dram_share_wins_among_interleaves() {
        let c = cluster();
        let r31 = c.serving_rate(I31, 60).tokens_per_sec;
        let r11 = c.serving_rate(I11, 60).tokens_per_sec;
        let r13 = c.serving_rate(I13, 60).tokens_per_sec;
        assert!(r31 > r11, "3:1 {r31} vs 1:1 {r11}");
        assert!(r11 > r13, "1:1 {r11} vs 1:3 {r13}");
    }

    #[test]
    fn mmem_wins_at_low_thread_counts() {
        let c = cluster();
        for threads in [12, 24, 36] {
            let mmem = c.serving_rate(MMEM, threads).tokens_per_sec;
            for p in [I31, I11, I13] {
                let r = c.serving_rate(p, threads).tokens_per_sec;
                assert!(
                    mmem >= r * 0.999,
                    "{} at {threads}: {r} > MMEM {mmem}",
                    p.label()
                );
            }
        }
    }

    #[test]
    fn backend_bandwidth_plateaus_at_24_threads() {
        let c = cluster();
        let b12 = c.backend_bandwidth_gbps(12);
        assert!((b12 - 12.6).abs() < 1e-9);
        let b24 = c.backend_bandwidth_gbps(24);
        assert!((b24 - 24.2).abs() < 1e-9, "b24 {b24}");
        assert_eq!(c.backend_bandwidth_gbps(32), b24);
    }

    #[test]
    fn kv_bandwidth_floor_and_plateau() {
        let c = cluster();
        assert!((c.kv_bandwidth_gbps(0.0) - 12.0).abs() < 1e-9);
        let plateau = c.kv_bandwidth_gbps(100.0);
        assert!((plateau - 21.0).abs() < 1e-9);
        // Monotone non-decreasing in between.
        let mut prev = 0.0;
        for i in 0..=20 {
            let v = c.kv_bandwidth_gbps(i as f64 * 0.5);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn offered_demand_respects_backend_plateau() {
        let c = cluster();
        // 5 backends of 12 threads each: no plateau yet (12.6 < 24.2).
        let d = c.offered_demand_gbps(60);
        assert!((d - 5.0 * 12.6).abs() < 1e-9, "demand {d}");
        // A 30-thread partial split: 2 full backends + 6 threads.
        let d30 = c.offered_demand_gbps(30);
        assert!((d30 - (2.0 * 12.6 + 6.3)).abs() < 1e-9);
    }

    #[test]
    fn zero_threads_serve_nothing() {
        let c = cluster();
        let p = c.serving_rate(MMEM, 0);
        assert_eq!(p.tokens_per_sec, 0.0);
        assert_eq!(p.achieved_gbps, 0.0);
    }

    #[test]
    fn labels() {
        assert_eq!(MMEM.label(), "MMEM");
        assert_eq!(I31.label(), "3:1");
        assert_eq!(I13.dram_fraction(), 0.25);
    }

    fn cxl_node(topo: &Topology) -> NodeId {
        topo.nodes()
            .iter()
            .find(|n| n.tier == MemoryTier::CxlExpander)
            .expect("topology has a CXL node")
            .id
    }

    #[test]
    fn dead_expander_reroutes_interleave_to_dram() {
        let mut topo = Topology::snc_domain_with_cxl();
        let mut c = cluster();
        let healthy_i31 = c.serving_rate(I31, 60).tokens_per_sec;

        let node = cxl_node(&topo);
        topo.cxl_device_mut(node).unwrap().health.online = false;
        c.apply_topology(&topo);

        // Serving continues (no panic, nonzero rate), but every
        // placement now rides DRAM alone.
        let degraded = c.serving_rate(I31, 60).tokens_per_sec;
        let mmem = c.serving_rate(MMEM, 60).tokens_per_sec;
        assert!(degraded > 0.0);
        assert_eq!(degraded, mmem, "offline CXL must collapse to MMEM");
        assert!(
            degraded < healthy_i31,
            "losing the expander's bandwidth cannot speed serving up"
        );
    }

    #[test]
    fn link_downgrade_degrades_but_keeps_serving() {
        let mut topo = Topology::snc_domain_with_cxl();
        let mut c = cluster();
        let healthy = c.serving_rate(I13, 72).tokens_per_sec;

        // x16 -> x4 retrain: a quarter of the link bandwidth remains.
        let node = cxl_node(&topo);
        topo.cxl_device_mut(node).unwrap().health.lanes_override = Some(4);
        c.apply_topology(&topo);

        let degraded = c.serving_rate(I13, 72);
        assert!(degraded.tokens_per_sec > 0.0);
        assert!(
            degraded.tokens_per_sec < healthy,
            "x4 link {} vs x16 {healthy}",
            degraded.tokens_per_sec
        );
    }
}
