//! The Fig. 9 serving stack as a discrete-event simulation.
//!
//! The paper's framework: an HTTP server receives inference requests,
//! tokenizes them, and a router distributes them to CPU backend
//! instances, each holding a KV cache and generating tokens in a decode
//! loop. This module runs that architecture on the `cxl-sim` engine —
//! open-loop request arrivals, router queueing, per-token decode times
//! from the bandwidth model — and reports the serving-level metrics the
//! aggregate model cannot: time-to-first-token, per-request latency, and
//! queue depths.

use rand::Rng;
use serde::Serialize;

use cxl_sim::{Engine, SimTime};
use cxl_stats::rng::stream_rng;
use cxl_stats::Histogram;

use crate::{LlmCluster, LlmPlacement};

/// A single inference request.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Request {
    /// Prompt tokens (prefill work).
    pub prompt_tokens: u32,
    /// Tokens to generate (decode work).
    pub output_tokens: u32,
}

/// Serving-stack configuration.
#[derive(Debug, Clone, Serialize)]
pub struct ServerConfig {
    /// Extra decode cost per generated token from the growing KV cache,
    /// as a fraction of the base token time per 1 000 tokens of context
    /// (Fig. 10(c): KV reads add bandwidth linearly with cache size).
    pub kv_growth_per_kt: f64,
    /// Backend instances (each runs `threads_per_backend` threads).
    pub backends: usize,
    /// Memory placement for every backend.
    pub placement: LlmPlacement,
    /// Mean request arrival rate, requests/s (Poisson).
    pub arrival_rate: f64,
    /// Prompt length (the paper fixes a 2048-byte prompt context).
    pub prompt_tokens: u32,
    /// Mean output tokens per request (geometric-ish around this).
    pub mean_output_tokens: u32,
    /// Requests to simulate.
    pub requests: usize,
    /// Root seed.
    pub seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            kv_growth_per_kt: 0.35,
            backends: 4,
            placement: LlmPlacement::MmemOnly,
            arrival_rate: 2.0,
            prompt_tokens: 512,
            mean_output_tokens: 128,
            requests: 400,
            seed: 42,
        }
    }
}

/// Serving metrics from one simulation.
#[derive(Debug, Clone, Serialize)]
pub struct ServingReport {
    /// Completed requests.
    pub completed: usize,
    /// Time-to-first-token histogram, ns.
    pub ttft: Histogram,
    /// End-to-end request latency histogram, ns.
    pub latency: Histogram,
    /// Delivered tokens per second over the run.
    pub tokens_per_sec: f64,
    /// Maximum router queue depth observed.
    pub max_queue_depth: usize,
    /// Virtual duration of the run.
    pub duration: SimTime,
}

/// Per-token decode time when `busy` backends run concurrently on the
/// cluster (bandwidth contention slows every backend as more run).
///
/// `busy = 0` returns [`SimTime::ZERO`] — no decode is in flight, so no
/// token is being paced. This is the same pricing [`simulate`]'s
/// dispatch loop uses internally; it is public so external serving
/// layers (`cxl-serve`) feed requests through the identical model.
pub fn token_time(cluster: &LlmCluster, placement: LlmPlacement, busy: usize) -> SimTime {
    if busy == 0 {
        return SimTime::ZERO;
    }
    let tpb = cluster.config().threads_per_backend;
    let rate = cluster
        .serving_rate(placement, busy * tpb)
        .tokens_per_sec
        .max(1e-9)
        / busy as f64;
    SimTime::from_secs_f64(1.0 / rate)
}

/// Prefill/decode timing of one request at a fixed per-token decode
/// time (see [`request_timing`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTiming {
    /// Time from dispatch until the first token is out (prefill plus
    /// one decode step).
    pub first_token: SimTime,
    /// Total service time from dispatch to the last token.
    pub total: SimTime,
}

/// Prices one request at a per-token decode time `token_time` (from
/// [`token_time`]) and the KV-cache growth coefficient.
///
/// Prefill processes prompt tokens in batched matmuls, ~8x faster per
/// token than decode; then the first token completes. Decode slows as
/// the KV cache grows (Fig. 10(c)): token `i` reads `prompt + i` tokens
/// of context, and the linear growth sums to a closed form over the
/// remaining output tokens. This is the exact arithmetic of
/// [`simulate`]'s dispatch loop, extracted so queue-fed callers price
/// requests bit-identically.
pub fn request_timing(token_time: SimTime, req: Request, kv_growth_per_kt: f64) -> RequestTiming {
    let prefill_done_ns = token_time.as_ns() / 8 * req.prompt_tokens as u64 + token_time.as_ns();
    let rest = (req.output_tokens.max(1) - 1) as u64;
    let base_rest_ns = token_time.as_ns() * rest;
    let avg_context_kt = (req.prompt_tokens as f64 + req.output_tokens as f64 / 2.0) / 1_000.0;
    let kv_extra_ns = (base_rest_ns as f64 * kv_growth_per_kt * avg_context_kt) as u64;
    RequestTiming {
        first_token: SimTime::from_ns(prefill_done_ns),
        total: SimTime::from_ns(prefill_done_ns + base_rest_ns + kv_extra_ns),
    }
}

struct BackendState {
    /// When this backend finishes its current work.
    busy_until: SimTime,
}

struct ServerState {
    backends: Vec<BackendState>,
    queue: Vec<(SimTime, Request)>,
    max_queue_depth: usize,
    ttft: Histogram,
    latency: Histogram,
    tokens_done: u64,
    completed: usize,
    /// Per-token decode time when `b` backends run concurrently
    /// (index `b`, 1-based; index 0 unused).
    token_time_at: Vec<SimTime>,
    /// KV-cache growth coefficient (see [`ServerConfig`]).
    kv_growth_per_kt: f64,
}

/// Runs the Fig. 9 serving stack on the event engine.
///
/// Each backend serves one request at a time (the paper's backends pin
/// 12 threads each); the router assigns queued requests to the first
/// idle backend in arrival order. Per-token decode time comes from the
/// cluster's bandwidth model at the *concurrent* backend count, so
/// placements that survive saturation serve faster under load.
pub fn simulate(cluster: &LlmCluster, cfg: &ServerConfig) -> ServingReport {
    assert!(cfg.backends > 0, "need at least one backend");
    assert!(cfg.requests > 0, "need requests");
    assert!(
        cfg.arrival_rate > 0.0 && cfg.arrival_rate.is_finite(),
        "invalid arrival rate"
    );

    // Per-token decode time as a function of concurrently busy
    // backends: bandwidth contention slows every backend as more run.
    // (A request's pace is fixed at dispatch from the concurrency at
    // that moment — a mild approximation of full re-pacing.)
    let token_time_at: Vec<SimTime> = (0..=cfg.backends)
        .map(|b| token_time(cluster, cfg.placement, b))
        .collect();

    let state = ServerState {
        backends: (0..cfg.backends)
            .map(|_| BackendState {
                busy_until: SimTime::ZERO,
            })
            .collect(),
        queue: Vec::new(),
        max_queue_depth: 0,
        ttft: Histogram::new(),
        latency: Histogram::new(),
        tokens_done: 0,
        completed: 0,
        token_time_at,
        kv_growth_per_kt: cfg.kv_growth_per_kt,
    };
    let mut engine = Engine::new(state);

    // Schedule all arrivals up front (open loop).
    let mut rng = stream_rng(cfg.seed, "llm-server");
    let interarrival = cxl_stats::Exponential::new(cfg.arrival_rate);
    let mut t = 0.0f64;
    for _ in 0..cfg.requests {
        t += interarrival.sample(&mut rng);
        let out_tokens = (cfg.mean_output_tokens as f64 * (0.5 + rng.gen::<f64>())) as u32;
        let req = Request {
            prompt_tokens: cfg.prompt_tokens,
            output_tokens: out_tokens.max(1),
        };
        let arrival = SimTime::from_secs_f64(t);
        engine.schedule_at(arrival, move |e| {
            let now = e.now();
            e.state_mut().queue.push((now, req));
            let depth = e.state().queue.len();
            if depth > e.state().max_queue_depth {
                e.state_mut().max_queue_depth = depth;
            }
            dispatch(e);
        });
    }
    engine.run();

    let duration = engine.now();
    let state = engine.into_state();
    ServingReport {
        completed: state.completed,
        ttft: state.ttft,
        latency: state.latency,
        tokens_per_sec: if duration > SimTime::ZERO {
            state.tokens_done as f64 / duration.as_secs_f64()
        } else {
            0.0
        },
        max_queue_depth: state.max_queue_depth,
        duration,
    }
}

/// Assigns queued requests to idle backends.
fn dispatch(engine: &mut Engine<ServerState>) {
    let now = engine.now();
    loop {
        let state = engine.state_mut();
        if state.queue.is_empty() {
            return;
        }
        let Some(backend) = state.backends.iter().position(|b| b.busy_until <= now) else {
            return;
        };
        let (arrival, req) = state.queue.remove(0);
        // Concurrency after this assignment sets the decode pace.
        let busy = state.backends.iter().filter(|b| b.busy_until > now).count() + 1;
        let tt = state.token_time_at[busy.min(state.token_time_at.len() - 1)];
        let timing = request_timing(tt, req, state.kv_growth_per_kt);
        let finish = now + timing.total;
        state.backends[backend].busy_until = finish;
        state
            .ttft
            .record((now + timing.first_token).saturating_sub(arrival).as_ns());
        state.tokens_done += req.output_tokens as u64;
        // At completion: record latency and pull more work.
        engine.schedule_at(finish, move |e| {
            let now = e.now();
            e.state_mut().completed += 1;
            let sojourn = now.saturating_sub(arrival).as_ns();
            e.state_mut().latency.record(sojourn);
            dispatch(e);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LlmConfig;

    fn cluster() -> LlmCluster {
        LlmCluster::new(LlmConfig::default())
    }

    #[test]
    fn completes_every_request() {
        let r = simulate(&cluster(), &ServerConfig::default());
        assert_eq!(r.completed, 400);
        assert_eq!(r.latency.count(), 400);
        assert_eq!(r.ttft.count(), 400);
        assert!(r.tokens_per_sec > 0.0);
    }

    #[test]
    fn overload_grows_queue_and_latency() {
        let light = simulate(
            &cluster(),
            &ServerConfig {
                arrival_rate: 0.05,
                ..Default::default()
            },
        );
        let heavy = simulate(
            &cluster(),
            &ServerConfig {
                arrival_rate: 5.0,
                ..Default::default()
            },
        );
        assert!(heavy.max_queue_depth > light.max_queue_depth);
        assert!(
            heavy.latency.percentile(99.0) > 2 * light.latency.percentile(99.0),
            "light {} heavy {}",
            light.latency.percentile(99.0),
            heavy.latency.percentile(99.0)
        );
    }

    #[test]
    fn ttft_below_full_latency() {
        let r = simulate(&cluster(), &ServerConfig::default());
        assert!(r.ttft.percentile(50.0) < r.latency.percentile(50.0));
    }

    #[test]
    fn saturated_interleave_out_serves_mmem() {
        // 6 backends x 12 threads = 72 threads: past the MMEM knee, the
        // 3:1 placement should deliver more tokens per second end to end.
        let cfg = |p| ServerConfig {
            backends: 6,
            placement: p,
            arrival_rate: 8.0,
            requests: 300,
            ..Default::default()
        };
        let mmem = simulate(&cluster(), &cfg(LlmPlacement::MmemOnly));
        let il = simulate(&cluster(), &cfg(LlmPlacement::Interleave { n: 3, m: 1 }));
        assert!(
            il.tokens_per_sec > 1.3 * mmem.tokens_per_sec,
            "il {} mmem {}",
            il.tokens_per_sec,
            mmem.tokens_per_sec
        );
        assert!(il.latency.percentile(99.0) < mmem.latency.percentile(99.0));
    }

    #[test]
    fn kv_cache_growth_slows_long_generations() {
        let base = ServerConfig {
            arrival_rate: 0.05,
            requests: 150,
            ..Default::default()
        };
        let short = simulate(
            &cluster(),
            &ServerConfig {
                mean_output_tokens: 32,
                ..base.clone()
            },
        );
        let long = simulate(
            &cluster(),
            &ServerConfig {
                mean_output_tokens: 512,
                ..base.clone()
            },
        );
        // Longer generations cost more than proportionally versus the
        // growth-free model: the KV cache grows along the sequence.
        let flat = simulate(
            &cluster(),
            &ServerConfig {
                mean_output_tokens: 512,
                kv_growth_per_kt: 0.0,
                ..base
            },
        );
        let growth_overhead = long.latency.mean() / flat.latency.mean();
        assert!(growth_overhead > 1.15, "growth overhead {growth_overhead}");
        // And long generations are much slower than short ones either way.
        assert!(long.latency.mean() > 4.0 * short.latency.mean());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = simulate(&cluster(), &ServerConfig::default());
        let b = simulate(&cluster(), &ServerConfig::default());
        assert_eq!(a.tokens_per_sec, b.tokens_per_sec);
        assert_eq!(a.latency.percentile(99.0), b.latency.percentile(99.0));
    }

    #[test]
    #[should_panic(expected = "need at least one backend")]
    fn zero_backends_rejected() {
        simulate(
            &cluster(),
            &ServerConfig {
                backends: 0,
                ..Default::default()
            },
        );
    }
}
