//! Runs the control loop as periodic ticks on the `cxl-sim` engine.
//!
//! The controller does not own a clock: it becomes one repeating event
//! on an [`Engine`], firing every control period in virtual time. This
//! keeps the control plane inside the same deterministic event order as
//! the workload it steers — a fault scheduled between two ticks lands
//! between the same two ticks on every run and under any `--jobs`.

use cxl_sim::{Engine, SimTime};
use serde::Serialize;

use crate::knob::Plant;
use crate::policy::{Controller, TickOutcome};
use crate::signal::SignalPlane;

/// One row of the control-loop trace.
#[derive(Debug, Clone, Serialize)]
pub struct TraceEntry {
    /// Controller tick index (1-based).
    pub tick: u64,
    /// Virtual time the tick fired.
    pub at: SimTime,
    /// Objective measured over the interval that just elapsed.
    pub objective: f64,
    /// What the controller did.
    pub outcome: TickOutcome,
    /// Setting index per knob after the tick.
    pub settings: Vec<usize>,
}

/// The engine state for a control run: controller, plant, signals, and
/// the per-tick trace. Recovered whole via [`Engine::into_state`] when
/// the run ends.
#[derive(Debug)]
pub struct ControlLoop<P> {
    /// The policy plane.
    pub controller: Controller,
    /// The system under control.
    pub plant: P,
    /// The signal plane (sampled once per tick).
    pub signals: SignalPlane,
    /// One entry per tick, in firing order.
    pub trace: Vec<TraceEntry>,
}

/// Drives `controller` over `plant` as a repeating engine event.
///
/// Every `period` of virtual time, `step` advances the plant across the
/// interval ending at the current tick and returns the objective
/// measured over it (higher is better); the signal plane then samples
/// the ambient `cxl-obs` registry, and the controller decides. The loop
/// stops after the last tick at or before `until`.
///
/// `setup` runs once before the clock starts and may schedule extra
/// events on the engine — fault injections, phase switches — that
/// interleave deterministically with the control ticks (FIFO tie-break
/// on equal timestamps). Pass `|_| {}` when none are needed.
pub fn run_on_engine<P, F>(
    controller: Controller,
    plant: P,
    signals: SignalPlane,
    period: SimTime,
    until: SimTime,
    mut step: F,
    setup: impl FnOnce(&mut Engine<ControlLoop<P>>),
) -> ControlLoop<P>
where
    P: Plant + 'static,
    F: FnMut(&mut P, SimTime) -> f64 + 'static,
{
    assert!(period > SimTime::ZERO, "control period must be positive");
    let mut engine = Engine::new(ControlLoop {
        controller,
        plant,
        signals,
        trace: Vec::new(),
    });
    setup(&mut engine);
    engine.schedule_every(period, move |e| {
        let now = e.now();
        let s = e.state_mut();
        let objective = step(&mut s.plant, now);
        s.signals.observe("objective", objective);
        s.signals.sample_ambient();
        let outcome = s.controller.tick(objective, &mut s.plant);
        s.trace.push(TraceEntry {
            tick: s.controller.ticks(),
            at: now,
            objective,
            outcome,
            settings: s.controller.current_settings().to_vec(),
        });
        // Reschedule while the next tick still lands inside the run.
        now + period <= until
    });
    engine.run_until(until);
    engine.into_state()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CtlError;
    use crate::knob::KnobSpec;
    use crate::policy::ControllerConfig;

    struct Ramp {
        setting: usize,
        disturbed: bool,
    }

    impl Plant for Ramp {
        fn apply(&mut self, _knob: usize, setting: usize) -> Result<(), CtlError> {
            self.setting = setting;
            Ok(())
        }
    }

    fn cfg() -> ControllerConfig {
        ControllerConfig {
            warmup_ticks: 2,
            settle_ticks: 0,
            measure_ticks: 2,
            hysteresis: 0.01,
            crash_tolerance: 0.9,
            min_action_gap_ticks: 1,
            shift_tolerance: 0.3,
            ewma_alpha: 0.5,
            history: 32,
            max_probe_extensions: 0,
        }
    }

    fn knob(len: usize) -> KnobSpec {
        KnobSpec::new("k", (0..len).map(|i| (format!("s{i}"), i as f64)), 0)
    }

    fn launch(until_ms: u64) -> ControlLoop<Ramp> {
        let ctl = Controller::new(cfg(), vec![knob(4)], vec![0]).unwrap();
        let plant = Ramp {
            setting: 0,
            disturbed: false,
        };
        run_on_engine(
            ctl,
            plant,
            SignalPlane::new(64, 0.5),
            SimTime::from_ms(1),
            SimTime::from_ms(until_ms),
            |p: &mut Ramp, _now| {
                // Objective rises with the setting; halves after the
                // disturbance to force re-convergence pressure.
                let base = 10.0 * (1 + p.setting) as f64;
                if p.disturbed {
                    base * 0.5
                } else {
                    base
                }
            },
            |_| {},
        )
    }

    #[test]
    fn ticks_land_on_the_period_grid() {
        let run = launch(10);
        assert_eq!(run.trace.len(), 10, "one tick per period up to `until`");
        for (i, t) in run.trace.iter().enumerate() {
            assert_eq!(t.at, SimTime::from_ms(i as u64 + 1));
            assert_eq!(t.tick, i as u64 + 1);
        }
    }

    #[test]
    fn loop_climbs_the_ladder() {
        let run = launch(60);
        assert_eq!(
            run.controller.current_settings(),
            &[3],
            "objective is monotone in the setting, so the top commits"
        );
        // The run may end mid-probe (the climber keeps exploring); the
        // plant then sits at the probe setting, one step off committed.
        if !run.controller.is_probing() {
            assert_eq!(run.plant.setting, 3);
        }
        assert!(run.controller.commits() >= 3);
        assert_eq!(run.controller.guardrails().violations, 0);
        // The signal plane recorded the objective each tick.
        assert_eq!(
            run.signals.series("objective").unwrap().total_pushes(),
            run.trace.len() as u64
        );
    }

    #[test]
    fn identical_runs_trace_identically() {
        let a = launch(40);
        let b = launch(40);
        let render = |r: &ControlLoop<Ramp>| {
            r.trace
                .iter()
                .map(|t| {
                    format!(
                        "{}@{} {:?} {:?} {}",
                        t.tick, t.at, t.outcome, t.settings, t.objective
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(render(&a), render(&b), "bit-identical control traces");
    }

    #[test]
    fn setup_events_interleave_with_ticks() {
        let ctl = Controller::new(cfg(), vec![knob(4)], vec![0]).unwrap();
        let plant = Ramp {
            setting: 0,
            disturbed: false,
        };
        let run = run_on_engine(
            ctl,
            plant,
            SignalPlane::new(64, 0.5),
            SimTime::from_ms(1),
            SimTime::from_ms(40),
            |p: &mut Ramp, _| 10.0 * (1 + p.setting) as f64 * if p.disturbed { 0.5 } else { 1.0 },
            |e| {
                // A mid-run disturbance, as the fault path does it.
                e.schedule_at(SimTime::from_us(20_500), |e| {
                    let s = e.state_mut();
                    s.plant.disturbed = true;
                    s.controller.notify_disturbance();
                });
            },
        );
        assert!(run.plant.disturbed);
        // The controller restarted warmup mid-run and still re-converged
        // to the top setting afterwards.
        assert_eq!(run.controller.current_settings(), &[3]);
        assert_eq!(run.controller.guardrails().violations, 0);
    }
}
