//! The policy plane: a gradient-free hill climber wrapped in guardrails.
//!
//! One knob is probed at a time (the paper's sweeps show the knobs
//! interact weakly enough for coordinate ascent: interleave ratio,
//! promotion rate, and lease size each have a unimodal response in
//! their regime), a commit requires clearing a hysteresis band over the
//! pre-probe baseline, and every knob cools down after a change so the
//! controller cannot thrash. The guardrail layer bounds the actuation
//! rate, restores the pre-probe setting on objective regression
//! (including an emergency path for mid-probe collapses), and verifies
//! plant invariants after every actuation — a violation there is the
//! CI-gated `ctl/guardrail_violations` counter.
//!
//! Converged operation is *quiescent*: a direction that was probed and
//! lost (rolled back, or declined by the plant) is blocked until the
//! world changes, so a controller sitting at a peak stops paying probe
//! overhead — essential when a neighboring setting is much worse, as
//! MMEM-only placement is once DRAM bandwidth saturates. "The world
//! changed" is detected as a steady-state objective move beyond
//! [`ControllerConfig::shift_tolerance`] (a workload phase change), at
//! which point every blocked direction reopens; commits and
//! [`Controller::notify_disturbance`] reopen them too.

use serde::Serialize;

use crate::error::CtlError;
use crate::knob::{KnobSpec, Plant};
use crate::signal::Series;

/// Tuning of the hill climber and its guardrails.
#[derive(Debug, Clone, Serialize)]
pub struct ControllerConfig {
    /// Ticks observed before the first probe (objective baseline fill).
    pub warmup_ticks: u32,
    /// Ticks discarded after an actuation before measuring (transient
    /// settle: migrations in flight, queues re-forming).
    pub settle_ticks: u32,
    /// Ticks averaged per measurement window (baseline and probe).
    pub measure_ticks: u32,
    /// Relative improvement a probe must clear to commit
    /// (`probe > baseline * (1 + hysteresis)`).
    pub hysteresis: f64,
    /// Mid-probe emergency rollback when the objective stays below
    /// `baseline * (1 - crash_tolerance)` for two consecutive ticks —
    /// do not wait out the window while the system burns. (One tick is
    /// not a collapse: plants pay transient single-tick costs right
    /// after an actuation — migration bursts, cache refill stalls.)
    pub crash_tolerance: f64,
    /// Guardrail: minimum ticks between probe starts (bounded actuation
    /// rate; rollbacks are exempt — undo must never be rate-limited).
    pub min_action_gap_ticks: u32,
    /// Relative steady-state objective move that counts as a workload
    /// shift and reopens every blocked probe direction. Set it above
    /// the objective's tick-to-tick noise and below the smallest phase
    /// change worth reacting to.
    pub shift_tolerance: f64,
    /// EWMA weight of the objective series.
    pub ewma_alpha: f64,
    /// Raw points retained in the objective series.
    pub history: usize,
    /// Extra measurement windows granted to a probe whose window mean
    /// fails the hysteresis bar while the window itself still shows the
    /// payoff transient arriving — some sample clears the bar, or the
    /// back half of the window improves on the front half by more than
    /// the hysteresis band. Capacity actions earn over horizons longer
    /// than any affordable settle window; the extension bridges them.
    /// Zero restores strict one-window decisions; a flat failing probe
    /// never extends regardless.
    pub max_probe_extensions: u32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            warmup_ticks: 4,
            settle_ticks: 1,
            measure_ticks: 3,
            hysteresis: 0.02,
            crash_tolerance: 0.5,
            min_action_gap_ticks: 2,
            shift_tolerance: 0.1,
            ewma_alpha: 0.3,
            history: 64,
            max_probe_extensions: 1,
        }
    }
}

impl ControllerConfig {
    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), CtlError> {
        if self.measure_ticks == 0 {
            return Err(CtlError::InvalidConfig(
                "measure_ticks must be nonzero (no window to decide on)".into(),
            ));
        }
        if !(self.hysteresis >= 0.0 && self.hysteresis.is_finite()) {
            return Err(CtlError::InvalidConfig(format!(
                "hysteresis must be finite and non-negative, got {}",
                self.hysteresis
            )));
        }
        if !(self.crash_tolerance > 0.0 && self.crash_tolerance <= 1.0) {
            return Err(CtlError::InvalidConfig(format!(
                "crash_tolerance must lie in (0, 1], got {}",
                self.crash_tolerance
            )));
        }
        if !(self.shift_tolerance > 0.0 && self.shift_tolerance.is_finite()) {
            return Err(CtlError::InvalidConfig(format!(
                "shift_tolerance must be finite and positive, got {}",
                self.shift_tolerance
            )));
        }
        if self.history < self.measure_ticks as usize {
            return Err(CtlError::InvalidConfig(format!(
                "history ({}) must hold at least one measure window ({})",
                self.history, self.measure_ticks
            )));
        }
        // Series::new enforces the alpha bounds; replicate as a typed
        // error instead of a panic.
        if !(self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0) {
            return Err(CtlError::InvalidConfig(format!(
                "ewma_alpha must lie in (0, 1], got {}",
                self.ewma_alpha
            )));
        }
        Ok(())
    }
}

/// Guardrail state and counters.
///
/// All counters are also mirrored into `cxl-obs` (`ctl/...`) so the
/// exported metrics JSON carries them; `violations` must stay 0 — CI
/// fails the run otherwise.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Guardrails {
    /// Probe actuations applied.
    pub actions_applied: u64,
    /// Probe starts suppressed by the actuation-rate gate.
    pub actions_blocked: u64,
    /// Actuations the plant declined (normal operation, counted).
    pub actions_rejected: u64,
    /// Plant invariant failures after an actuation (must stay 0).
    pub violations: u64,
    last_probe_tick: Option<u64>,
}

/// Outcome of one guarded actuation attempt.
enum ApplyOutcome {
    Applied,
    Rejected,
}

impl Guardrails {
    /// True when the rate gate allows a new probe at `tick`.
    fn may_probe(&self, tick: u64, min_gap: u32) -> bool {
        match self.last_probe_tick {
            Some(last) => tick.saturating_sub(last) >= u64::from(min_gap.max(1)),
            None => true,
        }
    }

    /// Applies `(knob, setting)` through the plant, counting the result
    /// and running the invariant check. `is_probe` marks rate-gated
    /// probe starts (rollbacks pass `false`: undo is never throttled,
    /// and does not reset the gate).
    fn apply<P: Plant>(
        &mut self,
        plant: &mut P,
        knob: usize,
        setting: usize,
        tick: u64,
        is_probe: bool,
    ) -> ApplyOutcome {
        match plant.apply(knob, setting) {
            Ok(()) => {
                self.actions_applied += 1;
                cxl_obs::counter_add("ctl/actions_applied", 1);
                if is_probe {
                    self.last_probe_tick = Some(tick);
                }
                if let Err(breach) = plant.check_invariants() {
                    self.violations += 1;
                    cxl_obs::counter_add("ctl/guardrail_violations", 1);
                    // The breach text is diagnostic; the counter is the
                    // contract (CI fails on nonzero).
                    let _ = breach;
                }
                ApplyOutcome::Applied
            }
            Err(_) => {
                self.actions_rejected += 1;
                cxl_obs::counter_add("ctl/actions_rejected", 1);
                ApplyOutcome::Rejected
            }
        }
    }
}

/// What one controller tick did (for traces, tests, and reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TickOutcome {
    /// Still filling the warmup window; no actuation considered.
    Warmup,
    /// Holding the current settings; no eligible probe this tick.
    Steady,
    /// Probe suppressed by the actuation-rate guardrail.
    Blocked,
    /// A probe actuation was applied (`knob` moved `from -> to`).
    ProbeStarted {
        /// Knob index probed.
        knob: usize,
        /// Setting index before the probe.
        from: usize,
        /// Setting index under test.
        to: usize,
    },
    /// The plant declined the probe actuation.
    ProbeRejected {
        /// Knob index whose actuation was declined.
        knob: usize,
    },
    /// Probe in flight, discarding transient ticks.
    Settling {
        /// Knob index under test.
        knob: usize,
    },
    /// Probe in flight, accumulating the measurement window.
    Measuring {
        /// Knob index under test.
        knob: usize,
    },
    /// The window mean fell short but the window still shows the
    /// payoff transient arriving: the probe earned another measurement
    /// window (see [`ControllerConfig::max_probe_extensions`]).
    ProbeExtended {
        /// Knob index under test.
        knob: usize,
    },
    /// The probe cleared the hysteresis band; the new setting stays.
    Committed {
        /// Knob index committed.
        knob: usize,
        /// Previous setting index.
        from: usize,
        /// Newly committed setting index.
        to: usize,
    },
    /// The probe failed to improve; the pre-probe setting was restored.
    RolledBack {
        /// Knob index rolled back.
        knob: usize,
        /// Setting index restored.
        restored: usize,
    },
    /// Mid-probe objective collapse; restored without finishing the
    /// window.
    EmergencyRollback {
        /// Knob index rolled back.
        knob: usize,
        /// Setting index restored.
        restored: usize,
    },
}

#[derive(Debug, Clone)]
struct Probe {
    knob: usize,
    prev_setting: usize,
    probe_setting: usize,
    baseline: f64,
    settle_remaining: u32,
    measured: Vec<f64>,
    /// Consecutive ticks spent below the crash floor (see
    /// [`ControllerConfig::crash_tolerance`]).
    crash_strikes: u8,
    /// Extra measurement windows this probe may still earn.
    extensions_left: u32,
}

#[derive(Debug, Clone)]
enum Mode {
    Warmup { remaining: u32 },
    Steady,
    Probing(Probe),
}

/// The feedback controller: coordinate-ascent hill climbing over a set
/// of [`KnobSpec`] ladders, guarded by [`Guardrails`].
///
/// Call [`Controller::tick`] once per control interval with the
/// objective measured over the interval that just elapsed (higher is
/// better). The controller decides — at most one actuation per tick —
/// and applies it through the plant.
#[derive(Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    knobs: Vec<KnobSpec>,
    current: Vec<usize>,
    /// Preferred probe direction per knob (+1 up-ladder, -1 down);
    /// flipped on a failed probe so the climber explores both sides.
    dir: Vec<i8>,
    /// Per knob: `[down, up]` directions closed by a failed or declined
    /// probe. A blocked direction is not re-probed until a commit on
    /// that knob, a detected shift, or a disturbance reopens it — this
    /// is what makes a converged controller quiescent.
    blocked: Vec<[bool; 2]>,
    cooldown_until: Vec<u64>,
    next_knob: usize,
    objective: Series,
    guardrails: Guardrails,
    mode: Mode,
    tick_index: u64,
    /// Ticks left during which the shift detector stays quiet while the
    /// baseline window refills after a commit, rollback, or shift.
    rebaseline: u32,
    /// Ticks left during which probing holds off after a detected
    /// shift, so probe baselines never mix pre- and post-shift levels.
    shift_quiet: u32,
    probes: u64,
    commits: u64,
    rollbacks: u64,
    emergency_rollbacks: u64,
    shifts: u64,
}

/// `[down, up]` index for a probe direction.
fn dir_idx(d: i8) -> usize {
    usize::from(d > 0)
}

impl Controller {
    /// Builds a controller holding `knobs` at the `initial` setting
    /// indices.
    ///
    /// The caller is responsible for the plant already *being* at those
    /// settings (the controller never blind-applies the initial state).
    pub fn new(
        cfg: ControllerConfig,
        knobs: Vec<KnobSpec>,
        initial: Vec<usize>,
    ) -> Result<Self, CtlError> {
        cfg.validate()?;
        if knobs.is_empty() {
            return Err(CtlError::InvalidConfig(
                "controller needs at least one knob".into(),
            ));
        }
        if initial.len() != knobs.len() {
            return Err(CtlError::InvalidConfig(format!(
                "initial settings ({}) must match knob count ({})",
                initial.len(),
                knobs.len()
            )));
        }
        for (k, (&idx, spec)) in initial.iter().zip(&knobs).enumerate() {
            if idx >= spec.len() {
                return Err(CtlError::UnknownSetting {
                    knob: k,
                    setting: idx,
                    len: spec.len(),
                });
            }
        }
        let n = knobs.len();
        let objective = Series::new(cfg.history, cfg.ewma_alpha);
        let warmup = cfg.warmup_ticks;
        Ok(Self {
            cfg,
            knobs,
            current: initial,
            dir: vec![1; n],
            blocked: vec![[false; 2]; n],
            cooldown_until: vec![0; n],
            next_knob: 0,
            objective,
            guardrails: Guardrails::default(),
            mode: Mode::Warmup { remaining: warmup },
            tick_index: 0,
            rebaseline: 0,
            shift_quiet: 0,
            probes: 0,
            commits: 0,
            rollbacks: 0,
            emergency_rollbacks: 0,
            shifts: 0,
        })
    }

    /// One control interval: record `objective` (measured over the
    /// interval that just elapsed; higher is better) and act.
    pub fn tick<P: Plant>(&mut self, objective: f64, plant: &mut P) -> TickOutcome {
        self.tick_index += 1;
        self.detect_shift(objective);
        self.objective.push(objective);
        let outcome = match std::mem::replace(&mut self.mode, Mode::Steady) {
            Mode::Warmup { remaining } => {
                if remaining > 1 {
                    self.mode = Mode::Warmup {
                        remaining: remaining - 1,
                    };
                } // else: Steady (already in place).
                TickOutcome::Warmup
            }
            Mode::Steady => self.steady_tick(plant),
            Mode::Probing(probe) => self.probing_tick(probe, objective, plant),
        };
        if cxl_obs::active() {
            cxl_obs::counter_add("ctl/ticks", 1);
        }
        outcome
    }

    /// Steady-state change detection: while holding (not probing — the
    /// crash check covers probes), an objective move beyond the shift
    /// tolerance relative to the recent baseline means the workload
    /// changed phase. Every blocked direction reopens so the climber
    /// re-explores, and the detector stays quiet while the baseline
    /// window refills (also after commits and rollbacks, whose
    /// objective steps are expected, not shifts).
    fn detect_shift(&mut self, objective: f64) {
        let steady = matches!(self.mode, Mode::Steady);
        if self.rebaseline > 0 {
            self.rebaseline -= 1;
            return;
        }
        if !steady {
            return;
        }
        let Some(baseline) = self.objective.mean_last(self.cfg.measure_ticks as usize) else {
            return;
        };
        if (objective - baseline).abs() > self.cfg.shift_tolerance * baseline.abs().max(1e-9) {
            for b in &mut self.blocked {
                *b = [false; 2];
            }
            self.rebaseline = self.cfg.measure_ticks;
            self.shift_quiet = self.cfg.measure_ticks;
            self.shifts += 1;
            cxl_obs::counter_add("ctl/shifts", 1);
        }
    }

    fn steady_tick<P: Plant>(&mut self, plant: &mut P) -> TickOutcome {
        // Right after a shift the history window still holds pre-shift
        // values; a probe measured against that mix would mis-decide.
        // Hold until the window refills at the new level.
        if self.shift_quiet > 0 {
            self.shift_quiet -= 1;
            return TickOutcome::Steady;
        }
        // Same while the window refills after a commit or rollback: the
        // history still holds probe-period values, and a probe measured
        // against that stale baseline mis-decides (a rolled-back probe's
        // depressed window would make any next move look like a win).
        if self.rebaseline > 0 {
            return TickOutcome::Steady;
        }
        // A baseline needs a full measurement window of history.
        if self.objective.len() < self.cfg.measure_ticks as usize {
            return TickOutcome::Steady;
        }
        if !self
            .guardrails
            .may_probe(self.tick_index, self.cfg.min_action_gap_ticks)
        {
            self.guardrails.actions_blocked += 1;
            cxl_obs::counter_add("ctl/actions_blocked", 1);
            return TickOutcome::Blocked;
        }
        let Some((knob, probe_setting)) = self.pick_probe() else {
            return TickOutcome::Steady;
        };
        let prev_setting = self.current[knob];
        let baseline = self
            .objective
            .mean_last(self.cfg.measure_ticks as usize)
            .expect("length checked above");
        match self
            .guardrails
            .apply(plant, knob, probe_setting, self.tick_index, true)
        {
            ApplyOutcome::Applied => {
                self.probes += 1;
                cxl_obs::counter_add("ctl/probes", 1);
                // Advance the cursor so the *next* probe starts from the
                // following knob even if this one commits.
                self.next_knob = (knob + 1) % self.knobs.len();
                self.mode = Mode::Probing(Probe {
                    knob,
                    prev_setting,
                    probe_setting,
                    baseline,
                    settle_remaining: self.cfg.settle_ticks,
                    measured: Vec::with_capacity(self.cfg.measure_ticks as usize),
                    crash_strikes: 0,
                    extensions_left: self.cfg.max_probe_extensions,
                });
                TickOutcome::ProbeStarted {
                    knob,
                    from: prev_setting,
                    to: probe_setting,
                }
            }
            ApplyOutcome::Rejected => {
                // The plant said no (e.g. pool exhausted). That
                // direction stays closed until the world changes; try
                // the other one next time and let the cursor move on.
                let d = if probe_setting > prev_setting {
                    1i8
                } else {
                    -1
                };
                self.blocked[knob][dir_idx(d)] = true;
                self.dir[knob] = -self.dir[knob];
                self.next_knob = (knob + 1) % self.knobs.len();
                TickOutcome::ProbeRejected { knob }
            }
        }
    }

    /// Round-robin scan for the next probe-eligible knob, starting at
    /// the cursor: off cooldown, more than one setting, and an open
    /// neighbor on the ladder in the preferred (else opposite)
    /// direction. Directions closed by a failed probe are skipped — a
    /// fully explored knob costs nothing to hold.
    fn pick_probe(&mut self) -> Option<(usize, usize)> {
        let n = self.knobs.len();
        for i in 0..n {
            let k = (self.next_knob + i) % n;
            if self.cooldown_until[k] > self.tick_index || self.knobs[k].len() < 2 {
                continue;
            }
            let cur = self.current[k] as i64;
            let len = self.knobs[k].len() as i64;
            let preferred = self.dir[k];
            for d in [preferred, -preferred] {
                let candidate = cur + i64::from(d);
                if (0..len).contains(&candidate) && !self.blocked[k][dir_idx(d)] {
                    self.dir[k] = d;
                    return Some((k, candidate as usize));
                }
            }
        }
        None
    }

    fn probing_tick<P: Plant>(
        &mut self,
        mut probe: Probe,
        objective: f64,
        plant: &mut P,
    ) -> TickOutcome {
        // Emergency path: a sustained collapse is not waited out. One
        // tick below the floor only arms the trigger — actuations often
        // cost one transient stall tick (migration burst, cache refill)
        // that says nothing about the probed setting's steady state.
        if objective < probe.baseline * (1.0 - self.cfg.crash_tolerance) {
            probe.crash_strikes += 1;
            if probe.crash_strikes >= 2 {
                self.emergency_rollbacks += 1;
                cxl_obs::counter_add("ctl/emergency_rollbacks", 1);
                return self.finish_rollback(probe, plant, true);
            }
        } else {
            probe.crash_strikes = 0;
        }
        if probe.settle_remaining > 0 {
            probe.settle_remaining -= 1;
            let knob = probe.knob;
            self.mode = Mode::Probing(probe);
            return TickOutcome::Settling { knob };
        }
        probe.measured.push(objective);
        if probe.measured.len() < self.cfg.measure_ticks as usize {
            let knob = probe.knob;
            self.mode = Mode::Probing(probe);
            return TickOutcome::Measuring { knob };
        }
        let probe_mean = probe.measured.iter().sum::<f64>() / probe.measured.len() as f64;
        if probe_mean > probe.baseline * (1.0 + self.cfg.hysteresis) {
            // Commit: the probe setting becomes current; the knob cools
            // down; the direction that worked is kept open for the next
            // climb step, while the setting just left is known-worse —
            // don't crawl back to it until the world changes.
            let Probe {
                knob,
                prev_setting,
                probe_setting,
                ..
            } = probe;
            let d = if probe_setting > prev_setting {
                1i8
            } else {
                -1
            };
            self.blocked[knob] = [false; 2];
            self.blocked[knob][dir_idx(-d)] = true;
            self.current[knob] = probe_setting;
            self.cooldown_until[knob] =
                self.tick_index + u64::from(self.knobs[knob].cooldown_ticks);
            self.rebaseline = self.cfg.measure_ticks;
            self.commits += 1;
            cxl_obs::counter_add("ctl/commits", 1);
            TickOutcome::Committed {
                knob,
                from: prev_setting,
                to: probe_setting,
            }
        } else if probe.extensions_left > 0 && {
            // The window mean says no, but the window itself says the
            // probe is still riding its payoff transient: either some
            // sample already cleared the bar, or the back half of the
            // window improves on the front half by more than the
            // hysteresis band (a flat failing probe does neither).
            let bar = probe.baseline * (1.0 + self.cfg.hysteresis);
            let max = probe
                .measured
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            let mid = probe.measured.len() / 2;
            let half_mean = |s: &[f64]| s.iter().sum::<f64>() / s.len().max(1) as f64;
            let improving = mid > 0
                && half_mean(&probe.measured[mid..])
                    > half_mean(&probe.measured[..mid]) * (1.0 + self.cfg.hysteresis);
            max > bar || improving
        } {
            probe.extensions_left -= 1;
            probe.measured.clear();
            let knob = probe.knob;
            self.mode = Mode::Probing(probe);
            cxl_obs::counter_add("ctl/probe_extensions", 1);
            TickOutcome::ProbeExtended { knob }
        } else {
            self.rollbacks += 1;
            cxl_obs::counter_add("ctl/rollbacks", 1);
            self.finish_rollback(probe, plant, false)
        }
    }

    /// Restores the pre-probe setting. Rollback actuations bypass the
    /// rate gate (undo must always be possible) but still run the
    /// invariant check. A plant that declines its own previous setting
    /// has broken the transactional-apply contract: that counts as a
    /// guardrail violation and the controller accepts the probe setting
    /// as the new reality rather than lying about the plant state.
    fn finish_rollback<P: Plant>(
        &mut self,
        probe: Probe,
        plant: &mut P,
        emergency: bool,
    ) -> TickOutcome {
        let Probe {
            knob,
            prev_setting,
            probe_setting,
            ..
        } = probe;
        match self
            .guardrails
            .apply(plant, knob, prev_setting, self.tick_index, false)
        {
            ApplyOutcome::Applied => {
                self.current[knob] = prev_setting;
            }
            ApplyOutcome::Rejected => {
                self.guardrails.violations += 1;
                cxl_obs::counter_add("ctl/guardrail_violations", 1);
                self.current[knob] = probe_setting;
            }
        }
        // A failed direction is closed until the world changes (commit,
        // shift, or disturbance), and the preference flips. Only the
        // emergency path engages the knob cooldown: a plain rollback
        // restored the old value, so there is nothing to let settle,
        // but a collapse says this knob is dangerous right now — back
        // off before touching it again.
        let d = if probe_setting > prev_setting {
            1i8
        } else {
            -1
        };
        self.blocked[knob][dir_idx(d)] = true;
        self.dir[knob] = -self.dir[knob];
        self.rebaseline = self.cfg.measure_ticks;
        if emergency {
            self.cooldown_until[knob] =
                self.tick_index + u64::from(self.knobs[knob].cooldown_ticks);
        }
        let restored = self.current[knob];
        if emergency {
            TickOutcome::EmergencyRollback { knob, restored }
        } else {
            TickOutcome::RolledBack { knob, restored }
        }
    }

    /// Tells the controller the plant changed beneath it (a fault, a
    /// topology change): any in-flight probe is abandoned **keeping the
    /// current plant state** (the pre-fault baseline is meaningless),
    /// cooldowns and the objective history are cleared, and a fresh
    /// warmup begins so re-convergence starts from clean measurements.
    pub fn notify_disturbance(&mut self) {
        if let Mode::Probing(probe) = &self.mode {
            // The probe setting is what the plant is physically at.
            self.current[probe.knob] = probe.probe_setting;
        }
        self.mode = Mode::Warmup {
            remaining: self.cfg.warmup_ticks.max(1),
        };
        // Restart the round-robin at the first knob, so knob order
        // encodes post-disturbance probing priority.
        self.next_knob = 0;
        for c in &mut self.cooldown_until {
            *c = 0;
        }
        for b in &mut self.blocked {
            *b = [false; 2];
        }
        self.rebaseline = 0;
        self.shift_quiet = 0;
        self.objective = Series::new(self.cfg.history, self.cfg.ewma_alpha);
        cxl_obs::counter_add("ctl/disturbances", 1);
    }

    /// Current setting index per knob.
    pub fn current_settings(&self) -> &[usize] {
        &self.current
    }

    /// Current setting label per knob, `knob=label` pairs joined.
    pub fn describe_settings(&self) -> String {
        self.knobs
            .iter()
            .zip(&self.current)
            .map(|(k, &i)| format!("{}={}", k.name, k.labels[i]))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// The knob table.
    pub fn knobs(&self) -> &[KnobSpec] {
        &self.knobs
    }

    /// The objective series (for reports).
    pub fn objective(&self) -> &Series {
        &self.objective
    }

    /// Guardrail counters.
    pub fn guardrails(&self) -> &Guardrails {
        &self.guardrails
    }

    /// Probes started.
    pub fn probes(&self) -> u64 {
        self.probes
    }

    /// Probes committed.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Probes rolled back (including emergencies).
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks + self.emergency_rollbacks
    }

    /// Mid-probe emergency rollbacks alone.
    pub fn emergency_rollbacks(&self) -> u64 {
        self.emergency_rollbacks
    }

    /// Steady-state workload shifts detected (blocked directions
    /// reopened).
    pub fn shifts(&self) -> u64 {
        self.shifts
    }

    /// Ticks processed.
    pub fn ticks(&self) -> u64 {
        self.tick_index
    }

    /// True while a probe is in flight.
    pub fn is_probing(&self) -> bool {
        matches!(self.mode, Mode::Probing(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A plant whose objective is a concave function of two knob
    /// settings, with an optional per-knob legal ceiling.
    struct MockPlant {
        settings: Vec<usize>,
        best: Vec<usize>,
        ceiling: Vec<usize>,
        applies: u64,
    }

    impl MockPlant {
        fn new(initial: Vec<usize>, best: Vec<usize>) -> Self {
            let ceiling = vec![usize::MAX; initial.len()];
            Self {
                settings: initial,
                best,
                ceiling,
                applies: 0,
            }
        }

        /// Objective peaks at `best` and falls off by distance.
        fn objective(&self) -> f64 {
            let dist: usize = self
                .settings
                .iter()
                .zip(&self.best)
                .map(|(&s, &b)| s.abs_diff(b))
                .sum();
            100.0 - 10.0 * dist as f64
        }
    }

    impl Plant for MockPlant {
        fn apply(&mut self, knob: usize, setting: usize) -> Result<(), CtlError> {
            if setting > self.ceiling[knob] {
                return Err(CtlError::Rejected(format!(
                    "setting {setting} above ceiling {}",
                    self.ceiling[knob]
                )));
            }
            self.settings[knob] = setting;
            self.applies += 1;
            Ok(())
        }
    }

    fn knob(name: &str, len: usize, cooldown: u32) -> KnobSpec {
        KnobSpec::new(
            name,
            (0..len).map(|i| (format!("s{i}"), i as f64)),
            cooldown,
        )
    }

    fn fast_cfg() -> ControllerConfig {
        ControllerConfig {
            warmup_ticks: 2,
            settle_ticks: 0,
            measure_ticks: 2,
            hysteresis: 0.01,
            crash_tolerance: 0.5,
            min_action_gap_ticks: 1,
            shift_tolerance: 0.25,
            ewma_alpha: 0.5,
            history: 32,
            max_probe_extensions: 0,
        }
    }

    /// Drives controller+plant for `ticks`, returning the outcomes.
    fn drive(ctl: &mut Controller, plant: &mut MockPlant, ticks: usize) -> Vec<TickOutcome> {
        (0..ticks)
            .map(|_| ctl.tick(plant.objective(), plant))
            .collect()
    }

    /// Finishes any in-flight probe so the plant reflects `current`
    /// (a run can legitimately end mid-probe with the plant at the
    /// probe setting — that is the climber still exploring).
    fn settle(ctl: &mut Controller, plant: &mut MockPlant) {
        for _ in 0..16 {
            if !ctl.is_probing() {
                break;
            }
            ctl.tick(plant.objective(), plant);
        }
        assert!(!ctl.is_probing(), "probe window should resolve quickly");
    }

    #[test]
    fn climbs_to_the_optimum_and_stays() {
        let mut plant = MockPlant::new(vec![0, 0], vec![3, 2]);
        let mut ctl = Controller::new(
            fast_cfg(),
            vec![knob("a", 5, 0), knob("b", 4, 0)],
            vec![0, 0],
        )
        .unwrap();
        let outcomes = drive(&mut ctl, &mut plant, 120);
        settle(&mut ctl, &mut plant);
        assert_eq!(plant.settings, vec![3, 2], "converged to the optimum");
        assert_eq!(ctl.current_settings(), &[3, 2]);
        assert!(ctl.commits() >= 5, "commits: {}", ctl.commits());
        assert!(outcomes.contains(&TickOutcome::Committed {
            knob: 0,
            from: 0,
            to: 1
        }));
        // At the peak, further probes roll back and the climber holds.
        assert!(ctl.rollbacks() > 0);
        assert_eq!(ctl.guardrails().violations, 0);
    }

    #[test]
    fn rollback_restores_pre_probe_setting_then_goes_quiescent() {
        // Already at the optimum: one probe per direction rolls back,
        // then both directions are closed and the controller holds
        // without paying any further probe overhead.
        let mut plant = MockPlant::new(vec![2], vec![2]);
        let mut ctl = Controller::new(fast_cfg(), vec![knob("a", 5, 0)], vec![2]).unwrap();
        let outcomes = drive(&mut ctl, &mut plant, 60);
        settle(&mut ctl, &mut plant);
        assert_eq!(plant.settings, vec![2]);
        assert_eq!(ctl.rollbacks(), 2, "one failed probe per direction");
        assert_eq!(ctl.commits(), 0);
        for o in &outcomes {
            if let TickOutcome::RolledBack { restored, .. } = o {
                assert_eq!(*restored, 2);
            }
        }
        // Quiescent tail: no probes once both neighbors are known-worse.
        assert!(
            outcomes[20..]
                .iter()
                .all(|o| matches!(o, TickOutcome::Steady)),
            "converged controller must stop probing"
        );
    }

    #[test]
    fn shift_reopens_blocked_directions() {
        // Converge and go quiescent at the optimum, then move the
        // optimum and shift the objective level past the tolerance: the
        // climber must wake up and re-converge without a disturbance
        // notification.
        struct Shifting {
            setting: usize,
            best: usize,
            boost: f64,
        }
        impl Plant for Shifting {
            fn apply(&mut self, _k: usize, s: usize) -> Result<(), CtlError> {
                self.setting = s;
                Ok(())
            }
        }
        let obj = |p: &Shifting| p.boost + 100.0 - 10.0 * p.setting.abs_diff(p.best) as f64;
        let mut plant = Shifting {
            setting: 0,
            best: 0,
            boost: 0.0,
        };
        let mut ctl = Controller::new(fast_cfg(), vec![knob("a", 4, 0)], vec![0]).unwrap();
        for _ in 0..30 {
            let o = obj(&plant);
            ctl.tick(o, &mut plant);
        }
        assert_eq!(ctl.current_settings(), &[0], "converged at the optimum");
        let probes_before = ctl.probes();
        // Phase change: level drops 40% and the peak moves to 2.
        plant.best = 2;
        plant.boost = -40.0;
        for _ in 0..40 {
            let o = obj(&plant);
            ctl.tick(o, &mut plant);
        }
        assert!(ctl.shifts() >= 1, "the level change must register");
        assert!(ctl.probes() > probes_before, "probing must resume");
        assert_eq!(ctl.current_settings(), &[2], "re-converged to the new peak");
    }

    #[test]
    fn warmup_defers_probing() {
        let mut plant = MockPlant::new(vec![0], vec![3]);
        let cfg = ControllerConfig {
            warmup_ticks: 5,
            ..fast_cfg()
        };
        let mut ctl = Controller::new(cfg, vec![knob("a", 5, 0)], vec![0]).unwrap();
        let outcomes = drive(&mut ctl, &mut plant, 5);
        assert!(outcomes.iter().all(|o| *o == TickOutcome::Warmup));
        assert_eq!(plant.applies, 0, "no actuation during warmup");
    }

    #[test]
    fn actuation_rate_is_bounded() {
        let mut plant = MockPlant::new(vec![0], vec![7]);
        let cfg = ControllerConfig {
            min_action_gap_ticks: 5,
            ..fast_cfg()
        };
        let mut ctl = Controller::new(cfg, vec![knob("a", 8, 0)], vec![0]).unwrap();
        let ticks = 100;
        drive(&mut ctl, &mut plant, ticks);
        // Probes are gated to one per 5 ticks; rollback re-applies are
        // exempt but each belongs to a probe, so total applies are
        // bounded by 2x the probe budget.
        let max_probes = (ticks as u64 / 5) + 1;
        assert!(
            ctl.probes() <= max_probes,
            "{} probes > bound {max_probes}",
            ctl.probes()
        );
        assert!(plant.applies <= 2 * max_probes);
        assert!(ctl.guardrails().actions_blocked > 0, "gate engaged");
    }

    #[test]
    fn rejected_probe_flips_direction_and_counts() {
        // Ceiling at the current setting: probing up is always illegal.
        let mut plant = MockPlant::new(vec![1], vec![3]);
        plant.ceiling[0] = 1;
        let mut ctl = Controller::new(fast_cfg(), vec![knob("a", 5, 0)], vec![1]).unwrap();
        let outcomes = drive(&mut ctl, &mut plant, 30);
        assert!(outcomes
            .iter()
            .any(|o| matches!(o, TickOutcome::ProbeRejected { .. })));
        assert!(ctl.guardrails().actions_rejected > 0);
        // Rejections are not violations.
        assert_eq!(ctl.guardrails().violations, 0);
        // The climber still explored downward (setting 0 is legal).
        assert!(plant.applies > 0);
    }

    #[test]
    fn emergency_rollback_on_collapse() {
        /// Objective collapses whenever the knob leaves setting 0.
        struct Cliff {
            setting: usize,
        }
        impl Plant for Cliff {
            fn apply(&mut self, _k: usize, s: usize) -> Result<(), CtlError> {
                self.setting = s;
                Ok(())
            }
        }
        let mut plant = Cliff { setting: 0 };
        let cfg = ControllerConfig {
            settle_ticks: 2,
            measure_ticks: 3,
            ..fast_cfg()
        };
        let mut ctl = Controller::new(cfg, vec![knob("a", 3, 0)], vec![0]).unwrap();
        let mut saw_emergency = false;
        for _ in 0..40 {
            let obj = if plant.setting == 0 { 100.0 } else { 1.0 };
            if let TickOutcome::EmergencyRollback { restored, .. } = ctl.tick(obj, &mut plant) {
                saw_emergency = true;
                assert_eq!(restored, 0);
            }
        }
        assert!(saw_emergency, "collapse must trigger the emergency path");
        assert_eq!(plant.setting, 0, "always restored");
        assert!(ctl.emergency_rollbacks() > 0);
    }

    #[test]
    fn slow_payoff_probe_earns_an_extension_and_commits() {
        /// Setting 1 opens worse than setting 0 but improves every tick
        /// it is held — a payoff horizon longer than one measurement
        /// window, like a capacity grow paying off through cache warm-up.
        struct SlowPayoff {
            setting: usize,
            held: u64,
        }
        impl Plant for SlowPayoff {
            fn apply(&mut self, _k: usize, s: usize) -> Result<(), CtlError> {
                if s != self.setting {
                    self.held = 0;
                }
                self.setting = s;
                Ok(())
            }
        }
        let cfg = ControllerConfig {
            measure_ticks: 3,
            max_probe_extensions: 1,
            ..fast_cfg()
        };
        let mut ctl = Controller::new(cfg, vec![knob("a", 2, 0)], vec![0]).unwrap();
        let mut plant = SlowPayoff {
            setting: 0,
            held: 0,
        };
        let mut saw_extension = false;
        let mut committed = false;
        for _ in 0..30 {
            let obj = if plant.setting == 0 {
                100.0
            } else {
                plant.held += 1;
                // 70, 100, 130, ...: the first window straddles the
                // baseline, the second clears it decisively.
                40.0 + 30.0 * plant.held as f64
            };
            match ctl.tick(obj, &mut plant) {
                TickOutcome::ProbeExtended { knob } => {
                    assert_eq!(knob, 0);
                    saw_extension = true;
                }
                TickOutcome::Committed { to, .. } => {
                    assert_eq!(to, 1);
                    committed = true;
                }
                TickOutcome::RolledBack { .. } | TickOutcome::EmergencyRollback { .. } => {
                    panic!("slow-payoff probe must not roll back")
                }
                _ => {}
            }
            if committed {
                break;
            }
        }
        assert!(saw_extension, "mean-fails/latest-clears must extend");
        assert!(committed, "the extended window must commit");
    }

    #[test]
    fn cooldown_spaces_probes_of_one_knob() {
        // best = [2]: the first commit (0 -> 1) engages the 20-tick
        // cooldown, so the second climb step must wait it out.
        let mut plant = MockPlant::new(vec![0], vec![2]);
        let mut ctl = Controller::new(fast_cfg(), vec![knob("a", 3, 20)], vec![0]).unwrap();
        drive(&mut ctl, &mut plant, 24);
        assert_eq!(ctl.commits(), 1, "cooldown holds the second commit");
        assert_eq!(ctl.current_settings(), &[1]);
        drive(&mut ctl, &mut plant, 30);
        settle(&mut ctl, &mut plant);
        assert_eq!(ctl.current_settings(), &[2], "climb resumes after cooldown");
    }

    #[test]
    fn disturbance_restarts_warmup_and_clears_cooldowns() {
        let mut plant = MockPlant::new(vec![0], vec![2]);
        let mut ctl = Controller::new(fast_cfg(), vec![knob("a", 3, 50)], vec![0]).unwrap();
        drive(&mut ctl, &mut plant, 30);
        // One commit (0 -> 1) fits before the 50-tick cooldown engages.
        assert_eq!(ctl.current_settings(), &[1]);
        assert_eq!(ctl.commits(), 1);
        ctl.notify_disturbance();
        assert!(!ctl.is_probing());
        assert!(ctl.objective().is_empty(), "history cleared");
        // Re-converges after the disturbance despite the long cooldown
        // that would otherwise still be in force.
        plant.best = vec![0];
        drive(&mut ctl, &mut plant, 60);
        settle(&mut ctl, &mut plant);
        assert_eq!(ctl.current_settings(), &[0], "re-converged");
        assert_eq!(ctl.guardrails().violations, 0);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let bad = ControllerConfig {
            measure_ticks: 0,
            ..Default::default()
        };
        assert!(matches!(
            Controller::new(bad, vec![knob("a", 2, 0)], vec![0]),
            Err(CtlError::InvalidConfig(_))
        ));
        assert!(matches!(
            Controller::new(ControllerConfig::default(), vec![], vec![]),
            Err(CtlError::InvalidConfig(_))
        ));
        assert!(matches!(
            Controller::new(ControllerConfig::default(), vec![knob("a", 2, 0)], vec![5]),
            Err(CtlError::UnknownSetting { .. })
        ));
    }

    #[test]
    fn single_setting_knob_is_never_probed() {
        let mut plant = MockPlant::new(vec![0], vec![0]);
        let mut ctl = Controller::new(fast_cfg(), vec![knob("fixed", 1, 0)], vec![0]).unwrap();
        drive(&mut ctl, &mut plant, 20);
        assert_eq!(ctl.probes(), 0);
        assert_eq!(plant.applies, 0);
    }

    #[test]
    fn describe_settings_names_labels() {
        let ctl = Controller::new(
            fast_cfg(),
            vec![knob("rate", 3, 0), knob("lease", 2, 0)],
            vec![2, 0],
        )
        .unwrap();
        assert_eq!(ctl.describe_settings(), "rate=s2 lease=s0");
    }
}
