//! The signal plane: bounded, EWMA-smoothed time series fed from
//! non-destructive `cxl-obs` snapshots.
//!
//! A periodic controller cannot drain the metrics registry mid-run —
//! the end-of-run export must still see the full totals — so sampling
//! works on [`cxl_obs::Snapshot`] deltas: each [`SignalPlane::sample`]
//! takes a fresh snapshot, subtracts the previous one for counters
//! (turning cumulative totals into per-interval rates), and reads
//! gauges and histogram percentiles directly.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use cxl_obs::Snapshot;

/// A bounded time series with an exponentially weighted moving average.
///
/// The raw ring keeps the last `capacity` points for windowed means;
/// the EWMA smooths tick-to-tick noise for trend decisions. Pure `f64`
/// arithmetic in push order — deterministic for a deterministic input
/// stream.
#[derive(Debug, Clone)]
pub struct Series {
    capacity: usize,
    alpha: f64,
    points: VecDeque<f64>,
    ewma: Option<f64>,
    total_pushes: u64,
}

impl Series {
    /// Creates a series keeping `capacity` raw points, smoothing with
    /// EWMA weight `alpha` (0 < alpha <= 1; higher tracks faster).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or `alpha` is outside (0, 1].
    pub fn new(capacity: usize, alpha: f64) -> Self {
        assert!(capacity > 0, "series capacity must be nonzero");
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA alpha must lie in (0, 1], got {alpha}"
        );
        Self {
            capacity,
            alpha,
            points: VecDeque::with_capacity(capacity),
            ewma: None,
            total_pushes: 0,
        }
    }

    /// Appends one observation, evicting the oldest beyond capacity.
    pub fn push(&mut self, v: f64) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
        }
        self.points.push_back(v);
        self.ewma = Some(match self.ewma {
            Some(e) => e + self.alpha * (v - e),
            None => v,
        });
        self.total_pushes += 1;
    }

    /// The most recent observation.
    pub fn last(&self) -> Option<f64> {
        self.points.back().copied()
    }

    /// The smoothed value (EWMA over every push, not just retained ones).
    pub fn ewma(&self) -> Option<f64> {
        self.ewma
    }

    /// Mean of the last `k` retained points (all of them when fewer).
    pub fn mean_last(&self, k: usize) -> Option<f64> {
        if self.points.is_empty() || k == 0 {
            return None;
        }
        let n = k.min(self.points.len());
        let sum: f64 = self.points.iter().rev().take(n).sum();
        Some(sum / n as f64)
    }

    /// Number of retained points (≤ capacity).
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total observations ever pushed (including evicted ones).
    pub fn total_pushes(&self) -> u64 {
        self.total_pushes
    }

    /// Iterates the retained points, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().copied()
    }
}

/// What a tracked signal reads from each snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    /// Counter delta vs the previous snapshot (a per-interval rate).
    CounterDelta,
    /// Gauge value at snapshot time.
    Gauge,
    /// Histogram sample-count delta vs the previous snapshot.
    HistogramCountDelta,
    /// Pushed explicitly via [`SignalPlane::observe`] (objective values
    /// computed outside the registry).
    External,
}

/// Samples `cxl-obs` registries into named bounded series.
///
/// Counters and histogram counts are differenced between consecutive
/// snapshots; gauges are read directly. Values the registry does not
/// carry (the optimization objective, phase markers) enter through
/// [`SignalPlane::observe`] and share the same series machinery.
#[derive(Debug)]
pub struct SignalPlane {
    capacity: usize,
    alpha: f64,
    tracked: Vec<(String, Source)>,
    series: BTreeMap<String, Series>,
    prev: Snapshot,
    samples: u64,
}

impl SignalPlane {
    /// Creates a plane whose series keep `capacity` points and smooth
    /// with EWMA weight `alpha` (see [`Series::new`] for the bounds).
    pub fn new(capacity: usize, alpha: f64) -> Self {
        // Validate eagerly so a bad config fails at build, not first use.
        let _ = Series::new(capacity, alpha);
        Self {
            capacity,
            alpha,
            tracked: Vec::new(),
            series: BTreeMap::new(),
            prev: Snapshot::empty(),
            samples: 0,
        }
    }

    fn track(&mut self, name: &str, source: Source) {
        if self.tracked.iter().any(|(n, _)| n == name) {
            return;
        }
        self.tracked.push((name.to_string(), source));
        self.series
            .insert(name.to_string(), Series::new(self.capacity, self.alpha));
    }

    /// Tracks a counter as a per-interval delta series.
    pub fn track_counter(&mut self, name: &str) {
        self.track(name, Source::CounterDelta);
    }

    /// Tracks a gauge as a sampled-value series.
    pub fn track_gauge(&mut self, name: &str) {
        self.track(name, Source::Gauge);
    }

    /// Tracks a histogram's sample count as a per-interval delta series.
    pub fn track_histogram_count(&mut self, name: &str) {
        self.track(name, Source::HistogramCountDelta);
    }

    /// Registers an externally fed series (see [`SignalPlane::observe`]).
    pub fn track_external(&mut self, name: &str) {
        self.track(name, Source::External);
    }

    /// Takes one sample from `snap`, appending a point to every tracked
    /// registry-backed series. The snapshot becomes the new baseline for
    /// the next delta.
    pub fn sample(&mut self, snap: Snapshot) {
        for (name, source) in &self.tracked {
            let value = match source {
                Source::CounterDelta => Some(snap.counter_delta(&self.prev, name) as f64),
                Source::HistogramCountDelta => {
                    Some(snap.histogram_count_delta(&self.prev, name) as f64)
                }
                Source::Gauge => snap.gauge(name),
                Source::External => None,
            };
            if let Some(v) = value {
                self.series
                    .get_mut(name)
                    .expect("tracked signals always have a series")
                    .push(v);
            }
        }
        self.prev = snap;
        self.samples += 1;
    }

    /// Convenience: samples the ambient registry ([`cxl_obs::snapshot`]).
    pub fn sample_ambient(&mut self) {
        self.sample(cxl_obs::snapshot());
    }

    /// Pushes an externally computed observation (auto-registers the
    /// series on first use).
    pub fn observe(&mut self, name: &str, value: f64) {
        self.track(name, Source::External);
        self.series.get_mut(name).expect("just tracked").push(value);
    }

    /// The series behind `name`, if tracked.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Number of samples taken so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Tracked series names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_obs::{Class, Registry};

    #[test]
    fn series_bounds_and_means() {
        let mut s = Series::new(3, 0.5);
        assert!(s.is_empty());
        assert_eq!(s.mean_last(2), None);
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 3, "capacity bound");
        assert_eq!(s.last(), Some(4.0));
        assert_eq!(s.total_pushes(), 4);
        assert_eq!(s.mean_last(2), Some(3.5));
        assert_eq!(s.mean_last(100), Some(3.0), "clamps to retained");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn series_ewma_tracks_with_lag() {
        let mut s = Series::new(8, 0.5);
        s.push(10.0);
        assert_eq!(s.ewma(), Some(10.0), "first push seeds the EWMA");
        s.push(20.0);
        assert_eq!(s.ewma(), Some(15.0));
        s.push(20.0);
        assert_eq!(s.ewma(), Some(17.5));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn series_rejects_bad_alpha() {
        Series::new(4, 0.0);
    }

    #[test]
    fn plane_turns_counters_into_rates() {
        let reg = Registry::new();
        let mut plane = SignalPlane::new(8, 0.5);
        plane.track_counter("tier/promotions");
        plane.track_gauge("tier/dram_bw_util");
        plane.track_histogram_count("kv/op_sojourn_ns");

        reg.counter_add(Class::Sim, "tier/promotions", 5);
        reg.gauge_set(Class::Sim, "tier/dram_bw_util", 0.4);
        reg.record(Class::Sim, "kv/op_sojourn_ns", 100);
        plane.sample(reg.snapshot());

        reg.counter_add(Class::Sim, "tier/promotions", 3);
        reg.gauge_set(Class::Sim, "tier/dram_bw_util", 0.7);
        plane.sample(reg.snapshot());

        let promos = plane.series("tier/promotions").unwrap();
        assert_eq!(promos.iter().collect::<Vec<_>>(), vec![5.0, 3.0]);
        let util = plane.series("tier/dram_bw_util").unwrap();
        assert_eq!(util.last(), Some(0.7));
        let lat = plane.series("kv/op_sojourn_ns").unwrap();
        assert_eq!(lat.iter().collect::<Vec<_>>(), vec![1.0, 0.0]);
        assert_eq!(plane.samples(), 2);
    }

    #[test]
    fn sampling_never_perturbs_the_registry() {
        let reg = Registry::new();
        reg.counter_add(Class::Sim, "a", 7);
        let before = reg.export_json();
        let mut plane = SignalPlane::new(4, 1.0);
        plane.track_counter("a");
        plane.sample(reg.snapshot());
        plane.sample(reg.snapshot());
        assert_eq!(reg.export_json(), before, "sampling must be read-only");
    }

    #[test]
    fn external_observations_share_series() {
        let mut plane = SignalPlane::new(4, 1.0);
        plane.observe("objective", 100.0);
        plane.observe("objective", 120.0);
        assert_eq!(plane.series("objective").unwrap().mean_last(2), Some(110.0));
        // External series are not fed by sample().
        plane.sample(Snapshot::empty());
        assert_eq!(plane.series("objective").unwrap().len(), 2);
    }

    #[test]
    fn duplicate_tracking_is_idempotent() {
        let mut plane = SignalPlane::new(4, 1.0);
        plane.track_counter("x");
        plane.track_counter("x");
        assert_eq!(plane.names(), vec!["x"]);
    }
}
