//! Typed control-plane errors.

/// A recoverable control-plane failure.
///
/// Like `TierError`/`PerfError` in the layers below, these are values a
/// caller can match on. A plant returning [`CtlError::Rejected`] tells
/// the controller an actuation is not currently legal (capacity,
/// policy, or rate constraints downstream); the controller counts it
/// and moves on — a rejection is the guardrail *working*, not a
/// violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtlError {
    /// The knob index does not exist in the controller's knob table.
    UnknownKnob(usize),
    /// The setting index is out of range for the knob's ladder.
    UnknownSetting {
        /// Knob the setting was addressed to.
        knob: usize,
        /// The out-of-range setting index.
        setting: usize,
        /// Ladder length of that knob.
        len: usize,
    },
    /// The plant declined the actuation; the message says why (e.g. a
    /// lease grow past pool capacity, a retune on a policy that does
    /// not support it).
    Rejected(String),
    /// A controller configuration constraint failed; the message names
    /// it.
    InvalidConfig(String),
}

impl std::fmt::Display for CtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtlError::UnknownKnob(k) => write!(f, "unknown knob index {k}"),
            CtlError::UnknownSetting { knob, setting, len } => write!(
                f,
                "setting {setting} out of range for knob {knob} (ladder length {len})"
            ),
            CtlError::Rejected(msg) => write!(f, "actuation rejected: {msg}"),
            CtlError::InvalidConfig(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CtlError::UnknownKnob(3).to_string().contains('3'));
        let e = CtlError::UnknownSetting {
            knob: 1,
            setting: 9,
            len: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains('9') && msg.contains('4'), "{msg}");
        assert!(CtlError::Rejected("pool full".into())
            .to_string()
            .contains("pool full"));
    }
}
