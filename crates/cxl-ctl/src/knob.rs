//! The actuator plane: typed knobs and the plant they act on.
//!
//! A *knob* is a named, ordered ladder of discrete settings (promotion
//! rate limits, N:M interleave ratios, pool lease sizes). The
//! controller only reasons about `(knob index, setting index)` pairs;
//! the *plant* — the live system under control — translates an index
//! pair into real actuation (a `TierManager` retune, a pool
//! grow/shrink through the rate-limited evacuation path) and is free to
//! reject an action that is not currently legal.

use serde::Serialize;

use crate::error::CtlError;

/// One tunable knob: a name and an ordered ladder of settings.
///
/// Settings are ordered so the hill climber can probe "one step up /
/// one step down". `value` is the numeric magnitude the ladder is
/// ordered by (bytes/s, slabs, DRAM fraction); `label` is what reports
/// print.
#[derive(Debug, Clone, Serialize)]
pub struct KnobSpec {
    /// Knob name (`promote_rate`, `lease_slabs`, `interleave`).
    pub name: String,
    /// Human-readable label per setting, index-aligned with `values`.
    pub labels: Vec<String>,
    /// Numeric magnitude per setting (monotone along the ladder).
    pub values: Vec<f64>,
    /// Ticks this knob stays on cooldown after a committed change.
    pub cooldown_ticks: u32,
}

impl KnobSpec {
    /// Builds a knob from `(label, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if the ladder is empty — a knob with no settings cannot
    /// be probed or even held at a current value.
    pub fn new(
        name: impl Into<String>,
        settings: impl IntoIterator<Item = (String, f64)>,
        cooldown_ticks: u32,
    ) -> Self {
        let (labels, values): (Vec<_>, Vec<_>) = settings.into_iter().unzip();
        assert!(!labels.is_empty(), "knob ladder must not be empty");
        Self {
            name: name.into(),
            labels,
            values,
            cooldown_ticks,
        }
    }

    /// Number of settings on the ladder.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the ladder has no settings (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The system under control.
///
/// `apply` must be **transactional**: either the setting takes effect
/// and `Ok(())` returns, or nothing changed and an error describes why.
/// The controller relies on this to roll back by re-applying the
/// previous setting. Rejections ([`CtlError::Rejected`]) are normal
/// operation — a lease grow can race pool exhaustion — and are counted,
/// not escalated.
///
/// `check_invariants` is the guardrail hook: called after every
/// successful actuation, it verifies plant-level safety conditions
/// (capacity never exceeded, no stranded pages). A failure increments
/// the `ctl/guardrail_violations` counter that CI gates on — it means
/// the actuator plane itself misbehaved, not that a probe was merely
/// unprofitable.
pub trait Plant {
    /// Applies setting `setting` of knob `knob` to the live system.
    fn apply(&mut self, knob: usize, setting: usize) -> Result<(), CtlError>;

    /// Verifies plant-level safety invariants; `Err` names the breach.
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knob_from_pairs() {
        let k = KnobSpec::new(
            "promote_rate",
            [
                ("64MiB/s".to_string(), 64e6),
                ("256MiB/s".to_string(), 256e6),
            ],
            3,
        );
        assert_eq!(k.len(), 2);
        assert!(!k.is_empty());
        assert_eq!(k.labels[1], "256MiB/s");
        assert_eq!(k.cooldown_ticks, 3);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_ladder_rejected() {
        KnobSpec::new("x", Vec::<(String, f64)>::new(), 0);
    }
}
