//! # cxl-ctl — online adaptive control plane
//!
//! The paper's sweeps (interleave ratios in §4.2, promotion rate limits
//! in §4.4, pool provisioning in §5) find the best static configuration
//! *per workload* — but real services change phase. This crate closes
//! the loop online: a deterministic feedback controller that runs as
//! periodic ticks on the `cxl-sim` engine and re-tunes the system it
//! rides on.
//!
//! Three planes:
//!
//! * **Signal plane** ([`SignalPlane`], [`Series`]) — samples the
//!   `cxl-obs` registry non-destructively ([`cxl_obs::Snapshot`]
//!   deltas) into bounded, EWMA-smoothed time series.
//! * **Actuator plane** ([`KnobSpec`], [`Plant`]) — typed, ordered
//!   ladders of settings (N:M interleave, promotion-rate retunes, pool
//!   lease sizes) applied transactionally through a plant that may
//!   reject illegal actions.
//! * **Policy plane** ([`Controller`], [`ControllerConfig`],
//!   [`Guardrails`]) — a gradient-free hill climber probing one knob at
//!   a time with hysteresis and per-knob cooldowns, wrapped in
//!   guardrails: bounded actuation rate, automatic rollback on
//!   objective regression (plus an emergency path for collapses), and a
//!   post-actuation invariant check whose failures feed the CI-gated
//!   `ctl/guardrail_violations` counter.
//!
//! [`run_on_engine`] mounts the loop on an [`cxl_sim::Engine`] so
//! control ticks interleave deterministically with workload events and
//! fault injections — the whole closed loop is bit-identical across
//! `--jobs`.

#![warn(missing_docs)]

pub mod error;
pub mod harness;
pub mod knob;
pub mod policy;
pub mod signal;

pub use error::CtlError;
pub use harness::{run_on_engine, ControlLoop, TraceEntry};
pub use knob::{KnobSpec, Plant};
pub use policy::{Controller, ControllerConfig, Guardrails, TickOutcome};
pub use signal::{Series, SignalPlane};
