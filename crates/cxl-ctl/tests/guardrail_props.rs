//! Property tests for the controller's guardrail invariants.
//!
//! Pins the three safety properties the control plane rests on, across
//! randomized knob ladders, objective landscapes, and controller
//! configurations:
//!
//! 1. **Capacity is never exceeded** — a plant that rejects illegal
//!    settings is never driven past its capacity, and the
//!    `guardrail_violations` counter stays zero (rejections are the
//!    guardrail working, not failing).
//! 2. **Rollback restores the pre-probe setting** — every probe either
//!    commits to exactly the probed setting or restores exactly the
//!    setting it started from, never a third state.
//! 3. **Actuation rate is bounded** — probe starts respect
//!    `min_action_gap_ticks`, and total plant actuations are bounded by
//!    twice the probe count (one apply per probe, at most one rollback
//!    re-apply each).

use cxl_ctl::{Controller, ControllerConfig, CtlError, KnobSpec, Plant, TickOutcome};
use proptest::prelude::*;

/// A pool-lease-like plant: each setting asks for `slabs[setting]`
/// slabs; asking past `capacity` is rejected (transactionally — the old
/// setting stays).
struct LeasePlant {
    slabs: Vec<u64>,
    setting: usize,
    capacity: u64,
    applies: u64,
}

impl Plant for LeasePlant {
    fn apply(&mut self, _knob: usize, setting: usize) -> Result<(), CtlError> {
        let want = self.slabs[setting];
        if want > self.capacity {
            return Err(CtlError::Rejected(format!(
                "lease of {want} slabs exceeds pool capacity {}",
                self.capacity
            )));
        }
        self.setting = setting;
        self.applies += 1;
        Ok(())
    }

    fn check_invariants(&self) -> Result<(), String> {
        let used = self.slabs[self.setting];
        if used <= self.capacity {
            Ok(())
        } else {
            Err(format!("holding {used} slabs > capacity {}", self.capacity))
        }
    }
}

/// Assembles a scenario from raw draws: a strictly increasing slab
/// ladder (cumulative sums of `incs`), a capacity that always admits
/// the first rung (legal initial state), and a controller config from
/// the drawn fields.
fn make_scenario(
    incs: &[u64],
    cap_extra: u64,
    warmup: u32,
    settle: u32,
    measure: u32,
    gap: u32,
    hysteresis: f64,
) -> (Vec<u64>, u64, ControllerConfig) {
    let slabs: Vec<u64> = incs
        .iter()
        .scan(0u64, |acc, &i| {
            *acc += i;
            Some(*acc)
        })
        .collect();
    let capacity = slabs[0] + cap_extra;
    let cfg = ControllerConfig {
        warmup_ticks: warmup,
        settle_ticks: settle,
        measure_ticks: measure,
        hysteresis,
        crash_tolerance: 0.5,
        min_action_gap_ticks: gap,
        shift_tolerance: 0.5,
        ewma_alpha: 0.5,
        history: 64,
        max_probe_extensions: 1,
    };
    (slabs, capacity, cfg)
}

fn build(
    slabs: &[u64],
    capacity: u64,
    cfg: &ControllerConfig,
    cooldown: u32,
) -> (Controller, LeasePlant) {
    let knob = KnobSpec::new(
        "lease_slabs",
        slabs.iter().map(|&s| (format!("{s}slabs"), s as f64)),
        cooldown,
    );
    let ctl = Controller::new(cfg.clone(), vec![knob], vec![0]).expect("valid config");
    let plant = LeasePlant {
        slabs: slabs.to_vec(),
        setting: 0,
        capacity,
        applies: 0,
    };
    (ctl, plant)
}

proptest! {
    #[test]
    fn capacity_never_exceeded_and_no_violations(
        incs in prop::collection::vec(1u64..=8, 2..=6),
        objs in prop::collection::vec(1.0f64..100.0, 6usize),
        cap_extra in 1u64..=40,
        warmup in 0u32..=4,
        settle in 0u32..=2,
        measure in 1u32..=3,
        gap in 1u32..=5,
        hysteresis in 0.0f64..0.2,
        cooldown in 0u32..=8,
        ticks in 10usize..=120,
    ) {
        let (slabs, capacity, cfg) =
            make_scenario(&incs, cap_extra, warmup, settle, measure, gap, hysteresis);
        let (mut ctl, mut plant) = build(&slabs, capacity, &cfg, cooldown);
        for _ in 0..ticks {
            let obj = objs[plant.setting];
            ctl.tick(obj, &mut plant);
            // The live setting is legal after every tick, no exception.
            prop_assert!(
                slabs[plant.setting] <= capacity,
                "holding {} slabs > capacity {}",
                slabs[plant.setting],
                capacity
            );
            prop_assert!(plant.check_invariants().is_ok());
        }
        // Rejected probes are counted as rejections, never violations.
        prop_assert_eq!(ctl.guardrails().violations, 0);
    }

    #[test]
    fn every_probe_commits_or_restores_exactly(
        incs in prop::collection::vec(1u64..=8, 2..=6),
        objs in prop::collection::vec(1.0f64..100.0, 6usize),
        cap_extra in 1u64..=40,
        warmup in 0u32..=4,
        settle in 0u32..=2,
        measure in 1u32..=3,
        gap in 1u32..=5,
        hysteresis in 0.0f64..0.2,
        cooldown in 0u32..=8,
        ticks in 10usize..=120,
    ) {
        let (slabs, capacity, cfg) =
            make_scenario(&incs, cap_extra, warmup, settle, measure, gap, hysteresis);
        let (mut ctl, mut plant) = build(&slabs, capacity, &cfg, cooldown);
        // The in-flight probe's origin, from the outcome stream.
        let mut pending: Option<(usize, usize)> = None; // (from, to)
        for _ in 0..ticks {
            let obj = objs[plant.setting];
            match ctl.tick(obj, &mut plant) {
                TickOutcome::ProbeStarted { from, to, .. } => {
                    prop_assert!(pending.is_none(), "two probes in flight");
                    prop_assert_eq!(plant.setting, to, "probe applied");
                    pending = Some((from, to));
                }
                TickOutcome::Committed { to, .. } => {
                    let (_, probed) = pending.take().expect("commit without probe");
                    prop_assert_eq!(to, probed);
                    prop_assert_eq!(plant.setting, to);
                    prop_assert_eq!(ctl.current_settings()[0], to);
                }
                TickOutcome::RolledBack { restored, .. }
                | TickOutcome::EmergencyRollback { restored, .. } => {
                    let (from, _) = pending.take().expect("rollback without probe");
                    prop_assert_eq!(restored, from, "rollback restores pre-probe");
                    prop_assert_eq!(plant.setting, from);
                    prop_assert_eq!(ctl.current_settings()[0], from);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn actuation_rate_is_bounded(
        incs in prop::collection::vec(1u64..=8, 2..=6),
        objs in prop::collection::vec(1.0f64..100.0, 6usize),
        cap_extra in 1u64..=40,
        warmup in 0u32..=4,
        settle in 0u32..=2,
        measure in 1u32..=3,
        gap in 1u32..=5,
        hysteresis in 0.0f64..0.2,
        cooldown in 0u32..=8,
        ticks in 10usize..=120,
    ) {
        let (slabs, capacity, cfg) =
            make_scenario(&incs, cap_extra, warmup, settle, measure, gap, hysteresis);
        let (mut ctl, mut plant) = build(&slabs, capacity, &cfg, cooldown);
        let mut probe_ticks: Vec<u64> = Vec::new();
        for _ in 0..ticks {
            let obj = objs[plant.setting];
            if let TickOutcome::ProbeStarted { .. } = ctl.tick(obj, &mut plant) {
                probe_ticks.push(ctl.ticks());
            }
        }
        // Consecutive probe starts respect the gap.
        for pair in probe_ticks.windows(2) {
            prop_assert!(
                pair[1] - pair[0] >= u64::from(cfg.min_action_gap_ticks),
                "probes at ticks {} and {} violate gap {}",
                pair[0],
                pair[1],
                cfg.min_action_gap_ticks
            );
        }
        // Each probe actuates once, plus at most one rollback re-apply.
        prop_assert!(
            plant.applies <= 2 * ctl.probes(),
            "{} applies > 2 x {} probes",
            plant.applies,
            ctl.probes()
        );
        prop_assert_eq!(ctl.probes(), probe_ticks.len() as u64);
    }
}
