//! Fleet-scale pooling across a multi-rack CXL fabric (ROADMAP item 2).
//!
//! [`sim`](crate::sim) studies eight hosts behind one switch. This
//! module scales the same control plane to racks of 32–64 hosts on a
//! rack/spine [`cxl_topology::Fabric`]: every rack owns a
//! pooled expander behind its top-of-rack switch, every host can lease
//! from any rack, and the *price* of a lease is the fabric path — an
//! intra-rack window costs one ToR hop, a cross-rack window costs
//! ToR + cable + spine + cable + ToR, and both land in each host's
//! `cxl-perf` solve through [`Topology::fleet_host`].
//!
//! Three control layers cooperate:
//!
//! - A **cluster scheduler** ([`FleetPlan::compute`]) places a
//!   heterogeneous workload mix ([`WorkloadClass`]: KV caches, Spark
//!   batch, LLM serving) onto hosts, greedily balancing expected peak
//!   demand across racks.
//! - A **per-rack lend controller** (one [`cxl_ctl::Series`] EWMA per
//!   rack) watches local demand and caps how many slabs the rack's
//!   [`PoolManager`] may lend to foreign racks, reserving headroom for
//!   its own hosts.
//! - A **global capacity budget** caps total outstanding leased slabs
//!   fleet-wide, modelling the operator's committed-capacity limit; no
//!   request may push the fleet past it.
//!
//! Hosts lease local-rack capacity first and overflow to remote racks
//! in rack-id order, paying the longer path. Unmet demand spills to
//! SSD and retries next tick — the fleet plane never queues inside a
//! foreign rack. World construction is split into a cheap serial
//! placement ([`FleetPlan`]) plus pure per-host builds
//! ([`build_host`]) so a caller can shard the heavy work across
//! workers and still get a bit-identical world.

use cxl_ctl::Series;
use cxl_fault::FaultKind;
use cxl_obs as obs;
use cxl_perf::{AccessMix, MemSystem};
use cxl_sim::{Engine, SimTime};
use cxl_stats::rng::stream_rng;
use cxl_tier::{PageId, TierConfig, TierManager};
use cxl_topology::{Fabric, NodeId, SocketId, Topology};
use rand::Rng;
use serde::Serialize;

use crate::demand::{DemandConfig, DemandProcess};
use crate::lease::HostId;
use crate::manager::{PoolManager, PoolStats, RevocationNotice};
use crate::sim::DRAM_NODE;

const GIB: u64 = 1 << 30;

/// NUMA node id of rack `r`'s pool window on every fleet host.
///
/// [`Topology::fleet_host`] enumerates windows after DRAM, so window
/// `r` is node `1 + r` on every host regardless of its own rack — only
/// the window's path latency differs.
pub fn window_node(rack: usize) -> NodeId {
    NodeId(1 + rack)
}

/// The heterogeneous workloads the cluster scheduler places.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum WorkloadClass {
    /// KV-cache serving: modest working set, frequent shallow bursts.
    Kv,
    /// Spark-style batch: low base, rare but deep shuffle bursts.
    Spark,
    /// LLM inference: large steady working set, small bursts.
    Llm,
}

impl WorkloadClass {
    /// Every class, in scheduler draw order.
    pub const ALL: [WorkloadClass; 3] = [Self::Kv, Self::Spark, Self::Llm];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Kv => "kv",
            Self::Spark => "spark",
            Self::Llm => "llm",
        }
    }

    /// The demand process this class drives its host with.
    pub fn demand(self) -> DemandConfig {
        match self {
            // 256 GiB sold, half active at base, shallow frequent
            // bursts: mostly fits local DRAM, occasional overflow.
            Self::Kv => DemandConfig {
                vcpus: 128,
                gib_per_vcpu: 2.0,
                base_util: 0.5,
                burst_extra_min: 0.25,
                burst_extra_max: 0.4,
                mean_burst_s: 2.0,
                mean_gap_s: 10.0,
            },
            // 512 GiB sold, low base, deep long shuffle bursts — the
            // statistical-multiplexing case pooling exists for.
            Self::Spark => DemandConfig {
                vcpus: 128,
                gib_per_vcpu: 4.0,
                base_util: 0.3,
                burst_extra_min: 0.4,
                burst_extra_max: 0.7,
                mean_burst_s: 6.0,
                mean_gap_s: 30.0,
            },
            // 512 GiB sold, steadily hot: a constant overflow that
            // keeps its rack's pool loaded between everyone's bursts.
            Self::Llm => DemandConfig {
                vcpus: 64,
                gib_per_vcpu: 8.0,
                base_util: 0.7,
                burst_extra_min: 0.05,
                burst_extra_max: 0.2,
                mean_burst_s: 4.0,
                mean_gap_s: 45.0,
            },
        }
    }

    /// Peak working set (all bursts at max amplitude), GiB — the
    /// scheduler's balancing weight.
    pub fn peak_gib(self) -> f64 {
        let d = self.demand();
        let util = (d.base_util + d.burst_extra_max).clamp(0.0, 1.0);
        d.vcpus as f64 * util * d.gib_per_vcpu
    }
}

/// Configuration of one fleet simulation.
#[derive(Debug, Clone, Serialize)]
pub struct FleetConfig {
    /// Racks in the fleet, each with a ToR switch and one pooled
    /// expander.
    pub racks: usize,
    /// Hosts per rack.
    pub hosts_per_rack: usize,
    /// Local DRAM per host, GiB.
    pub local_dram_gib: u64,
    /// Pooled capacity per rack, GiB.
    pub rack_pool_gib: u64,
    /// Lease granularity, GiB per slab.
    pub slab_gib: u64,
    /// Top-of-rack switch port-to-port latency, ns.
    pub tor_hop_ns: f64,
    /// Spine switch port-to-port latency, ns.
    pub spine_hop_ns: f64,
    /// ToR↔spine cable latency, ns.
    pub cable_ns: f64,
    /// Simulated page size, bytes (coarse — see [`crate::PoolSimConfig`]).
    pub page_bytes: u64,
    /// Scheduler mix weights for `[KV, Spark, LLM]` (normalized
    /// internally; must not all be zero).
    pub mix: [f64; 3],
    /// Global cap on outstanding leased capacity fleet-wide, GiB.
    pub global_budget_gib: u64,
    /// Lend-controller headroom: each rack reserves
    /// `ceil(reserve · EWMA(local excess demand))` slabs for its own
    /// hosts before lending.
    pub lend_reserve: f64,
    /// Ticks between lend-cap recomputations.
    pub control_period_steps: u64,
    /// Simulated duration.
    pub horizon: SimTime,
    /// Control-loop tick.
    pub step: SimTime,
    /// SLO percentile the static baseline provisions for.
    pub slo_percentile: f64,
    /// Per-rack pool compaction threshold (see [`PoolManager::new`]).
    pub defrag_threshold: f64,
    /// When set, `(rack, at)`: that rack's expander dies at `at` —
    /// mass revocation, fleet-wide evacuation of its windows.
    pub fault_at: Option<(usize, SimTime)>,
    /// Root seed for placement and demand traces.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            racks: 2,
            hosts_per_rack: 32,
            local_dram_gib: 192,
            rack_pool_gib: 1792,
            slab_gib: 1,
            tor_hop_ns: 70.0,
            spine_hop_ns: 90.0,
            cable_ns: 20.0,
            page_bytes: 64 * 1024 * 1024,
            mix: [0.5, 0.3, 0.2],
            global_budget_gib: 3584,
            lend_reserve: 1.25,
            control_period_steps: 4,
            horizon: SimTime::from_secs(60),
            step: SimTime::from_ms(250),
            slo_percentile: 0.99,
            defrag_threshold: 0.5,
            fault_at: None,
            seed: 42,
        }
    }
}

impl FleetConfig {
    /// A fast variant for unit tests: 2 racks × 4 hosts, 20 s.
    pub fn smoke() -> Self {
        Self {
            hosts_per_rack: 4,
            rack_pool_gib: 448,
            global_budget_gib: 896,
            horizon: SimTime::from_secs(20),
            ..Self::default()
        }
    }

    /// Total hosts in the fleet.
    pub fn hosts(&self) -> usize {
        self.racks * self.hosts_per_rack
    }

    /// The fleet's fabric.
    pub fn fabric(&self) -> Fabric {
        Fabric::rack_spine(
            self.racks,
            self.hosts_per_rack,
            self.tor_hop_ns,
            self.spine_hop_ns,
            self.cable_ns,
        )
    }

    fn slab_bytes(&self) -> u64 {
        self.slab_gib * GIB
    }

    fn budget_slabs(&self) -> u64 {
        self.global_budget_gib / self.slab_gib
    }

    fn validate(&self) {
        assert!(self.racks > 0 && self.hosts_per_rack > 0, "empty fleet");
        assert!(self.slab_gib > 0 && self.rack_pool_gib >= self.slab_gib);
        assert!(
            self.page_bytes > 0 && (self.slab_gib * GIB).is_multiple_of(self.page_bytes),
            "slab size must be a whole number of pages"
        );
        assert!(self.mix.iter().all(|w| *w >= 0.0) && self.mix.iter().sum::<f64>() > 0.0);
        assert!(self.lend_reserve >= 0.0 && self.lend_reserve.is_finite());
        assert!(self.control_period_steps > 0);
        if let Some((rack, _)) = self.fault_at {
            assert!(rack < self.racks, "fault rack out of range");
        }
    }
}

/// One host's placement: which rack slot it occupies and what runs on
/// it. The shardable unit of world construction — [`build_host`] is a
/// pure function of `(config, spec)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct HostSpec {
    /// Global host index (`rack · hosts_per_rack + slot`).
    pub global: usize,
    /// Rack the host sits in.
    pub rack: usize,
    /// Slot within the rack.
    pub slot: usize,
    /// Workload the scheduler placed here.
    pub class: WorkloadClass,
}

/// The cluster scheduler's placement of the workload mix onto hosts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FleetPlan {
    /// One spec per host, in global host order.
    pub specs: Vec<HostSpec>,
}

impl FleetPlan {
    /// Draws `hosts()` workloads from the mix and places them.
    ///
    /// Placement is greedy balance: workloads sorted by peak demand
    /// (descending, stable) go one at a time to the rack with the
    /// least committed peak demand (ties to the lowest rack id). All
    /// randomness comes from `stream_rng(seed, "fleet/placement")`, so
    /// the plan is bit-identical for any worker count.
    pub fn compute(cfg: &FleetConfig) -> Self {
        cfg.validate();
        let mut rng = stream_rng(cfg.seed, "fleet/placement");
        let total: f64 = cfg.mix.iter().sum();
        let mut drawn: Vec<WorkloadClass> = (0..cfg.hosts())
            .map(|_| {
                let u = rng.gen::<f64>() * total;
                let mut acc = 0.0;
                for (i, w) in cfg.mix.iter().enumerate() {
                    acc += w;
                    if u < acc {
                        return WorkloadClass::ALL[i];
                    }
                }
                WorkloadClass::ALL[2]
            })
            .collect();
        // Stable sort keeps the draw order among equal peaks, so the
        // placement is fully determined by (seed, mix).
        drawn.sort_by(|a, b| {
            b.peak_gib()
                .partial_cmp(&a.peak_gib())
                .expect("finite peaks")
        });
        let mut committed = vec![0.0f64; cfg.racks];
        let mut racks: Vec<Vec<WorkloadClass>> = vec![Vec::new(); cfg.racks];
        for class in drawn {
            let rack = (0..cfg.racks)
                .filter(|&r| racks[r].len() < cfg.hosts_per_rack)
                .min_by(|&a, &b| {
                    committed[a]
                        .partial_cmp(&committed[b])
                        .expect("finite loads")
                })
                .expect("slots cover all drawn workloads");
            committed[rack] += class.peak_gib();
            racks[rack].push(class);
        }
        let specs = (0..cfg.racks)
            .flat_map(|rack| {
                let row = racks[rack].clone();
                row.into_iter()
                    .enumerate()
                    .map(move |(slot, class)| HostSpec {
                        global: 0, // fixed up below
                        rack,
                        slot,
                        class,
                    })
            })
            .enumerate()
            .map(|(global, spec)| HostSpec { global, ..spec })
            .collect();
        Self { specs }
    }

    /// Hosts of each class per rack, as `[kv, spark, llm]` rows.
    pub fn class_counts(&self, racks: usize) -> Vec<[usize; 3]> {
        let mut counts = vec![[0usize; 3]; racks];
        for s in &self.specs {
            let i = WorkloadClass::ALL
                .iter()
                .position(|c| *c == s.class)
                .expect("class is in ALL");
            counts[s.rack][i] += 1;
        }
        counts
    }
}

/// One fully built fleet host: its topology (window latencies from the
/// fabric), tier manager, demand trace, and static baseline. Built by
/// [`build_host`]; opaque because [`run_planned`] owns the contract.
#[derive(Debug)]
pub struct FleetHost {
    spec: HostSpec,
    topo: Topology,
    tier: TierManager,
    demand: DemandProcess,
    static_cap_gib: f64,
}

/// Builds one host of the fleet world. Pure in `(cfg, spec)`: callers
/// may build hosts in any order, on any worker, and assemble a
/// bit-identical world — demand randomness streams from
/// `(seed, "fleet/rack{r}/host{s}")`, never from build order.
pub fn build_host(cfg: &FleetConfig, spec: &HostSpec) -> FleetHost {
    let fabric = cfg.fabric();
    let host_port = format!("rack{}/host{}", spec.rack, spec.slot);
    let windows: Vec<(String, u64, f64)> = (0..cfg.racks)
        .map(|r| {
            let device = format!("rack{r}/pool");
            let path_ns = fabric
                .path_latency_ns(&host_port, &device)
                .expect("rack/spine fabric is connected");
            (device, cfg.rack_pool_gib, path_ns)
        })
        .collect();
    let topo = Topology::fleet_host(cfg.local_dram_gib, &windows);
    // Allocation preference: DRAM, then the local window, then remote
    // windows by rack id — cheapest path first.
    let mut bind = vec![DRAM_NODE, window_node(spec.rack)];
    bind.extend((0..cfg.racks).filter(|r| *r != spec.rack).map(window_node));
    let mut tier_cfg = TierConfig::bind(bind);
    tier_cfg.page_size = cfg.page_bytes;
    tier_cfg.allow_ssd_spill = true;
    // Every window starts at zero capacity; grants grow them.
    tier_cfg.capacity_override = (0..cfg.racks).map(|r| (window_node(r), 0)).collect();
    let tier = TierManager::new(&topo, tier_cfg);
    let demand = DemandProcess::generate(
        &spec.class.demand(),
        cfg.seed,
        &format!("fleet/rack{}/host{}", spec.rack, spec.slot),
        cfg.horizon,
    );
    let static_cap_gib = demand.percentile(cfg.horizon, cfg.step, cfg.slo_percentile);
    FleetHost {
        spec: *spec,
        topo,
        tier,
        demand,
        static_cap_gib,
    }
}

/// Per-rack control-plane state: the rack's pool manager plus its
/// lend controller.
struct RackState {
    manager: PoolManager,
    /// Slabs currently granted to hosts outside this rack.
    lent_slabs: u64,
    /// Controller output: max slabs this rack may have lent at once.
    lend_cap: u64,
    /// EWMA of the rack's own excess demand, slabs per tick.
    local_demand: Series,
    /// This tick's accumulated local excess demand, slabs.
    tick_local_demand: u64,
}

/// One simulated host inside the running world.
struct HostRt {
    spec: HostSpec,
    topo: Topology,
    tier: TierManager,
    demand: DemandProcess,
    /// Host-side lease mirror, slabs per rack window.
    granted: Vec<u64>,
    pages: Vec<PageId>,
    static_cap_gib: f64,
    violation_steps: u64,
    static_violation_steps: u64,
}

/// Simulation state threaded through the event engine.
struct FleetState {
    cfg: FleetConfig,
    racks: Vec<RackState>,
    hosts: Vec<HostRt>,
    host_steps: u64,
    intra_slab_steps: u64,
    cross_slab_steps: u64,
    unmet_slab_steps: u64,
    cross_grants: u64,
    peak_outstanding_slabs: u64,
    min_lend_cap: u64,
    evac_pages_moved: u64,
    evac_pages_to_ssd: u64,
    stranded_pages: u64,
    fault_fired: bool,
    ticks: u64,
}

/// Outcome of one fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetReport {
    /// Racks simulated.
    pub racks: usize,
    /// Hosts per rack.
    pub hosts_per_rack: usize,
    /// Local DRAM per host, GiB.
    pub local_dram_gib: u64,
    /// Pooled capacity per rack, GiB.
    pub rack_pool_gib: u64,
    /// Hosts of each class per rack, `[kv, spark, llm]` rows.
    pub placement: Vec<[usize; 3]>,
    /// Memory the dynamic fleet installs: `hosts·local + racks·pool`.
    pub dynamic_total_gib: f64,
    /// Memory static per-host provisioning installs: Σ percentiles.
    pub static_total_gib: f64,
    /// `1 − dynamic/static` installed capacity.
    pub capacity_saving: f64,
    /// Fraction of host-steps with pages spilled to SSD.
    pub dynamic_violation_frac: f64,
    /// Fraction of host-steps demand exceeded the static provision.
    pub static_violation_frac: f64,
    /// Host-steps observed.
    pub host_steps: u64,
    /// Slab-steps held on hosts' own racks.
    pub intra_slab_steps: u64,
    /// Slab-steps held across the spine — every one of these pays the
    /// longer fabric path.
    pub cross_slab_steps: u64,
    /// `cross / (intra + cross)` slab-steps.
    pub cross_share: f64,
    /// Cross-rack grant events.
    pub cross_grants: u64,
    /// Slab-steps of demand no rack could serve (spilled to SSD).
    pub unmet_slab_steps: u64,
    /// Peak outstanding leased slabs fleet-wide.
    pub peak_outstanding_slabs: u64,
    /// The global budget, slabs. `peak_outstanding_slabs` never
    /// exceeds it.
    pub budget_slabs: u64,
    /// Lowest lend cap any rack controller published, slabs.
    pub min_lend_cap: u64,
    /// Final lend cap per rack, slabs.
    pub final_lend_caps: Vec<u64>,
    /// Per-rack pool manager counters.
    pub rack_stats: Vec<PoolStats>,
    /// Solved idle read latency to the local rack's window, ns.
    pub intra_idle_read_ns: f64,
    /// Solved idle read latency to a remote rack's window, ns.
    /// Strictly greater than `intra_idle_read_ns` whenever the fleet
    /// has a spine to cross.
    pub cross_idle_read_ns: f64,
    /// Switch hops on the intra-rack path.
    pub intra_hops: usize,
    /// Switch hops on the cross-rack path.
    pub cross_hops: usize,
    /// Pages relocated during the fault evacuation.
    pub evac_pages_moved: u64,
    /// Pages spilled to SSD during the fault evacuation.
    pub evac_pages_to_ssd: u64,
    /// Pages left on the dead windows after evacuation (must be 0).
    pub stranded_pages: u64,
    /// Whether the configured rack fault fired.
    pub fault_fired: bool,
    /// Mean of per-host demand-trace means, GiB.
    pub demand_mean_gib: f64,
    /// Mean of per-host demand-trace standard deviations, GiB.
    pub demand_std_gib: f64,
}

impl FleetState {
    fn new(cfg: &FleetConfig, hosts: Vec<FleetHost>) -> Self {
        cfg.validate();
        assert_eq!(hosts.len(), cfg.hosts(), "world must cover every host");
        for (i, h) in hosts.iter().enumerate() {
            assert_eq!(h.spec.global, i, "hosts must arrive in global order");
        }
        let rack_slabs = cfg.rack_pool_gib / cfg.slab_gib;
        let racks = (0..cfg.racks)
            .map(|_| RackState {
                manager: PoolManager::new(rack_slabs, cfg.hosts(), cfg.defrag_threshold),
                lent_slabs: 0,
                // Fully open until the controller's first sample; the
                // EWMA tightens it from the second tick on.
                lend_cap: rack_slabs,
                local_demand: Series::new(64, 0.3),
                tick_local_demand: 0,
            })
            .collect();
        let hosts = hosts
            .into_iter()
            .map(|h| HostRt {
                spec: h.spec,
                topo: h.topo,
                tier: h.tier,
                demand: h.demand,
                granted: vec![0; cfg.racks],
                pages: Vec::new(),
                static_cap_gib: h.static_cap_gib,
                violation_steps: 0,
                static_violation_steps: 0,
            })
            .collect();
        Self {
            cfg: cfg.clone(),
            racks,
            hosts,
            host_steps: 0,
            intra_slab_steps: 0,
            cross_slab_steps: 0,
            unmet_slab_steps: 0,
            cross_grants: 0,
            peak_outstanding_slabs: 0,
            min_lend_cap: rack_slabs,
            evac_pages_moved: 0,
            evac_pages_to_ssd: 0,
            stranded_pages: 0,
            fault_fired: false,
            ticks: 0,
        }
    }

    fn slab_bytes(&self) -> u64 {
        self.cfg.slab_bytes()
    }

    /// Outstanding leased slabs fleet-wide (the budget's view).
    fn outstanding_slabs(&self) -> u64 {
        self.racks.iter().map(|r| r.manager.used_slabs()).sum()
    }

    /// Lease-source preference for a host in `rack`: own rack first,
    /// then remote racks ascending.
    fn pref_order(&self, rack: usize) -> Vec<usize> {
        let mut order = vec![rack];
        order.extend((0..self.cfg.racks).filter(|r| *r != rack));
        order
    }

    /// One control-loop pass for host `h`. Returns deferred lease
    /// returns `(rack, victim, slabs, ready_at)` for revocation drains.
    fn host_tick(&mut self, h: usize, now: SimTime) -> Vec<(usize, HostId, u64, SimTime)> {
        let mut deferred = Vec::new();
        let hid = HostId(h);
        let my_rack = self.hosts[h].spec.rack;
        let slab_bytes = self.slab_bytes();
        let ws_gib = self.hosts[h].demand.working_set_gib(now);
        let target_pages = ((ws_gib * GIB as f64) / self.cfg.page_bytes as f64).ceil() as u64;
        let target_bytes = target_pages * self.cfg.page_bytes;
        let excess_bytes = target_bytes.saturating_sub(self.cfg.local_dram_gib * GIB);
        let desired_slabs = excess_bytes.div_ceil(slab_bytes);
        self.racks[my_rack].tick_local_demand += desired_slabs;

        // 1. Grow the lease: local rack first (full manager semantics,
        //    including fair-share revocation), then remote racks under
        //    their lend caps — always inside the global budget. The
        //    fleet plane never queues: shortfalls retry next tick.
        let granted_total: u64 = self.hosts[h].granted.iter().sum();
        let mut want = desired_slabs.saturating_sub(granted_total);
        for r in self.pref_order(my_rack) {
            if want == 0 {
                break;
            }
            if self.racks[r].manager.is_offline() {
                continue;
            }
            let budget_left = self
                .cfg
                .budget_slabs()
                .saturating_sub(self.outstanding_slabs());
            let ask = if r == my_rack {
                want.min(budget_left)
            } else {
                let headroom = self.racks[r]
                    .lend_cap
                    .saturating_sub(self.racks[r].lent_slabs);
                want.min(budget_left)
                    .min(headroom)
                    .min(self.racks[r].manager.free_slabs())
            };
            if ask == 0 {
                continue;
            }
            let resp = self.racks[r].manager.request(hid, ask, now);
            self.racks[r].manager.cancel_queued(hid);
            let got = resp.outcome.granted_now();
            if got > 0 {
                if r != my_rack {
                    self.racks[r].lent_slabs += got;
                    self.cross_grants += 1;
                    obs::counter_add("fleet/cross_rack_grants", 1);
                }
                self.hosts[h].granted[r] += got;
                let cap = self.hosts[h].granted[r] * slab_bytes;
                self.hosts[h]
                    .tier
                    .grow_node(window_node(r), cap)
                    .expect("window node exists");
                want -= got;
            }
            for notice in resp.revocations {
                if let Some(d) = self.process_revocation(r, notice, now) {
                    deferred.push(d);
                }
            }
        }
        self.unmet_slab_steps += want;

        // 2. Track the working set: allocate growth, free shrink LIFO.
        let live = self.hosts[h].pages.len() as u64;
        if live < target_pages {
            let fresh = self.hosts[h]
                .tier
                .alloc_n(target_pages - live, now)
                .expect("SSD spill is enabled");
            self.hosts[h].pages.extend(fresh);
        } else {
            for _ in 0..(live - target_pages) {
                let page = self.hosts[h].pages.pop().expect("live count checked");
                self.hosts[h].tier.free(page);
            }
        }

        // 3. Pull spilled pages back in if capacity opened up.
        self.reload_ssd(h, now);

        // 4. Hand back excess lease, most expensive windows first.
        let granted_total: u64 = self.hosts[h].granted.iter().sum();
        let mut excess = granted_total.saturating_sub(desired_slabs);
        for r in self.pref_order(my_rack).into_iter().rev() {
            if excess == 0 {
                break;
            }
            let g = self.hosts[h].granted[r];
            if g == 0 {
                continue;
            }
            let used_bytes = self.hosts[h].tier.node_usage(window_node(r)).0 * self.cfg.page_bytes;
            let min_keep = used_bytes.div_ceil(slab_bytes).min(g);
            let back = (g - min_keep).min(excess);
            if back == 0 {
                continue;
            }
            let keep = g - back;
            self.hosts[h]
                .tier
                .shrink_node(window_node(r), keep * slab_bytes, now)
                .expect("kept capacity covers resident pages");
            self.hosts[h].granted[r] = keep;
            if r != my_rack {
                self.racks[r].lent_slabs = self.racks[r].lent_slabs.saturating_sub(back);
            }
            if !self.racks[r].manager.is_offline() {
                let grants = self.racks[r].manager.release(hid, back, now);
                debug_assert!(grants.is_empty(), "fleet plane keeps no queue");
            }
            excess -= back;
        }
        deferred
    }

    /// Drains a revocation of host `notice.host`'s window on `rack`
    /// through the tier migration path.
    fn process_revocation(
        &mut self,
        rack: usize,
        notice: RevocationNotice,
        now: SimTime,
    ) -> Option<(usize, HostId, u64, SimTime)> {
        let h = notice.host.0;
        let take = notice.slabs.min(self.hosts[h].granted[rack]);
        if take == 0 {
            return None;
        }
        let keep = self.hosts[h].granted[rack] - take;
        let keep_bytes = keep * self.slab_bytes();
        let report = self.hosts[h]
            .tier
            .shrink_node(window_node(rack), keep_bytes, now)
            .expect("SSD spill is enabled");
        self.hosts[h].granted[rack] = keep;
        if self.hosts[h].spec.rack != rack {
            self.racks[rack].lent_slabs = self.racks[rack].lent_slabs.saturating_sub(take);
        }
        Some((rack, notice.host, take, now.max(report.completed_at)))
    }

    /// SSD-resident pages of host `h`.
    fn ssd_pages(&self, h: usize) -> u64 {
        let on_nodes: u64 = std::iter::once(DRAM_NODE)
            .chain((0..self.cfg.racks).map(window_node))
            .map(|n| self.hosts[h].tier.node_usage(n).0)
            .sum();
        self.hosts[h].pages.len() as u64 - on_nodes
    }

    /// Loads spilled pages back while any policy node has room.
    fn reload_ssd(&mut self, h: usize, now: SimTime) {
        let spilled = self.ssd_pages(h);
        if spilled == 0 {
            return;
        }
        let room: u64 = std::iter::once(DRAM_NODE)
            .chain((0..self.cfg.racks).map(window_node))
            .map(|n| {
                let (used, cap) = self.hosts[h].tier.node_usage(n);
                cap - used
            })
            .sum();
        let mut to_load = spilled.min(room);
        if to_load == 0 {
            return;
        }
        let ids: Vec<PageId> = self.hosts[h].pages.iter().rev().copied().collect();
        for page in ids {
            if to_load == 0 {
                break;
            }
            if self.hosts[h].tier.location(page).is_ssd() {
                self.hosts[h]
                    .tier
                    .load_from_ssd(page, now)
                    .expect("room was checked");
                to_load -= 1;
            }
        }
    }

    /// Post-adjustment accounting + the rack lend controllers.
    fn account(&mut self, now: SimTime) {
        self.ticks += 1;
        for h in 0..self.hosts.len() {
            self.host_steps += 1;
            if self.ssd_pages(h) > 0 {
                self.hosts[h].violation_steps += 1;
                obs::counter_add("fleet/slo_violation_host_steps", 1);
            }
            let ws = self.hosts[h].demand.working_set_gib(now);
            if ws > self.hosts[h].static_cap_gib + 1e-9 {
                self.hosts[h].static_violation_steps += 1;
            }
            let my_rack = self.hosts[h].spec.rack;
            for r in 0..self.cfg.racks {
                let g = self.hosts[h].granted[r];
                if r == my_rack {
                    self.intra_slab_steps += g;
                } else {
                    self.cross_slab_steps += g;
                }
            }
        }
        self.peak_outstanding_slabs = self.peak_outstanding_slabs.max(self.outstanding_slabs());
        // Lend controllers: sample local demand every tick, retune the
        // cap every control period.
        let retune = self.ticks.is_multiple_of(self.cfg.control_period_steps);
        for rack in &mut self.racks {
            rack.local_demand.push(rack.tick_local_demand as f64);
            rack.tick_local_demand = 0;
            if retune && !rack.manager.is_offline() {
                let reserve = rack
                    .local_demand
                    .ewma()
                    .map(|d| (d * self.cfg.lend_reserve).ceil() as u64)
                    .unwrap_or(0);
                rack.lend_cap = rack.manager.total_slabs().saturating_sub(reserve);
                self.min_lend_cap = self.min_lend_cap.min(rack.lend_cap);
            }
        }
    }

    /// Rack `rack`'s expander dies: mass revocation, fleet-wide
    /// evacuation of every host's window onto that rack.
    fn fire_fault(&mut self, rack: usize, now: SimTime) {
        let _notices = self.racks[rack].manager.revoke_all(now);
        let node = window_node(rack);
        for h in 0..self.hosts.len() {
            let resident_before = self.hosts[h].tier.node_usage(node).0;
            FaultKind::ExpanderOffline { node }
                .apply(&mut self.hosts[h].topo)
                .expect("window node is an expander");
            let report = self.hosts[h]
                .tier
                .evacuate(node, now)
                .expect("SSD spill is enabled");
            debug_assert_eq!(report.total_pages(), resident_before);
            self.evac_pages_moved += report.pages_moved;
            self.evac_pages_to_ssd += report.pages_to_ssd;
            self.stranded_pages += self.hosts[h].tier.node_usage(node).0;
            self.hosts[h].granted[rack] = 0;
        }
        self.racks[rack].lent_slabs = 0;
        self.fault_fired = true;
        obs::counter_add("fleet/rack_faults", 1);
    }

    fn into_report(self, plan: &FleetPlan) -> FleetReport {
        let cfg = &self.cfg;
        let dynamic_total_gib =
            (cfg.hosts() as u64 * cfg.local_dram_gib + cfg.racks as u64 * cfg.rack_pool_gib) as f64;
        let static_total_gib: f64 = self.hosts.iter().map(|h| h.static_cap_gib).sum();
        let violation_steps: u64 = self.hosts.iter().map(|h| h.violation_steps).sum();
        let static_violation_steps: u64 = self.hosts.iter().map(|h| h.static_violation_steps).sum();
        let steps = self.host_steps.max(1) as f64;
        let moments: Vec<(f64, f64)> = self
            .hosts
            .iter()
            .map(|h| h.demand.moments(cfg.horizon, cfg.step))
            .collect();
        let n = moments.len() as f64;
        // Idle latencies from a pristine rack-0 host: the fabric's
        // intra- vs cross-rack price as the perf model solves it.
        let probe = build_host(
            cfg,
            &HostSpec {
                global: 0,
                rack: 0,
                slot: 0,
                class: WorkloadClass::Kv,
            },
        );
        let mix = AccessMix::read_only();
        let sys = MemSystem::new(&probe.topo);
        let intra_idle_read_ns = sys.idle_latency_ns(SocketId(0), window_node(0), mix);
        let cross_rack = if cfg.racks > 1 { 1 } else { 0 };
        let cross_idle_read_ns = sys.idle_latency_ns(SocketId(0), window_node(cross_rack), mix);
        let fabric = cfg.fabric();
        let intra_hops = fabric
            .path("rack0/host0", "rack0/pool")
            .expect("connected")
            .hops();
        let cross_hops = fabric
            .path("rack0/host0", &format!("rack{cross_rack}/pool"))
            .expect("connected")
            .hops();
        let lease_steps = self.intra_slab_steps + self.cross_slab_steps;
        FleetReport {
            racks: cfg.racks,
            hosts_per_rack: cfg.hosts_per_rack,
            local_dram_gib: cfg.local_dram_gib,
            rack_pool_gib: cfg.rack_pool_gib,
            placement: plan.class_counts(cfg.racks),
            dynamic_total_gib,
            static_total_gib,
            capacity_saving: 1.0 - dynamic_total_gib / static_total_gib,
            dynamic_violation_frac: violation_steps as f64 / steps,
            static_violation_frac: static_violation_steps as f64 / steps,
            host_steps: self.host_steps,
            intra_slab_steps: self.intra_slab_steps,
            cross_slab_steps: self.cross_slab_steps,
            cross_share: if lease_steps == 0 {
                0.0
            } else {
                self.cross_slab_steps as f64 / lease_steps as f64
            },
            cross_grants: self.cross_grants,
            unmet_slab_steps: self.unmet_slab_steps,
            peak_outstanding_slabs: self.peak_outstanding_slabs,
            budget_slabs: cfg.budget_slabs(),
            min_lend_cap: self.min_lend_cap,
            final_lend_caps: self.racks.iter().map(|r| r.lend_cap).collect(),
            rack_stats: self
                .racks
                .iter()
                .map(|r| r.manager.stats().clone())
                .collect(),
            intra_idle_read_ns,
            cross_idle_read_ns,
            intra_hops,
            cross_hops,
            evac_pages_moved: self.evac_pages_moved,
            evac_pages_to_ssd: self.evac_pages_to_ssd,
            stranded_pages: self.stranded_pages,
            fault_fired: self.fault_fired,
            demand_mean_gib: moments.iter().map(|(m, _)| m).sum::<f64>() / n,
            demand_std_gib: moments.iter().map(|(_, s)| s).sum::<f64>() / n,
        }
    }
}

/// Runs a fleet simulation on a pre-built world. `hosts` must be the
/// [`build_host`] results for `FleetPlan::compute(cfg)`, in global
/// order — the split exists so callers can shard the builds.
pub fn run_planned(cfg: &FleetConfig, plan: &FleetPlan, hosts: Vec<FleetHost>) -> FleetReport {
    let step = cfg.step;
    let horizon = cfg.horizon;
    let mut eng = Engine::new(FleetState::new(cfg, hosts));
    if let Some((rack, at)) = cfg.fault_at {
        eng.schedule_at(at, move |e| {
            let now = e.now();
            e.state_mut().fire_fault(rack, now);
        });
    }
    eng.schedule_at(SimTime::ZERO, move |e| {
        step_once(e, step, horizon);
    });
    eng.run_until(horizon);
    eng.into_state().into_report(plan)
}

/// Plans, builds (serially), and runs one fleet simulation.
pub fn run(cfg: &FleetConfig) -> FleetReport {
    let plan = FleetPlan::compute(cfg);
    let hosts = plan.specs.iter().map(|s| build_host(cfg, s)).collect();
    run_planned(cfg, &plan, hosts)
}

/// One tick: advance every host in global order, schedule deferred
/// lease returns, re-arm while inside the horizon.
fn step_once(eng: &mut Engine<FleetState>, step: SimTime, horizon: SimTime) {
    let now = eng.now();
    let deferred = {
        let st = eng.state_mut();
        let mut d = Vec::new();
        for h in 0..st.hosts.len() {
            d.extend(st.host_tick(h, now));
        }
        st.account(now);
        d
    };
    for (rack, host, slabs, ready_at) in deferred {
        eng.schedule_at(ready_at.max(now), move |e| {
            let t = e.now();
            let st = e.state_mut();
            if st.racks[rack].manager.is_offline() {
                return;
            }
            let grants = st.racks[rack].manager.release(host, slabs, t);
            debug_assert!(grants.is_empty(), "fleet plane keeps no queue");
        });
    }
    let next = now + step;
    if next < horizon {
        eng.schedule_at(next, move |e| step_once(e, step, horizon));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_deterministic() {
        let cfg = FleetConfig::smoke();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a, b, "identical configs must give identical reports");
        assert_eq!(a.host_steps, 8 * 80);
    }

    #[test]
    fn sharded_world_build_matches_serial() {
        // run_planned with hosts built in reverse order (then restored)
        // must equal the serial run: build_host is order-independent.
        let cfg = FleetConfig::smoke();
        let serial = run(&cfg);
        let plan = FleetPlan::compute(&cfg);
        let mut hosts: Vec<FleetHost> = plan
            .specs
            .iter()
            .rev()
            .map(|s| build_host(&cfg, s))
            .collect();
        hosts.reverse();
        let sharded = run_planned(&cfg, &plan, hosts);
        assert_eq!(serial, sharded);
    }

    #[test]
    fn scheduler_balances_expected_peak_across_racks() {
        let cfg = FleetConfig::default();
        let plan = FleetPlan::compute(&cfg);
        assert_eq!(plan.specs.len(), cfg.hosts());
        // Every slot filled exactly once, in global order.
        for (i, s) in plan.specs.iter().enumerate() {
            assert_eq!(s.global, i);
            assert_eq!(s.global, s.rack * cfg.hosts_per_rack + s.slot);
        }
        // Greedy balance: committed peak demand differs between racks
        // by at most the largest single workload.
        let peak_per_rack: Vec<f64> = (0..cfg.racks)
            .map(|r| {
                plan.specs
                    .iter()
                    .filter(|s| s.rack == r)
                    .map(|s| s.class.peak_gib())
                    .sum()
            })
            .collect();
        let max_peak = WorkloadClass::ALL
            .iter()
            .map(|c| c.peak_gib())
            .fold(0.0, f64::max);
        let spread = peak_per_rack.iter().fold(f64::MIN, |a, &b| a.max(b))
            - peak_per_rack.iter().fold(f64::MAX, |a, &b| a.min(b));
        assert!(
            spread <= max_peak + 1e-9,
            "rack peaks {peak_per_rack:?} spread {spread} > {max_peak}"
        );
        // The mix actually is heterogeneous at the default weights.
        let counts = plan.class_counts(cfg.racks);
        for i in 0..3 {
            assert!(
                counts.iter().map(|row| row[i]).sum::<usize>() > 0,
                "class {i} missing from the default mix: {counts:?}"
            );
        }
    }

    #[test]
    fn cross_rack_leases_pay_the_longer_path() {
        let r = run(&FleetConfig::smoke());
        // Fabric hops: one ToR intra, ToR+spine+ToR cross.
        assert_eq!(r.intra_hops, 1);
        assert_eq!(r.cross_hops, 3);
        // The solved idle latency prices the exact extra path:
        // spine hop + two cables + one extra ToR hop.
        let cfg = FleetConfig::smoke();
        let extra = cfg.tor_hop_ns + cfg.spine_hop_ns + 2.0 * cfg.cable_ns;
        assert!(
            (r.cross_idle_read_ns - r.intra_idle_read_ns - extra).abs() < 1e-9,
            "intra {} cross {} extra {}",
            r.intra_idle_read_ns,
            r.cross_idle_read_ns,
            extra
        );
        assert!(r.cross_idle_read_ns > r.intra_idle_read_ns);
    }

    #[test]
    fn fleet_exercises_cross_rack_overflow_and_holds_the_slo() {
        // Unbalanced pools: rack 0's hosts must overflow to rack 1.
        let cfg = FleetConfig {
            rack_pool_gib: 256,
            global_budget_gib: 1024,
            ..FleetConfig::smoke()
        };
        let r = run(&cfg);
        assert!(r.intra_slab_steps > 0, "{r:?}");
        assert!(
            r.cross_slab_steps > 0,
            "tight racks must overflow across the spine: {r:?}"
        );
        assert!(r.cross_grants > 0);
        assert!((0.0..=1.0).contains(&r.cross_share));
        assert!(r.demand_std_gib > 0.0);
    }

    #[test]
    fn global_budget_is_never_exceeded() {
        // A budget well under the racks' combined capacity must bind.
        let cfg = FleetConfig {
            global_budget_gib: 256,
            ..FleetConfig::smoke()
        };
        let r = run(&cfg);
        assert!(r.peak_outstanding_slabs > 0);
        assert!(
            r.peak_outstanding_slabs <= r.budget_slabs,
            "peak {} over budget {}",
            r.peak_outstanding_slabs,
            r.budget_slabs
        );
        // Demand the budget refused shows up as unmet, not as leases.
        assert!(r.unmet_slab_steps > 0, "{r:?}");
    }

    #[test]
    fn lend_controllers_reserve_headroom_under_local_demand() {
        let r = run(&FleetConfig::smoke());
        let cfg = FleetConfig::smoke();
        let rack_slabs = cfg.rack_pool_gib / cfg.slab_gib;
        // Racks see steady local demand, so the EWMA reserve must have
        // pulled at least one published cap below the full pool.
        assert!(
            r.min_lend_cap < rack_slabs,
            "controllers never tightened: min cap {} of {}",
            r.min_lend_cap,
            rack_slabs
        );
        assert_eq!(r.final_lend_caps.len(), cfg.racks);
    }

    #[test]
    fn rack_fault_evacuates_fleet_wide_without_stranding() {
        let cfg = FleetConfig {
            // Tight home rack pushes rack-0 borrowers onto rack 1, so
            // the rack-1 fault catches cross-rack leases too.
            rack_pool_gib: 256,
            global_budget_gib: 1024,
            fault_at: Some((1, SimTime::from_secs(10))),
            ..FleetConfig::smoke()
        };
        let r = run(&cfg);
        assert!(r.fault_fired);
        assert_eq!(r.stranded_pages, 0, "no page may stay on the dead rack");
        assert_eq!(r.rack_stats[1].mass_revocations, 1);
        assert!(
            r.evac_pages_moved + r.evac_pages_to_ssd > 0,
            "the fault should have caught resident pooled pages"
        );
        // The surviving rack keeps serving.
        assert!(r.rack_stats[0].grants + r.rack_stats[0].partial_grants > 0);
    }

    #[test]
    fn fleet_pooling_beats_static_provisioning() {
        let r = run(&FleetConfig::smoke());
        assert!(
            r.dynamic_total_gib < r.static_total_gib,
            "pooling must install less memory: {} vs {}",
            r.dynamic_total_gib,
            r.static_total_gib
        );
        assert!(r.capacity_saving > 0.0);
        assert!(
            r.dynamic_violation_frac <= r.static_violation_frac + 0.05,
            "pooling must roughly hold the SLO: dyn {} vs static {}",
            r.dynamic_violation_frac,
            r.static_violation_frac
        );
    }
}
