//! The pool manager: the control plane that owns switch-attached
//! expander capacity and arbitrates it between hosts.
//!
//! Hosts send lease requests; the manager grants what it can
//! immediately, queues the rest FIFO, and — when demand exceeds free
//! capacity — issues *revocations* against holders above their fair
//! share. A revocation is asynchronous: the manager only reclaims the
//! slabs once the host has drained them (migrated pages off the pooled
//! node) and called [`PoolManager::release`], at which point queued
//! waiters are served oldest-first. An expander fault triggers
//! [`PoolManager::revoke_all`], which tears down every lease at once.

use std::collections::VecDeque;

use cxl_obs as obs;
use cxl_sim::SimTime;
use serde::Serialize;

use crate::address::PoolAddressSpace;
use crate::lease::{HostId, Lease};

/// Immediate answer to a lease request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum GrantOutcome {
    /// The full request was granted on the spot.
    Granted {
        /// Slabs granted.
        slabs: u64,
    },
    /// Part was granted; the shortfall is queued.
    Partial {
        /// Slabs granted now.
        granted: u64,
        /// Slabs left waiting in the queue.
        queued: u64,
    },
    /// Nothing was free; the whole request is queued.
    Queued {
        /// Slabs waiting in the queue.
        slabs: u64,
    },
    /// The pool is offline (or the request was empty); nothing was
    /// granted or queued.
    Denied,
}

impl GrantOutcome {
    /// Slabs granted immediately by this outcome.
    pub fn granted_now(&self) -> u64 {
        match self {
            GrantOutcome::Granted { slabs } => *slabs,
            GrantOutcome::Partial { granted, .. } => *granted,
            _ => 0,
        }
    }
}

/// A deferred grant delivered when capacity freed up for a queued
/// request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Grant {
    /// Receiving host.
    pub host: HostId,
    /// Slabs granted.
    pub slabs: u64,
    /// How long the request waited in the queue.
    pub waited: SimTime,
}

/// An order to a host to drain `slabs` of its lease and hand them back.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct RevocationNotice {
    /// Host that must drain.
    pub host: HostId,
    /// Slabs to hand back.
    pub slabs: u64,
}

/// Immediate result of [`PoolManager::request`]: the outcome for the
/// requester plus any revocations issued to fund the queue.
#[derive(Debug, Clone, Serialize)]
pub struct RequestResponse {
    /// Outcome for the requesting host.
    pub outcome: GrantOutcome,
    /// Revocations the manager issued against over-fair-share holders
    /// to cover queued demand. The simulator must drain these hosts and
    /// call [`PoolManager::release`] with the reclaimed slabs.
    pub revocations: Vec<RevocationNotice>,
}

/// Counters the manager accumulates over a run (local to one simulated
/// pool, unlike the global `cxl-obs` registry).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct PoolStats {
    /// Requests fully granted on the spot.
    pub grants: u64,
    /// Requests granted only in part.
    pub partial_grants: u64,
    /// Requests (fully or partially) queued.
    pub queued_requests: u64,
    /// Deferred grants delivered from the queue.
    pub deferred_grants: u64,
    /// Revocation notices issued (fair-share reclaims).
    pub revocations: u64,
    /// Slabs covered by revocation notices.
    pub revoked_slabs: u64,
    /// Mass revocations (expander faults).
    pub mass_revocations: u64,
    /// Compaction passes run.
    pub defrags: u64,
    /// Slabs relocated by compaction.
    pub defrag_slabs_moved: u64,
    /// Peak mapped slabs.
    pub peak_used_slabs: u64,
    /// Peak external fragmentation observed, in [0, 1].
    pub peak_fragmentation: f64,
    /// Total queue wait across deferred grants, ns.
    pub total_wait_ns: u64,
    /// Longest single queue wait, ns.
    pub max_wait_ns: u64,
}

impl PoolStats {
    /// Mean queue wait per deferred grant, ns (0 when nothing waited).
    pub fn mean_wait_ns(&self) -> f64 {
        if self.deferred_grants == 0 {
            0.0
        } else {
            self.total_wait_ns as f64 / self.deferred_grants as f64
        }
    }
}

#[derive(Debug, Clone)]
struct Waiter {
    host: HostId,
    slabs: u64,
    since: SimTime,
}

/// Arbitrates a fixed budget of pool slabs between hosts.
#[derive(Debug, Clone)]
pub struct PoolManager {
    space: PoolAddressSpace,
    leases: Vec<Lease>,
    /// Slabs per lease currently under an outstanding revocation (the
    /// host is draining them; they still appear granted until
    /// `release`). Prevents issuing a second revocation for the same
    /// slabs.
    reclaiming: Vec<u64>,
    queue: VecDeque<Waiter>,
    defrag_threshold: f64,
    offline: bool,
    stats: PoolStats,
}

impl PoolManager {
    /// A manager owning `total_slabs` slabs, serving `hosts` hosts
    /// (host ids `0..hosts`). Compaction runs whenever external
    /// fragmentation exceeds `defrag_threshold` (use 1.0 to disable).
    pub fn new(total_slabs: u64, hosts: usize, defrag_threshold: f64) -> Self {
        assert!(hosts > 0, "pool needs at least one host");
        assert!(
            (0.0..=1.0).contains(&defrag_threshold),
            "defrag threshold must be in [0, 1], got {defrag_threshold}"
        );
        Self {
            space: PoolAddressSpace::new(total_slabs),
            leases: (0..hosts).map(|h| Lease::new(HostId(h))).collect(),
            reclaiming: vec![0; hosts],
            queue: VecDeque::new(),
            defrag_threshold,
            offline: false,
            stats: PoolStats::default(),
        }
    }

    /// Total pool capacity in slabs.
    pub fn total_slabs(&self) -> u64 {
        self.space.total_slabs()
    }

    /// Currently granted slabs across all leases.
    pub fn used_slabs(&self) -> u64 {
        self.space.used_slabs()
    }

    /// Slabs neither granted nor reserved.
    pub fn free_slabs(&self) -> u64 {
        self.space.free_slabs()
    }

    /// Slabs currently granted to `host`.
    pub fn granted_slabs(&self, host: HostId) -> u64 {
        self.leases[host.0].granted_slabs
    }

    /// Slabs `host` still owes the pool under outstanding revocations.
    pub fn reclaiming_slabs(&self, host: HostId) -> u64 {
        self.reclaiming[host.0]
    }

    /// Outstanding queued slabs across all waiters.
    pub fn queued_slabs(&self) -> u64 {
        self.queue.iter().map(|w| w.slabs).sum()
    }

    /// Whether the pool has been taken offline by a fault.
    pub fn is_offline(&self) -> bool {
        self.offline
    }

    /// Current external fragmentation of the pool address space.
    pub fn fragmentation(&self) -> f64 {
        self.space.fragmentation()
    }

    /// Run counters so far.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// The even split of the pool between hosts, in slabs.
    pub fn fair_share_slabs(&self) -> u64 {
        self.space.total_slabs() / self.leases.len() as u64
    }

    /// A host asks for `slabs` more slabs at time `now`.
    ///
    /// Grants what is free, queues the shortfall, and — if anything
    /// queued — issues fair-share revocations against the largest
    /// over-share holders to fund the queue.
    pub fn request(&mut self, host: HostId, slabs: u64, now: SimTime) -> RequestResponse {
        if self.offline || slabs == 0 {
            return RequestResponse {
                outcome: GrantOutcome::Denied,
                revocations: Vec::new(),
            };
        }
        self.maybe_defrag();
        let granted = self.grant_to(host, slabs);
        let shortfall = slabs - granted;
        let outcome = if shortfall == 0 {
            self.stats.grants += 1;
            obs::counter_add("pool/grants", 1);
            GrantOutcome::Granted { slabs: granted }
        } else {
            self.queue.push_back(Waiter {
                host,
                slabs: shortfall,
                since: now,
            });
            self.leases[host.0].pending_slabs += shortfall;
            self.stats.queued_requests += 1;
            obs::counter_add("pool/queued", 1);
            if granted > 0 {
                self.stats.partial_grants += 1;
                obs::counter_add("pool/partial_grants", 1);
                GrantOutcome::Partial {
                    granted,
                    queued: shortfall,
                }
            } else {
                GrantOutcome::Queued { slabs: shortfall }
            }
        };
        let revocations = self.reclaim_for_queue();
        self.note_occupancy();
        RequestResponse {
            outcome,
            revocations,
        }
    }

    /// A host hands back `slabs` slabs (voluntarily, or after draining
    /// a revocation). Freed capacity immediately serves the queue; the
    /// returned grants tell the simulator which waiters got capacity
    /// and how long they waited.
    pub fn release(&mut self, host: HostId, slabs: u64, now: SimTime) -> Vec<Grant> {
        let lease = host.lease();
        let freed = self.space.release(lease, slabs);
        self.leases[host.0].granted_slabs -= freed;
        self.reclaiming[host.0] = self.reclaiming[host.0].saturating_sub(freed);
        if self.offline {
            return Vec::new();
        }
        self.maybe_defrag();
        let grants = self.serve_queue(now);
        self.note_occupancy();
        grants
    }

    /// A host abandons everything it queued for (demand fell before the
    /// grant arrived).
    pub fn cancel_queued(&mut self, host: HostId) -> u64 {
        let mut dropped = 0;
        self.queue.retain(|w| {
            if w.host == host {
                dropped += w.slabs;
                false
            } else {
                true
            }
        });
        self.leases[host.0].pending_slabs -= dropped;
        dropped
    }

    /// Expander fault: tears down every lease and the queue at once.
    ///
    /// Returns one notice per host that held capacity; the simulator
    /// must evacuate those hosts' pooled pages (to local DRAM or SSD).
    /// The address space is cleared immediately — the device is gone,
    /// there is nothing to hand back — and the pool goes offline.
    pub fn revoke_all(&mut self, _now: SimTime) -> Vec<RevocationNotice> {
        let mut notices = Vec::new();
        for lease in &mut self.leases {
            if lease.granted_slabs > 0 {
                notices.push(RevocationNotice {
                    host: lease.host,
                    slabs: lease.granted_slabs,
                });
                lease.total_revoked_slabs += lease.granted_slabs;
                self.stats.revoked_slabs += lease.granted_slabs;
                self.stats.revocations += 1;
                obs::counter_add("pool/revocations", 1);
            }
            self.space.release_all(lease.host.lease());
            lease.granted_slabs = 0;
            lease.pending_slabs = 0;
        }
        self.queue.clear();
        self.reclaiming.iter_mut().for_each(|r| *r = 0);
        self.offline = true;
        self.stats.mass_revocations += 1;
        obs::counter_add("pool/mass_revocations", 1);
        notices
    }

    fn grant_to(&mut self, host: HostId, slabs: u64) -> u64 {
        let extents = self.space.alloc(slabs, host.lease());
        let granted: u64 = extents.iter().map(|e| e.len).sum();
        self.leases[host.0].granted_slabs += granted;
        self.leases[host.0].total_granted_slabs += granted;
        if extents.len() > 1 {
            obs::counter_add("pool/fragmented_grants", 1);
        }
        granted
    }

    fn serve_queue(&mut self, now: SimTime) -> Vec<Grant> {
        let mut grants = Vec::new();
        while let Some(front) = self.queue.front() {
            if self.space.free_slabs() == 0 {
                break;
            }
            let host = front.host;
            let want = front.slabs;
            let since = front.since;
            let give = self.grant_to(host, want.min(self.space.free_slabs()));
            if give == 0 {
                break;
            }
            self.leases[host.0].pending_slabs -= give;
            let waited = now.saturating_sub(since);
            self.stats.deferred_grants += 1;
            self.stats.total_wait_ns += waited.as_ns();
            self.stats.max_wait_ns = self.stats.max_wait_ns.max(waited.as_ns());
            obs::record("pool/lease_wait_ns", waited.as_ns());
            grants.push(Grant {
                host,
                slabs: give,
                waited,
            });
            if give == want {
                self.queue.pop_front();
            } else {
                self.queue.front_mut().expect("front exists").slabs -= give;
            }
        }
        grants
    }

    /// Issues revocations against over-fair-share holders until the
    /// queued shortfall is covered (or no holder has reclaimable
    /// excess). Largest excess drains first; already-draining slabs are
    /// not revoked twice.
    fn reclaim_for_queue(&mut self) -> Vec<RevocationNotice> {
        let fair = self.fair_share_slabs();
        let mut needed = self
            .queued_slabs()
            .saturating_sub(self.space.free_slabs() + self.total_reclaiming());
        let mut notices = Vec::new();
        while needed > 0 {
            // Pick the holder with the largest reclaimable excess;
            // break ties toward the lower host id for determinism.
            let victim = self
                .leases
                .iter()
                .map(|l| {
                    let excess = l
                        .granted_slabs
                        .saturating_sub(self.reclaiming[l.host.0])
                        .saturating_sub(fair);
                    (l.host, excess)
                })
                .filter(|(_, excess)| *excess > 0)
                .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
            let Some((host, excess)) = victim else { break };
            let take = excess.min(needed);
            self.reclaiming[host.0] += take;
            self.leases[host.0].total_revoked_slabs += take;
            self.stats.revocations += 1;
            self.stats.revoked_slabs += take;
            obs::counter_add("pool/revocations", 1);
            notices.push(RevocationNotice { host, slabs: take });
            needed -= take;
        }
        notices
    }

    fn total_reclaiming(&self) -> u64 {
        self.reclaiming.iter().sum()
    }

    fn maybe_defrag(&mut self) {
        let frag = self.space.fragmentation();
        self.stats.peak_fragmentation = self.stats.peak_fragmentation.max(frag);
        obs::counter_max("pool/frag_peak_permille", (frag * 1000.0) as u64);
        if frag > self.defrag_threshold {
            let moved = self.space.defrag();
            if moved > 0 {
                self.stats.defrags += 1;
                self.stats.defrag_slabs_moved += moved;
                obs::counter_add("pool/defrags", 1);
                obs::counter_add("pool/defrag_slabs_moved", moved);
            }
        }
    }

    fn note_occupancy(&mut self) {
        let used = self.space.used_slabs();
        self.stats.peak_used_slabs = self.stats.peak_used_slabs.max(used);
        obs::counter_max("pool/occupancy_peak_slabs", used);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H0: HostId = HostId(0);
    const H1: HostId = HostId(1);
    const H2: HostId = HostId(2);

    fn t(ms: u64) -> SimTime {
        SimTime::from_ms(ms)
    }

    #[test]
    fn mean_wait_of_zero_deferred_grants_is_zero() {
        // Fresh stats: 0/0 must read as 0.0, not NaN.
        assert_eq!(PoolStats::default().mean_wait_ns(), 0.0);
        // And a manager that never queued anything reports the same.
        let mut pm = PoolManager::new(10, 2, 1.0);
        pm.request(H0, 2, t(0));
        assert_eq!(pm.stats().deferred_grants, 0);
        assert_eq!(pm.stats().mean_wait_ns(), 0.0);
        // Nonzero path for contrast.
        let s = PoolStats {
            deferred_grants: 4,
            total_wait_ns: 1000,
            ..Default::default()
        };
        assert_eq!(s.mean_wait_ns(), 250.0);
    }

    #[test]
    fn grants_until_full_then_queues() {
        let mut pm = PoolManager::new(10, 2, 1.0);
        let r = pm.request(H0, 6, t(0));
        assert_eq!(r.outcome, GrantOutcome::Granted { slabs: 6 });
        assert!(r.revocations.is_empty() || pm.fair_share_slabs() >= 6);
        let r = pm.request(H1, 6, t(1));
        assert_eq!(
            r.outcome,
            GrantOutcome::Partial {
                granted: 4,
                queued: 2
            }
        );
        // H0 holds 6 > fair share 5, so the shortfall of 2 is funded by
        // revoking min(excess=1, needed=2) = 1 slab from H0 (all it has
        // above fair share).
        assert_eq!(r.revocations, vec![RevocationNotice { host: H0, slabs: 1 }]);
        assert_eq!(pm.queued_slabs(), 2);
        assert_eq!(pm.reclaiming_slabs(H0), 1);
    }

    #[test]
    fn release_serves_queue_fifo_with_wait_times() {
        let mut pm = PoolManager::new(8, 3, 1.0);
        pm.request(H0, 8, t(0));
        let r1 = pm.request(H1, 3, t(10));
        assert_eq!(r1.outcome, GrantOutcome::Queued { slabs: 3 });
        let r2 = pm.request(H2, 2, t(20));
        assert_eq!(r2.outcome, GrantOutcome::Queued { slabs: 2 });
        // H0 drains 4 slabs at t=50: H1 (older) gets its 3 first, then
        // H2 gets 1 of 2.
        let grants = pm.release(H0, 4, t(50));
        assert_eq!(grants.len(), 2);
        assert_eq!(grants[0].host, H1);
        assert_eq!(grants[0].slabs, 3);
        assert_eq!(grants[0].waited, t(40));
        assert_eq!(grants[1].host, H2);
        assert_eq!(grants[1].slabs, 1);
        assert_eq!(grants[1].waited, t(30));
        assert_eq!(pm.queued_slabs(), 1);
        assert_eq!(pm.stats().deferred_grants, 2);
        assert_eq!(pm.stats().max_wait_ns, t(40).as_ns());
    }

    #[test]
    fn fair_share_revocation_targets_largest_holder() {
        let mut pm = PoolManager::new(12, 3, 1.0);
        pm.request(H0, 7, t(0));
        pm.request(H1, 5, t(1));
        // Pool is full; H2 wants its fair share back.
        let r = pm.request(H2, 4, t(2));
        assert_eq!(r.outcome, GrantOutcome::Queued { slabs: 4 });
        // Fair share is 4. H0's excess is 3, H1's is 1; H0 drains first.
        assert_eq!(
            r.revocations,
            vec![
                RevocationNotice { host: H0, slabs: 3 },
                RevocationNotice { host: H1, slabs: 1 },
            ]
        );
        // The drained slabs flow to H2 once released.
        let g = pm.release(H0, 3, t(5));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].host, H2);
        assert_eq!(g[0].slabs, 3);
        let g = pm.release(H1, 1, t(6));
        assert_eq!(g[0].slabs, 1);
        assert_eq!(pm.queued_slabs(), 0);
        assert_eq!(pm.granted_slabs(H2), 4);
    }

    #[test]
    fn revocations_are_not_duplicated_while_draining() {
        let mut pm = PoolManager::new(8, 2, 1.0);
        pm.request(H0, 8, t(0));
        let r1 = pm.request(H1, 2, t(1));
        assert_eq!(
            r1.revocations,
            vec![RevocationNotice { host: H0, slabs: 2 }]
        );
        // A second queued request only revokes the *additional* need.
        let r2 = pm.request(H1, 1, t(2));
        assert_eq!(
            r2.revocations,
            vec![RevocationNotice { host: H0, slabs: 1 }]
        );
        assert_eq!(pm.reclaiming_slabs(H0), 3);
    }

    #[test]
    fn revoke_all_clears_everything_and_goes_offline() {
        let mut pm = PoolManager::new(10, 3, 1.0);
        pm.request(H0, 5, t(0));
        pm.request(H1, 5, t(1));
        pm.request(H2, 3, t(2)); // queued
        let notices = pm.revoke_all(t(3));
        assert_eq!(notices.len(), 2);
        assert_eq!(notices[0], RevocationNotice { host: H0, slabs: 5 });
        assert_eq!(notices[1], RevocationNotice { host: H1, slabs: 5 });
        assert!(pm.is_offline());
        assert_eq!(pm.used_slabs(), 0);
        assert_eq!(pm.queued_slabs(), 0);
        assert_eq!(
            pm.request(H0, 1, t(4)).outcome,
            GrantOutcome::Denied,
            "offline pool denies new requests"
        );
        assert!(pm.release(H0, 5, t(5)).is_empty());
    }

    #[test]
    fn cancel_queued_drops_only_that_host() {
        let mut pm = PoolManager::new(4, 3, 1.0);
        pm.request(H0, 4, t(0));
        pm.request(H1, 2, t(1));
        pm.request(H2, 3, t(2));
        assert_eq!(pm.cancel_queued(H1), 2);
        assert_eq!(pm.queued_slabs(), 3);
        let g = pm.release(H0, 4, t(10));
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].host, H2);
    }

    #[test]
    fn defrag_runs_when_fragmentation_crosses_threshold() {
        let mut pm = PoolManager::new(16, 4, 0.4);
        pm.request(H0, 4, t(0));
        pm.request(H1, 4, t(1));
        pm.request(H2, 4, t(2));
        // Freeing the middle lease leaves [4,8) + [12,16) free —
        // fragmentation 0.5 crosses the 0.4 threshold, so the release
        // path compacts immediately.
        pm.release(H1, 4, t(3));
        assert_eq!(pm.fragmentation(), 0.0, "release should have compacted");
        // The 6-slab grant therefore lands in one extent.
        let r = pm.request(H0, 6, t(4));
        assert_eq!(r.outcome, GrantOutcome::Granted { slabs: 6 });
        assert_eq!(pm.stats().defrags, 1);
        assert!(pm.stats().defrag_slabs_moved > 0);
        assert!(pm.stats().peak_fragmentation >= 0.5);
    }
}
