//! Discrete-event simulation of N hosts sharing one switch-attached
//! pool.
//!
//! Every `step`, each host (in host-id order — the source of run-to-run
//! determinism) re-reads its demand trace, resizes its pool lease
//! through the [`PoolManager`], and adjusts its page population through
//! its own `cxl-tier` manager, where the leased window appears as a
//! far NUMA node whose capacity tracks the lease
//! ([`TierManager::grow_node`] / [`TierManager::shrink_node`]).
//! Revocations drain through the tier layer's rate-limited migration
//! path, and the reclaimed slabs reach queued hosts only when the drain
//! completes — lease waits include real data movement, not just queue
//! position. An optional expander fault tears the whole pool down
//! mid-run and every host degrades onto local DRAM + SSD.
//!
//! The same demand traces are replayed against a *static* deployment
//! (each host owns DRAM sized at its own demand percentile, no pool) to
//! measure the capacity/SLO trade the paper's §7.1 pooling argument
//! rests on.

use cxl_fault::FaultKind;
use cxl_obs as obs;
use cxl_perf::{AccessMix, MemSystem};
use cxl_sim::{Engine, SimTime};
use cxl_tier::{PageId, TierConfig, TierManager};
use cxl_topology::{NodeId, SocketId, Topology};
use serde::Serialize;

use crate::demand::{DemandConfig, DemandProcess};
use crate::lease::HostId;
use crate::manager::{Grant, PoolManager, PoolStats, RevocationNotice};

/// DRAM node id inside each host's [`Topology::pooled_host`].
pub const DRAM_NODE: NodeId = NodeId(0);
/// Pool-window node id inside each host's [`Topology::pooled_host`].
pub const POOL_NODE: NodeId = NodeId(1);

const GIB: u64 = 1 << 30;

/// Configuration of one pooling simulation.
#[derive(Debug, Clone, Serialize)]
pub struct PoolSimConfig {
    /// Hosts sharing the pool.
    pub hosts: usize,
    /// Local DRAM per host, GiB (sized for the base working set).
    pub local_dram_gib: u64,
    /// Shared pool capacity, GiB.
    pub pool_gib: u64,
    /// Lease granularity, GiB per slab.
    pub slab_gib: u64,
    /// Switch round-trip added to pooled accesses, ns.
    pub switch_hop_ns: f64,
    /// Simulated page size in bytes — coarse (64 MiB) so a terabyte-scale
    /// fleet stays tractable; the studied behaviour is granularity-
    /// invariant.
    pub page_bytes: u64,
    /// Per-host demand process (each host draws its own trace).
    pub demand: DemandConfig,
    /// Simulated duration.
    pub horizon: SimTime,
    /// Control-loop tick.
    pub step: SimTime,
    /// SLO percentile the static deployment provisions for (and the
    /// pool is judged against).
    pub slo_percentile: f64,
    /// Pool compaction threshold (see [`PoolManager::new`]).
    pub defrag_threshold: f64,
    /// When set, the pool expander dies at this time: mass revocation,
    /// every host evacuates its pooled pages.
    pub fault_at: Option<SimTime>,
    /// Root seed for the per-host demand traces.
    pub seed: u64,
}

impl Default for PoolSimConfig {
    fn default() -> Self {
        Self {
            hosts: 8,
            local_dram_gib: 256,
            pool_gib: 768,
            slab_gib: 1,
            switch_hop_ns: 70.0,
            page_bytes: 64 * 1024 * 1024,
            demand: DemandConfig::default(),
            horizon: SimTime::from_secs(120),
            step: SimTime::from_ms(100),
            slo_percentile: 0.99,
            defrag_threshold: 0.5,
            fault_at: None,
            seed: 42,
        }
    }
}

impl PoolSimConfig {
    /// A fast variant for unit tests.
    pub fn smoke() -> Self {
        Self {
            hosts: 4,
            pool_gib: 256,
            horizon: SimTime::from_secs(30),
            ..Self::default()
        }
    }
}

/// One simulated host: its private topology/tier stack and demand.
struct HostState {
    topo: Topology,
    tier: TierManager,
    demand: DemandProcess,
    /// Live pages in allocation order (freed LIFO, so burst pages —
    /// which landed on the pool or SSD — are released first).
    pages: Vec<PageId>,
    /// Host-side mirror of the lease, in slabs. Dips below the
    /// manager's view while a revocation drain is in flight.
    granted_slabs: u64,
    /// Static per-host DRAM provision (demand percentile), GiB.
    static_cap_gib: f64,
    /// Host-steps with at least one page on SSD (dynamic SLO misses).
    violation_steps: u64,
    /// Host-steps where demand exceeded the static provision.
    static_violation_steps: u64,
}

/// Simulation state threaded through the event engine.
struct PoolState {
    cfg: PoolSimConfig,
    manager: PoolManager,
    hosts: Vec<HostState>,
    host_steps: u64,
    evac_pages_moved: u64,
    evac_pages_to_ssd: u64,
    stranded_pages: u64,
    fault_fired: bool,
}

/// Outcome of one pooling simulation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PoolSimReport {
    /// Hosts simulated.
    pub hosts: usize,
    /// Local DRAM per host, GiB.
    pub local_dram_gib: u64,
    /// Pool capacity, GiB.
    pub pool_gib: u64,
    /// Memory the dynamic deployment installs: `hosts · local + pool`.
    pub dynamic_total_gib: f64,
    /// Memory the static deployment installs: Σ per-host percentile.
    pub static_total_gib: f64,
    /// `1 − dynamic/static` installed capacity.
    pub capacity_saving: f64,
    /// Fraction of host-steps the dynamic deployment had pages on SSD.
    pub dynamic_violation_frac: f64,
    /// Fraction of host-steps demand exceeded the static provision.
    pub static_violation_frac: f64,
    /// Host-steps observed.
    pub host_steps: u64,
    /// Pool manager counters.
    pub stats: PoolStats,
    /// Mean queue wait per deferred grant, ms.
    pub mean_wait_ms: f64,
    /// Longest queue wait, ms.
    pub max_wait_ms: f64,
    /// Peak pool occupancy, GiB.
    pub peak_pool_used_gib: f64,
    /// Pages relocated during the fault evacuation.
    pub evac_pages_moved: u64,
    /// Pages spilled to SSD during the fault evacuation.
    pub evac_pages_to_ssd: u64,
    /// Pages left on the dead pool node after evacuation (must be 0).
    pub stranded_pages: u64,
    /// Whether the configured fault fired.
    pub fault_fired: bool,
    /// Nearest-rank SLO percentile of *aggregate* excess demand
    /// (Σ max(0, ws − local) across hosts, per tick), GiB: the pool a
    /// perfectly liquid deployment would install for the same traces.
    /// `hosts · local + ideal_pool_gib` therefore lower-bounds the
    /// capacity any real pooling control plane needs at this SLO.
    pub ideal_pool_gib: f64,
    /// Mean of the per-host demand-trace means, GiB (for a
    /// like-for-like `cxl_cost::pooling` comparison).
    pub demand_mean_gib: f64,
    /// Mean of the per-host demand-trace standard deviations, GiB.
    pub demand_std_gib: f64,
    /// Idle read latency to the pooled node (includes the switch hop), ns.
    pub pool_idle_read_ns: f64,
    /// Idle read latency a direct-attached expander would give, ns.
    pub direct_idle_read_ns: f64,
}

impl PoolState {
    fn new(cfg: &PoolSimConfig) -> Self {
        assert!(cfg.hosts > 0, "pool sim needs at least one host");
        assert!(cfg.slab_gib > 0 && cfg.pool_gib >= cfg.slab_gib);
        assert!(
            cfg.page_bytes > 0 && (cfg.slab_gib * GIB).is_multiple_of(cfg.page_bytes),
            "slab size must be a whole number of pages"
        );
        let manager =
            PoolManager::new(cfg.pool_gib / cfg.slab_gib, cfg.hosts, cfg.defrag_threshold);
        let hosts = (0..cfg.hosts)
            .map(|h| {
                let topo =
                    Topology::pooled_host(cfg.local_dram_gib, cfg.pool_gib, cfg.switch_hop_ns);
                let mut tier_cfg = TierConfig::bind(vec![DRAM_NODE, POOL_NODE]);
                tier_cfg.page_size = cfg.page_bytes;
                tier_cfg.allow_ssd_spill = true;
                // The lease starts empty; grow_node raises this as
                // grants arrive.
                tier_cfg.capacity_override = vec![(POOL_NODE, 0)];
                let tier = TierManager::new(&topo, tier_cfg);
                let demand = DemandProcess::generate(
                    &cfg.demand,
                    cfg.seed,
                    &format!("pool-host{h}"),
                    cfg.horizon,
                );
                let static_cap_gib = demand.percentile(cfg.horizon, cfg.step, cfg.slo_percentile);
                HostState {
                    topo,
                    tier,
                    demand,
                    pages: Vec::new(),
                    granted_slabs: 0,
                    static_cap_gib,
                    violation_steps: 0,
                    static_violation_steps: 0,
                }
            })
            .collect();
        Self {
            cfg: cfg.clone(),
            manager,
            hosts,
            host_steps: 0,
            evac_pages_moved: 0,
            evac_pages_to_ssd: 0,
            stranded_pages: 0,
            fault_fired: false,
        }
    }

    fn slab_bytes(&self) -> u64 {
        self.cfg.slab_gib * GIB
    }

    /// One control-loop pass for host `h`. Returns deferred lease
    /// releases — `(victim, slabs, ready_at)` — for drains whose
    /// reclaimed capacity becomes grantable only once the rate-limited
    /// migration finishes.
    fn host_tick(&mut self, h: usize, now: SimTime) -> Vec<(HostId, u64, SimTime)> {
        let mut deferred = Vec::new();
        let hid = HostId(h);
        let slab_bytes = self.slab_bytes();
        let ws_gib = self.hosts[h].demand.working_set_gib(now);
        let target_pages = ((ws_gib * GIB as f64) / self.cfg.page_bytes as f64).ceil() as u64;
        let target_bytes = target_pages * self.cfg.page_bytes;
        let excess_bytes = target_bytes.saturating_sub(self.cfg.local_dram_gib * GIB);
        let desired_slabs = excess_bytes.div_ceil(slab_bytes);

        // 1. Grow the lease before allocating, so burst pages land on
        //    the pool window instead of spilling.
        if desired_slabs > self.hosts[h].granted_slabs && !self.manager.is_offline() {
            let want = desired_slabs - self.hosts[h].granted_slabs;
            let resp = self.manager.request(hid, want, now);
            let got = resp.outcome.granted_now();
            if got > 0 {
                self.hosts[h].granted_slabs += got;
                let cap = self.hosts[h].granted_slabs * slab_bytes;
                self.hosts[h]
                    .tier
                    .grow_node(POOL_NODE, cap)
                    .expect("pool node exists");
            }
            for notice in resp.revocations {
                if let Some(d) = self.process_revocation(notice, now) {
                    deferred.push(d);
                }
            }
        }

        // 2. Track the working set: allocate growth, free shrink LIFO.
        let live = self.hosts[h].pages.len() as u64;
        if live < target_pages {
            let fresh = self.hosts[h]
                .tier
                .alloc_n(target_pages - live, now)
                .expect("SSD spill is enabled");
            self.hosts[h].pages.extend(fresh);
        } else {
            for _ in 0..(live - target_pages) {
                let page = self.hosts[h].pages.pop().expect("live count checked");
                self.hosts[h].tier.free(page);
            }
        }

        // 3. Pull spilled pages back in if capacity opened up.
        self.reload_ssd(h, now);

        // 4. Hand back lease the demand no longer needs.
        let granted = self.hosts[h].granted_slabs;
        if desired_slabs < granted {
            let pool_used_bytes = self.hosts[h].tier.node_usage(POOL_NODE).0 * self.cfg.page_bytes;
            let keep = desired_slabs.max(pool_used_bytes.div_ceil(slab_bytes));
            if keep < granted {
                self.hosts[h]
                    .tier
                    .shrink_node(POOL_NODE, keep * slab_bytes, now)
                    .expect("kept capacity covers resident pages");
                self.hosts[h].granted_slabs = keep;
                if !self.manager.is_offline() {
                    let grants = self.manager.release(hid, granted - keep, now);
                    self.apply_grants(&grants, now);
                }
            }
        }
        deferred
    }

    /// Drains a revocation victim through the tier migration path.
    fn process_revocation(
        &mut self,
        notice: RevocationNotice,
        now: SimTime,
    ) -> Option<(HostId, u64, SimTime)> {
        let h = notice.host.0;
        let take = notice.slabs.min(self.hosts[h].granted_slabs);
        if take == 0 {
            return None;
        }
        let keep = self.hosts[h].granted_slabs - take;
        let keep_bytes = keep * self.slab_bytes();
        let report = self.hosts[h]
            .tier
            .shrink_node(POOL_NODE, keep_bytes, now)
            .expect("SSD spill is enabled");
        self.hosts[h].granted_slabs = keep;
        Some((notice.host, take, now.max(report.completed_at)))
    }

    /// Applies deferred grants delivered by the manager.
    fn apply_grants(&mut self, grants: &[Grant], now: SimTime) {
        for g in grants {
            let h = g.host.0;
            self.hosts[h].granted_slabs += g.slabs;
            let cap = self.hosts[h].granted_slabs * self.slab_bytes();
            self.hosts[h]
                .tier
                .grow_node(POOL_NODE, cap)
                .expect("pool node exists");
            self.reload_ssd(h, now);
        }
    }

    /// SSD-resident pages of host `h` (all live pages not on a node).
    fn ssd_pages(&self, h: usize) -> u64 {
        let (dram_used, _) = self.hosts[h].tier.node_usage(DRAM_NODE);
        let (pool_used, _) = self.hosts[h].tier.node_usage(POOL_NODE);
        self.hosts[h].pages.len() as u64 - dram_used - pool_used
    }

    /// Loads spilled pages back while any policy node has room.
    fn reload_ssd(&mut self, h: usize, now: SimTime) {
        let spilled = self.ssd_pages(h);
        if spilled == 0 {
            return;
        }
        let (dram_used, dram_cap) = self.hosts[h].tier.node_usage(DRAM_NODE);
        let (pool_used, pool_cap) = self.hosts[h].tier.node_usage(POOL_NODE);
        let room = (dram_cap - dram_used) + (pool_cap - pool_used);
        let mut to_load = spilled.min(room);
        if to_load == 0 {
            return;
        }
        // Newest pages spilled last; walk from the top of the stack.
        let ids: Vec<PageId> = self.hosts[h].pages.iter().rev().copied().collect();
        for page in ids {
            if to_load == 0 {
                break;
            }
            if self.hosts[h].tier.location(page).is_ssd() {
                self.hosts[h]
                    .tier
                    .load_from_ssd(page, now)
                    .expect("room was checked");
                to_load -= 1;
            }
        }
    }

    /// Post-adjustment accounting for one tick.
    fn account(&mut self, now: SimTime) {
        for h in 0..self.hosts.len() {
            self.host_steps += 1;
            if self.ssd_pages(h) > 0 {
                self.hosts[h].violation_steps += 1;
                obs::counter_add("pool/slo_violation_host_steps", 1);
            }
            let ws = self.hosts[h].demand.working_set_gib(now);
            if ws > self.hosts[h].static_cap_gib + 1e-9 {
                self.hosts[h].static_violation_steps += 1;
            }
        }
        obs::counter_max("pool/queued_slabs_peak", self.manager.queued_slabs());
    }

    /// The pool expander dies: mass revocation + per-host evacuation.
    fn fire_fault(&mut self, now: SimTime) {
        let _notices = self.manager.revoke_all(now);
        for h in 0..self.hosts.len() {
            let resident_before = self.hosts[h].tier.node_usage(POOL_NODE).0;
            FaultKind::ExpanderOffline { node: POOL_NODE }
                .apply(&mut self.hosts[h].topo)
                .expect("pool node is an expander");
            let report = self.hosts[h]
                .tier
                .evacuate(POOL_NODE, now)
                .expect("SSD spill is enabled");
            debug_assert_eq!(report.total_pages(), resident_before);
            self.evac_pages_moved += report.pages_moved;
            self.evac_pages_to_ssd += report.pages_to_ssd;
            // Anything still on the dead node is stranded data loss.
            self.stranded_pages += self.hosts[h].tier.node_usage(POOL_NODE).0;
            self.hosts[h].granted_slabs = 0;
        }
        self.fault_fired = true;
        obs::counter_add("pool/expander_faults", 1);
    }

    fn into_report(self) -> PoolSimReport {
        let cfg = &self.cfg;
        let dynamic_total_gib = (cfg.hosts as u64 * cfg.local_dram_gib + cfg.pool_gib) as f64;
        let static_total_gib: f64 = self.hosts.iter().map(|h| h.static_cap_gib).sum();
        let violation_steps: u64 = self.hosts.iter().map(|h| h.violation_steps).sum();
        let static_violation_steps: u64 = self.hosts.iter().map(|h| h.static_violation_steps).sum();
        let steps = self.host_steps.max(1) as f64;
        let moments: Vec<(f64, f64)> = self
            .hosts
            .iter()
            .map(|h| h.demand.moments(cfg.horizon, cfg.step))
            .collect();
        let n = moments.len() as f64;
        // Perfect-liquidity pool: the SLO percentile of per-tick
        // aggregate excess over the very traces the run replayed.
        let traces: Vec<Vec<f64>> = self
            .hosts
            .iter()
            .map(|h| h.demand.sampled(cfg.horizon, cfg.step))
            .collect();
        let local = cfg.local_dram_gib as f64;
        let mut aggregate: Vec<f64> = (0..traces[0].len())
            .map(|i| traces.iter().map(|t| (t[i] - local).max(0.0)).sum())
            .collect();
        aggregate.sort_by(|a, b| a.partial_cmp(b).expect("finite demand"));
        let ideal_pool_gib = cxl_stats::nearest_rank(&aggregate, cfg.slo_percentile);
        let stats = self.manager.stats().clone();
        // Idle latencies from the pristine host topology: what the
        // switch hop costs every pooled access.
        let pooled = Topology::pooled_host(cfg.local_dram_gib, cfg.pool_gib, cfg.switch_hop_ns);
        let direct = Topology::pooled_host(cfg.local_dram_gib, cfg.pool_gib, 0.0);
        let mix = AccessMix::read_only();
        let pool_idle_read_ns =
            MemSystem::new(&pooled).idle_latency_ns(SocketId(0), POOL_NODE, mix);
        let direct_idle_read_ns =
            MemSystem::new(&direct).idle_latency_ns(SocketId(0), POOL_NODE, mix);
        PoolSimReport {
            hosts: cfg.hosts,
            local_dram_gib: cfg.local_dram_gib,
            pool_gib: cfg.pool_gib,
            dynamic_total_gib,
            static_total_gib,
            capacity_saving: 1.0 - dynamic_total_gib / static_total_gib,
            dynamic_violation_frac: violation_steps as f64 / steps,
            static_violation_frac: static_violation_steps as f64 / steps,
            host_steps: self.host_steps,
            mean_wait_ms: stats.mean_wait_ns() / 1e6,
            max_wait_ms: stats.max_wait_ns as f64 / 1e6,
            peak_pool_used_gib: (stats.peak_used_slabs * cfg.slab_gib) as f64,
            stats,
            evac_pages_moved: self.evac_pages_moved,
            evac_pages_to_ssd: self.evac_pages_to_ssd,
            stranded_pages: self.stranded_pages,
            fault_fired: self.fault_fired,
            ideal_pool_gib,
            demand_mean_gib: moments.iter().map(|(m, _)| m).sum::<f64>() / n,
            demand_std_gib: moments.iter().map(|(_, s)| s).sum::<f64>() / n,
            pool_idle_read_ns,
            direct_idle_read_ns,
        }
    }
}

/// Runs one pooling simulation to completion.
pub fn run(cfg: &PoolSimConfig) -> PoolSimReport {
    let step = cfg.step;
    let horizon = cfg.horizon;
    let mut eng = Engine::new(PoolState::new(cfg));
    if let Some(at) = cfg.fault_at {
        eng.schedule_at(at, move |e| {
            let now = e.now();
            e.state_mut().fire_fault(now);
        });
    }
    eng.schedule_at(SimTime::ZERO, move |e| {
        step_once(e, step, horizon);
    });
    eng.run_until(horizon);
    eng.into_state().into_report()
}

/// One tick: advance every host, schedule deferred lease returns, and
/// re-arm the next tick while inside the horizon.
fn step_once(eng: &mut Engine<PoolState>, step: SimTime, horizon: SimTime) {
    let now = eng.now();
    let deferred = {
        let st = eng.state_mut();
        let mut d = Vec::new();
        for h in 0..st.hosts.len() {
            d.extend(st.host_tick(h, now));
        }
        st.account(now);
        d
    };
    for (host, slabs, ready_at) in deferred {
        eng.schedule_at(ready_at.max(now), move |e| {
            let t = e.now();
            let st = e.state_mut();
            if st.manager.is_offline() {
                return;
            }
            let grants = st.manager.release(host, slabs, t);
            st.apply_grants(&grants, t);
        });
    }
    let next = now + step;
    if next < horizon {
        eng.schedule_at(next, move |e| step_once(e, step, horizon));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_is_deterministic() {
        let cfg = PoolSimConfig::smoke();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a, b, "identical configs must give identical reports");
        assert_eq!(a.host_steps, 4 * 300);
    }

    #[test]
    fn bursty_demand_exercises_the_pool() {
        let r = run(&PoolSimConfig::smoke());
        assert!(r.stats.grants + r.stats.partial_grants > 0, "{r:?}");
        assert!(r.peak_pool_used_gib > 0.0);
        assert!((0.0..=1.0).contains(&r.dynamic_violation_frac));
        assert!(r.demand_std_gib > 0.0);
        // The switch hop is visible end-to-end in the perf model.
        assert!(
            (r.pool_idle_read_ns - r.direct_idle_read_ns - 70.0).abs() < 1e-9,
            "pool {} vs direct {}",
            r.pool_idle_read_ns,
            r.direct_idle_read_ns
        );
    }

    #[test]
    fn dynamic_pooling_beats_static_provisioning() {
        let r = run(&PoolSimConfig::default());
        assert!(
            r.dynamic_total_gib < r.static_total_gib,
            "pooling must install less memory: {} vs {}",
            r.dynamic_total_gib,
            r.static_total_gib
        );
        assert!(r.capacity_saving > 0.0);
        assert!(
            r.dynamic_violation_frac <= r.static_violation_frac + 0.01,
            "pooling must hold the SLO: dyn {} vs static {}",
            r.dynamic_violation_frac,
            r.static_violation_frac
        );
    }

    #[test]
    fn expander_fault_revokes_everything_without_stranding_pages() {
        let cfg = PoolSimConfig {
            fault_at: Some(SimTime::from_secs(15)),
            ..PoolSimConfig::smoke()
        };
        let r = run(&cfg);
        assert!(r.fault_fired);
        assert_eq!(r.stranded_pages, 0, "no page may stay on the dead node");
        assert!(r.stats.mass_revocations == 1);
        assert!(
            r.evac_pages_moved + r.evac_pages_to_ssd > 0,
            "the fault should have caught resident pooled pages"
        );
    }

    #[test]
    fn lease_waits_are_recorded_when_the_pool_is_tight() {
        // A deliberately undersized pool forces queuing + revocation.
        let cfg = PoolSimConfig {
            pool_gib: 64,
            ..PoolSimConfig::smoke()
        };
        let r = run(&cfg);
        assert!(r.stats.queued_requests > 0, "{r:?}");
        assert!(r.stats.revocations > 0);
        assert!(r.stats.deferred_grants > 0);
        assert!(r.max_wait_ms >= r.mean_wait_ms);
    }
}
