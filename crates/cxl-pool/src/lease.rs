//! Lease identity and bookkeeping for pooled capacity.
//!
//! Each host holds at most one lease against the pool; the lease grows
//! and shrinks as the pool manager grants, reclaims, and revokes
//! capacity. Keeping a single mutable lease per host mirrors how the
//! host side consumes it — one far-memory NUMA node whose capacity is
//! resized — while the pool side tracks the backing extents per lease
//! in [`crate::PoolAddressSpace`].

use serde::Serialize;

/// Identifier of a lease in the pool manager. One per host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct LeaseId(pub u64);

/// Identifier of a simulated host attached to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize)]
pub struct HostId(pub usize);

impl HostId {
    /// The lease a host's capacity is booked under (1:1 mapping).
    pub fn lease(&self) -> LeaseId {
        LeaseId(self.0 as u64)
    }
}

/// Mutable per-host lease record kept by the pool manager.
#[derive(Debug, Clone, Serialize)]
pub struct Lease {
    /// Owning host.
    pub host: HostId,
    /// Slabs currently granted.
    pub granted_slabs: u64,
    /// Slabs the host asked for but has not (yet) been granted.
    pub pending_slabs: u64,
    /// Cumulative slabs ever granted to this lease.
    pub total_granted_slabs: u64,
    /// Cumulative slabs revoked from this lease by the manager.
    pub total_revoked_slabs: u64,
}

impl Lease {
    /// A fresh, empty lease for `host`.
    pub fn new(host: HostId) -> Self {
        Self {
            host,
            granted_slabs: 0,
            pending_slabs: 0,
            total_granted_slabs: 0,
            total_revoked_slabs: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_maps_to_stable_lease_id() {
        assert_eq!(HostId(0).lease(), LeaseId(0));
        assert_eq!(HostId(7).lease(), LeaseId(7));
        let l = Lease::new(HostId(3));
        assert_eq!(l.host, HostId(3));
        assert_eq!(l.granted_slabs, 0);
    }
}
