//! Time-varying per-host memory demand.
//!
//! Each host runs a VM/container mix whose working set alternates
//! between a steady base (long exponentially-distributed gaps) and
//! bursts (shorter exponential durations) of randomly drawn amplitude —
//! the bursty, weakly-correlated demand that makes pooling pay off in
//! the paper's §7.1 TCO argument. Demand is derived from the
//! `cxl-cost` revenue model's geometry: a host sells `vcpus` vCPUs at
//! `gib_per_vcpu` GiB each, and the working set is the memory behind
//! the currently active vCPUs.

use cxl_sim::SimTime;
use cxl_stats::dist::Exponential;
use cxl_stats::rng::stream_rng;
use rand::Rng;
use serde::Serialize;

/// Parameters of one host's demand process.
#[derive(Debug, Clone, Serialize)]
pub struct DemandConfig {
    /// vCPUs the host sells (see `cxl_cost::RevenueModel::vcpus`).
    pub vcpus: u32,
    /// Memory behind each active vCPU, GiB.
    pub gib_per_vcpu: f64,
    /// Fraction of vCPUs active outside bursts.
    pub base_util: f64,
    /// Smallest extra utilization a burst adds.
    pub burst_extra_min: f64,
    /// Largest extra utilization a burst adds (total is clamped to 1).
    pub burst_extra_max: f64,
    /// Mean burst duration, seconds (exponential).
    pub mean_burst_s: f64,
    /// Mean gap between bursts, seconds (exponential).
    pub mean_gap_s: f64,
}

impl Default for DemandConfig {
    fn default() -> Self {
        // A 128-vCPU host at 4 GiB/vCPU (the paper's §6 example VM
        // geometry): 230 GiB base working set, bursts to 360–500 GiB.
        Self {
            vcpus: 128,
            gib_per_vcpu: 4.0,
            base_util: 0.45,
            burst_extra_min: 0.25,
            burst_extra_max: 0.55,
            mean_burst_s: 3.0,
            mean_gap_s: 20.0,
        }
    }
}

impl DemandConfig {
    /// Working set at `util` fraction of vCPUs active, GiB.
    fn working_set_gib(&self, util: f64) -> f64 {
        self.vcpus as f64 * util.clamp(0.0, 1.0) * self.gib_per_vcpu
    }
}

/// A pre-generated, piecewise-constant working-set trace for one host.
#[derive(Debug, Clone, Serialize)]
pub struct DemandProcess {
    /// `(start, working set GiB)` segments sorted by start time; each
    /// value holds until the next segment (the last until the horizon).
    segments: Vec<(SimTime, f64)>,
}

impl DemandProcess {
    /// Generates a trace from `cfg` out to `horizon`. All randomness
    /// comes from `stream_rng(seed, label)`, so equal `(cfg, seed,
    /// label)` gives a bit-identical trace regardless of thread count.
    pub fn generate(cfg: &DemandConfig, seed: u64, label: &str, horizon: SimTime) -> Self {
        assert!(
            cfg.burst_extra_min <= cfg.burst_extra_max,
            "burst amplitude range is inverted"
        );
        assert!(
            cfg.mean_burst_s > 0.0 && cfg.mean_gap_s > 0.0,
            "burst/gap means must be positive"
        );
        let mut rng = stream_rng(seed, label);
        let gap = Exponential::new(1.0 / cfg.mean_gap_s);
        let burst = Exponential::new(1.0 / cfg.mean_burst_s);
        let base_ws = cfg.working_set_gib(cfg.base_util);
        let mut segments = vec![(SimTime::ZERO, base_ws)];
        let mut t = 0.0f64;
        let horizon_s = horizon.as_secs_f64();
        loop {
            t += gap.sample(&mut rng);
            if t >= horizon_s {
                break;
            }
            let extra = if cfg.burst_extra_max > cfg.burst_extra_min {
                rng.gen_range(cfg.burst_extra_min..cfg.burst_extra_max)
            } else {
                cfg.burst_extra_min
            };
            segments.push((
                SimTime::from_secs_f64(t),
                cfg.working_set_gib(cfg.base_util + extra),
            ));
            t += burst.sample(&mut rng);
            if t >= horizon_s {
                break;
            }
            segments.push((SimTime::from_secs_f64(t), base_ws));
        }
        Self { segments }
    }

    /// Working set at time `t`, GiB.
    pub fn working_set_gib(&self, t: SimTime) -> f64 {
        match self.segments.binary_search_by(|(s, _)| s.cmp(&t)) {
            Ok(i) => self.segments[i].1,
            Err(0) => self.segments[0].1,
            Err(i) => self.segments[i - 1].1,
        }
    }

    /// Number of demand segments (bursts appear as two edges each).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The trace sampled every `step` over `[0, horizon)`, GiB.
    pub fn sampled(&self, horizon: SimTime, step: SimTime) -> Vec<f64> {
        assert!(step > SimTime::ZERO, "sampling step must be positive");
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        while t < horizon {
            out.push(self.working_set_gib(t));
            t += step;
        }
        out
    }

    /// Mean and standard deviation of the sampled trace, GiB — the
    /// moments to hand `cxl_cost::PoolingConfig` for a like-for-like
    /// static sizing comparison.
    pub fn moments(&self, horizon: SimTime, step: SimTime) -> (f64, f64) {
        let samples = self.sampled(horizon, step);
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    /// Nearest-rank percentile of the sampled trace, GiB — the per-host
    /// DRAM a static (no-pool) deployment installs at a given SLO.
    pub fn percentile(&self, horizon: SimTime, step: SimTime, p: f64) -> f64 {
        let mut samples = self.sampled(horizon, step);
        samples.sort_by(|a, b| a.partial_cmp(b).expect("working sets are finite"));
        cxl_stats::nearest_rank(&samples, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn horizon() -> SimTime {
        SimTime::from_secs(120)
    }

    #[test]
    fn trace_is_deterministic_per_seed_and_label() {
        let cfg = DemandConfig::default();
        let a = DemandProcess::generate(&cfg, 42, "host0", horizon());
        let b = DemandProcess::generate(&cfg, 42, "host0", horizon());
        let c = DemandProcess::generate(&cfg, 42, "host1", horizon());
        assert_eq!(a.segments, b.segments);
        assert_ne!(
            a.segments, c.segments,
            "different labels must draw different traces"
        );
    }

    #[test]
    fn trace_alternates_base_and_burst() {
        let cfg = DemandConfig::default();
        let p = DemandProcess::generate(&cfg, 7, "host0", horizon());
        assert!(p.segment_count() > 3, "120 s should see several bursts");
        let base = cfg.working_set_gib(cfg.base_util);
        let burst_floor = cfg.working_set_gib(cfg.base_util + cfg.burst_extra_min);
        for (i, (_, ws)) in p.segments.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(*ws, base);
            } else {
                assert!(*ws >= burst_floor - 1e-9 && *ws <= cfg.vcpus as f64 * cfg.gib_per_vcpu);
            }
        }
    }

    #[test]
    fn lookup_matches_segments() {
        let cfg = DemandConfig::default();
        let p = DemandProcess::generate(&cfg, 7, "host0", horizon());
        assert_eq!(p.working_set_gib(SimTime::ZERO), p.segments[0].1);
        let (start, ws) = p.segments[1];
        assert_eq!(p.working_set_gib(start), ws);
        assert_eq!(
            p.working_set_gib(start.saturating_sub(SimTime::from_ns(1))),
            p.segments[0].1
        );
    }

    #[test]
    fn percentile_sits_between_base_and_peak() {
        let cfg = DemandConfig::default();
        let p = DemandProcess::generate(&cfg, 11, "host0", horizon());
        let step = SimTime::from_ms(100);
        let p50 = p.percentile(horizon(), step, 0.50);
        let p99 = p.percentile(horizon(), step, 0.99);
        let base = cfg.working_set_gib(cfg.base_util);
        assert!(p50 >= base - 1e-9);
        assert!(p99 >= p50);
        assert!(p99 <= cfg.vcpus as f64 * cfg.gib_per_vcpu);
        let (mean, std) = p.moments(horizon(), step);
        assert!(mean >= base && std > 0.0, "bursts add mass and spread");
    }
}
