#![warn(missing_docs)]

//! Dynamic multi-host CXL memory pooling (§7.1 projection).
//!
//! The paper's cost argument (§6–§7) sizes a *static* pool with a
//! Monte-Carlo quantile study (`cxl-cost::pooling`): assume perfect
//! liquidity, install the p99 of aggregate demand, split the saving.
//! This crate supplies the missing dynamics: a discrete-event control
//! plane in which a pool manager owns switch-attached expander capacity
//! and N simulated hosts lease it as their demand moves.
//!
//! - [`PoolManager`] arbitrates a slab-granular address space
//!   ([`PoolAddressSpace`]): grants what is free, queues shortfalls
//!   FIFO, revokes capacity above fair share from the largest holders,
//!   and models fragmentation/compaction explicitly.
//! - [`DemandProcess`] drives each host with bursty, exponentially
//!   distributed demand derived from the `cxl-cost` revenue geometry
//!   (vCPUs × GiB/vCPU).
//! - [`sim::run`] wires it together on `cxl-sim`: leased capacity
//!   appears to each host's `cxl-tier` manager as a far NUMA node
//!   behind a CXL 2.0 switch (latency from `cxl-perf`, including the
//!   switch hop), revocations drain through the tier migration path,
//!   and a `cxl-fault` expander failure mass-revokes the whole pool
//!   with graceful degradation to local DRAM + SSD.
//!
//! The headline comparison — dynamic pooling installs less memory than
//! per-host static provisioning at the same SLO — is exercised by the
//! `pool_dynamics` benchmark in `cxl-bench`.

pub mod address;
pub mod demand;
pub mod fleet;
pub mod lease;
pub mod manager;
pub mod sim;

pub use address::{Extent, PoolAddressSpace};
pub use demand::{DemandConfig, DemandProcess};
pub use fleet::{FleetConfig, FleetHost, FleetPlan, FleetReport, HostSpec, WorkloadClass};
pub use lease::{HostId, Lease, LeaseId};
pub use manager::{Grant, GrantOutcome, PoolManager, PoolStats, RequestResponse, RevocationNotice};
pub use sim::{run, PoolSimConfig, PoolSimReport, DRAM_NODE, POOL_NODE};
