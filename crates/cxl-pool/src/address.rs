//! The pool's physical address space: slab-granular extent allocation,
//! fragmentation accounting, and compaction.
//!
//! A CXL 2.0 pool device carves its capacity into fixed-size slabs
//! (device-level interleave granules) and maps contiguous *extents* of
//! slabs into host decoders. Hosts lease and return capacity at
//! different times, so the address space fragments: a request may be
//! satisfiable in total slabs yet need several discontiguous extents
//! (consuming extra decoder entries), and compaction — migrating live
//! slabs downward to merge free space — costs data movement. Both
//! effects are modeled explicitly here rather than assumed away.

use serde::Serialize;

use crate::lease::LeaseId;

/// A contiguous run of slabs in the pool address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Extent {
    /// First slab index.
    pub start: u64,
    /// Run length in slabs.
    pub len: u64,
}

impl Extent {
    /// One-past-the-end slab index.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

/// Slab-granular extent allocator over the pool address space.
///
/// Allocations are first-fit: each request walks the free gaps in
/// address order and carves extents until the request is covered, so a
/// request larger than every gap is satisfied with multiple extents
/// (a *fragmented* grant). [`PoolAddressSpace::fragmentation`] reports
/// `1 − largest_free_run / free_slabs`, and [`PoolAddressSpace::defrag`]
/// compacts live extents downward, returning how many slabs moved.
#[derive(Debug, Clone)]
pub struct PoolAddressSpace {
    total_slabs: u64,
    /// Allocated extents with owners, sorted by `start`, non-overlapping.
    allocs: Vec<(Extent, LeaseId)>,
}

impl PoolAddressSpace {
    /// An empty address space of `total_slabs` slabs.
    pub fn new(total_slabs: u64) -> Self {
        Self {
            total_slabs,
            allocs: Vec::new(),
        }
    }

    /// Total capacity in slabs.
    pub fn total_slabs(&self) -> u64 {
        self.total_slabs
    }

    /// Currently mapped slabs.
    pub fn used_slabs(&self) -> u64 {
        self.allocs.iter().map(|(e, _)| e.len).sum()
    }

    /// Unmapped slabs.
    pub fn free_slabs(&self) -> u64 {
        self.total_slabs - self.used_slabs()
    }

    /// Free gaps in address order.
    pub fn free_runs(&self) -> Vec<Extent> {
        let mut runs = Vec::new();
        let mut cursor = 0;
        for (e, _) in &self.allocs {
            if e.start > cursor {
                runs.push(Extent {
                    start: cursor,
                    len: e.start - cursor,
                });
            }
            cursor = e.end();
        }
        if cursor < self.total_slabs {
            runs.push(Extent {
                start: cursor,
                len: self.total_slabs - cursor,
            });
        }
        runs
    }

    /// Length of the largest free gap, in slabs.
    pub fn largest_free_run(&self) -> u64 {
        self.free_runs().iter().map(|e| e.len).max().unwrap_or(0)
    }

    /// External fragmentation in `[0, 1]`: `1 − largest_free_run /
    /// free_slabs` (0 when nothing is free, or when all free space is
    /// one run).
    pub fn fragmentation(&self) -> f64 {
        let free = self.free_slabs();
        if free == 0 {
            return 0.0;
        }
        1.0 - self.largest_free_run() as f64 / free as f64
    }

    /// Allocates up to `slabs` slabs for `lease`, first-fit over the
    /// free gaps, and returns the extents carved (empty when the space
    /// is full). The sum of the returned extent lengths is
    /// `min(slabs, free_slabs)`.
    pub fn alloc(&mut self, slabs: u64, lease: LeaseId) -> Vec<Extent> {
        let mut remaining = slabs.min(self.free_slabs());
        let mut carved = Vec::new();
        while remaining > 0 {
            // Recompute gaps each round: the previous carve changed them.
            let gap = self.free_runs()[0];
            let take = gap.len.min(remaining);
            let ext = Extent {
                start: gap.start,
                len: take,
            };
            let pos = self
                .allocs
                .iter()
                .position(|(e, _)| e.start > ext.start)
                .unwrap_or(self.allocs.len());
            self.allocs.insert(pos, (ext, lease));
            remaining -= take;
            carved.push(ext);
        }
        self.coalesce();
        carved
    }

    /// Releases `slabs` slabs of `lease`, trimming its extents from the
    /// highest address downward (the most recently carved ends first).
    /// Returns the number of slabs actually released.
    pub fn release(&mut self, lease: LeaseId, slabs: u64) -> u64 {
        let mut remaining = slabs;
        for i in (0..self.allocs.len()).rev() {
            if remaining == 0 {
                break;
            }
            if self.allocs[i].1 != lease {
                continue;
            }
            let take = self.allocs[i].0.len.min(remaining);
            self.allocs[i].0.len -= take;
            remaining -= take;
        }
        self.allocs.retain(|(e, _)| e.len > 0);
        slabs - remaining
    }

    /// Releases every slab of `lease`, returning how many were mapped.
    pub fn release_all(&mut self, lease: LeaseId) -> u64 {
        self.release(lease, self.total_slabs)
    }

    /// Slabs currently mapped for `lease`.
    pub fn lease_slabs(&self, lease: LeaseId) -> u64 {
        self.allocs
            .iter()
            .filter(|(_, l)| *l == lease)
            .map(|(e, _)| e.len)
            .sum()
    }

    /// Number of extents backing `lease` (1 for an unfragmented lease).
    pub fn lease_extents(&self, lease: LeaseId) -> usize {
        self.allocs.iter().filter(|(_, l)| *l == lease).count()
    }

    /// Compacts all live extents to the bottom of the address space
    /// (preserving address order, merging same-lease neighbours) so the
    /// free space becomes one contiguous run. Returns the number of
    /// slabs whose address changed — the data-movement cost the control
    /// plane must charge for.
    pub fn defrag(&mut self) -> u64 {
        let mut moved = 0;
        let mut cursor = 0;
        for (e, _) in self.allocs.iter_mut() {
            if e.start != cursor {
                moved += e.len;
                e.start = cursor;
            }
            cursor = e.end();
        }
        self.coalesce();
        moved
    }

    /// Merges adjacent extents owned by the same lease.
    fn coalesce(&mut self) {
        let mut i = 0;
        while i + 1 < self.allocs.len() {
            let (a, la) = self.allocs[i];
            let (b, lb) = self.allocs[i + 1];
            if la == lb && a.end() == b.start {
                self.allocs[i].0.len += b.len;
                self.allocs.remove(i + 1);
            } else {
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L1: LeaseId = LeaseId(1);
    const L2: LeaseId = LeaseId(2);
    const L3: LeaseId = LeaseId(3);

    #[test]
    fn alloc_free_roundtrip() {
        let mut s = PoolAddressSpace::new(16);
        let e1 = s.alloc(6, L1);
        assert_eq!(e1, vec![Extent { start: 0, len: 6 }]);
        let e2 = s.alloc(4, L2);
        assert_eq!(e2, vec![Extent { start: 6, len: 4 }]);
        assert_eq!(s.used_slabs(), 10);
        assert_eq!(s.release_all(L1), 6);
        assert_eq!(s.free_slabs(), 12);
        assert_eq!(s.lease_slabs(L2), 4);
    }

    #[test]
    fn fragmented_grant_spans_multiple_extents() {
        let mut s = PoolAddressSpace::new(16);
        s.alloc(6, L1); // [0,6)
        s.alloc(4, L2); // [6,10)
        s.release_all(L1); // free: [0,6) + [10,16)
                           // 10 slabs free but the largest run is 6: the grant fragments.
        let e3 = s.alloc(9, L3);
        assert_eq!(e3.len(), 2);
        assert_eq!(s.lease_extents(L3), 2);
        assert_eq!(s.lease_slabs(L3), 9);
        assert!(s.fragmentation() == 0.0 || s.free_slabs() == 1);
    }

    #[test]
    fn fragmentation_of_degenerate_spaces_is_zero() {
        // Zero free slabs: the `1 − largest/free` denominator is 0 and
        // the accessor must return 0.0, not NaN.
        let mut s = PoolAddressSpace::new(4);
        s.alloc(4, L1);
        assert_eq!(s.free_slabs(), 0);
        assert_eq!(s.fragmentation(), 0.0);
        // All-free space is one run: also exactly 0.
        s.release_all(L1);
        assert_eq!(s.fragmentation(), 0.0);
    }

    #[test]
    fn fragmentation_metric_and_defrag() {
        let mut s = PoolAddressSpace::new(16);
        s.alloc(4, L1); // [0,4)
        s.alloc(4, L2); // [4,8)
        s.alloc(4, L3); // [8,12)
        s.release_all(L2); // free: [4,8) + [12,16)
        assert_eq!(s.free_slabs(), 8);
        assert_eq!(s.largest_free_run(), 4);
        assert!((s.fragmentation() - 0.5).abs() < 1e-12);
        // Compaction moves L3 down by 4 slabs and merges the free space.
        let moved = s.defrag();
        assert_eq!(moved, 4);
        assert_eq!(s.largest_free_run(), 8);
        assert_eq!(s.fragmentation(), 0.0);
        assert_eq!(s.lease_slabs(L1), 4);
        assert_eq!(s.lease_slabs(L3), 4);
    }

    #[test]
    fn release_trims_from_the_top() {
        let mut s = PoolAddressSpace::new(16);
        s.alloc(4, L1); // [0,4)
        s.alloc(4, L2); // [4,8)
        s.alloc(4, L1); // [8,12): L1 now has two extents
        assert_eq!(s.lease_extents(L1), 2);
        // Trimming 6 slabs removes the top extent and 2 from the bottom.
        assert_eq!(s.release(L1, 6), 6);
        assert_eq!(s.lease_slabs(L1), 2);
        assert_eq!(s.lease_extents(L1), 1);
        // Over-release is clamped.
        assert_eq!(s.release(L1, 100), 2);
        assert_eq!(s.lease_slabs(L1), 0);
    }

    #[test]
    fn oversized_alloc_is_clamped_to_free_space() {
        let mut s = PoolAddressSpace::new(8);
        s.alloc(6, L1);
        let e = s.alloc(10, L2);
        assert_eq!(e.iter().map(|x| x.len).sum::<u64>(), 2);
        assert_eq!(s.free_slabs(), 0);
        assert_eq!(s.fragmentation(), 0.0);
        assert!(s.alloc(1, L3).is_empty());
    }

    #[test]
    fn same_lease_extents_coalesce() {
        let mut s = PoolAddressSpace::new(8);
        s.alloc(2, L1);
        s.alloc(2, L1);
        assert_eq!(s.lease_extents(L1), 1);
        assert_eq!(s.lease_slabs(L1), 4);
    }
}
