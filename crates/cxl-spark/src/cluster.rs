//! Cluster configurations for the §4.2 comparisons.

use serde::{Deserialize, Serialize};

use cxl_perf::PerfTuning;

/// How executor memory is placed on each server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Placement {
    /// All executor memory in local DRAM.
    MmemOnly,
    /// N:M tiered interleave between DRAM and the CXL expanders.
    Interleave {
        /// Pages per cycle to DRAM.
        n: u32,
        /// Pages per cycle to CXL.
        m: u32,
    },
    /// Memory restricted to `mem_fraction` of the full allocation; the
    /// shortfall spills shuffle data to SSD (Table 1's `MMEM-SSD-x`).
    SpillToSsd {
        /// Fraction of the nominal 1.2 TB kept in memory (0.8 or 0.6).
        mem_fraction: f64,
    },
    /// 1:1 start with hot-page-selection migration (the paper's
    /// Hot-Promote). §4.2.2 finds the kernel thrashing on Spark's
    /// low-locality shuffle traffic.
    HotPromote {
        /// Kernel promotion rate limit in GB/s (converted churn traffic).
        promote_rate_gbps: f64,
    },
}

impl Placement {
    /// Fraction of executor bytes on DRAM under this placement.
    pub fn dram_fraction(&self) -> f64 {
        match *self {
            Placement::MmemOnly | Placement::SpillToSsd { .. } => 1.0,
            Placement::Interleave { n, m } => n as f64 / (n + m) as f64,
            // Promotion pulls the active shuffle window toward DRAM, but
            // streamed-once data keeps half the footprint on CXL.
            Placement::HotPromote { .. } => 0.75,
        }
    }

    /// The paper's label for this configuration.
    pub fn label(&self) -> String {
        match *self {
            Placement::MmemOnly => "MMEM".to_string(),
            Placement::Interleave { n, m } => format!("{n}:{m}"),
            Placement::SpillToSsd { mem_fraction } => {
                format!("MMEM-SSD-{:.1}", 1.0 - mem_fraction)
            }
            Placement::HotPromote { .. } => "Hot-Promote".to_string(),
        }
    }
}

/// A Spark cluster: servers, executors, and cost constants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of servers (3 for the baseline, 2 for the CXL configs).
    pub servers: usize,
    /// Total executors across the cluster (150 in the paper).
    pub executors: usize,
    /// Per-core streaming throughput when memory is unconstrained, GB/s
    /// (CPU-side processing rate of scan/shuffle bytes).
    pub core_stream_gbps: f64,
    /// SSD bandwidth per server available to spill, GB/s (sequential
    /// bandwidth derated for concurrent-executor access).
    pub ssd_spill_gbps: f64,
    /// Total spilled bytes per query at `mem_fraction = 0.8`, GB
    /// (§4.2.1 reports ≈320 GB; scaled per query by shuffle share).
    pub spill_base_gb: f64,
    /// Memory placement.
    pub placement: Placement,
    /// Platform tuning (RSF ceiling, knees); defaults to the paper's
    /// Sapphire Rapids platform.
    pub tuning: PerfTuning,
}

impl ClusterConfig {
    /// The paper's three-server MMEM baseline.
    pub fn baseline() -> Self {
        Self {
            servers: 3,
            executors: 150,
            core_stream_gbps: 2.0,
            ssd_spill_gbps: 1.6,
            spill_base_gb: 320.0,
            placement: Placement::MmemOnly,
            tuning: PerfTuning::paper(),
        }
    }

    /// A two-server CXL cluster with the given interleave ratio.
    pub fn cxl_interleave(n: u32, m: u32) -> Self {
        Self {
            servers: 2,
            placement: Placement::Interleave { n, m },
            ..Self::baseline()
        }
    }

    /// Three servers with memory restricted to `mem_fraction`.
    pub fn spill(mem_fraction: f64) -> Self {
        Self {
            placement: Placement::SpillToSsd { mem_fraction },
            ..Self::baseline()
        }
    }

    /// Two-server Hot-Promote configuration.
    pub fn hot_promote() -> Self {
        Self {
            servers: 2,
            placement: Placement::HotPromote {
                promote_rate_gbps: 3.0,
            },
            ..Self::baseline()
        }
    }

    /// Executors per server (even split).
    pub fn executors_per_server(&self) -> usize {
        self.executors.div_ceil(self.servers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table_1() {
        assert_eq!(Placement::MmemOnly.label(), "MMEM");
        assert_eq!(Placement::Interleave { n: 3, m: 1 }.label(), "3:1");
        assert_eq!(
            Placement::SpillToSsd { mem_fraction: 0.8 }.label(),
            "MMEM-SSD-0.2"
        );
        assert_eq!(
            Placement::HotPromote {
                promote_rate_gbps: 1.0
            }
            .label(),
            "Hot-Promote"
        );
    }

    #[test]
    fn dram_fractions() {
        assert_eq!(Placement::MmemOnly.dram_fraction(), 1.0);
        assert_eq!(Placement::Interleave { n: 1, m: 1 }.dram_fraction(), 0.5);
        assert_eq!(Placement::Interleave { n: 1, m: 3 }.dram_fraction(), 0.25);
    }

    #[test]
    fn cluster_presets() {
        assert_eq!(ClusterConfig::baseline().servers, 3);
        assert_eq!(ClusterConfig::cxl_interleave(1, 1).servers, 2);
        assert_eq!(ClusterConfig::baseline().executors_per_server(), 50);
        assert_eq!(
            ClusterConfig::cxl_interleave(1, 1).executors_per_server(),
            75
        );
    }
}
