//! Typed errors for the Spark simulation.
//!
//! The runner used to `expect`/`assert!` on topology shape (every socket
//! has DRAM, CXL present when the placement stripes onto it). With
//! user-built and fault-degraded topologies those are ordinary runtime
//! conditions, so they surface as [`SparkError`] values — the same
//! convention as `TierError`/`PerfError`. The panicking entry points
//! remain as thin wrappers for the paper-testbed configurations.

use cxl_topology::SocketId;

/// A recoverable Spark-simulation setup failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparkError {
    /// A socket exposes no DRAM node, so executor heaps cannot anchor
    /// their DRAM stripe there.
    MissingDramNode(SocketId),
    /// The placement stripes memory onto CXL but the topology has no
    /// expander nodes.
    NoCxlInTopology,
}

impl std::fmt::Display for SparkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparkError::MissingDramNode(s) => {
                write!(f, "socket {} has no DRAM node", s.0)
            }
            SparkError::NoCxlInTopology => {
                write!(f, "placement requires CXL but the topology has none")
            }
        }
    }
}

impl std::error::Error for SparkError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_panic_phrases() {
        assert!(SparkError::MissingDramNode(SocketId(1))
            .to_string()
            .contains("no DRAM node"));
        assert!(SparkError::NoCxlInTopology
            .to_string()
            .contains("placement requires CXL"));
    }
}
