//! Stage-level query execution over the contention-priced memory system.

use serde::Serialize;

use cxl_perf::{AccessMix, FlowSpec, MemSystem};
use cxl_topology::{MemoryTier, NodeId, SncMode, SocketId, Topology};

use crate::cluster::{ClusterConfig, Placement};
use crate::error::SparkError;
use crate::query::{tpch_queries, QueryProfile, StageProfile};

/// Bytes per dependent hash-table access.
const HASH_ACCESS_BYTES: f64 = 64.0;
/// Amortized hint-fault/scanning overhead per 4 KiB under Hot-Promote.
const HOT_PROMOTE_FAULT_NS_PER_4K: f64 = 250.0;
/// Utilization at which the latency seen by reduce-side probes is
/// evaluated when the streaming side saturates a resource. A closed
/// system cannot sit exactly at 100 % utilization; steady state hovers
/// just below the cap with long (but finite) queues.
const LAT_UTIL_CAP: f64 = 0.90;

/// Result of running one query on one cluster configuration.
#[derive(Debug, Clone, Serialize)]
pub struct QueryResult {
    /// Query name.
    pub name: &'static str,
    /// Configuration label (Table 1 style).
    pub config: String,
    /// End-to-end execution time, seconds.
    pub exec_time_s: f64,
    /// Time spent scanning input, seconds.
    pub scan_s: f64,
    /// Time in shuffle writes (including spill writes), seconds.
    pub shuffle_write_s: f64,
    /// Time in shuffle reads (including spill re-reads), seconds.
    pub shuffle_read_s: f64,
    /// Wall time per stage, seconds, in execution order.
    pub stage_times_s: Vec<f64>,
}

impl QueryResult {
    /// Fraction of execution time spent shuffling (Fig. 7(b)).
    pub fn shuffle_fraction(&self) -> f64 {
        if self.exec_time_s == 0.0 {
            return 0.0;
        }
        (self.shuffle_write_s + self.shuffle_read_s) / self.exec_time_s
    }
}

/// Per-socket executor group on one server.
struct Group {
    socket: SocketId,
    cores: f64,
    /// `(node, fraction)` placement stripes.
    stripes: Vec<(NodeId, f64)>,
}

fn build_groups(
    topo: &Topology,
    placement: Placement,
    execs_per_server: usize,
) -> Result<Vec<Group>, SparkError> {
    let nodes = topo.nodes();
    let dram: Vec<NodeId> = nodes
        .iter()
        .filter(|n| n.tier == MemoryTier::LocalDram)
        .map(|n| n.id)
        .collect();
    let cxl: Vec<NodeId> = nodes
        .iter()
        .filter(|n| n.tier == MemoryTier::CxlExpander)
        .map(|n| n.id)
        .collect();
    let f_dram = placement.dram_fraction();
    let cores_per_group = execs_per_server as f64 / topo.sockets.len() as f64;
    topo.sockets
        .iter()
        .map(|s| {
            let own_dram = *dram
                .iter()
                .find(|&&d| nodes[d.0].socket == s.id)
                .ok_or(SparkError::MissingDramNode(s.id))?;
            let mut stripes = vec![(own_dram, f_dram)];
            if f_dram < 1.0 {
                if cxl.is_empty() {
                    return Err(SparkError::NoCxlInTopology);
                }
                let share = (1.0 - f_dram) / cxl.len() as f64;
                for &c in &cxl {
                    stripes.push((c, share));
                }
            }
            Ok(Group {
                socket: s.id,
                cores: cores_per_group,
                stripes,
            })
        })
        .collect()
}

/// Per-stage traffic components on one server.
struct StageLoad {
    scan_gb: f64,
    sw_gb: f64,
    sr_gb: f64,
    hash_gb: f64,
    spill_gb: f64,
}

fn blended_mix(load: &StageLoad) -> AccessMix {
    // Scans are pure reads; shuffle writes are 1:1 (read input, write
    // buckets); shuffle reads are 3:1 (read-mostly with merge output).
    let total = load.scan_gb + load.sw_gb + load.sr_gb;
    if total <= 0.0 {
        return AccessMix::read_only();
    }
    let reads = load.scan_gb + 0.5 * load.sw_gb + 0.75 * load.sr_gb;
    AccessMix::from_read_fraction((reads / total).clamp(0.0, 1.0))
}

/// Builds the migration-churn flows of the Hot-Promote configuration.
fn churn_flows(
    sys: &MemSystem,
    rate_gbps: f64,
    flows: &mut Vec<FlowSpec>,
) -> Result<(), SparkError> {
    let nodes = sys.nodes().to_vec();
    let cxl: Vec<NodeId> = nodes
        .iter()
        .filter(|n| n.tier == MemoryTier::CxlExpander)
        .map(|n| n.id)
        .collect();
    let s0 = sys.sockets()[0];
    let dram0 = nodes
        .iter()
        .find(|n| n.tier == MemoryTier::LocalDram)
        .map(|n| n.id)
        .ok_or(SparkError::MissingDramNode(s0))?;
    for &c in &cxl {
        // Promotions read CXL, demotions write it back: 1:1 on the device.
        flows.push(FlowSpec::new(
            s0,
            c,
            AccessMix::ratio(1, 1),
            rate_gbps / cxl.len() as f64,
        ));
    }
    // The DRAM side of the copies.
    flows.push(FlowSpec::new(s0, dram0, AccessMix::ratio(1, 1), rate_gbps));
    Ok(())
}

/// Computes one stage's wall time on one server, returning
/// `(stage_time_s, scan_s, shuffle_write_s, shuffle_read_s)`.
///
/// Map-side streaming and reduce-side hash probing overlap (Spark runs
/// reduce waves of one shuffle while map waves of the next stream), so
/// the stage time is the maximum of the two, with the probes priced at
/// the latency the streaming side's utilization induces.
fn stage_time(
    sys: &MemSystem,
    groups: &[Group],
    cfg: &ClusterConfig,
    load: &StageLoad,
) -> Result<(f64, f64, f64, f64), SparkError> {
    let n_groups = groups.len() as f64;
    let mix = blended_mix(load);
    let stream_gb_grp = (load.scan_gb + load.sw_gb + load.sr_gb - load.hash_gb) / n_groups;
    let hash_gb_grp = load.hash_gb / n_groups;
    let both = stream_gb_grp > 0.0 && hash_gb_grp > 0.0;

    // Task slots split between the overlapping waves.
    let core_split = if both { 0.5 } else { 1.0 };

    // Pass 1: streaming wave at full CPU demand — find the achievable
    // bandwidth share per group under joint contention.
    let mut flows = Vec::new();
    let mut owners = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        let demand = cfg.core_stream_gbps * g.cores * core_split;
        for &(node, f) in &g.stripes {
            if f > 0.0 && stream_gb_grp > 0.0 {
                flows.push(FlowSpec::new(g.socket, node, mix, demand * f));
                owners.push((gi, f));
            }
        }
    }
    if let Placement::HotPromote { promote_rate_gbps } = cfg.placement {
        churn_flows(sys, promote_rate_gbps, &mut flows)?;
        while owners.len() < flows.len() {
            owners.push((usize::MAX, 0.0));
        }
    }
    let solved = sys.solve(&flows);
    let mut scale = vec![1.0f64; groups.len()];
    for ((out, flow), &(gi, _)) in solved.flows.iter().zip(&flows).zip(&owners) {
        if gi == usize::MAX || flow.offered_gbps <= 0.0 {
            continue;
        }
        scale[gi] = scale[gi].min(out.achieved_gbps / flow.offered_gbps);
    }

    // Pass 2: re-solve with the streaming flows backed off to the
    // steady-state utilization cap; the resulting latencies price the
    // reduce-side probes.
    let mut flows2 = Vec::new();
    let mut owners2 = Vec::new();
    for (gi, g) in groups.iter().enumerate() {
        let demand =
            cfg.core_stream_gbps * g.cores * core_split * (scale[gi] * LAT_UTIL_CAP).min(1.0);
        for &(node, f) in &g.stripes {
            if f > 0.0 && stream_gb_grp > 0.0 {
                flows2.push(FlowSpec::new(g.socket, node, mix, demand * f));
                owners2.push((gi, f));
            }
        }
    }
    if let Placement::HotPromote { promote_rate_gbps } = cfg.placement {
        churn_flows(sys, promote_rate_gbps, &mut flows2)?;
        while owners2.len() < flows2.len() {
            owners2.push((usize::MAX, 0.0));
        }
    }
    let solved2 = sys.solve(&flows2);
    let mut lat_ns: Vec<f64> = groups
        .iter()
        .map(|g| {
            // Idle fallback for stripes without streaming flows.
            g.stripes
                .iter()
                .map(|&(n, f)| f * sys.idle_latency_ns(g.socket, n, mix))
                .sum()
        })
        .collect();
    if stream_gb_grp > 0.0 {
        for l in lat_ns.iter_mut() {
            *l = 0.0;
        }
        for ((out, _flow), &(gi, f)) in solved2.flows.iter().zip(&flows2).zip(&owners2) {
            if gi == usize::MAX {
                continue;
            }
            lat_ns[gi] += f * out.latency_ns;
        }
    }

    // Per-group wave times; the slowest group bounds the stage.
    let mut time_s = vec![0.0f64; groups.len()];
    for (gi, g) in groups.iter().enumerate() {
        let stream_t = if stream_gb_grp > 0.0 {
            let rate = cfg.core_stream_gbps * g.cores * core_split * scale[gi].min(1.0);
            stream_gb_grp / rate.max(1e-9)
        } else {
            0.0
        };
        let hash_t = if hash_gb_grp > 0.0 {
            // GB/s == bytes/ns: cores × 64 B per dependent latency.
            let rate = g.cores * core_split * HASH_ACCESS_BYTES / lat_ns[gi].max(1.0);
            hash_gb_grp / rate.max(1e-9)
        } else {
            0.0
        };
        time_s[gi] = stream_t.max(hash_t);
    }

    let mut stage_s = time_s.iter().cloned().fold(0.0, f64::max);

    // Spill I/O: write then re-read through the server's SSDs.
    let spill_io_s = if load.spill_gb > 0.0 {
        2.0 * load.spill_gb / cfg.ssd_spill_gbps
    } else {
        0.0
    };
    stage_s += spill_io_s;

    // Apportion the stage time to components by their byte-time shares.
    let total_bytes = load.scan_gb + load.sw_gb + load.sr_gb;
    let (scan_share, sw_share, sr_share) = if total_bytes > 0.0 {
        (
            load.scan_gb / total_bytes,
            load.sw_gb / total_bytes,
            load.sr_gb / total_bytes,
        )
    } else {
        (0.0, 0.0, 0.0)
    };
    let compute_s = stage_s - spill_io_s;
    let scan_s = compute_s * scan_share;
    let sw_s = compute_s * sw_share + spill_io_s / 2.0;
    let sr_s = compute_s * sr_share + spill_io_s / 2.0;
    Ok((stage_s, scan_s, sw_s, sr_s))
}

fn hot_promote_overhead_factor() -> f64 {
    1.0 + HOT_PROMOTE_FAULT_NS_PER_4K / 4096.0 / (1.0 / 2.0)
    // 250 ns per 4 KiB at a 2 GB/s per-core stream: 250e-9 s per 4096 B
    // of work that itself takes 4096 B / 2 GB/s = 2.048e-6 s => ~12 %.
}

/// Runs one query on a cluster configuration.
///
/// # Panics
///
/// Panics when the paper-testbed topology cannot host the placement;
/// that cannot happen for the built-in configurations. Use
/// [`try_run_query`] when simulating user-built or fault-degraded
/// topologies.
pub fn run_query(cfg: &ClusterConfig, query: &QueryProfile) -> QueryResult {
    try_run_query(cfg, query).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`run_query`]: topology-shape problems come back as
/// a [`SparkError`] instead of a panic.
pub fn try_run_query(cfg: &ClusterConfig, query: &QueryProfile) -> Result<QueryResult, SparkError> {
    let needs_cxl = matches!(
        cfg.placement,
        Placement::Interleave { .. } | Placement::HotPromote { .. }
    );
    let topo = if needs_cxl {
        Topology::paper_testbed(SncMode::Disabled)
    } else {
        Topology::baseline_server(SncMode::Disabled)
    };
    let sys = MemSystem::with_tuning(&topo, cfg.tuning);
    let groups = build_groups(&topo, cfg.placement, cfg.executors_per_server())?;

    // Spill volume for this query, scaled from the 0.8 anchor.
    let total_spill_gb = match cfg.placement {
        Placement::SpillToSsd { mem_fraction } => {
            let mean_shuffle: f64 = tpch_queries()
                .iter()
                .map(|q| q.total_shuffle_write_gb())
                .sum::<f64>()
                / 4.0;
            cfg.spill_base_gb
                * ((1.0 - mem_fraction) / 0.2)
                * (query.total_shuffle_write_gb() / mean_shuffle)
        }
        _ => 0.0,
    };
    let total_sw = query.total_shuffle_write_gb().max(1e-9);

    let mut exec = 0.0;
    let mut scan_t = 0.0;
    let mut sw_t = 0.0;
    let mut sr_t = 0.0;
    let mut stage_times_s = Vec::with_capacity(query.stages.len());
    for s in &query.stages {
        let load = per_server_load(s, cfg, total_spill_gb, total_sw);
        let (t, sc, sw, sr) = stage_time(&sys, &groups, cfg, &load)?;
        exec += t;
        scan_t += sc;
        sw_t += sw;
        sr_t += sr;
        stage_times_s.push(t);
    }
    if matches!(cfg.placement, Placement::HotPromote { .. }) {
        let f = hot_promote_overhead_factor();
        exec *= f;
        scan_t *= f;
        sw_t *= f;
        sr_t *= f;
        for t in &mut stage_times_s {
            *t *= f;
        }
    }
    Ok(QueryResult {
        name: query.name,
        config: cfg.placement.label(),
        exec_time_s: exec,
        scan_s: scan_t,
        shuffle_write_s: sw_t,
        shuffle_read_s: sr_t,
        stage_times_s,
    })
}

fn per_server_load(
    s: &StageProfile,
    cfg: &ClusterConfig,
    total_spill_gb: f64,
    total_sw_gb: f64,
) -> StageLoad {
    let n = cfg.servers as f64;
    let hash = (s.shuffle_write_gb + s.shuffle_read_gb) * s.hash_fraction;
    let spill = total_spill_gb * (s.shuffle_write_gb / total_sw_gb);
    StageLoad {
        scan_gb: s.scan_gb / n,
        sw_gb: s.shuffle_write_gb / n,
        sr_gb: s.shuffle_read_gb / n,
        hash_gb: hash / n,
        spill_gb: spill / n,
    }
}

/// Runs every paper query on a configuration.
///
/// # Panics
///
/// Panics under the same (impossible-for-built-in-configs) conditions
/// as [`run_query`]; use [`try_run_all`] otherwise.
pub fn run_all(cfg: &ClusterConfig) -> Vec<QueryResult> {
    try_run_all(cfg).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible twin of [`run_all`].
pub fn try_run_all(cfg: &ClusterConfig) -> Result<Vec<QueryResult>, SparkError> {
    tpch_queries()
        .iter()
        .map(|q| try_run_query(cfg, q))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(cfg: &ClusterConfig) -> Vec<f64> {
        run_all(cfg).iter().map(|r| r.exec_time_s).collect()
    }

    #[test]
    fn mmem_baseline_is_fastest() {
        let base = times(&ClusterConfig::baseline());
        for cfg in [
            ClusterConfig::cxl_interleave(3, 1),
            ClusterConfig::cxl_interleave(1, 1),
            ClusterConfig::cxl_interleave(1, 3),
            ClusterConfig::spill(0.8),
            ClusterConfig::spill(0.6),
            ClusterConfig::hot_promote(),
        ] {
            let t = times(&cfg);
            for (b, x) in base.iter().zip(&t) {
                assert!(x > b, "{}: {x} <= baseline {b}", cfg.placement.label());
            }
        }
    }

    #[test]
    fn interleave_slowdowns_in_papers_band() {
        // §4.2.2: 1.4x–9.8x across queries and ratios.
        let base = times(&ClusterConfig::baseline());
        let mut all = Vec::new();
        for (n, m) in [(3, 1), (1, 1), (1, 3)] {
            let t = times(&ClusterConfig::cxl_interleave(n, m));
            for (b, x) in base.iter().zip(&t) {
                all.push(x / b);
            }
        }
        let min = all.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = all.iter().cloned().fold(0.0, f64::max);
        assert!((1.2..=2.5).contains(&min), "min slowdown {min}");
        assert!((4.0..=12.0).contains(&max), "max slowdown {max}");
    }

    #[test]
    fn degradation_grows_with_cxl_share() {
        let t31 = times(&ClusterConfig::cxl_interleave(3, 1));
        let t11 = times(&ClusterConfig::cxl_interleave(1, 1));
        let t13 = times(&ClusterConfig::cxl_interleave(1, 3));
        for i in 0..t31.len() {
            assert!(t31[i] < t11[i]);
            assert!(t11[i] < t13[i]);
        }
    }

    #[test]
    fn interleave_beats_ssd_spill() {
        // §4.2.2: "the interleaving approach remains significantly faster
        // than spilling data to SSDs" (comparing the middle ratio).
        let t11: f64 = times(&ClusterConfig::cxl_interleave(1, 1)).iter().sum();
        let t_ssd6: f64 = times(&ClusterConfig::spill(0.6)).iter().sum();
        assert!(t11 < t_ssd6, "1:1 {t11} vs SSD-0.4 {t_ssd6}");
    }

    #[test]
    fn hot_promote_slowdown_exceeds_34_percent() {
        let base = times(&ClusterConfig::baseline());
        let hp = times(&ClusterConfig::hot_promote());
        let worst = base.iter().zip(&hp).map(|(b, x)| x / b).fold(0.0, f64::max);
        assert!(worst > 1.34, "hot-promote worst slowdown {worst}");
    }

    #[test]
    fn shuffle_dominates_for_shuffle_heavy_queries() {
        for r in run_all(&ClusterConfig::baseline()) {
            let f = r.shuffle_fraction();
            assert!((0.35..=0.95).contains(&f), "{}: shuffle frac {f}", r.name);
        }
        // Spill configurations push the fraction higher (§4.2.2).
        let base_f: f64 = run_all(&ClusterConfig::baseline())
            .iter()
            .map(|r| r.shuffle_fraction())
            .sum();
        let spill_f: f64 = run_all(&ClusterConfig::spill(0.6))
            .iter()
            .map(|r| r.shuffle_fraction())
            .sum();
        assert!(spill_f > base_f);
    }

    #[test]
    fn q9_takes_longest_on_baseline() {
        let rs = run_all(&ClusterConfig::baseline());
        let q9 = rs.iter().find(|r| r.name == "Q9").unwrap();
        for r in &rs {
            if r.name != "Q9" {
                assert!(q9.exec_time_s > r.exec_time_s);
            }
        }
    }

    #[test]
    fn stage_times_sum_to_query_time() {
        let cfg = ClusterConfig::cxl_interleave(1, 1);
        for r in run_all(&cfg) {
            assert!(!r.stage_times_s.is_empty());
            let sum: f64 = r.stage_times_s.iter().sum();
            assert!(
                (sum - r.exec_time_s).abs() < 1e-9,
                "{}: stages {sum} vs total {}",
                r.name,
                r.exec_time_s
            );
        }
    }

    #[test]
    fn results_are_deterministic() {
        let a = times(&ClusterConfig::cxl_interleave(1, 3));
        let b = times(&ClusterConfig::cxl_interleave(1, 3));
        assert_eq!(a, b);
    }
}
