//! TPC-H query profiles.
//!
//! The paper selects Q5, Q7, Q8 and Q9 for their intensive data
//! shuffling (§4.2.1, following prior shuffle-acceleration studies).
//! Stage volumes below are scaled to
//! the 7 TB initial dataset; they follow the queries' join structure
//! (Q9 joins six tables including the two largest and shuffles the
//! most; Q5/Q7 are lighter).

use serde::{Deserialize, Serialize};

/// One Spark stage: scan, hash-partition, and shuffle volumes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Bytes scanned from table storage / previous stage output, GB.
    pub scan_gb: f64,
    /// Shuffle bytes written (map side), GB.
    pub shuffle_write_gb: f64,
    /// Shuffle bytes read (reduce side), GB.
    pub shuffle_read_gb: f64,
    /// Fraction of shuffled bytes that take a dependent (hash-table)
    /// access path rather than streaming.
    pub hash_fraction: f64,
}

/// A named query: an ordered list of stages.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryProfile {
    /// TPC-H query name, e.g. `"Q9"`.
    pub name: &'static str,
    /// Stages in execution order.
    pub stages: Vec<StageProfile>,
}

impl QueryProfile {
    /// Total bytes scanned, GB.
    pub fn total_scan_gb(&self) -> f64 {
        self.stages.iter().map(|s| s.scan_gb).sum()
    }

    /// Total shuffle bytes written, GB.
    pub fn total_shuffle_write_gb(&self) -> f64 {
        self.stages.iter().map(|s| s.shuffle_write_gb).sum()
    }

    /// Total shuffle bytes read, GB.
    pub fn total_shuffle_read_gb(&self) -> f64 {
        self.stages.iter().map(|s| s.shuffle_read_gb).sum()
    }

    /// Total bytes moved, GB.
    pub fn total_gb(&self) -> f64 {
        self.total_scan_gb() + self.total_shuffle_write_gb() + self.total_shuffle_read_gb()
    }
}

fn stage(scan: f64, w: f64, r: f64, hash: f64) -> StageProfile {
    StageProfile {
        scan_gb: scan,
        shuffle_write_gb: w,
        shuffle_read_gb: r,
        hash_fraction: hash,
    }
}

/// The four shuffle-heavy TPC-H queries of §4.2 at 7 TB scale.
pub fn tpch_queries() -> Vec<QueryProfile> {
    vec![
        // Q5: 6-way join (customer/orders/lineitem/supplier/nation/region)
        // pruned by region; moderate shuffle.
        QueryProfile {
            name: "Q5",
            stages: vec![
                stage(1_100.0, 500.0, 0.0, 0.30),
                stage(0.0, 450.0, 500.0, 0.35),
                stage(0.0, 120.0, 450.0, 0.35),
                stage(0.0, 0.0, 120.0, 0.25),
            ],
        },
        // Q7: supplier/customer nation pairs; lineitem-dominated shuffle.
        QueryProfile {
            name: "Q7",
            stages: vec![
                stage(1_300.0, 650.0, 0.0, 0.30),
                stage(0.0, 380.0, 650.0, 0.35),
                stage(0.0, 0.0, 380.0, 0.25),
            ],
        },
        // Q8: market-share query, two years of lineitem joined with seven
        // tables; wide shuffles.
        QueryProfile {
            name: "Q8",
            stages: vec![
                stage(1_700.0, 900.0, 0.0, 0.30),
                stage(0.0, 700.0, 900.0, 0.35),
                stage(0.0, 250.0, 700.0, 0.35),
                stage(0.0, 0.0, 250.0, 0.25),
            ],
        },
        // Q9: product-type profit measure; joins lineitem with partsupp
        // (the heaviest pair), shuffles the most of the four.
        QueryProfile {
            name: "Q9",
            stages: vec![
                stage(2_200.0, 1_400.0, 0.0, 0.35),
                stage(0.0, 1_100.0, 1_400.0, 0.40),
                stage(0.0, 450.0, 1_100.0, 0.40),
                stage(0.0, 0.0, 450.0, 0.30),
            ],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_queries_in_paper_order() {
        let qs = tpch_queries();
        let names: Vec<&str> = qs.iter().map(|q| q.name).collect();
        assert_eq!(names, ["Q5", "Q7", "Q8", "Q9"]);
    }

    #[test]
    fn q9_is_the_heaviest() {
        let qs = tpch_queries();
        let q9 = qs.iter().find(|q| q.name == "Q9").unwrap();
        for q in &qs {
            if q.name != "Q9" {
                assert!(q9.total_gb() > q.total_gb(), "{} >= Q9", q.name);
            }
        }
    }

    #[test]
    fn shuffle_reads_match_writes_shifted() {
        // Every shuffle write is read by a later stage.
        for q in tpch_queries() {
            let w = q.total_shuffle_write_gb();
            let r = q.total_shuffle_read_gb();
            assert!((w - r).abs() < 1e-9, "{}: write {w} read {r}", q.name);
        }
    }

    #[test]
    fn volumes_positive_and_fractions_sane() {
        for q in tpch_queries() {
            assert!(q.total_gb() > 0.0);
            for s in &q.stages {
                assert!((0.0..=1.0).contains(&s.hash_fraction));
            }
        }
    }
}
