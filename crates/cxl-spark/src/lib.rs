#![warn(missing_docs)]

//! Spark SQL / TPC-H shuffle simulation (§4.2).
//!
//! The paper compares running 150 single-core / 8 GB Spark executors over
//! TPC-H (7 TB) on **three** servers with all data in MMEM against
//! **two** servers whose memory is extended with CXL (3:1 / 1:1 / 1:3
//! interleave or Hot-Promote), and against memory-restricted
//! configurations that spill shuffle data to SSD.
//!
//! Model: a query is a sequence of stages; each stage scans input,
//! hash-partitions it (dependent, latency-bound accesses), and streams
//! shuffle data (bandwidth-bound). Executor heaps are striped across
//! NUMA nodes by the placement policy; the aggregate streaming demand of
//! all executors on a server is priced by the `cxl-perf` flow solver, so
//! DDR/CXL-link/RSF contention emerges rather than being assumed. In
//! particular, executors on the CXL-less socket must reach the expanders
//! across UPI, hitting the §3.2 Remote Snoop Filter ceiling — a large
//! part of why heavy CXL interleave ratios degrade so sharply (the
//! paper's 1.4–9.8× band).

pub mod cluster;
pub mod error;
pub mod query;
pub mod runner;

pub use cluster::{ClusterConfig, Placement};
pub use error::SparkError;
pub use query::{tpch_queries, QueryProfile, StageProfile};
pub use runner::{run_query, try_run_query, QueryResult};
