//! Latency anatomy: where each distance's loaded latency comes from.
//!
//! Decomposes the loaded latency of the four §3 access distances at 90 %
//! of their respective peaks into idle path latency plus per-resource
//! queueing delay — making the §3.2 attributions (memory-controller
//! queues locally, the Remote Snoop Filter for cross-socket CXL) visible
//! as numbers.

use cxl_bench::emit;
use cxl_mlc::Mlc;
use cxl_perf::{AccessMix, MemSystem, ResourceKind};
use cxl_stats::report::Table;
use cxl_topology::{SncMode, Topology};

fn kind_label(kind: ResourceKind) -> String {
    match kind {
        ResourceKind::DdrGroup(n) => format!("DDR group (node {})", n.0),
        ResourceKind::CxlBacking(n) => format!("CXL backing DDR (node {})", n.0),
        ResourceKind::CxlLinkD2h(n) => format!("CXL link dev->host (node {})", n.0),
        ResourceKind::CxlLinkH2d(n) => format!("CXL link host->dev (node {})", n.0),
        ResourceKind::CxlWriteMsg(n) => format!("CXL write credits (node {})", n.0),
        ResourceKind::UpiDir(a, b) => format!("UPI {} -> {}", a.0, b.0),
        ResourceKind::UpiWriteCredit(a, b) => format!("UPI wr credits {} -> {}", a.0, b.0),
        ResourceKind::Rsf(s) => format!("Remote Snoop Filter (socket {})", s.0),
    }
}

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let sys = MemSystem::new(&Topology::paper_testbed(SncMode::Snc4));
    let mix = AccessMix::ratio(2, 1);
    let mut table = Table::new(
        "breakdown",
        "Loaded-latency anatomy at 90% of peak, 2:1 mix",
        &["distance", "component", "ns", "% of total"],
    );
    for (d, from, node) in Mlc::distance_endpoints(&sys) {
        let peak = sys.max_bandwidth_gbps(from, node, mix);
        let flows = [cxl_perf::FlowSpec::new(from, node, mix, 0.9 * peak)];
        let b = sys.latency_breakdown(&flows, 0);
        table.push_row(vec![
            d.label().to_string(),
            "idle path".to_string(),
            format!("{:.1}", b.idle_ns),
            format!("{:.0}%", 100.0 * b.idle_ns / b.total_ns),
        ]);
        for (kind, delay) in &b.contributions {
            if *delay < 0.5 {
                continue;
            }
            table.push_row(vec![
                String::new(),
                kind_label(*kind),
                format!("{delay:.1}"),
                format!("{:.0}%", 100.0 * delay / b.total_ns),
            ]);
        }
        table.push_row(vec![
            String::new(),
            "total".to_string(),
            format!("{:.1}", b.total_ns),
            "100%".to_string(),
        ]);
    }
    emit(&table, || table.render());
}
