//! §4.1's allocator-fragmentation rationale, demonstrated.
//!
//! Redis/KeyDB "may not return memory to the system after key deletion,
//! particularly if deleted keys were on a memory page with active ones",
//! which is why operators provision for peak (Google Cloud: keep usage
//! below 80 %; others 75 %). This binary drives the `cxl-alloc` slab
//! allocator through a store-like churn lifecycle and reports live bytes
//! vs resident (held) bytes — the gap is the provisioning headroom CXL
//! capacity can supply cheaply.

use cxl_alloc::{AllocConfig, AllocId, TieredAllocator};
use cxl_bench::emit;
use cxl_sim::SimTime;
use cxl_stats::report::Table;
use cxl_stats::rng::stream_rng;
use cxl_tier::TierConfig;
use cxl_topology::{NodeId, SncMode, Topology};
use rand::Rng;

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let topo = Topology::paper_testbed(SncMode::Disabled);
    let mut a = TieredAllocator::new(
        &topo,
        TierConfig::bind(vec![NodeId(0)]),
        AllocConfig::default(),
    );
    let mut rng = stream_rng(42, "fragmentation");
    let mut live: Vec<AllocId> = Vec::new();
    let now = SimTime::ZERO;

    let mut table = Table::new(
        "fragmentation",
        "Slab-allocator RSS vs live data through a store lifecycle",
        &["phase", "live (MiB)", "resident (MiB)", "fragmentation"],
    );
    let snapshot = |label: &str, a: &TieredAllocator, t: &mut Table| {
        t.push_row(vec![
            label.to_string(),
            format!("{:.1}", a.live_bytes() as f64 / (1 << 20) as f64),
            format!("{:.1}", a.held_bytes() as f64 / (1 << 20) as f64),
            format!("{:.1}%", 100.0 * a.fragmentation()),
        ]);
    };

    // Phase 1: bulk load 200k x 1 KiB values.
    for _ in 0..200_000 {
        live.push(a.alloc(1024, now).expect("fits"));
    }
    snapshot("bulk load (200k x 1KiB)", &a, &mut table);

    // Phase 2: delete a random half (TTL expiry / eviction).
    for i in (1..live.len()).rev() {
        live.swap(i, rng.gen_range(0..=i));
    }
    for id in live.drain(..100_000) {
        a.free(id);
    }
    snapshot("after deleting 50%", &a, &mut table);

    // Phase 3: insert smaller values into the fragmented heap.
    for _ in 0..100_000 {
        live.push(a.alloc(256, now).expect("fits"));
    }
    snapshot("after 100k x 256B inserts", &a, &mut table);

    // Phase 4: another churn round.
    for i in (1..live.len()).rev() {
        live.swap(i, rng.gen_range(0..=i));
    }
    for id in live.drain(..50_000) {
        a.free(id);
    }
    snapshot("after second churn", &a, &mut table);

    emit(&table, || {
        let mut out = table.render();
        out.push_str(&format!(
            "\n# Churn keeps RSS {:.1}x above live data: freed slots stay pinned\n\
             # by live neighbours on the same pages. This is the §4.1 behaviour\n\
             # behind the 75-80% usage guidance and peak-demand provisioning -\n\
             # headroom that CXL capacity supplies without another server.\n",
            a.held_bytes() as f64 / a.live_bytes().max(1) as f64,
        ));
        out
    });
}
