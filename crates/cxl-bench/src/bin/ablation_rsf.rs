//! Ablation: the Remote Snoop Filter bottleneck (§3.2/§3.4).
//!
//! Compares remote-CXL performance on the paper's platform against the
//! projected next-generation CPU with the RSF limit removed — the paper
//! expects cross-socket CXL bandwidth to then "approximate the bandwidth
//! seen when accessing MMEM across sockets". Also shows the downstream
//! effect on the Spark 1:3 interleave configuration, whose socket-1
//! executors reach the expanders through the RSF.

use cxl_bench::{emit, shape_line};
use cxl_mlc::{Mlc, MlcConfig};
use cxl_perf::{AccessMix, Distance, MemSystem, PerfTuning};
use cxl_spark::runner::run_all;
use cxl_spark::ClusterConfig;
use cxl_stats::report::Table;
use cxl_topology::{SncMode, Topology};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let topo = Topology::paper_testbed(SncMode::Snc4);
    let paper = MemSystem::new(&topo);
    let fixed = MemSystem::with_tuning(&topo, PerfTuning::rsf_fixed());
    let mlc = Mlc::new(MlcConfig::default());

    let (_, from, node) = Mlc::distance_endpoints(&paper)
        .into_iter()
        .find(|&(d, _, _)| d == Distance::RemoteCxl)
        .expect("remote CXL endpoint");
    let (_, from_d, node_d) = Mlc::distance_endpoints(&paper)
        .into_iter()
        .find(|&(d, _, _)| d == Distance::RemoteDram)
        .expect("remote DRAM endpoint");

    let mut table = Table::new(
        "ablation-rsf",
        "Remote-CXL peak bandwidth (GB/s) with and without the RSF limit",
        &["mix", "paper platform", "RSF fixed", "remote DDR reference"],
    );
    for mix in Mlc::paper_mixes() {
        table.push_row(vec![
            mix.label(),
            format!("{:.1}", paper.max_bandwidth_gbps(from, node, mix)),
            format!("{:.1}", fixed.max_bandwidth_gbps(from, node, mix)),
            format!("{:.1}", paper.max_bandwidth_gbps(from_d, node_d, mix)),
        ]);
    }
    // Unused-variable guard for mlc: keep the loaded-latency sweep too.
    let sweep = mlc.loaded_latency(&fixed, from, node, AccessMix::ratio(2, 1));
    let fixed_peak = Mlc::peak_bandwidth(&sweep);

    // Downstream: Spark 1:3 on both platforms.
    let spark_paper = run_all(&ClusterConfig::cxl_interleave(1, 3));
    let mut cfg_fixed = ClusterConfig::cxl_interleave(1, 3);
    cfg_fixed.tuning = PerfTuning::rsf_fixed();
    let spark_fixed = run_all(&cfg_fixed);
    let base = run_all(&ClusterConfig::baseline());

    emit(&table, || {
        let mut out = table.render();
        out.push('\n');
        out.push_str("# downstream: Spark 1:3 normalized execution time\n");
        for ((p, f), b) in spark_paper.iter().zip(&spark_fixed).zip(&base) {
            out.push_str(&format!(
                "  {}: paper platform {:.2}x -> RSF fixed {:.2}x\n",
                p.name,
                p.exec_time_s / b.exec_time_s,
                f.exec_time_s / b.exec_time_s,
            ));
        }
        out.push('\n');
        out.push_str(&shape_line(
            "remote CXL peak with RSF fixed (2:1)",
            "~remote DDR (§3.4)",
            format!("{fixed_peak:.1} GB/s"),
        ));
        out.push('\n');
        out
    });
}
