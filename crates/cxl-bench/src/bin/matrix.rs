//! §3 summary matrices: idle latency and peak bandwidth for every
//! distance × read:write mix on the paper's testbed.

use cxl_bench::emit;
use cxl_mlc::{Mlc, MlcConfig};
use cxl_perf::MemSystem;
use cxl_topology::{SncMode, Topology};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let sys = MemSystem::new(&Topology::paper_testbed(SncMode::Snc4));
    let mlc = Mlc::new(MlcConfig::default());
    let idle = mlc.idle_latency_matrix(&sys);
    let peak = mlc.peak_bandwidth_matrix(&sys);
    emit(&(idle.clone(), peak.clone()), || {
        format!("{}\n{}", idle.render(), peak.render())
    });
}
