//! Ablation: knee-position sensitivity (DESIGN §5).
//!
//! §3.2 measures the latency knee at 75–83 % of peak bandwidth —
//! higher than the ~60 % prior work assumed. This ablation sweeps the
//! modeled knee and reports (a) where the observable knee lands in an
//! MLC sweep and (b) what it does to the LLM serving crossover, showing
//! why the knee position matters for tiering policy.

use cxl_bench::emit;
use cxl_llm::{LlmCluster, LlmConfig, LlmPlacement};
use cxl_mlc::{Mlc, MlcConfig};
use cxl_perf::{AccessMix, MemSystem, PerfTuning};
use cxl_stats::report::Table;
use cxl_topology::{NodeId, SncMode, SocketId, Topology};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let topo = Topology::paper_testbed(SncMode::Snc4);
    let mlc = Mlc::new(MlcConfig::default());

    let mut table = Table::new(
        "ablation-knee",
        "Observable knee and LLM crossover vs modeled DDR knee",
        &[
            "modeled knee",
            "observed knee (latency +30%)",
            "MMEM tokens/s @60thr",
            "3:1 gain @60thr",
        ],
    );
    for knee in [0.60, 0.70, 0.80, 0.90] {
        let tuning = PerfTuning::default().with_knee(knee);
        let sys = MemSystem::with_tuning(&topo, tuning);
        let sweep = mlc.loaded_latency(&sys, SocketId(0), NodeId(0), AccessMix::read_only());
        let observed = Mlc::knee_utilization(&sweep, 1.3).unwrap_or(f64::NAN);

        let llm_topo = Topology::snc_domain_with_cxl();
        let sys_llm = MemSystem::with_tuning(&llm_topo, tuning);
        let cluster = LlmCluster::with_system(LlmConfig::default(), sys_llm);
        let mmem = cluster
            .serving_rate(LlmPlacement::MmemOnly, 60)
            .tokens_per_sec;
        let i31 = cluster
            .serving_rate(LlmPlacement::Interleave { n: 3, m: 1 }, 60)
            .tokens_per_sec;
        table.push_row(vec![
            format!("{knee:.2}"),
            format!("{observed:.2}"),
            format!("{mmem:.1}"),
            format!("+{:.0}%", 100.0 * (i31 / mmem - 1.0)),
        ]);
    }

    emit(&table, || {
        let mut out = table.render();
        out.push_str(
            "\n# An earlier knee makes DRAM contention bite sooner, widening the\n\
             # gain from offloading to CXL — the §3.4 insight that tiering policy\n\
             # should watch bandwidth headroom, not just capacity.\n",
        );
        out
    });
}
