//! Regenerates Fig. 7: Spark TPC-H execution time (normalized to MMEM)
//! and shuffle share across cluster configurations (§4.2).

use cxl_bench::{emit, runner_from_args, shape_line};
use cxl_core::experiments::spark;

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = spark::run_with(&runner_from_args());
    emit(&study, || {
        let mut out = String::new();
        out.push_str(&study.fig7a().render());
        out.push('\n');
        out.push_str(&study.fig7b().render());
        out.push('\n');

        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for cfg in ["3:1", "1:1", "1:3"] {
            for q in ["Q5", "Q7", "Q8", "Q9"] {
                let n = study.normalized(cfg, q);
                min = min.min(n);
                max = max.max(n);
            }
        }
        out.push_str("# shape check (paper §4.2.2 vs this run)\n");
        out.push_str(&shape_line(
            "interleave slowdown band",
            "1.4x-9.8x",
            format!("{min:.2}x-{max:.2}x"),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "Hot-Promote slowdown (worst query)",
            ">1.34x",
            format!(
                "{:.2}x",
                ["Q5", "Q7", "Q8", "Q9"]
                    .iter()
                    .map(|q| study.normalized("Hot-Promote", q))
                    .fold(0.0, f64::max)
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "1:1 interleave vs MMEM-SSD-0.4 (Q9)",
            "interleave significantly faster",
            format!(
                "{:.2}x vs {:.2}x",
                study.normalized("1:1", "Q9"),
                study.normalized("MMEM-SSD-0.4", "Q9")
            ),
        ));
        out.push('\n');
        out
    });
}
