//! Regenerates Fig. 4: MMEM vs CXL across distances for each read:write
//! mix, plus the random-vs-sequential panels (§3.3).

use cxl_bench::{emit, figure_text, report_solve_cache, runner_from_args, shape_line};
use cxl_core::experiments::latency;

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = latency::run_with(&runner_from_args());
    report_solve_cache();
    emit(&study, || {
        let mut out = String::new();
        for fig in &study.fig4 {
            out.push_str(&figure_text(fig));
            out.push('\n');
        }
        out.push_str("# (g)-(h): random access pattern\n");
        for fig in &study.fig4_random {
            out.push_str(&figure_text(fig));
            out.push('\n');
        }
        let s = study.summary;
        out.push_str("# shape check (paper §3.3 vs this model)\n");
        out.push_str(&shape_line(
            "CXL/MMEM idle latency ratio",
            "2.4-2.6x",
            format!("{:.2}x", s.cxl_idle_ns / s.mmem_idle_ns),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "CXL/MMEM-r idle latency ratio",
            "1.5-1.92x",
            format!("{:.2}x", s.cxl_idle_ns / s.mmem_remote_idle_ns),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "random vs sequential",
            "no significant disparity",
            "identical by construction",
        ));
        out.push('\n');
        out
    });
}
