//! Redis `maxmemory-policy` comparison under FLASH tiering.
//!
//! §4.1 frames KeyDB FLASH as the economical alternative to RAM-only
//! Redis. How much the SSD tier hurts depends on the eviction policy:
//! this study runs the `MMEM-SSD-0.4` configuration under CLOCK
//! (allkeys-lru), random, and sampled-LFU eviction across YCSB skews.

use cxl_bench::emit;
use cxl_kv::{EvictionPolicy, KvConfig, KvStore};
use cxl_stats::report::Table;
use cxl_tier::TierConfig;
use cxl_topology::{MemoryTier, SncMode, Topology};
use cxl_ycsb::Workload;

fn run(policy: EvictionPolicy, workload: Workload) -> (f64, f64) {
    let topo = Topology::paper_testbed(SncMode::Disabled);
    let dram = topo
        .nodes()
        .iter()
        .find(|n| n.tier == MemoryTier::LocalDram)
        .unwrap()
        .id;
    let cfg = KvConfig {
        record_count: 150_000,
        eviction: policy,
        ..Default::default()
    };
    let bytes = cfg.record_count * cfg.value_size;
    let mut tier = TierConfig::bind(vec![dram]);
    tier.capacity_override = vec![(dram, (bytes as f64 * 0.6) as u64)];
    for n in topo.nodes().iter().filter(|n| n.id != dram) {
        tier.capacity_override.push((n.id, 0));
    }
    let mut store = KvStore::new(&topo, tier, cfg, true);
    store.run(workload, 150_000);
    let r = store.run(workload, 150_000);
    (r.throughput_ops, r.ssd_hits as f64 / r.ops as f64)
}

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let policies = [
        ("CLOCK (allkeys-lru)", EvictionPolicy::Clock),
        ("random", EvictionPolicy::Random),
        ("sampled LFU", EvictionPolicy::Lfu),
    ];
    let mut table = Table::new(
        "eviction",
        "MMEM-SSD-0.4 under different maxmemory policies",
        &["policy", "workload", "kops/s", "SSD miss rate"],
    );
    for w in [Workload::C, Workload::B] {
        for (label, p) in policies {
            let (tput, miss) = run(p, w);
            table.push_row(vec![
                label.to_string(),
                w.label().to_string(),
                format!("{:.1}", tput / 1e3),
                format!("{:.2}%", 100.0 * miss),
            ]);
        }
    }
    emit(&table, || {
        let mut out = table.render();
        out.push_str(
            "\n# Recency/frequency-aware eviction keeps the Zipfian hot set\n\
             # resident; random eviction pays the SSD latency far more often —\n\
             # the policy choice moves a meaningful slice of the §4.1 SSD gap.\n",
        );
        out
    });
}
