//! Fleet-dynamics sweep: multi-rack pooling over a rack/spine CXL
//! fabric (ROADMAP item 2). No paper figure — the paper stops at one
//! switch hop; this puts the §7.1 pooling economics on a fabric where
//! every lease pays its looked-up path: one ToR hop intra-rack,
//! ToR + cable + spine + cable + ToR across racks.

use cxl_bench::{emit, runner_from_args, shape_line};
use cxl_core::experiments::fleet::{run_with, FleetParams};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = run_with(&runner_from_args(), FleetParams::default());
    emit(&study, || {
        let mut out = String::new();
        out.push_str(&study.table().render());
        out.push('\n');

        out.push_str("# shape check (fleet pooling vs this run)\n");
        let fleet = &study.cell("fleet").report;
        out.push_str(&shape_line(
            "fleet installs less memory than static p99",
            "yes",
            format!(
                "{} ({:.0} vs {:.0} GiB)",
                fleet.dynamic_total_gib < fleet.static_total_gib,
                fleet.dynamic_total_gib,
                fleet.static_total_gib
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "fleet roughly holds the SLO static provisioning meets",
            "dyn <= static miss + 5%",
            format!(
                "{} ({:.2}% vs {:.2}%)",
                fleet.dynamic_violation_frac <= fleet.static_violation_frac + 0.05,
                100.0 * fleet.dynamic_violation_frac,
                100.0 * fleet.static_violation_frac
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "cross-rack leases pay strictly more hops",
            "1 hop intra, 3 cross",
            format!(
                "{} hop / {} hops, +{:.0} ns solved idle",
                fleet.intra_hops,
                fleet.cross_hops,
                fleet.cross_idle_read_ns - fleet.intra_idle_read_ns
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "the fleet actually leases across the spine",
            "> 0 grants",
            format!(
                "{} cross-rack grants, {:.2}% of slab-steps",
                fleet.cross_grants,
                100.0 * fleet.cross_share
            ),
        ));
        out.push('\n');
        let tight = &study.cell("tight-budget").report;
        out.push_str(&shape_line(
            "global budget binds when undersized",
            "peak == budget, unmet > 0",
            format!(
                "{} ({}/{} slabs, {} unmet slab-steps)",
                tight.peak_outstanding_slabs == tight.budget_slabs && tight.unmet_slab_steps > 0,
                tight.peak_outstanding_slabs,
                tight.budget_slabs,
                tight.unmet_slab_steps
            ),
        ));
        out.push('\n');
        let fault = &study.cell("rack-fault").report;
        out.push_str(&shape_line(
            "rack fault strands no pages fleet-wide",
            "0",
            fault.stranded_pages,
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "dead rack evacuates through DRAM/SSD",
            "> 0 pages",
            format!(
                "{} moved, {} to SSD",
                fault.evac_pages_moved, fault.evac_pages_to_ssd
            ),
        ));
        out.push('\n');
        out
    });
    cxl_bench::report_solve_cache();
}
