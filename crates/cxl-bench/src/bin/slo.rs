//! SLO capacity analysis: max sustainable load under a tail-latency
//! budget, per memory placement (see `cxl_core::experiments::slo`).

use cxl_bench::{emit, runner_from_args};
use cxl_core::experiments::slo::{run_with, SloParams};
use cxl_core::CapacityConfig;
use cxl_stats::report::Table;

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let params = SloParams::default();
    let configs = [
        CapacityConfig::Mmem,
        CapacityConfig::Interleave31,
        CapacityConfig::Interleave11,
        CapacityConfig::Interleave13,
        CapacityConfig::HotPromote,
    ];
    let rows = run_with(&runner_from_args(), &configs, &params);

    let mut headers = vec!["config".to_string()];
    headers.extend(params.rates.iter().map(|r| format!("{:.0}k/s", r / 1e3)));
    headers.push(format!("max rate @ p99<={}us", params.slo_p99_us));
    let href: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "slo",
        "YCSB-B open-loop p99 latency (us) vs offered load",
        &href,
    );
    for row in &rows {
        let mut cells = vec![row.config.to_string()];
        cells.extend(row.points.iter().map(|&(_, p99)| format!("{p99:.1}")));
        cells.push(format!("{:.0}k/s", row.max_rate / 1e3));
        table.push_row(cells);
    }

    emit(&rows, || {
        let mut out = table.render();
        let mmem = rows
            .iter()
            .find(|r| r.config == "MMEM")
            .map(|r| r.max_rate)
            .unwrap_or(0.0);
        out.push_str("\n# sellable capacity under the SLO, relative to MMEM\n");
        for row in &rows {
            out.push_str(&format!(
                "  {:<12} {:.0}k ops/s  ({:.0}%)\n",
                row.config,
                row.max_rate / 1e3,
                100.0 * row.max_rate / mmem.max(1.0)
            ));
        }
        out.push_str(
            "# The capacity loss from CXL placements under an SLO exceeds the raw\n\
             # throughput loss: queueing amplifies the service-time gap at the tail.\n",
        );
        out
    });
}
