//! Ablation: hot-page-selection promotion rate limit (§2.3, DESIGN §5).
//!
//! The v6.1 kernel patch throttles promotion with
//! `numa_balancing_promote_rate_limit_MBps`. Too low and the hot set
//! never reaches DRAM (lag); the higher it goes the more migration
//! bandwidth and churn the workload pays (thrash). This sweep runs the
//! KeyDB Hot-Promote configuration across rate limits and reports
//! throughput, promotions, and migration volume.

use cxl_bench::emit;
use cxl_kv::{KvConfig, KvStore};
use cxl_sim::SimTime;
use cxl_stats::report::Table;
use cxl_tier::{AllocPolicy, HotPageConfig, MigrationMode, NumaBalancingConfig, TierConfig};
use cxl_topology::{MemoryTier, SncMode, Topology};
use cxl_ycsb::Workload;

fn run_at_limit(limit_bytes_per_sec: f64) -> (f64, u64, u64) {
    let topo = Topology::paper_testbed(SncMode::Disabled);
    let nodes = topo.nodes();
    let dram = nodes
        .iter()
        .find(|n| n.tier == MemoryTier::LocalDram)
        .unwrap()
        .id;
    let cxl = nodes
        .iter()
        .find(|n| n.tier == MemoryTier::CxlExpander)
        .unwrap()
        .id;
    let kv = KvConfig {
        record_count: 100_000,
        ..Default::default()
    };
    let dataset = kv.record_count * kv.value_size;
    let mut tier = TierConfig::bind(vec![dram]);
    tier.policy = AllocPolicy::interleave(vec![dram], vec![cxl], 1, 1);
    tier.capacity_override = vec![(dram, dataset / 2)];
    for n in nodes
        .iter()
        .filter(|n| n.tier == MemoryTier::LocalDram && n.id != dram)
    {
        tier.capacity_override.push((n.id, 0));
    }
    tier.migration = MigrationMode::HotPageSelection(HotPageConfig {
        balancing: NumaBalancingConfig {
            scan_period: SimTime::from_ms(5),
            scan_pages: 4096,
            hot_threshold: SimTime::from_ms(100),
            hint_fault_cost: SimTime::from_ns(300),
        },
        promote_rate_limit_bytes_per_sec: limit_bytes_per_sec,
        dynamic_threshold: false,
        adjust_period: SimTime::from_ms(100),
        promote_after_faults: 1,
    });
    let mut store = KvStore::new(&topo, tier, kv, false);
    store.run(Workload::C, 200_000); // Warm-up / convergence window.
    let r = store.run(Workload::C, 200_000);
    (
        r.throughput_ops,
        r.tier_stats.promotions,
        r.tier_stats.migration_bytes,
    )
}

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let limits_mbps = [1.0, 16.0, 128.0, 1024.0, 8192.0, 65536.0];
    let mut table = Table::new(
        "ablation-rate-limit",
        "KeyDB Hot-Promote vs promotion rate limit (YCSB-C)",
        &["limit (MB/s)", "kops/s", "promotions", "migrated (MiB)"],
    );
    let mut rows = Vec::new();
    for &mbps in &limits_mbps {
        let (tput, promos, bytes) = run_at_limit(mbps * 1024.0 * 1024.0);
        rows.push((mbps, tput));
        table.push_row(vec![
            format!("{mbps}"),
            format!("{:.1}", tput / 1e3),
            promos.to_string(),
            format!("{:.1}", bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }

    emit(&table, || {
        let mut out = table.render();
        // First limit achieving within 0.5 % of the best throughput.
        let peak = rows.iter().map(|&(_, t)| t).fold(0.0, f64::max);
        let best = rows
            .iter()
            .cloned()
            .find(|&(_, t)| t >= 0.995 * peak)
            .unwrap();
        out.push_str(&format!(
            "\n# best throughput at {} MB/s — below it the hot set lags on CXL,\n\
             # far above it the extra churn buys nothing (Zipfian hot set is small).\n",
            best.0
        ));
        out
    });
}
