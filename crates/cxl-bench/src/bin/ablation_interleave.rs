//! Ablation: fine-grained interleave-ratio sweep for LLM serving.
//!
//! The paper tests only {3:1, 1:1, 1:3}; this sweep covers DRAM shares
//! from 10 % to 100 % at several thread counts, locating the optimal
//! split per load level — the quantitative version of the §3.4 advice to
//! offload a bandwidth-proportional slice to CXL even when DRAM has
//! headroom.

use cxl_bench::{emit, runner_from_args};
use cxl_llm::{LlmCluster, LlmConfig, LlmPlacement};
use cxl_stats::report::Table;

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let cluster = LlmCluster::new(LlmConfig::default());
    let thread_counts = [36usize, 48, 60, 72, 96];

    let mut table = Table::new(
        "ablation-interleave",
        "LLM serving rate (tokens/s) vs DRAM share and thread count",
        &[
            "DRAM share",
            "36 thr",
            "48 thr",
            "60 thr",
            "72 thr",
            "96 thr",
        ],
    );
    let mut grid = Vec::new();
    for n in 1..=10u32 {
        let placement = if n == 10 {
            LlmPlacement::MmemOnly
        } else {
            LlmPlacement::Interleave { n, m: 10 - n }
        };
        for &t in &thread_counts {
            grid.push((n, placement, t));
        }
    }
    let rates = runner_from_args().map(grid, |(_, placement, t)| {
        cluster.serving_rate(placement, t).tokens_per_sec
    });

    let mut best: Vec<(usize, u32, f64)> = thread_counts.iter().map(|&t| (t, 10, 0.0)).collect();
    for n in 1..=10u32 {
        let mut row = vec![format!("{}0%", n)];
        for (i, &t) in thread_counts.iter().enumerate() {
            let r = rates[(n as usize - 1) * thread_counts.len() + i];
            row.push(format!("{r:.1}"));
            if r > best[i].2 {
                best[i] = (t, n, r);
            }
        }
        table.push_row(row);
    }

    emit(&table, || {
        let mut out = table.render();
        out.push_str("\n# optimal DRAM share per load level\n");
        for (t, n, r) in &best {
            out.push_str(&format!(
                "  {t:>3} threads: best at {}0% DRAM ({r:.1} tokens/s)\n",
                n
            ));
        }
        out.push_str(
            "# The optimum shifts from 100% DRAM at low load toward CXL-heavy\n\
             # splits as the DDR channels saturate.\n",
        );
        out
    });
}
