//! Extended YCSB suite (A–F) across memory placements.
//!
//! The paper evaluates A–D; this adds the standard suite's E (scans) and
//! F (read-modify-write) over the Table 1 MMEM / interleave / Hot-Promote
//! configurations, showing that scan-heavy workloads feel the CXL
//! latency gap hardest (every scanned page pays it).

use cxl_bench::{emit, runner_from_args};
use cxl_core::experiments::keydb::{run_cell, Fig5Params};
use cxl_core::CapacityConfig;
use cxl_stats::report::Table;
use cxl_ycsb::Workload;

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let params = Fig5Params {
        record_count: 100_000,
        ops: 80_000,
        warmup_ops: 120_000,
        seed: 42,
    };
    let configs = [
        CapacityConfig::Mmem,
        CapacityConfig::Interleave11,
        CapacityConfig::HotPromote,
    ];
    let mut headers = vec!["workload".to_string()];
    headers.extend(configs.iter().map(|c| format!("{} (kops/s)", c.label())));
    let href: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new("ycsb-extended", "Full YCSB suite across placements", &href);

    let mut grid = Vec::new();
    for w in Workload::extended() {
        for &c in &configs {
            grid.push((c, w));
        }
    }
    let cells = runner_from_args().map(grid, |(c, w)| run_cell(c, w, params));

    let mut slowdowns = Vec::new();
    for (wi, w) in Workload::extended().into_iter().enumerate() {
        let mut row = vec![w.label().to_string()];
        let mut first = None;
        for (ci, &c) in configs.iter().enumerate() {
            let cell = &cells[wi * configs.len() + ci];
            let kops = cell.throughput_ops / 1e3;
            let base = *first.get_or_insert(kops);
            row.push(format!("{kops:.1}"));
            if c == CapacityConfig::Interleave11 {
                slowdowns.push((w.label(), base / kops));
            }
        }
        table.push_row(row);
    }

    emit(&table, || {
        let mut out = table.render();
        out.push_str("\n# 1:1 interleave slowdown per workload\n");
        for (w, s) in &slowdowns {
            out.push_str(&format!("  {w}: {s:.2}x\n"));
        }
        out
    });
}
