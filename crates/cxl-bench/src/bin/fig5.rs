//! Regenerates Fig. 5: KeyDB YCSB throughput and tail latency across the
//! Table 1 configurations (§4.1).

use cxl_bench::{emit, figure_text, runner_from_args, shape_line};
use cxl_core::experiments::keydb::{run_with, Fig5Params};
use cxl_core::CapacityConfig;
use cxl_ycsb::Workload;

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = run_with(&runner_from_args(), Fig5Params::default());
    emit(&study, || {
        let mut out = String::new();
        out.push_str(&figure_text(&study.fig5a()));
        out.push('\n');
        out.push_str(&study.fig5b().render());
        out.push('\n');
        out.push_str(&figure_text(&study.fig5c()));
        out.push('\n');

        let t = |c| study.throughput(c, Workload::C);
        let mmem = t(CapacityConfig::Mmem);
        out.push_str("# shape check (paper §4.1.2 vs this run, YCSB-C)\n");
        out.push_str(&shape_line(
            "MMEM is fastest",
            "yes",
            format!(
                "{}",
                CapacityConfig::all().iter().all(|&c| t(c) <= mmem * 1.0001)
            ),
        ));
        out.push('\n');
        let hp = t(CapacityConfig::HotPromote);
        out.push_str(&shape_line(
            "Hot-Promote vs MMEM",
            "nearly as well",
            format!("{:.1}% of MMEM", 100.0 * hp / mmem),
        ));
        out.push('\n');
        for (c, label) in [
            (CapacityConfig::Interleave31, "3:1"),
            (CapacityConfig::Interleave11, "1:1"),
            (CapacityConfig::Interleave13, "1:3"),
        ] {
            out.push_str(&shape_line(
                &format!("interleave {label} slowdown"),
                "1.2-1.5x",
                format!("{:.2}x", mmem / t(c)),
            ));
            out.push('\n');
        }
        for (c, label) in [
            (CapacityConfig::MmemSsd02, "MMEM-SSD-0.2"),
            (CapacityConfig::MmemSsd04, "MMEM-SSD-0.4"),
        ] {
            out.push_str(&shape_line(
                &format!("{label} slowdown"),
                "~1.8x",
                format!("{:.2}x", mmem / t(c)),
            ));
            out.push('\n');
        }
        out
    });
}
