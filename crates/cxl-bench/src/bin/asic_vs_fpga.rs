//! ASIC vs FPGA CXL controllers (§3.4).
//!
//! The paper contrasts the A1000 ASIC (73.6 % link efficiency, <2.5x
//! DDR latency) with Intel's FPGA prototypes (~60 % of PCIe bandwidth,
//! higher latency). This binary builds both devices, compares raw
//! characteristics, and shows the application-level impact on a
//! CXL-bound KeyDB instance.

use cxl_bench::{emit, shape_line};
use cxl_kv::{KvConfig, KvStore, MemProfile};
use cxl_perf::{AccessMix, MemSystem};
use cxl_stats::report::Table;
use cxl_tier::TierConfig;
use cxl_topology::{CxlDevice, DdrGeneration, NodeId, SncMode, Socket, SocketId, Topology};
use cxl_ycsb::Workload;

fn platform(dev: CxlDevice) -> Topology {
    Topology {
        sockets: vec![
            Socket::new(SocketId(0), 56, 8, DdrGeneration::Ddr5_4800, 512).with_devices(vec![dev]),
        ],
        snc: SncMode::Disabled,
        upi: vec![],
    }
}

fn keydb_on_cxl(topo: &Topology) -> f64 {
    let cxl_node = NodeId(1); // Single socket: node 0 = DRAM, 1 = CXL.
    let kv = KvConfig {
        record_count: 50_000,
        profile: MemProfile::standard(),
        ..Default::default()
    };
    let mut store = KvStore::new(topo, TierConfig::bind(vec![cxl_node]), kv, false);
    store.run(Workload::C, 80_000).throughput_ops
}

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let asic = platform(CxlDevice::a1000());
    let fpga = platform(CxlDevice::fpga_prototype());
    let sys_asic = MemSystem::new(&asic);
    let sys_fpga = MemSystem::new(&fpga);
    let cxl = NodeId(1);
    let s0 = SocketId(0);

    let mut table = Table::new(
        "asic-vs-fpga",
        "ASIC (A1000) vs FPGA CXL controller",
        &["metric", "ASIC", "FPGA"],
    );
    table.push_row(vec![
        "link efficiency".into(),
        "73.6%".into(),
        "60.0%".into(),
    ]);
    table.push_row(vec![
        "idle read latency (ns)".into(),
        format!(
            "{:.1}",
            sys_asic.idle_latency_ns(s0, cxl, AccessMix::read_only())
        ),
        format!(
            "{:.1}",
            sys_fpga.idle_latency_ns(s0, cxl, AccessMix::read_only())
        ),
    ]);
    for mix in [AccessMix::read_only(), AccessMix::ratio(2, 1)] {
        table.push_row(vec![
            format!("peak bandwidth {} (GB/s)", mix.label()),
            format!("{:.1}", sys_asic.max_bandwidth_gbps(s0, cxl, mix)),
            format!("{:.1}", sys_fpga.max_bandwidth_gbps(s0, cxl, mix)),
        ]);
    }
    let kv_asic = keydb_on_cxl(&asic);
    let kv_fpga = keydb_on_cxl(&fpga);
    table.push_row(vec![
        "KeyDB YCSB-C on CXL (kops/s)".into(),
        format!("{:.1}", kv_asic / 1e3),
        format!("{:.1}", kv_fpga / 1e3),
    ]);

    emit(&table, || {
        let mut out = table.render();
        out.push('\n');
        let lat_ratio = sys_asic.idle_latency_ns(s0, cxl, AccessMix::read_only()) / 97.0;
        out.push_str(&shape_line(
            "ASIC latency overhead vs MMEM",
            "2.4-2.6x (§3.3)",
            format!("{lat_ratio:.2}x"),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "ASIC vs FPGA application throughput",
            "ASIC clearly ahead",
            format!("{:.2}x", kv_asic / kv_fpga),
        ));
        out.push('\n');
        out
    });
}
