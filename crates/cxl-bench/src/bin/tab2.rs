//! Regenerates Table 2: Intel processor series and the 1:4 memory
//! requirement (§4.3).

use cxl_bench::emit;
use cxl_core::experiments::processors;

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let table = processors::tab2();
    emit(&table, || table.render());
}
