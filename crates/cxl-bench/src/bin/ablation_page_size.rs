//! Ablation: migration granularity (4 KiB pages vs THP-style 2 MiB).
//!
//! §4.1.1 disables Transparent Hugepages for the KeyDB experiments. This
//! ablation shows why: hot-page selection migrates whole pages, and at
//! 2 MiB granularity each "page" mixes ~2048 values of very different
//! temperatures. The hot set dilutes, promotion moves mostly-cold bytes,
//! and Hot-Promote's advantage over static interleave shrinks.

use cxl_bench::emit;
use cxl_core::config::hot_promote_params;
use cxl_kv::{KvConfig, KvStore};
use cxl_stats::report::Table;
use cxl_tier::{AllocPolicy, MigrationMode, TierConfig};
use cxl_topology::{MemoryTier, SncMode, Topology};
use cxl_ycsb::Workload;

fn run_hot_promote(page_size: u64) -> (f64, u64) {
    let topo = Topology::paper_testbed(SncMode::Disabled);
    let nodes = topo.nodes();
    let dram = nodes
        .iter()
        .find(|n| n.tier == MemoryTier::LocalDram)
        .unwrap()
        .id;
    let cxl = nodes
        .iter()
        .find(|n| n.tier == MemoryTier::CxlExpander)
        .unwrap()
        .id;
    let kv = KvConfig {
        record_count: 200_000,
        ..Default::default()
    };
    let dataset = kv.record_count * kv.value_size;
    let mut tier = TierConfig::bind(vec![dram]);
    tier.page_size = page_size;
    tier.policy = AllocPolicy::interleave(vec![dram], vec![cxl], 1, 1);
    tier.capacity_override = vec![(dram, dataset / 2)];
    for n in nodes
        .iter()
        .filter(|n| n.tier == MemoryTier::LocalDram && n.id != dram)
    {
        tier.capacity_override.push((n.id, 0));
    }
    tier.migration = MigrationMode::HotPageSelection(hot_promote_params());
    let mut store = KvStore::new(&topo, tier, kv, false);
    store.run(Workload::C, 250_000);
    let r = store.run(Workload::C, 250_000);
    (r.throughput_ops, r.tier_stats.migration_bytes)
}

fn mmem_baseline() -> f64 {
    let topo = Topology::paper_testbed(SncMode::Disabled);
    let dram = topo.nodes()[0].id;
    let kv = KvConfig {
        record_count: 200_000,
        ..Default::default()
    };
    let mut tier = TierConfig::bind(vec![dram]);
    for n in topo.nodes().iter().skip(1) {
        tier.capacity_override.push((n.id, 0));
    }
    let mut store = KvStore::new(&topo, tier, kv, false);
    store.run(Workload::C, 250_000).throughput_ops
}

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let mmem = mmem_baseline();
    let mut table = Table::new(
        "ablation-page-size",
        "KeyDB Hot-Promote vs migration granularity (YCSB-C, 1:1 start)",
        &["page size", "kops/s", "% of MMEM", "migrated (MiB)"],
    );
    let mut results = Vec::new();
    for (label, size) in [
        ("4 KiB", 4096u64),
        ("64 KiB", 65_536),
        ("512 KiB", 524_288),
        ("2 MiB (THP)", 2_097_152),
    ] {
        let (tput, migrated) = run_hot_promote(size);
        results.push((label, tput));
        table.push_row(vec![
            label.to_string(),
            format!("{:.1}", tput / 1e3),
            format!("{:.1}%", 100.0 * tput / mmem),
            format!("{:.1}", migrated as f64 / (1 << 20) as f64),
        ]);
    }

    emit(&table, || {
        let mut out = table.render();
        let small = results.first().unwrap().1;
        let thp = results.last().unwrap().1;
        out.push_str(&format!(
            "\n# 2 MiB pages lose {:.1}% of the 4 KiB configuration's throughput:\n\
             # each huge page mixes thousands of keys, so promotion drags cold\n\
             # bytes into DRAM and evicts warmer ones — the reason §4.1.1 runs\n\
             # with Transparent Hugepages disabled.\n",
            100.0 * (1.0 - thp / small)
        ));
        out
    });
}
