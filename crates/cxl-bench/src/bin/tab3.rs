//! Regenerates Table 3: the Abstract Cost Model parameters (§6).

use cxl_bench::emit;
use cxl_core::experiments::cost;

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = cost::run();
    emit(&study, || study.tab3().render());
}
