//! §7.1 extension: CXL 2.0 memory-pooling economics.
//!
//! Sizes a shared expander pool for 2–16 hosts against a stochastic
//! demand model and reports the capacity/cost saving from statistical
//! multiplexing, plus a fleet-mixture evaluation of the §6 model over
//! multiple application classes.

use cxl_bench::emit;
use cxl_cost::placement::{simulate, PlacementConfig};
use cxl_cost::pooling::evaluate;
use cxl_cost::{AppClass, CostModelParams, DemandModel, FleetMixture, PoolingConfig};
use cxl_stats::report::Table;

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let mut table = Table::new(
        "pooling",
        "Pool sizing vs host count (p99 provisioning, demand N(512, 128) GiB)",
        &[
            "hosts",
            "DRAM/host no-pool (GiB)",
            "pool (GiB)",
            "capacity saving",
            "cost saving",
        ],
    );
    let mut outcomes = Vec::new();
    for hosts in [2usize, 4, 8, 16] {
        let out = evaluate(PoolingConfig {
            hosts,
            ..Default::default()
        });
        table.push_row(vec![
            hosts.to_string(),
            format!("{:.0}", out.dram_per_host_no_pool_gib),
            format!("{:.0}", out.pool_gib),
            format!("{:.1}%", 100.0 * out.capacity_saving),
            format!("{:.1}%", 100.0 * out.cost_saving),
        ]);
        outcomes.push((hosts, out));
    }

    // A fleet mixing the paper's three workload families, with (Rd, Rc)
    // in the ranges the reproduction measures.
    let fleet = FleetMixture::new(vec![
        AppClass {
            name: "KeyDB (capacity-bound)".into(),
            fleet_fraction: 0.5,
            params: CostModelParams {
                rd: 10.0,
                rc: 8.0,
                c: 2.0,
                rt: 1.1,
            },
        },
        AppClass {
            name: "Spark SQL (shuffle-heavy)".into(),
            fleet_fraction: 0.3,
            params: CostModelParams {
                rd: 9.4,
                rc: 4.1,
                c: 2.0,
                rt: 1.1,
            },
        },
        AppClass {
            name: "LLM serving (bandwidth-bound)".into(),
            fleet_fraction: 0.2,
            params: CostModelParams {
                rd: 6.0,
                rc: 5.5,
                c: 2.0,
                rt: 1.1,
            },
        },
    ]);

    emit(&table, || {
        let mut out = table.render();
        out.push('\n');
        out.push_str("# fleet mixture (§6 future work): per-class and blended savings\n");
        for (name, ratio, saving) in fleet.breakdown() {
            out.push_str(&format!(
                "  {name:<28} Ncxl/Nbase {:.1}%  TCO saving {:.1}%\n",
                100.0 * ratio,
                100.0 * saving
            ));
        }
        out.push_str(&format!(
            "  {:<28} Ncxl/Nbase {:.1}%  TCO saving {:.1}%\n",
            "fleet (blended)",
            100.0 * fleet.server_ratio(),
            100.0 * fleet.tco_saving()
        ));
        out.push_str(&format!(
            "\n# multiplexing gain: capacity saving grows {:.1}% -> {:.1}% from 2 to 16 hosts\n",
            100.0 * outcomes.first().unwrap().1.capacity_saving,
            100.0 * outcomes.last().unwrap().1.capacity_saving,
        ));
        // Operational cross-check: a p99-sized pool in a discrete
        // VM-placement simulation should reject ~1% of tenants.
        let sized = outcomes.last().unwrap().1;
        let placed = simulate(PlacementConfig {
            pool_gib: sized.pool_gib,
            ..Default::default()
        });
        out.push_str(&format!(
            "# operational check: p99-sized pool ({:.0} GiB) rejects {:.2}% of\n\
             # tenant placements in a discrete VM simulation (target ~1%),\n\
             # peak occupancy {:.0} GiB.\n",
            sized.pool_gib,
            100.0 * placed.rejection_rate(),
            placed.peak_pool_used_gib,
        ));
        // Dynamic cross-validation: replay the question with the
        // `cxl-pool` control plane (queuing, revocation, rate-limited
        // drains) and compare three savings for the same traces.
        let cfg = cxl_pool::PoolSimConfig::default();
        let dynamic = cxl_pool::run(&cfg);
        let model = evaluate(PoolingConfig {
            hosts: cfg.hosts,
            demand: DemandModel {
                mean_gib: dynamic.demand_mean_gib,
                std_gib: dynamic.demand_std_gib,
            },
            percentile: cfg.slo_percentile,
            local_dram_gib: cfg.local_dram_gib as f64,
            seed: cfg.seed,
            ..Default::default()
        });
        let fixed = (cfg.hosts as u64 * cfg.local_dram_gib) as f64;
        let ideal_saving = 1.0 - (fixed + dynamic.ideal_pool_gib) / dynamic.static_total_gib;
        out.push_str(&format!(
            "\n# dynamic cross-validation ({} hosts, {} GiB pool, bursty traces):\n\
             #   realized saving (cxl-pool sim)      {:.1}%\n\
             #   perfect-liquidity trace bound       {:.1}%  (>= realized: {})\n\
             #   static normal-marginal model        {:.1}%\n\
             # the static model diverges from the trace bound because it\n\
             # assumes a normal demand marginal; the simulated traces are\n\
             # bimodal (base + bursts), so the normal p99 understates the\n\
             # per-host burst peak and with it the no-pool baseline.\n",
            cfg.hosts,
            cfg.pool_gib,
            100.0 * dynamic.capacity_saving,
            100.0 * ideal_saving,
            ideal_saving >= dynamic.capacity_saving - 1e-9,
            100.0 * model.capacity_saving,
        ));
        out
    });
}
