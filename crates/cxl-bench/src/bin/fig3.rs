//! Regenerates Fig. 3: loaded-latency curves for MMEM / MMEM-r / CXL /
//! CXL-r under the paper's read:write mixes (§3.2).

use cxl_bench::{emit, figure_text, report_solve_cache, runner_from_args, shape_line};
use cxl_core::experiments::latency;

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = latency::run_with(&runner_from_args());
    report_solve_cache();
    emit(&study, || {
        let mut out = String::new();
        for fig in &study.fig3 {
            out.push_str(&figure_text(fig));
            out.push('\n');
        }
        let s = study.summary;
        out.push_str("# shape check (paper §3.2 vs this model)\n");
        out.push_str(&shape_line(
            "MMEM idle read latency",
            "~97 ns",
            format!("{:.1} ns", s.mmem_idle_ns),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "MMEM-r idle read latency",
            "~130 ns",
            format!("{:.1} ns", s.mmem_remote_idle_ns),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "CXL idle read latency",
            "250.42 ns",
            format!("{:.1} ns", s.cxl_idle_ns),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "CXL-r idle read latency",
            "485 ns",
            format!("{:.1} ns", s.cxl_remote_idle_ns),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "MMEM read-only peak bandwidth",
            "~67 GB/s",
            format!("{:.1} GB/s", s.mmem_peak_gbps),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "MMEM write-only peak bandwidth",
            "54.6 GB/s",
            format!("{:.1} GB/s", s.mmem_write_peak_gbps),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "CXL peak bandwidth (2:1 mix)",
            "56.7 GB/s",
            format!("{:.1} GB/s", s.cxl_peak_gbps),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "CXL-r peak bandwidth (2:1 mix)",
            "20.4 GB/s",
            format!("{:.1} GB/s", s.cxl_remote_peak_gbps),
        ));
        out.push('\n');
        out
    });
}
