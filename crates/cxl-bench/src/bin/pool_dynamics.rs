//! Pool-dynamics sweep: a dynamic multi-host CXL memory pool vs static
//! per-host provisioning under bursty demand. No paper figure — this
//! puts dynamics (queuing, fair-share revocation, fragmentation,
//! rate-limited drains, a mid-run pool fault) behind the §6–§7 static
//! pooling economics.

use cxl_bench::{emit, runner_from_args, shape_line};
use cxl_core::experiments::pool::{run_with, PoolParams};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = run_with(&runner_from_args(), PoolParams::default());
    emit(&study, || {
        let mut out = String::new();
        out.push_str(&study.table().render());
        out.push('\n');

        out.push_str("# shape check (dynamic pooling vs this run)\n");
        let pooled = study.cell("pooled");
        out.push_str(&shape_line(
            "pooling installs less memory than static p99",
            "yes",
            format!(
                "{} ({:.0} vs {:.0} GiB)",
                pooled.report.dynamic_total_gib < pooled.report.static_total_gib,
                pooled.report.dynamic_total_gib,
                pooled.report.static_total_gib
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "pooling holds the SLO static provisioning meets",
            "dyn <= static miss",
            format!(
                "{} ({:.2}% vs {:.2}%)",
                pooled.report.dynamic_violation_frac <= pooled.report.static_violation_frac + 0.01,
                100.0 * pooled.report.dynamic_violation_frac,
                100.0 * pooled.report.static_violation_frac
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "perfect-liquidity bound holds",
            "ideal >= realized saving",
            format!(
                "{} ({:.1}% vs {:.1}%)",
                pooled.ideal_saving >= pooled.report.capacity_saving - 1e-9,
                100.0 * pooled.ideal_saving,
                100.0 * pooled.report.capacity_saving
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "switch hop visible in pooled idle latency",
            "+70 ns",
            format!(
                "+{:.0} ns",
                pooled.report.pool_idle_read_ns - pooled.report.direct_idle_read_ns
            ),
        ));
        out.push('\n');
        let tight = study.cell("tight-pool");
        out.push_str(&shape_line(
            "undersized pool queues and revokes",
            "> 0",
            format!(
                "{} queued, {} revocations, mean wait {:.1} ms",
                tight.report.stats.queued_requests,
                tight.report.stats.revocations,
                tight.report.mean_wait_ms
            ),
        ));
        out.push('\n');
        let fault = study.cell("pool-fault");
        out.push_str(&shape_line(
            "pool fault strands no pages",
            "0",
            fault.report.stranded_pages,
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "mass revocation evacuates through DRAM/SSD",
            "> 0 pages",
            format!(
                "{} moved, {} to SSD",
                fault.report.evac_pages_moved, fault.report.evac_pages_to_ssd
            ),
        ));
        out.push('\n');
        out
    });
    cxl_bench::report_solve_cache();
}
