//! Regenerates the §4.3 elastic-compute revenue arithmetic.

use cxl_bench::{emit, shape_line};
use cxl_core::experiments::vm::{run, Fig8Params};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = run(Fig8Params {
        record_count: 100_000,
        ops: 100_000,
        seed: 42,
    });
    emit(&study.revenue, || {
        let mut out = String::new();
        out.push_str(&study.revenue_table().render());
        out.push('\n');
        out.push_str("# shape check (paper §4.3.2 vs this model)\n");
        out.push_str(&shape_line(
            "revenue uplift (25% stranded, 20% discount)",
            "26.77%",
            format!("{:.2}%", 100.0 * study.revenue.revenue_uplift()),
        ));
        out.push('\n');
        out
    });
}
