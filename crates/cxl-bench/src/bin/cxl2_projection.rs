//! Forward-looking projection: CXL 2.0-era device on PCIe Gen6 (§7.1).
//!
//! The paper argues its insights carry to CXL 2.0/3.0, whose links
//! double per-direction bandwidth. This projection builds an A1000-class
//! controller on a Gen6 x16 link with four DDR5-5600 channels, re-runs
//! the loaded-latency characterization, and re-evaluates the LLM serving
//! sweep where the extra expander bandwidth matters most.

use cxl_bench::emit;
use cxl_llm::{LlmCluster, LlmConfig, LlmPlacement};
use cxl_perf::{AccessMix, MemSystem};
use cxl_stats::report::Table;
use cxl_topology::{
    CxlDevice, DdrGeneration, NodeId, PcieLink, SncMode, Socket, SocketId, Topology,
};

/// A projected CXL 2.0 expander: Gen6 x16, 4 x DDR5-5600, same ASIC
/// controller latency class as the A1000.
fn gen6_device() -> CxlDevice {
    CxlDevice::new(
        "Gen6 ASIC projection",
        PcieLink::gen6_x16(),
        4,
        DdrGeneration::Ddr5_5600,
        512,
        153.4,
        0.736,
    )
}

fn snc_domain_with(dev: CxlDevice) -> Topology {
    Topology {
        sockets: vec![
            Socket::new(SocketId(0), 14, 2, DdrGeneration::Ddr5_4800, 128).with_devices(vec![dev]),
        ],
        snc: SncMode::Disabled,
        upi: vec![],
    }
}

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let today = snc_domain_with(CxlDevice::a1000());
    let gen6 = snc_domain_with(gen6_device());
    let sys_today = MemSystem::new(&today);
    let sys_gen6 = MemSystem::new(&gen6);
    let cxl = NodeId(1);
    let s0 = SocketId(0);

    let mut table = Table::new(
        "cxl2-projection",
        "CXL 1.1 A1000 vs projected CXL 2.0-era expander",
        &["metric", "A1000 (Gen5 x16)", "Gen6 x16 projection"],
    );
    for mix in [
        AccessMix::read_only(),
        AccessMix::ratio(2, 1),
        AccessMix::write_only(),
    ] {
        table.push_row(vec![
            format!("peak bandwidth {} (GB/s)", mix.label()),
            format!("{:.1}", sys_today.max_bandwidth_gbps(s0, cxl, mix)),
            format!("{:.1}", sys_gen6.max_bandwidth_gbps(s0, cxl, mix)),
        ]);
    }
    table.push_row(vec![
        "idle read latency (ns)".into(),
        format!(
            "{:.1}",
            sys_today.idle_latency_ns(s0, cxl, AccessMix::read_only())
        ),
        format!(
            "{:.1}",
            sys_gen6.idle_latency_ns(s0, cxl, AccessMix::read_only())
        ),
    ]);

    // LLM serving at heavy load on both platforms.
    let cl_today = LlmCluster::with_system(LlmConfig::default(), sys_today);
    let cl_gen6 = LlmCluster::with_system(LlmConfig::default(), sys_gen6);
    for placement in [
        LlmPlacement::MmemOnly,
        LlmPlacement::Interleave { n: 1, m: 1 },
        LlmPlacement::Interleave { n: 1, m: 3 },
    ] {
        table.push_row(vec![
            format!("LLM tokens/s @96thr, {}", placement.label()),
            format!("{:.1}", cl_today.serving_rate(placement, 96).tokens_per_sec),
            format!("{:.1}", cl_gen6.serving_rate(placement, 96).tokens_per_sec),
        ]);
    }

    emit(&table, || {
        let mut out = table.render();
        out.push_str(
            "\n# With a Gen6 link the expander stops being link-bound and the\n\
             # CXL-heavy interleaves keep scaling — the §7.1 disaggregated-\n\
             # bandwidth story. Latency is unchanged: tiering policy still\n\
             # has to respect the §3 idle-latency gap.\n",
        );
        out
    });
}
