//! Heap-dynamics study: a managed-runtime object graph (`cxl-heap`)
//! on tiered memory. No paper figure — this extends the paper's
//! KeyDB/Spark workloads with the GC behavior a JVM/Go service brings
//! to an expander: trace-phase sweeps that a recency-based hot-page
//! policy misreads as working-set shifts (promotion storms), plus the
//! two mitigations (storm-aware promotion streaks and generational
//! hot/cold segregation) and a mid-trace expander fault.

use cxl_bench::{emit, runner_from_args, shape_line};
use cxl_core::experiments::heap::{run_with, HeapStudyParams};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = run_with(&runner_from_args(), HeapStudyParams::default());
    emit(&study, || {
        let mut out = String::new();
        out.push_str(&study.table().render());
        out.push('\n');

        out.push_str("# shape check (GC on tiered memory vs this run)\n");
        out.push_str(&shape_line(
            "DRAM-rich baseline sees no promotion storm",
            "storm ~ 0",
            format!("{:.4} promos/obj", study.storm("dram-rich")),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "lean default policy storms on every trace",
            "storm >> 0",
            format!("{:.4} promos/obj", study.storm("lean-default")),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "storm-aware streak suppresses the storm",
            "> 4x fewer trace promotions",
            format!("{:.1}x", study.storm_reduction()),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "storms hurt the *resumed mutator*, not just the trace",
            "post-GC p99 ratio > 1",
            format!("{:.2}x", study.post_gc_recovery()),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "trace-phase p99 blowup recovered by the streak filter",
            "default > 2x storm-aware",
            format!(
                "{:.2} vs {:.2} us",
                study.trace_p99_ns("lean-default") / 1_000.0,
                study.trace_p99_ns("lean-storm-aware") / 1_000.0
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "generational segregation alone is not hotness segregation",
            "storm persists",
            format!(
                "{:.4} vs {:.4} promos/obj (the hot set is tenured)",
                study.storm("lean-segregated"),
                study.storm("lean-default")
            ),
        ));
        out.push('\n');
        let p99 = |l: &str| {
            study
                .cell(l)
                .report
                .mutator
                .try_tail()
                .map(|t| t.2)
                .unwrap_or(0) as f64
                / 1_000.0
        };
        out.push_str(&shape_line(
            "segregation + streak together give the best mutator p99",
            "seg-storm < default",
            format!(
                "{:.2} vs {:.2} us",
                p99("lean-seg-storm"),
                p99("lean-default")
            ),
        ));
        out.push('\n');
        let fault = &study.cell("lean-fault").report;
        out.push_str(&shape_line(
            "mid-trace expander fault strands nothing",
            "0 pages",
            format!(
                "{} stranded ({} evacuated)",
                fault.stranded_pages,
                fault
                    .evacuation
                    .as_ref()
                    .map(|e| e.total_pages())
                    .unwrap_or(0)
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "no-GC control never traces, never storms",
            "0 trace promotions",
            study.cell("lean-no-gc").report.trace_promotions,
        ));
        out.push('\n');
        out
    });
    cxl_bench::report_solve_cache();
}
