//! Serve-dynamics study: the open-loop multi-tenant serving front end
//! (`cxl-serve`) on a diurnal trace with a mid-peak expander fault.
//! No paper figure — this puts an operator-facing serving layer
//! (Poisson/bursty arrivals, SLO-aware admission, autoscaled
//! `cxl-pool` leases through the `cxl-ctl` plant contract) on top of
//! the KeyDB and LLM backends the paper benchmarks closed-loop.

use cxl_bench::{emit, runner_from_args, shape_line};
use cxl_core::experiments::serve::{run_with, ServeParams};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = run_with(&runner_from_args(), ServeParams::default());
    emit(&study, || {
        let mut out = String::new();
        out.push_str(&study.table().render());
        out.push('\n');

        out.push_str("# shape check (adaptive serving vs this run)\n");
        let adaptive = &study.adaptive().report;
        let peak = &study.cell("static-peak").report;
        let lean = &study.cell("static-lean").report;
        out.push_str(&shape_line(
            "adaptive beats static-peak on tail AND cost",
            "yes",
            format!(
                "{} (p99/slo {:.2} vs {:.2}, cost/kreq {:.2} vs {:.2})",
                study.adaptive_beats_on_both("static-peak"),
                adaptive.worst_slo_frac(),
                peak.worst_slo_frac(),
                1_000.0 * adaptive.cost_per_request,
                1_000.0 * peak.cost_per_request,
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "adaptive holds every SLO through the fault",
            "p99/slo < 1",
            format!("{:.2}", adaptive.worst_slo_frac()),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "static-lean blows the SLO post-fault",
            "p99/slo > 1",
            format!("{:.2}", lean.worst_slo_frac()),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "nominal load is never shed or rejected",
            "0",
            format!("{} shed, {} rejected", adaptive.shed, adaptive.rejected),
        ));
        out.push('\n');
        let overload = &study.cell("overload").report;
        out.push_str(&shape_line(
            "overloaded admission sheds and rejects",
            "> 0",
            format!(
                "{} shed, {} rejected ({:.0}% of arrivals dropped)",
                overload.shed,
                overload.rejected,
                100.0 * overload.drop_fraction()
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "autoscaler releases leases on the night trough",
            "> 0 shrinks",
            adaptive.lease_shrinks,
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "lease guardrail violations",
            "0",
            study.total_guardrail_violations(),
        ));
        out.push('\n');
        out
    });
    cxl_bench::report_solve_cache();
}
