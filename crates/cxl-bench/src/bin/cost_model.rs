//! Regenerates the §6 worked example and an `R_c` sensitivity sweep.

use cxl_bench::{emit, shape_line};
use cxl_core::experiments::cost;

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = cost::run();
    emit(&study, || {
        let mut out = String::new();
        out.push_str(&study.example_table().render());
        out.push('\n');
        out.push_str("# Rc sensitivity (TCO saving)\n");
        for (rc, saving) in study.rc_sensitivity() {
            out.push_str(&format!("  Rc = {rc:>3}: saving {:.2}%\n", 100.0 * saving));
        }
        out.push('\n');
        out.push_str("# shape check (paper §6 vs this model)\n");
        out.push_str(&shape_line(
            "Ncxl/Nbaseline (Rd=10, Rc=8, C=2)",
            "67.29%",
            format!("{:.2}%", 100.0 * study.server_ratio),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "TCO saving (Rt=1.1)",
            "25.98%",
            format!("{:.2}%", 100.0 * study.tco_saving),
        ));
        out.push('\n');
        out
    });
}
