//! Multi-tenant colocation study: CXL as noisy-neighbor isolation
//! (see `cxl_core::experiments::colocation`).

use cxl_bench::{emit, runner_from_args, shape_line};
use cxl_core::experiments::colocation::{run_with, ColocationPlacement};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let intensities = [25.0, 50.0, 100.0, 150.0, 200.0, 250.0, 300.0];
    let study = run_with(&runner_from_args(), &intensities);
    emit(&study, || {
        let mut out = study.latency_table().render();
        out.push('\n');
        out.push_str("# batch tenant achieved bandwidth (GB/s)\n");
        for (label, cells) in &study.rows {
            out.push_str(&format!("  {label:<16}"));
            for c in cells {
                out.push_str(&format!(" {:>7.1}", c.batch_achieved_gbps));
            }
            out.push('\n');
        }
        out.push('\n');
        let shared = study.cell(ColocationPlacement::SharedDram, 250.0);
        let isolated = study.cell(ColocationPlacement::BatchOnCxl, 250.0);
        out.push_str("# shape check (§3.4 load-balancing insight vs this run)\n");
        out.push_str(&shape_line(
            "service latency, hog at 250 GB/s",
            "CXL isolation restores it",
            format!(
                "{:.0} ns shared -> {:.0} ns isolated",
                shared.service_latency_ns, isolated.service_latency_ns
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "batch bandwidth cost of isolation",
            "bounded (link-limited)",
            format!(
                "{:.0} -> {:.0} GB/s",
                shared.batch_achieved_gbps, isolated.batch_achieved_gbps
            ),
        ));
        out.push('\n');
        out
    });
}
