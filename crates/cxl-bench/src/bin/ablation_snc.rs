//! Ablation: Sub-NUMA Clustering on vs off (§3.1).
//!
//! The paper enables SNC-4 for the bandwidth experiments so a single
//! domain's two DDR5 channels saturate early, making the CXL bandwidth
//! contribution visible. This ablation re-runs the LLM serving sweep
//! with the full 8-channel socket instead: DRAM no longer saturates in
//! the swept range and the interleave benefit evaporates — which is
//! exactly why the SNC-4 configuration was needed.

use cxl_bench::emit;
use cxl_llm::{LlmCluster, LlmConfig, LlmPlacement};
use cxl_stats::report::Table;
use cxl_topology::{CxlDevice, DdrGeneration, SncMode, Socket, SocketId, Topology};

fn full_socket_with_cxl() -> Topology {
    Topology {
        sockets: vec![
            Socket::new(SocketId(0), 56, 8, DdrGeneration::Ddr5_4800, 512)
                .with_devices(vec![CxlDevice::a1000()]),
        ],
        snc: SncMode::Disabled,
        upi: vec![],
    }
}

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let snc = LlmCluster::new(LlmConfig::default());
    let full = LlmCluster::with_topology(LlmConfig::default(), &full_socket_with_cxl());

    let mut table = Table::new(
        "ablation-snc",
        "LLM serving (tokens/s): SNC-4 domain (2ch) vs full socket (8ch)",
        &["threads", "SNC MMEM", "SNC 3:1", "full MMEM", "full 3:1"],
    );
    let mut snc_gain = 0.0;
    let mut full_gain = 0.0;
    for backends in 2..=8usize {
        let t = backends * 12;
        let sm = snc.serving_rate(LlmPlacement::MmemOnly, t).tokens_per_sec;
        let si = snc
            .serving_rate(LlmPlacement::Interleave { n: 3, m: 1 }, t)
            .tokens_per_sec;
        let fm = full.serving_rate(LlmPlacement::MmemOnly, t).tokens_per_sec;
        let fi = full
            .serving_rate(LlmPlacement::Interleave { n: 3, m: 1 }, t)
            .tokens_per_sec;
        if t == 60 {
            snc_gain = si / sm - 1.0;
            full_gain = fi / fm - 1.0;
        }
        table.push_row(vec![
            t.to_string(),
            format!("{sm:.1}"),
            format!("{si:.1}"),
            format!("{fm:.1}"),
            format!("{fi:.1}"),
        ]);
    }

    emit(&table, || {
        let mut out = table.render();
        out.push_str(&format!(
            "\n# 3:1 gain at 60 threads: SNC domain +{:.0}%, full socket {:+.0}%\n\
             # With 8 channels the DDR never saturates in this range, so the\n\
             # expander's extra bandwidth buys nothing — the §3.1 rationale for\n\
             # running the bandwidth study inside one SNC-4 domain.\n",
            100.0 * snc_gain,
            100.0 * full_gain
        ));
        out
    });
}
