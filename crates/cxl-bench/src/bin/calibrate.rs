//! Calibration & validation study: fit the performance model to every
//! registered measurement set (`cxl-calib`) and report the residuals
//! CI gates on. `paper_s3` re-fits the §3 calibration surface from a
//! perturbed start; the other targets stand in for external
//! measurements (CXL-DMSim, CXLMemSim, a slower ASIC, a CXL 2.0
//! switch pool) generated from deliberately different device
//! parameters the fitter must recover.

use cxl_bench::{emit, runner_from_args, shape_line};
use cxl_core::experiments::calib::{run_with, CalibParams};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = run_with(&runner_from_args(), CalibParams::default());
    emit(&study, || {
        let mut out = String::new();
        out.push_str(&study.table().render());
        out.push('\n');
        out.push_str(&study.delta_table().render());
        out.push('\n');

        out.push_str("# shape check (calibration expectations vs this run)\n");
        out.push_str(&shape_line(
            "shipped defaults sit on the paper's §3 surface unfitted",
            "max residual well under tolerance",
            format!(
                "{:.3}% max",
                study.cell("paper_s3").shipped.max_residual_pct
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "fit returns to the §3 surface from a perturbed start",
            "fitted <= 5% tolerance",
            format!(
                "{:.3}% from {:.1}% start",
                study.cell("paper_s3").fitted.max_residual_pct,
                study.cell("paper_s3").start.max_residual_pct
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "external stand-ins are NOT the shipped defaults",
            "shipped residual far above tolerance",
            format!(
                "slow_asic {:.1}%, cxl2_switch {:.1}% shipped",
                study.cell("slow_asic").shipped.max_residual_pct,
                study.cell("cxl2_switch").shipped.max_residual_pct
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "fitter recovers the slow ASIC's controller scale",
            "~ 2.2x (generating value)",
            format!(
                "{:.3}x",
                study.fitted_value("slow_asic", "controller_latency_scale")
            ),
        ));
        out.push('\n');
        // Hop and controller latency are nearly degenerate on a
        // single-device path (only their sum is identified), so gate
        // on the residual, not on either knob alone.
        out.push_str(&shape_line(
            "switch pool fits despite the hop/controller degeneracy",
            "fitted <= 6% tolerance",
            format!(
                "{:.3}% (hop {:.2}x, ctrl {:.2}x)",
                study.cell("cxl2_switch").fitted.max_residual_pct,
                study.fitted_value("cxl2_switch", "switch_hop_scale"),
                study.fitted_value("cxl2_switch", "controller_latency_scale")
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "every target lands inside its pinned tolerance",
            "all within",
            if study.all_within_tolerance() {
                "yes"
            } else {
                "NO"
            },
        ));
        out.push('\n');
        out
    });
    cxl_bench::report_solve_cache();
}
