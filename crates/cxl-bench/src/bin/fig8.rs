//! Regenerates Fig. 8: KeyDB YCSB-C on CXL-only vs MMEM-only (§4.3).

use cxl_bench::{emit, figure_text, runner_from_args, shape_line};
use cxl_core::experiments::vm::{run_with, Fig8Params};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = run_with(&runner_from_args(), Fig8Params::default());
    emit(&study, || {
        let mut out = String::new();
        out.push_str(&figure_text(&study.fig8a()));
        out.push('\n');
        out.push_str(&study.fig8b().render());
        out.push('\n');
        out.push_str("# shape check (paper §4.3.2 vs this run)\n");
        out.push_str(&shape_line(
            "CXL throughput loss",
            "~12.5%",
            format!("{:.1}%", 100.0 * study.throughput_loss()),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "read latency penalty (p50/p99)",
            "9-27%",
            format!(
                "{:.1}% / {:.1}%",
                100.0 * study.latency_penalty(50.0),
                100.0 * study.latency_penalty(99.0)
            ),
        ));
        out.push('\n');
        out
    });
}
