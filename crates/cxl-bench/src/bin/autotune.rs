//! Online auto-tuning: the `cxl-ctl` control plane against every static
//! configuration on phased traces. No paper figure — this closes the
//! loop the paper's static sweeps (§4.2 interleave, §4.4 promotion,
//! §5 pooling) leave open: a feedback controller that re-tunes live
//! beats any configuration you could have frozen in advance.

use cxl_bench::{emit, runner_from_args, shape_line};
use cxl_core::experiments::autotune::{run_with, AutotuneParams};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let params = AutotuneParams::default();
    let study = run_with(&runner_from_args(), params);
    emit(&study, || {
        let mut out = String::new();
        out.push_str(&study.kv_table().render());
        out.push('\n');
        out.push_str(&study.llm_table().render());
        out.push('\n');

        out.push_str("# shape check (adaptive control vs this run)\n");
        out.push_str(&shape_line(
            "guardrail violations across every cell",
            "0",
            study.total_violations(),
        ));
        out.push('\n');
        let kv = study.kv_adaptive();
        out.push_str(&shape_line(
            "kv adaptive within 10% of best static, every phase window",
            "yes",
            format!("{}", study.kv_adaptive_within(0.10)),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "kv adaptive total beats every static total",
            "yes",
            format!("{}", kv.total > study.kv_best_static_total()),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "kv controller leases capacity after the expander death",
            "> 0 slabs",
            format!("{} slabs", kv.final_slabs),
        ));
        out.push('\n');
        let llm = study.llm_adaptive();
        out.push_str(&shape_line(
            "llm adaptive within 10% of best static, every ramp stage",
            "yes",
            format!("{}", study.llm_adaptive_within(0.10)),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "llm adaptive total beats every static placement",
            "yes",
            format!("{}", llm.total > study.llm_best_static_total()),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "llm controller moved placement at least twice",
            ">= 2 commits",
            format!("{} commits", llm.commits),
        ));
        out.push('\n');
        out
    });
    cxl_bench::report_solve_cache();
}
