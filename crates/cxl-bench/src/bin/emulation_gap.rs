//! §2.2: how far off is NUMA-based CXL emulation?
//!
//! Most pre-hardware CXL research emulated the expander as a remote
//! NUMA node. The paper points out this "fails to accurately capture
//! the performance characteristics of CXL memory". With both models in
//! one substrate we can quantify the gap: remote-socket DDR (the
//! emulation) vs the calibrated A1000 model (the real thing), at
//! microbenchmark level and through a full KeyDB run.

use cxl_bench::{emit, shape_line};
use cxl_kv::{KvConfig, KvStore, MemProfile};
use cxl_perf::{AccessMix, MemSystem};
use cxl_stats::report::Table;
use cxl_tier::TierConfig;
use cxl_topology::{MemoryTier, NodeId, SncMode, SocketId, Topology};
use cxl_ycsb::Workload;

fn keydb_bound_to(topo: &Topology, node: NodeId) -> f64 {
    let kv = KvConfig {
        record_count: 50_000,
        profile: MemProfile::standard(),
        ..Default::default()
    };
    let mut store = KvStore::new(topo, TierConfig::bind(vec![node]), kv, false);
    store.run(Workload::C, 80_000).throughput_ops
}

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let topo = Topology::paper_testbed(SncMode::Disabled);
    let sys = MemSystem::new(&topo);
    let s0 = SocketId(0);
    let nodes = sys.nodes().to_vec();
    let local_dram = nodes
        .iter()
        .find(|n| n.tier == MemoryTier::LocalDram && n.socket == s0)
        .unwrap()
        .id;
    let remote_dram = nodes
        .iter()
        .find(|n| n.tier == MemoryTier::LocalDram && n.socket != s0)
        .unwrap()
        .id;
    let cxl = nodes
        .iter()
        .find(|n| n.tier == MemoryTier::CxlExpander)
        .unwrap()
        .id;

    let mut table = Table::new(
        "emulation-gap",
        "NUMA emulation (remote DDR) vs real ASIC CXL",
        &["metric", "NUMA emulation", "real CXL", "emulation error"],
    );
    let read = AccessMix::read_only();
    let emu_lat = sys.idle_latency_ns(s0, remote_dram, read);
    let cxl_lat = sys.idle_latency_ns(s0, cxl, read);
    table.push_row(vec![
        "idle read latency (ns)".into(),
        format!("{emu_lat:.0}"),
        format!("{cxl_lat:.0}"),
        format!("{:.0}% low", 100.0 * (1.0 - emu_lat / cxl_lat)),
    ]);
    for mix in [
        AccessMix::read_only(),
        AccessMix::ratio(2, 1),
        AccessMix::write_only(),
    ] {
        let emu = sys.max_bandwidth_gbps(s0, remote_dram, mix);
        let real = sys.max_bandwidth_gbps(s0, cxl, mix);
        table.push_row(vec![
            format!("peak bandwidth {} (GB/s)", mix.label()),
            format!("{emu:.1}"),
            format!("{real:.1}"),
            format!("{:+.0}%", 100.0 * (emu / real - 1.0)),
        ]);
    }

    // Application level: what slowdown would each methodology predict
    // for running a workload entirely on the expansion tier?
    let base = keydb_bound_to(&topo, local_dram);
    let emu = keydb_bound_to(&topo, remote_dram);
    let real = keydb_bound_to(&topo, cxl);
    let emu_penalty = 1.0 - emu / base;
    let real_penalty = 1.0 - real / base;
    table.push_row(vec![
        "KeyDB YCSB-C penalty vs MMEM".into(),
        format!("{:.1}%", 100.0 * emu_penalty),
        format!("{:.1}%", 100.0 * real_penalty),
        format!(
            "underestimates by {:.1} pts",
            100.0 * (real_penalty - emu_penalty)
        ),
    ]);

    emit(&table, || {
        let mut out = table.render();
        out.push('\n');
        out.push_str("# shape check (paper §2.2 vs this model)\n");
        out.push_str(&shape_line(
            "emulation captures CXL accurately",
            "no (latency and link limits differ)",
            format!(
                "latency {:.0}% low, app penalty {:.1} pts low",
                100.0 * (1.0 - emu_lat / cxl_lat),
                100.0 * (real_penalty - emu_penalty)
            ),
        ));
        out.push('\n');
        out
    });
}
