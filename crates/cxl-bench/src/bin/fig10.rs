//! Regenerates Fig. 10: LLM inference serving rate, single-backend
//! bandwidth, and KV-cache bandwidth (§5).

use cxl_bench::{emit, figure_text, report_solve_cache, runner_from_args, shape_line};
use cxl_core::experiments::llm;

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = llm::run_with(&runner_from_args());
    report_solve_cache();
    emit(&study, || {
        let mut out = String::new();
        out.push_str(&figure_text(&study.fig10a()));
        out.push('\n');
        out.push_str(&figure_text(&study.fig10b()));
        out.push('\n');
        out.push_str(&figure_text(&study.fig10c()));
        out.push('\n');
        out.push_str("# shape check (paper §5.2 vs this run)\n");
        out.push_str(&shape_line(
            "3:1 gain over MMEM at 60 threads",
            "+95%",
            format!(
                "+{:.0}%",
                100.0 * (study.rate("3:1", 60) / study.rate("MMEM", 60) - 1.0)
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "MMEM deficit vs 1:3 at 72 threads",
            "~14%",
            format!(
                "{:.1}%",
                100.0 * (1.0 - study.rate("MMEM", 72) / study.rate("1:3", 72))
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "MMEM wins at 24 threads",
            "yes (linear regime)",
            format!("{}", study.rate("MMEM", 24) >= study.rate("1:3", 24)),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "single-backend plateau",
            "24.2 GB/s @ 24 threads",
            format!(
                "{:.1} GB/s",
                study
                    .backend_bw
                    .iter()
                    .find(|&&(t, _)| t == 24)
                    .map(|&(_, b)| b)
                    .unwrap_or(0.0)
            ),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "KV-cache bandwidth floor/plateau",
            "~12 / ~21 GB/s",
            format!(
                "{:.1} / {:.1} GB/s",
                study.kv_bw.first().map(|&(_, b)| b).unwrap_or(0.0),
                study.kv_bw.last().map(|&(_, b)| b).unwrap_or(0.0)
            ),
        ));
        out.push('\n');
        out
    });
}
