//! §5.3 extension: bandwidth-aware tiering vs capacity-only tiering.
//!
//! Not a paper figure — this regenerates the experiment the paper's
//! closing insight *implies*: a tiering policy that watches DRAM
//! bandwidth (not just capacity) avoids promoting hot pages into an
//! already-contended top tier, and sheds load to the expander instead.

use cxl_bench::{emit, runner_from_args, shape_line};
use cxl_core::experiments::balancer::{run_with, BalancerParams, BalancerPolicy};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = run_with(&runner_from_args(), BalancerParams::default());
    emit(&study, || {
        let mut out = study.table().render();
        out.push('\n');
        out.push_str("# DRAM bandwidth utilization / DRAM-resident fraction at 80 GB/s offered\n");
        for p in BalancerPolicy::all() {
            let c = study.cell(p, 80.0);
            out.push_str(&format!(
                "  {:<12} util {:.2}  resident {:.2}  suppressed promotions {}\n",
                p.label(),
                c.dram_util,
                c.dram_resident,
                c.suppressed
            ));
        }
        out.push('\n');
        let hp = study.cell(BalancerPolicy::HotPromote, 80.0).delivered_gbps;
        let bw = study
            .cell(BalancerPolicy::BandwidthAware, 80.0)
            .delivered_gbps;
        let mmem = study.cell(BalancerPolicy::MmemOnly, 80.0).delivered_gbps;
        out.push_str("# shape check (§5.3 insight vs this run, 80 GB/s offered)\n");
        out.push_str(&shape_line(
            "capacity-only tiering slows bandwidth-bound work",
            "yes (promotion past the knee)",
            format!("Hot-Promote {hp:.1} vs BW-Aware {bw:.1} GB/s"),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "offloading beats MMEM-only despite CXL latency",
            "yes (§3.4/§5.3)",
            format!("BW-Aware {bw:.1} vs MMEM {mmem:.1} GB/s"),
        ));
        out.push('\n');
        out
    });
}
