//! Fault-tolerance sweep: KeyDB serving across expander faults of
//! rising severity (link downgrade, latency inflation, capacity loss,
//! full failure). No paper figure — this exercises the graceful-
//! degradation machinery the §6 fleet-economics story implies.

use cxl_bench::{emit, runner_from_args, shape_line};
use cxl_core::experiments::faults::{run_with, FaultParams};

fn main() {
    let _metrics = cxl_bench::metrics_guard();
    let study = run_with(&runner_from_args(), FaultParams::default());
    emit(&study, || {
        let mut out = String::new();
        out.push_str(&study.table().render());
        out.push('\n');

        out.push_str("# shape check (graceful degradation vs this run)\n");
        out.push_str(&shape_line(
            "every scenario keeps serving",
            "yes",
            format!("{}", study.cells.iter().all(|c| c.post_kops > 0.0)),
        ));
        out.push('\n');
        let offline = study.cell("offline");
        out.push_str(&shape_line(
            "pages left on dead expander",
            "0",
            offline.pages_left_on_node,
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "dead expander forces SSD spill",
            "yes",
            format!("{}", offline.pages_to_ssd > 0),
        ));
        out.push('\n');
        out.push_str(&shape_line(
            "evacuation is rate limited",
            "> 0 ms",
            format!("{:.0} ms", offline.recovery_ms),
        ));
        out.push('\n');
        let idle_ok = study
            .cells
            .iter()
            .all(|c| (c.post_idle_cxl_ns - c.expected_idle_cxl_ns).abs() <= 1e-9);
        out.push_str(&shape_line(
            "post-fault idle latency = degraded-topology solve",
            "equal",
            format!("{idle_ok}"),
        ));
        out.push('\n');
        let healthy = study.cell("healthy");
        for s in ["link-x4", "latency-4x", "offline"] {
            let c = study.cell(s);
            out.push_str(&shape_line(
                &format!("{s} throughput retained"),
                "< 100%",
                format!("{:.1}%", 100.0 * c.post_kops / healthy.post_kops),
            ));
            out.push('\n');
        }
        out
    });
    cxl_bench::report_solve_cache();
}
