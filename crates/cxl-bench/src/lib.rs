#![warn(missing_docs)]

//! Shared output helpers for the table/figure regeneration binaries.
//!
//! Every binary prints the paper artifact as aligned text; passing
//! `--json` switches to a machine-readable dump. Run them with, e.g.:
//!
//! ```text
//! cargo run --release -p cxl-bench --bin fig3
//! cargo run --release -p cxl-bench --bin fig5 -- --json
//! ```

use serde::Serialize;

pub mod speed;

/// True when `--json` was passed on the command line.
pub fn json_mode() -> bool {
    std::env::args().any(|a| a == "--json")
}

/// Builds the experiment runner for a regeneration binary.
///
/// Worker count precedence: `--jobs N` (or `--jobs=N`) on the command
/// line, then the `CXL_JOBS` environment variable, then the machine's
/// available parallelism. Output is bit-identical for any value.
pub fn runner_from_args() -> cxl_core::Runner {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        let n = if a == "--jobs" {
            args.next().and_then(|v| v.parse::<usize>().ok())
        } else {
            a.strip_prefix("--jobs=")
                .and_then(|v| v.parse::<usize>().ok())
        };
        if let Some(n) = n.filter(|&n| n > 0) {
            return cxl_core::Runner::new(n);
        }
    }
    cxl_core::Runner::from_env()
}

/// Destination of the metrics export, from `--metrics <path>`,
/// `--metrics=<path>`, or the `CXL_METRICS` environment variable (flag
/// wins). `None` disables metrics collection entirely.
pub fn metrics_path() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--metrics" {
            if let Some(p) = args.next() {
                return Some(p.into());
            }
        } else if let Some(p) = a.strip_prefix("--metrics=") {
            return Some(p.into());
        }
    }
    std::env::var("CXL_METRICS")
        .ok()
        .filter(|v| !v.trim().is_empty())
        .map(Into::into)
}

/// Enables metrics collection when a destination is configured and
/// exports the registry when dropped.
///
/// Call at the top of every regeneration binary's `main`:
///
/// ```no_run
/// let _metrics = cxl_bench::metrics_guard();
/// ```
///
/// With no `--metrics`/`CXL_METRICS`, collection stays disabled and the
/// instrumentation throughout the simulation crates remains a no-op.
#[must_use = "the guard exports metrics when dropped"]
pub fn metrics_guard() -> MetricsGuard {
    let path = metrics_path();
    if path.is_some() {
        cxl_obs::enable();
    }
    MetricsGuard { path }
}

/// RAII handle returned by [`metrics_guard`]; writes the JSON export on
/// drop.
#[derive(Debug)]
pub struct MetricsGuard {
    path: Option<std::path::PathBuf>,
}

impl Drop for MetricsGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else {
            return;
        };
        let json = cxl_obs::global().export_json();
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("# metrics written to {}", path.display()),
            Err(e) => eprintln!("# failed to write metrics to {}: {e}", path.display()),
        }
    }
}

/// Reports the `cxl-perf` solve-cache hit rate on stderr.
///
/// Goes to stderr so stdout stays byte-comparable between runs at
/// different `--jobs` values; call it after the study completes in
/// binaries that drive the analytic solver.
pub fn report_solve_cache() {
    let stats = cxl_perf::solve_cache_stats();
    if stats.hits + stats.misses > 0 {
        eprintln!(
            "# solve cache: {} hits, {} misses ({:.1}% hit rate)",
            stats.hits,
            stats.misses,
            stats.hit_rate() * 100.0
        );
    }
}

/// True when `--chart` was passed on the command line.
pub fn chart_mode() -> bool {
    std::env::args().any(|a| a == "--chart")
}

/// Renders a figure either as an ASCII chart (with `--chart`) or as its
/// plain `x y` listing.
pub fn figure_text(fig: &cxl_stats::report::Figure) -> String {
    if chart_mode() {
        cxl_stats::chart::render_chart(fig, 72, 20)
    } else {
        fig.render()
    }
}

/// Prints a serializable report either as JSON (with `--json`) or via
/// the provided text renderer.
pub fn emit<T: Serialize>(value: &T, text: impl FnOnce() -> String) {
    if json_mode() {
        println!(
            "{}",
            serde_json::to_string_pretty(value).expect("report serializes")
        );
    } else {
        println!("{}", text());
    }
}

/// Formats a `paper vs measured` comparison line for the shape summary
/// each binary appends.
pub fn shape_line(what: &str, paper: &str, measured: impl std::fmt::Display) -> String {
    format!("  {what:<58} paper: {paper:<18} measured: {measured}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_line_contains_fields() {
        let l = shape_line("MMEM idle latency", "97 ns", "97.0 ns");
        assert!(l.contains("97 ns"));
        assert!(l.contains("measured"));
    }
}
