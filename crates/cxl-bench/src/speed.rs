//! Workloads behind `benches/speed.rs` and the bench smoke tests.
//!
//! The engine-churn workload models the `cxl-ctl` probe pattern that
//! motivated the arena engine: every wave schedules a burst of timers,
//! cancels most of them before they fire (probe timeouts that the probe
//! beat), and drains the survivors. It runs against both the current
//! arena engine and [`legacy`], a faithful copy of the pre-arena
//! `BinaryHeap` + `HashMap` + `cancelled: HashSet` design, so the
//! `BENCH_*.json` trajectory carries the before/after ratio instead of
//! a single uninterpretable number.
//!
//! The solver-probe workload models `cxl-ctl` autotuning: one knob
//! moves per step, so one flow of a component-disjoint set is dirtied
//! per solve. Run `incremental: true` (the production `solve` path)
//! against `incremental: false` (the monolithic uncached reference) for
//! the re-solve gain.

use cxl_perf::{AccessMix, FlowSpec, MemSystem};
use cxl_topology::{NodeId, SncMode, SocketId, Topology};

/// A faithful copy of the pre-arena event engine, kept as the
/// benchmark baseline. Same semantics the old `cxl-sim` engine had on
/// the happy path (its `run_until`/`is_idle` bugs are not exercised by
/// the churn workload); same `cxl-obs` calls, so the comparison
/// isolates the storage design.
pub mod legacy {
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashMap, HashSet};

    use cxl_sim::SimTime;

    /// Handle to a scheduled event.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct EventId(u64);

    type EventFn<S> = Box<dyn FnOnce(&mut Engine<S>)>;

    struct Scheduled<S> {
        id: EventId,
        f: EventFn<S>,
    }

    /// The old heap + side-map + cancel-set engine.
    pub struct Engine<S> {
        now: SimTime,
        seq: u64,
        heap: BinaryHeap<Reverse<(SimTime, u64)>>,
        events: HashMap<(SimTime, u64), Scheduled<S>>,
        cancelled: HashSet<EventId>,
        state: S,
        executed: u64,
    }

    impl<S> Engine<S> {
        /// Creates an engine at time zero with the given state.
        pub fn new(state: S) -> Self {
            Self {
                now: SimTime::ZERO,
                seq: 0,
                heap: BinaryHeap::new(),
                events: HashMap::new(),
                cancelled: HashSet::new(),
                state,
                executed: 0,
            }
        }

        /// Current virtual time.
        pub fn now(&self) -> SimTime {
            self.now
        }

        /// Number of events executed so far.
        pub fn executed(&self) -> u64 {
            self.executed
        }

        /// Mutable access to the user state.
        pub fn state_mut(&mut self) -> &mut S {
            &mut self.state
        }

        /// Schedules an event at an absolute time.
        pub fn schedule_at(
            &mut self,
            at: SimTime,
            f: impl FnOnce(&mut Engine<S>) + 'static,
        ) -> EventId {
            assert!(at >= self.now, "cannot schedule into the past");
            let id = EventId(self.seq);
            let key = (at, self.seq);
            self.seq += 1;
            self.heap.push(Reverse(key));
            self.events.insert(key, Scheduled { id, f: Box::new(f) });
            cxl_obs::counter_max("sim/heap_depth_max", self.heap.len() as u64);
            id
        }

        /// Marks an event cancelled; the entry is reaped when popped.
        pub fn cancel(&mut self, id: EventId) {
            self.cancelled.insert(id);
        }

        /// Executes the next non-cancelled event.
        pub fn step(&mut self) -> bool {
            while let Some(Reverse(key)) = self.heap.pop() {
                let ev = self
                    .events
                    .remove(&key)
                    .expect("heap key without event entry");
                if self.cancelled.remove(&ev.id) {
                    cxl_obs::counter_add("sim/events_cancelled", 1);
                    continue;
                }
                self.now = key.0;
                self.executed += 1;
                cxl_obs::counter_add("sim/events_executed", 1);
                (ev.f)(self);
                return true;
            }
            false
        }

        /// Runs until the queue drains.
        pub fn run(&mut self) {
            while self.step() {}
        }

        /// Runs events with timestamps `<= until`, then advances the
        /// clock to `until`.
        pub fn run_until(&mut self, until: SimTime) {
            while let Some(&Reverse((t, _))) = self.heap.peek() {
                if t > until {
                    break;
                }
                self.step();
            }
            if self.now < until {
                self.now = until;
            }
        }
    }
}

use cxl_sim::SimTime;

/// Wave length in virtual ns; timer offsets stay inside one wave.
const WAVE_NS: u64 = 1_000;

/// Fraction of each wave's timers cancelled before firing: 19 of 20,
/// the probe-timeout regime the arena design is built for.
const KEEP_EVERY: usize = 20;

macro_rules! churn_body {
    ($engine:ty, $waves:expr, $per_wave:expr) => {{
        let mut e: $engine = <$engine>::new(0u64);
        for _ in 0..$waves {
            let base = e.now();
            let mut ids = Vec::with_capacity($per_wave);
            for i in 0..$per_wave {
                let at = base + SimTime::from_ns(1 + (i as u64 * 7) % (WAVE_NS - 1));
                ids.push(e.schedule_at(at, |e| *e.state_mut() += 1));
            }
            for (i, id) in ids.into_iter().enumerate() {
                if i % KEEP_EVERY != 0 {
                    e.cancel(id);
                }
            }
            e.run_until(base + SimTime::from_ns(WAVE_NS));
        }
        e.run();
        e.executed()
    }};
}

/// Runs the churn workload on the current arena engine; returns the
/// executed-event count (for cross-checking against [`churn_legacy`]).
pub fn churn_arena(waves: usize, per_wave: usize) -> u64 {
    churn_body!(cxl_sim::Engine<u64>, waves, per_wave)
}

/// Runs the identical workload on the [`legacy`] engine copy.
pub fn churn_legacy(waves: usize, per_wave: usize) -> u64 {
    churn_body!(legacy::Engine<u64>, waves, per_wave)
}

/// The SNC-4 testbed system plus a 24-flow set over the six
/// socket-local nodes of socket 0 (four flows per node), shaped like
/// the multi-tenant flow sets `cxl-ctl` re-solves during knob probes:
/// six resource-disjoint components of four contending flows each.
pub fn probe_system() -> (MemSystem, Vec<FlowSpec>) {
    let sys = MemSystem::new(&Topology::paper_testbed(SncMode::Snc4));
    let nodes = [0usize, 1, 2, 3, 8, 9];
    let flows = (0..24)
        .map(|i| {
            FlowSpec::new(
                SocketId(0),
                NodeId(nodes[i % nodes.len()]),
                AccessMix::ratio(2, 1),
                10.0 + i as f64,
            )
        })
        .collect();
    (sys, flows)
}

/// Runs `probes` single-knob perturbation solves and returns a
/// value-bearing accumulator (so the work can't be optimized away).
///
/// The knob values are quantized to a small grid, the way `cxl-ctl`
/// probes quantized settings, and the process-wide caches persist
/// across calls the way they persist across an experiment — so the
/// loop exercises the production mix: full-key memo hits on revisited
/// operating points, component replays plus one dirty re-converge on
/// new ones. `incremental: true` uses the production `solve` path;
/// `false` re-solves monolithically from scratch each time via
/// `solve_reference`. Both paths are bit-identical in output —
/// `crates/cxl-perf/tests/incremental_solve.rs` pins that — so the
/// ratio is pure speed.
pub fn solver_probe_slice(probes: usize, incremental: bool) -> f64 {
    let (sys, mut flows) = probe_system();
    let mut acc = 0.0;
    for p in 0..probes {
        let k = p % flows.len();
        flows[k].offered_gbps = 10.0 + ((p * 13) % 40) as f64 * 0.25;
        let result = if incremental {
            sys.solve(&flows)
        } else {
            sys.solve_reference(&flows).expect("reference solve")
        };
        acc += result.flows[k].achieved_gbps;
    }
    acc
}

/// Generates `ops` YCSB-A operations with a live obs registry (the
/// metrics-enabled production regime, where the per-op counter flush
/// is the cost being amortized) and returns a key checksum. `batched:
/// true` draws blocks of 1024 via `Generator::batch` — the block path
/// the KV run loops use — `false` draws per-op; both produce the same
/// op stream, so the ratio is pure generation overhead.
pub fn ycsb_gen_slice(ops: usize, batched: bool) -> u64 {
    use cxl_ycsb::{Generator, GeneratorConfig, Workload};
    let registry = std::sync::Arc::new(cxl_obs::Registry::new());
    let _scope = cxl_obs::scope(registry);
    let mut g = Generator::new(
        Workload::A,
        GeneratorConfig {
            record_count: 100_000,
            value_size: 1024,
            seed: 42,
        },
    );
    let mut acc = 0u64;
    if batched {
        let mut remaining = ops;
        while remaining > 0 {
            let n = remaining.min(1024);
            for op in g.batch(n) {
                acc = acc.wrapping_add(op.key());
            }
            remaining -= n;
        }
    } else {
        for _ in 0..ops {
            acc = acc.wrapping_add(g.next_op().key());
        }
    }
    acc
}

/// Drives the tier-manager touch hot path: `touches` accesses over a
/// strided page pattern with periodic scan ticks, under hot-page
/// selection (the Fig. 5 regime). `batched: true` goes through
/// `TierManager::touch_batch` in 256-access blocks, `false` touches
/// per-op; `tests/touch_props.rs` pins the two paths to identical
/// outcomes, so the bench ratio isolates dispatch overhead. Returns a
/// stats checksum so the work cannot be optimized away.
pub fn tier_touch_slice(touches: usize, batched: bool) -> u64 {
    use cxl_sim::SimTime;
    use cxl_tier::{
        AllocPolicy, HotPageConfig, MigrationMode, NumaBalancingConfig, Rw, TierConfig, TierManager,
    };
    const DRAM0: NodeId = NodeId(0);
    const CXL0: NodeId = NodeId(2);
    const PAGES: u64 = 4096;
    const BLOCK: usize = 256;
    let mut cfg = TierConfig::bind(vec![CXL0, DRAM0]);
    cfg.policy = AllocPolicy::interleave(vec![DRAM0], vec![CXL0], 1, 3);
    cfg.migration = MigrationMode::HotPageSelection(HotPageConfig {
        balancing: NumaBalancingConfig {
            scan_period: SimTime::from_ms(1),
            scan_pages: 512,
            ..Default::default()
        },
        ..Default::default()
    });
    cfg.capacity_override = vec![
        (DRAM0, 1024 * cfg.page_size),
        (NodeId(1), 0),
        (CXL0, PAGES * cfg.page_size),
        (NodeId(3), 0),
    ];
    cfg.allow_ssd_spill = true;
    let mut tm = TierManager::new(&Topology::paper_testbed(SncMode::Disabled), cfg);
    let pages = tm.alloc_n(PAGES, SimTime::ZERO).expect("spill enabled");
    let mut acc = 0u64;
    for (step, chunk_base) in (0..touches).step_by(BLOCK).enumerate() {
        let now = SimTime::from_ms(step as u64 + 1);
        tm.tick(now);
        let n = BLOCK.min(touches - chunk_base);
        let batch: Vec<(cxl_tier::PageId, Rw, u64)> = (0..n)
            .map(|i| {
                let j = chunk_base + i;
                // Strided hot set: 1/8 of touches hammer 64 pages.
                let page = if j % 8 == 0 {
                    pages[(j * 31) % 64]
                } else {
                    pages[(j * 131) % pages.len()]
                };
                (page, if j % 4 == 0 { Rw::Write } else { Rw::Read }, 4096)
            })
            .collect();
        if batched {
            for o in tm.touch_batch(&batch, now) {
                acc = acc.wrapping_add(o.promoted as u64);
            }
        } else {
            for &(p, rw, bytes) in &batch {
                acc = acc.wrapping_add(tm.touch(p, rw, bytes, now).promoted as u64);
            }
        }
    }
    acc.wrapping_add(tm.stats().hint_faults)
}

/// One Fig. 5 KV cell (Hot-Promote, YCSB-C) at reduced size: the
/// KV-simulation slice of the trajectory, dominated by engine dispatch
/// and tier-manager touches.
pub fn fig5_slice(record_count: u64, ops: u64, warmup_ops: u64) -> f64 {
    use cxl_core::experiments::keydb::{run_cell, Fig5Params};
    let cell = run_cell(
        cxl_core::CapacityConfig::HotPromote,
        cxl_ycsb::Workload::C,
        Fig5Params {
            record_count,
            ops,
            warmup_ops,
            seed: 42,
        },
    );
    cell.throughput_ops
}

/// Open-loop arrival generation for one bursty diurnal tenant: the
/// trace-materialization slice of the serving front end (piecewise
/// Poisson sampling over phase/burst rate segments), which runs before
/// the engine starts and scales with offered load.
pub fn arrival_gen_slice(rate_rps: f64, phases: usize) -> usize {
    use cxl_serve::{BurstConfig, CostConfig, Phase, ServeConfig, TenantClass, TenantConfig};
    use cxl_sim::SimTime;
    let tenant = TenantConfig {
        name: "bench".to_string(),
        class: TenantClass::Kv {
            workload: cxl_ycsb::Workload::B,
            ops_per_request: 64,
            record_count: 1,
        },
        base_rate_rps: rate_rps,
        phase_mults: (0..phases).map(|i| 0.5 + (i % 4) as f64 * 0.5).collect(),
        burst: Some(BurstConfig {
            mult: 1.5,
            mean_on_s: 0.3,
            mean_off_s: 0.9,
        }),
        queue_cap: 1,
        admission_rate_rps: rate_rps,
        admission_burst: 1.0,
        workers: 1,
        slo_p99_ms: 1.0,
    };
    let cfg = ServeConfig {
        tenants: vec![tenant],
        phases: (0..phases)
            .map(|i| Phase::new(&format!("p{i}"), SimTime::from_ms(500)))
            .collect(),
        autoscale: None,
        static_lease_slabs: 0,
        fault_at: None,
        pool_slabs: 0,
        cost: CostConfig::default(),
        seed: 42,
    };
    cxl_serve::arrival::generate_arrivals(&cfg, 0).len()
}

/// One DRAM-lean managed-heap cell end-to-end (graph generation,
/// mutator chases with nursery churn, GC traces, epoch repricing):
/// the `cxl-heap` slice of the trajectory, dominated by per-touch
/// tier-manager work on a storm-prone configuration.
pub fn heap_gc_slice(old_objects: u32, gc_cycles: u32) -> u64 {
    use cxl_heap::{GraphConfig, HeapParams, HeapWorkload, ObjectGraph};
    use cxl_sim::SimTime;
    use cxl_tier::{AllocPolicy, HotPageConfig, MigrationMode, NumaBalancingConfig, TierConfig};
    const DRAM0: NodeId = NodeId(0);
    const CXL0: NodeId = NodeId(2);
    let params = HeapParams {
        graph: GraphConfig {
            old_objects,
            young_objects: old_objects / 8,
            ..GraphConfig::default()
        },
        gc_cycles,
        mutator_ops_per_cycle: 10_000,
        hot_bias: 0.99,
        ..HeapParams::default()
    };
    let g = ObjectGraph::build(&params.graph, 4096, params.seed);
    let heap_pages = u64::from(g.page_count) + params.nursery_pages + 16;
    let mut cfg = TierConfig::bind(vec![DRAM0]);
    cfg.policy = AllocPolicy::interleave(vec![DRAM0], vec![CXL0], 1, 3);
    cfg.capacity_override = vec![
        (DRAM0, heap_pages * 2 / 5 * cfg.page_size),
        (NodeId(1), 0),
        (CXL0, 2 * heap_pages * cfg.page_size),
        (NodeId(3), 0),
    ];
    cfg.migration = MigrationMode::HotPageSelection(HotPageConfig {
        balancing: NumaBalancingConfig {
            scan_period: SimTime::from_ms(8),
            scan_pages: 8192,
            hot_threshold: SimTime::from_ms(12),
            hint_fault_cost: SimTime::from_ns(300),
        },
        ..Default::default()
    });
    let topo = Topology::paper_testbed(SncMode::Disabled);
    let report = HeapWorkload::new(&topo, cfg, params, false, None).run();
    report.objects_traced + report.tier.promotions + report.mutator.count()
}

/// One calibration fit end-to-end (shipped measurement parse,
/// perturbed start, seeded coordinate descent driving the
/// loaded-latency harness): the `cxl-calib` slice of the trajectory,
/// dominated by analytic solves at the measurement set's offered
/// rates with a cold cache entry per candidate vector.
pub fn calib_fit_slice(rounds: usize) -> u64 {
    use cxl_calib::{fit, CalibrationTarget, FitConfig, SerialMap};
    let t = CalibrationTarget::by_name("cxlmemsim_pure").expect("target registered");
    let topo = t.topology();
    let set = t.measurements();
    let space = t.space();
    let start = space.perturbed_start(&cxl_perf::ModelParams::default(), 42, 0.1);
    let cfg = FitConfig {
        rounds,
        ..FitConfig::default()
    };
    fit(&SerialMap, &topo, &set, &space, start, &cfg).evaluations
}
