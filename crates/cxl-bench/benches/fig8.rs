//! Criterion bench for the Fig. 8 MMEM-vs-CXL KeyDB comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cxl_core::experiments::vm::{run, Fig8Params};

fn bench_fig8(c: &mut Criterion) {
    let params = Fig8Params {
        record_count: 30_000,
        ops: 30_000,
        seed: 42,
    };

    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    g.bench_function("mmem_vs_cxl_study", |b| b.iter(|| black_box(run(params))));
    g.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
