//! Criterion bench for the Fig. 7 Spark/TPC-H simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cxl_spark::runner::{run_all, run_query};
use cxl_spark::{tpch_queries, ClusterConfig};

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(20);

    let q9 = tpch_queries().into_iter().find(|q| q.name == "Q9").unwrap();
    g.bench_function("q9_baseline", |b| {
        let cfg = ClusterConfig::baseline();
        b.iter(|| black_box(run_query(&cfg, &q9)))
    });
    g.bench_function("q9_interleave_1_3", |b| {
        let cfg = ClusterConfig::cxl_interleave(1, 3);
        b.iter(|| black_box(run_query(&cfg, &q9)))
    });
    g.bench_function("all_queries_all_configs", |b| {
        b.iter(|| {
            for cfg in [
                ClusterConfig::baseline(),
                ClusterConfig::cxl_interleave(3, 1),
                ClusterConfig::cxl_interleave(1, 1),
                ClusterConfig::cxl_interleave(1, 3),
                ClusterConfig::spill(0.8),
                ClusterConfig::spill(0.6),
                ClusterConfig::hot_promote(),
            ] {
                black_box(run_all(&cfg));
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
