//! Criterion benches for the extension studies: the bandwidth-aware
//! balancer, pooling economics, fleet mixtures, and tuned platforms.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cxl_alloc::{AllocConfig, TieredAllocator};
use cxl_core::experiments::balancer::{run_cell, BalancerParams, BalancerPolicy};
use cxl_cost::pooling::evaluate;
use cxl_cost::{AppClass, CostModelParams, FleetMixture, PoolingConfig};
use cxl_llm::server::{simulate as serve, ServerConfig};
use cxl_llm::{LlmCluster, LlmConfig, LlmPlacement};
use cxl_perf::{AccessMix, MemSystem, PerfTuning};
use cxl_sim::SimTime;
use cxl_tier::TierConfig;
use cxl_topology::{NodeId, SncMode, SocketId, Topology};

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);

    let quick = BalancerParams {
        pages: 4_000,
        touches_per_epoch: 500,
        warmup_epochs: 30,
        measure_epochs: 10,
        ..Default::default()
    };
    g.bench_function("balancer_bw_aware_cell", |b| {
        b.iter(|| black_box(run_cell(BalancerPolicy::BandwidthAware, 80.0, quick)))
    });
    g.bench_function("balancer_hot_promote_cell", |b| {
        b.iter(|| black_box(run_cell(BalancerPolicy::HotPromote, 80.0, quick)))
    });

    g.bench_function("pooling_16_hosts", |b| {
        let cfg = PoolingConfig {
            samples: 5_000,
            ..Default::default()
        };
        b.iter(|| black_box(evaluate(cfg)))
    });

    g.bench_function("fleet_mixture_eval", |b| {
        let fleet = FleetMixture::new(vec![
            AppClass {
                name: "kv".into(),
                fleet_fraction: 0.5,
                params: CostModelParams::default(),
            },
            AppClass {
                name: "spark".into(),
                fleet_fraction: 0.5,
                params: CostModelParams {
                    rc: 4.0,
                    ..Default::default()
                },
            },
        ]);
        b.iter(|| black_box((fleet.server_ratio(), fleet.tco_saving())))
    });

    g.bench_function("alloc_free_churn_10k", |b| {
        let topo = Topology::paper_testbed(SncMode::Disabled);
        b.iter(|| {
            let mut a = TieredAllocator::new(
                &topo,
                TierConfig::bind(vec![NodeId(0)]),
                AllocConfig::default(),
            );
            let mut ids = Vec::new();
            for i in 0..10_000u64 {
                ids.push(a.alloc(64 + (i % 1024), SimTime::ZERO).unwrap());
                if i % 3 == 0 {
                    a.free(ids.swap_remove((i as usize * 7) % ids.len()));
                }
            }
            black_box(a.fragmentation())
        })
    });

    g.bench_function("llm_serving_stack_400_requests", |b| {
        let cluster = LlmCluster::new(LlmConfig::default());
        let cfg = ServerConfig {
            placement: LlmPlacement::Interleave { n: 3, m: 1 },
            ..Default::default()
        };
        b.iter(|| black_box(serve(&cluster, &cfg)))
    });

    g.bench_function("tuned_system_build_and_probe", |b| {
        let topo = Topology::paper_testbed(SncMode::Snc4);
        b.iter(|| {
            let sys = MemSystem::with_tuning(&topo, PerfTuning::rsf_fixed());
            black_box(sys.max_bandwidth_gbps(SocketId(1), NodeId(8), AccessMix::ratio(2, 1)))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
