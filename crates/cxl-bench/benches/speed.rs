//! The engine speed program's trajectory benches (ROADMAP item 1).
//!
//! Three slices, exported per-PR into `BENCH_*.json` (see
//! EXPERIMENTS.md "Benchmarking"): engine churn with heavy
//! cancellation on both the arena engine and the pre-arena legacy copy
//! (their ratio is the headline speedup), the solver knob-probe loop on
//! the incremental and monolithic paths, and a reduced Fig. 5 KV cell
//! as the end-to-end macro slice.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use cxl_bench::speed;

fn bench_speed(c: &mut Criterion) {
    let mut g = c.benchmark_group("speed");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));

    // Engine churn: 4 waves of 50k timers, 95% cancelled before
    // firing — the backlog peaks at 50k pending events, the regime the
    // legacy side-map design pays for in cache misses.
    g.bench_function("engine_churn_arena", |b| {
        b.iter(|| black_box(speed::churn_arena(4, 50_000)))
    });
    g.bench_function("engine_churn_legacy", |b| {
        b.iter(|| black_box(speed::churn_legacy(4, 50_000)))
    });

    // Solver knob probes: 64 single-flow perturbations per iteration.
    g.bench_function("solver_probes_incremental", |b| {
        b.iter(|| black_box(speed::solver_probe_slice(64, true)))
    });
    g.bench_function("solver_probes_reference", |b| {
        b.iter(|| black_box(speed::solver_probe_slice(64, false)))
    });

    // YCSB op generation with a live obs registry: block-drawn vs
    // per-op. Their ratio is the fig5-slice generator amortization.
    g.bench_function("ycsb_gen_batched", |b| {
        b.iter(|| black_box(speed::ycsb_gen_slice(100_000, true)))
    });
    g.bench_function("ycsb_gen_per_op", |b| {
        b.iter(|| black_box(speed::ycsb_gen_slice(100_000, false)))
    });

    // Tier-manager touch hot path: touch_batch vs per-op touch over
    // the identical access pattern (pinned equal by touch_props).
    g.bench_function("tier_touch_batched", |b| {
        b.iter(|| black_box(speed::tier_touch_slice(100_000, true)))
    });
    g.bench_function("tier_touch_per_op", |b| {
        b.iter(|| black_box(speed::tier_touch_slice(100_000, false)))
    });

    // KV macro slice: one reduced Fig. 5 cell (Hot-Promote, YCSB-C).
    g.bench_function("kv_fig5_slice", |b| {
        b.iter(|| black_box(speed::fig5_slice(10_000, 8_000, 20_000)))
    });

    // Managed-heap macro slice: a DRAM-lean storm-prone cell (12k-
    // object graph, two GC traces) end-to-end — graph generation,
    // mutator chases, trace sweeps, epoch repricing.
    g.bench_function("heap_gc_slice", |b| {
        b.iter(|| black_box(speed::heap_gc_slice(12_000, 2)))
    });

    // Open-loop arrival materialization: one bursty diurnal tenant at
    // 50k rps over 8 phases (~200k piecewise-Poisson draws), the
    // pre-engine trace-generation slice of the serving front end.
    g.bench_function("serve_arrival_gen", |b| {
        b.iter(|| black_box(speed::arrival_gen_slice(50_000.0, 8)))
    });

    // Calibration macro slice: a three-round coordinate-descent fit of
    // the smallest registry target (4 free dims, 20 points) — the
    // `cxl-calib` share of the trajectory, dominated by analytic
    // solves with a distinct cache fingerprint per candidate.
    g.bench_function("calib_fit_slice", |b| {
        b.iter(|| black_box(speed::calib_fit_slice(3)))
    });

    g.finish();
}

criterion_group!(speed_benches, bench_speed);
criterion_main!(speed_benches);
