//! Criterion bench for the Fig. 3 / Fig. 4 loaded-latency sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cxl_mlc::{Mlc, MlcConfig};
use cxl_perf::{AccessMix, MemSystem};
use cxl_topology::{NodeId, SncMode, SocketId, Topology};

fn bench_fig3_fig4(c: &mut Criterion) {
    let sys = MemSystem::new(&Topology::paper_testbed(SncMode::Snc4));
    let mlc = Mlc::new(MlcConfig::default());

    let mut g = c.benchmark_group("fig3_fig4");
    g.sample_size(20);

    g.bench_function("loaded_latency_sweep_mmem", |b| {
        b.iter(|| {
            black_box(mlc.loaded_latency(&sys, SocketId(0), NodeId(0), AccessMix::read_only()))
        })
    });

    g.bench_function("fig3_full_panel_cxl", |b| {
        b.iter(|| black_box(mlc.fig3_panel(&sys, cxl_perf::Distance::LocalCxl)))
    });

    g.bench_function("fig4_full_panel_2_1", |b| {
        b.iter(|| black_box(mlc.fig4_panel(&sys, AccessMix::ratio(2, 1))))
    });

    g.bench_function("latency_study_complete", |b| {
        b.iter(|| black_box(cxl_core::experiments::latency::run()))
    });

    g.finish();
}

criterion_group!(benches, bench_fig3_fig4);
criterion_main!(benches);
