//! Criterion bench for the Table 2 / Table 3 generators and the cost
//! model evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cxl_cost::{CostModel, CostModelParams, RevenueModel};

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab2_tab3");
    g.sample_size(50);

    g.bench_function("cost_model_eval", |b| {
        let m = CostModel::new(CostModelParams::default());
        b.iter(|| black_box((m.server_ratio(), m.tco_saving())))
    });
    g.bench_function("cost_model_sensitivity_grid", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for rd in 2..=20 {
                for rc in 2..=rd {
                    for c10 in 5..=40 {
                        let m = CostModel::new(CostModelParams {
                            rd: rd as f64,
                            rc: rc as f64,
                            c: c10 as f64 / 10.0,
                            rt: 1.1,
                        });
                        acc += m.tco_saving();
                    }
                }
            }
            black_box(acc)
        })
    });
    g.bench_function("revenue_model_eval", |b| {
        let m = RevenueModel::paper_example();
        b.iter(|| black_box(m.revenue_uplift()))
    });
    g.bench_function("tab2_render", |b| {
        b.iter(|| black_box(cxl_core::experiments::processors::tab2().render()))
    });
    g.bench_function("tab3_render", |b| {
        b.iter(|| black_box(cxl_core::experiments::cost::run().tab3().render()))
    });

    g.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
