//! Criterion bench for the Fig. 5 KeyDB/YCSB cells.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cxl_core::experiments::keydb::{run_cell, Fig5Params};
use cxl_core::CapacityConfig;
use cxl_ycsb::Workload;

fn bench_fig5(c: &mut Criterion) {
    let params = Fig5Params {
        record_count: 30_000,
        ops: 20_000,
        warmup_ops: 0,
        seed: 42,
    };

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);

    for config in [
        CapacityConfig::Mmem,
        CapacityConfig::Interleave11,
        CapacityConfig::MmemSsd04,
        CapacityConfig::HotPromote,
    ] {
        g.bench_function(format!("ycsb_c_{}", config.label()), |b| {
            b.iter(|| black_box(run_cell(config, Workload::C, params)))
        });
    }
    g.bench_function("ycsb_a_MMEM", |b| {
        b.iter(|| black_box(run_cell(CapacityConfig::Mmem, Workload::A, params)))
    });

    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
