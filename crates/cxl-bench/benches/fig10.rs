//! Criterion bench for the Fig. 10 LLM serving sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cxl_llm::{LlmCluster, LlmConfig, LlmPlacement};

fn bench_fig10(c: &mut Criterion) {
    let cluster = LlmCluster::new(LlmConfig::default());
    let axis: Vec<usize> = (1..=8).map(|b| b * 12).collect();

    let mut g = c.benchmark_group("fig10");
    g.sample_size(30);

    g.bench_function("serving_point_mmem_60", |b| {
        b.iter(|| black_box(cluster.serving_rate(LlmPlacement::MmemOnly, 60)))
    });
    g.bench_function("sweep_interleave_3_1", |b| {
        b.iter(|| black_box(cluster.sweep(LlmPlacement::Interleave { n: 3, m: 1 }, &axis)))
    });
    g.bench_function("full_study", |b| {
        b.iter(|| black_box(cxl_core::experiments::llm::run()))
    });

    g.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
