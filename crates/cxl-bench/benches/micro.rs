//! Microbenchmarks of the substrate hot paths: the flow solver, the
//! tier manager's touch/migration path, the event engine, and the
//! statistics primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use cxl_perf::{AccessMix, FlowSpec, MemSystem};
use cxl_sim::{Engine, SimTime};
use cxl_stats::dist::KeyChooser;
use cxl_stats::{Histogram, ScrambledZipfian};
use cxl_tier::{Rw, TierConfig, TierManager};
use cxl_topology::{NodeId, SncMode, SocketId, Topology};

fn bench_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");
    g.sample_size(50);

    // Flow solver: the innermost loop of every experiment.
    let sys = MemSystem::new(&Topology::paper_testbed(SncMode::Snc4));
    let flows: Vec<FlowSpec> = (0..8)
        .map(|i| {
            FlowSpec::new(
                SocketId(i % 2),
                NodeId(i % 10),
                AccessMix::ratio(2, 1),
                10.0 + i as f64,
            )
        })
        .collect();
    g.bench_function("solver_8_flows", |b| {
        b.iter(|| black_box(sys.solve(&flows)))
    });

    // Tier manager touch path.
    let topo = Topology::paper_testbed(SncMode::Disabled);
    let mut tm = TierManager::new(&topo, TierConfig::bind(vec![NodeId(0)]));
    let pages = tm.alloc_n(10_000, SimTime::ZERO).unwrap();
    g.bench_function("tier_touch_10k", |b| {
        b.iter(|| {
            for (i, &p) in pages.iter().enumerate() {
                black_box(tm.touch(p, Rw::Read, 64, SimTime::from_ns(i as u64)));
            }
        })
    });

    // Event engine throughput.
    g.bench_function("engine_10k_events", |b| {
        b.iter(|| {
            let mut e: Engine<u64> = Engine::new(0);
            for i in 0..10_000u64 {
                e.schedule_at(SimTime::from_ns(i), |e| *e.state_mut() += 1);
            }
            e.run();
            black_box(*e.state())
        })
    });

    // Histogram and Zipfian primitives.
    g.bench_function("histogram_record_10k", |b| {
        b.iter(|| {
            let mut h = Histogram::new();
            for i in 0..10_000u64 {
                h.record((i * 97) % 1_000_000 + 1);
            }
            black_box(h.percentile(99.0))
        })
    });
    let mut zipf = ScrambledZipfian::new(1_000_000);
    let mut rng = SmallRng::seed_from_u64(7);
    g.bench_function("zipfian_draw_10k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(zipf.next_key(&mut rng));
            }
            black_box(acc)
        })
    });

    g.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
