//! Keeps `benches/speed.rs` honest from the default `cargo test` tier:
//! `cargo test` never executes `harness = false` bench targets, so
//! these smoke runs exercise the same workload functions at tiny sizes
//! — the benches can't rot into code that no CI path compiles *and*
//! runs.

use cxl_bench::speed;

#[test]
fn churn_workload_agrees_across_engines() {
    // The legacy copy and the arena engine must execute the same
    // events: same survivor count per wave, deterministic schedule.
    let arena = speed::churn_arena(3, 200);
    let legacy = speed::churn_legacy(3, 200);
    assert_eq!(arena, legacy, "churn workload diverged across engines");
    assert!(arena > 0, "churn executed nothing");
    // 1-in-KEEP_EVERY survives each wave of 200, over 3 waves.
    assert_eq!(arena, 30);
}

#[test]
fn solver_probe_paths_agree() {
    let incremental = speed::solver_probe_slice(6, true);
    let reference = speed::solver_probe_slice(6, false);
    assert_eq!(
        incremental.to_bits(),
        reference.to_bits(),
        "incremental and reference probe loops must be bit-identical"
    );
}

#[test]
fn ycsb_gen_paths_agree() {
    // Batched and per-op generation draw the identical op stream, so
    // the key checksums must match exactly.
    let batched = speed::ycsb_gen_slice(5_000, true);
    let per_op = speed::ycsb_gen_slice(5_000, false);
    assert_eq!(batched, per_op, "generation paths diverged");
}

#[test]
fn tier_touch_paths_agree() {
    let batched = speed::tier_touch_slice(20_000, true);
    let per_op = speed::tier_touch_slice(20_000, false);
    assert_eq!(batched, per_op, "touch paths diverged");
    assert!(batched > 0, "touch slice took no hint faults");
}

#[test]
fn fig5_slice_produces_throughput() {
    let tput = speed::fig5_slice(2_000, 1_000, 2_000);
    assert!(
        tput.is_finite() && tput > 0.0,
        "fig5 slice throughput: {tput}"
    );
}

#[test]
fn heap_gc_slice_runs_and_is_deterministic() {
    let a = speed::heap_gc_slice(3_000, 1);
    let b = speed::heap_gc_slice(3_000, 1);
    assert_eq!(a, b, "heap slice must be deterministic");
    // objects_traced > 0 folds in: the trace actually swept the heap.
    assert!(a > 3_000, "heap slice did no work: {a}");
}
