//! The measurement-set format: named (offered-load → latency/bandwidth)
//! point sets with mix/topology labels.
//!
//! A [`MeasurementSet`] is what the fitter fits *against*: a bundle of
//! loaded-latency curves, one per `(distance, mix)` pair, each point
//! carrying the offered injection rate (the sweep protocol's demand
//! knob, which the fitter replays through [`cxl_mlc::Mlc::sweep_at`])
//! and the two observables — achieved bandwidth and loaded latency.
//! Sets ship in-repo as JSON data files (`crates/cxl-calib/data/`) and
//! parse with [`MeasurementSet::from_json`].
//!
//! [`synthesize`] produces a set from a live model — the round-trip
//! anchor of the fitter's property tests, and the generator behind the
//! shipped data files (see `src/bin/regen_data.rs` for provenance).

use serde::{Deserialize, Serialize};

use cxl_mlc::Mlc;
use cxl_perf::{AccessMix, Distance, MemSystem};
use cxl_topology::{NodeId, SocketId};

/// One measured operating point of a loaded-latency sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredPoint {
    /// Offered injection rate of the sweep step, GB/s (the demand the
    /// fitter replays; equal to the achieved bandwidth below
    /// saturation).
    pub offered_gbps: f64,
    /// Measured loaded latency, ns.
    pub latency_ns: f64,
    /// Measured achieved bandwidth, GB/s.
    pub bandwidth_gbps: f64,
}

/// One measured curve: a `(distance, mix)` pair swept over offered load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasuredCurve {
    /// Human-readable label, e.g. `"CXL 2:1"`.
    pub label: String,
    /// Distance label as printed in the paper: `MMEM`, `MMEM-r`, `CXL`,
    /// or `CXL-r` (parsed with [`Distance::from_label`]).
    pub distance: String,
    /// Read:write mix in the paper's notation, e.g. `"2:1"` (parsed
    /// with [`AccessMix::parse`]).
    pub mix: String,
    /// Sweep points in increasing offered load.
    pub points: Vec<MeasuredPoint>,
}

impl MeasuredCurve {
    /// The parsed distance.
    ///
    /// # Panics
    ///
    /// Panics on an unknown label; [`MeasurementSet::validate`] rejects
    /// those up front.
    pub fn parsed_distance(&self) -> Distance {
        Distance::from_label(&self.distance)
            .unwrap_or_else(|| panic!("unknown distance label '{}'", self.distance))
    }

    /// The parsed access mix.
    ///
    /// # Panics
    ///
    /// Panics on a malformed mix; [`MeasurementSet::validate`] rejects
    /// those up front.
    pub fn parsed_mix(&self) -> AccessMix {
        AccessMix::parse(&self.mix).unwrap_or_else(|e| panic!("bad mix '{}': {e}", self.mix))
    }
}

/// A named bundle of measured curves against one topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementSet {
    /// Set name (matches the calibration target name for shipped sets).
    pub name: String,
    /// Provenance note: where the numbers come from.
    pub source: String,
    /// Label of the topology the measurements were taken on
    /// (informational; the target registry owns the builder).
    pub topology: String,
    /// The measured curves.
    pub curves: Vec<MeasuredCurve>,
}

impl MeasurementSet {
    /// Parses a set from its JSON representation.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntactic or semantic problem
    /// (malformed JSON, unknown distance/mix labels, non-positive
    /// observables, unordered sweeps).
    pub fn from_json(json: &str) -> Result<Self, String> {
        let set: MeasurementSet =
            serde_json::from_str(json).map_err(|e| format!("malformed measurement set: {e}"))?;
        set.validate()?;
        Ok(set)
    }

    /// Serializes the set as pretty JSON (the shipped-file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("measurement set serializes")
    }

    /// Total measured points across curves.
    pub fn point_count(&self) -> usize {
        self.curves.iter().map(|c| c.points.len()).sum()
    }

    /// Checks semantic invariants: at least one curve, every curve
    /// non-empty with parseable distance/mix labels, every point with
    /// positive finite observables, and offered rates strictly
    /// increasing within a curve.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.curves.is_empty() {
            return Err(format!("measurement set '{}' has no curves", self.name));
        }
        for c in &self.curves {
            let what = format!("set '{}' curve '{}'", self.name, c.label);
            Distance::from_label(&c.distance)
                .ok_or_else(|| format!("{what}: unknown distance '{}'", c.distance))?;
            AccessMix::parse(&c.mix).map_err(|e| format!("{what}: bad mix: {e}"))?;
            if c.points.is_empty() {
                return Err(format!("{what}: no points"));
            }
            let mut prev = 0.0f64;
            for (i, p) in c.points.iter().enumerate() {
                let finite_pos = |v: f64| v.is_finite() && v > 0.0;
                if !finite_pos(p.offered_gbps)
                    || !finite_pos(p.latency_ns)
                    || !finite_pos(p.bandwidth_gbps)
                {
                    return Err(format!("{what}: point {i} has a non-positive field"));
                }
                if p.offered_gbps <= prev {
                    return Err(format!("{what}: offered rates not strictly increasing"));
                }
                prev = p.offered_gbps;
            }
        }
        Ok(())
    }
}

/// Rounds to `digits` significant decimal digits (digitization
/// precision for the synthesized data files; exact for `v == 0`).
pub fn round_sig(v: f64, digits: u32) -> f64 {
    if v == 0.0 || !v.is_finite() {
        return v;
    }
    let magnitude = v.abs().log10().floor() as i32;
    let scale = 10f64.powi(digits as i32 - 1 - magnitude);
    (v * scale).round() / scale
}

/// Synthesizes a measurement set by sweeping a live model: one curve
/// per `(distance, mix)` pair, at the [`Mlc`] grid of offered rates.
///
/// With `digitize = Some(n)` the observables are rounded to `n`
/// significant digits, mimicking points lifted off a published figure;
/// `None` keeps them exact, which makes the set a bit-perfect
/// round-trip anchor: evaluating the generating parameters against it
/// yields zero residual.
///
/// # Panics
///
/// Panics if a requested distance is absent from the system's topology.
pub fn synthesize(
    sys: &MemSystem,
    mlc: &Mlc,
    name: &str,
    source: &str,
    topology: &str,
    curves: &[(Distance, AccessMix)],
    digitize: Option<u32>,
) -> MeasurementSet {
    let endpoints = Mlc::distance_endpoints(sys);
    let endpoint = |d: Distance| -> (SocketId, NodeId) {
        endpoints
            .iter()
            .find(|&&(dd, _, _)| dd == d)
            .map(|&(_, f, n)| (f, n))
            .unwrap_or_else(|| panic!("distance {d:?} not present in topology '{topology}'"))
    };
    let q = |v: f64| match digitize {
        Some(digits) => round_sig(v, digits),
        None => v,
    };
    let curves = curves
        .iter()
        .map(|&(d, mix)| {
            let (from, node) = endpoint(d);
            let points = mlc
                .loaded_latency(sys, from, node, mix)
                .into_iter()
                .map(|p| MeasuredPoint {
                    offered_gbps: p.offered_gbps,
                    latency_ns: q(p.latency_ns),
                    bandwidth_gbps: q(p.bandwidth_gbps),
                })
                .collect();
            MeasuredCurve {
                label: format!("{} {}", d.label(), mix.label()),
                distance: d.label().to_string(),
                mix: mix.label(),
                points,
            }
        })
        .collect();
    MeasurementSet {
        name: name.to_string(),
        source: source.to_string(),
        topology: topology.to_string(),
        curves,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_mlc::MlcConfig;
    use cxl_topology::Topology;

    #[test]
    fn synthesized_set_validates_and_round_trips_json() {
        let sys = MemSystem::new(&Topology::snc_domain_with_cxl());
        let mlc = Mlc::new(MlcConfig {
            steps: 6,
            ..Default::default()
        });
        let set = synthesize(
            &sys,
            &mlc,
            "test",
            "unit test",
            "snc_domain_with_cxl",
            &[
                (Distance::LocalCxl, AccessMix::read_only()),
                (Distance::LocalDram, AccessMix::ratio(2, 1)),
            ],
            Some(4),
        );
        set.validate().expect("synthesized set is valid");
        assert_eq!(set.curves.len(), 2);
        assert_eq!(set.point_count(), 12);
        let back = MeasurementSet::from_json(&set.to_json()).expect("round trips");
        assert_eq!(back, set);
    }

    #[test]
    fn validate_rejects_bad_labels_and_orders() {
        let mut set = MeasurementSet {
            name: "x".into(),
            source: "s".into(),
            topology: "t".into(),
            curves: vec![MeasuredCurve {
                label: "c".into(),
                distance: "DDR9".into(),
                mix: "1:0".into(),
                points: vec![MeasuredPoint {
                    offered_gbps: 1.0,
                    latency_ns: 100.0,
                    bandwidth_gbps: 1.0,
                }],
            }],
        };
        assert!(set.validate().unwrap_err().contains("unknown distance"));
        set.curves[0].distance = "CXL".into();
        set.validate().expect("fixed distance validates");
        set.curves[0].points.push(MeasuredPoint {
            offered_gbps: 0.5,
            latency_ns: 100.0,
            bandwidth_gbps: 0.5,
        });
        assert!(set.validate().unwrap_err().contains("strictly increasing"));
    }

    #[test]
    fn round_sig_hits_requested_precision() {
        assert_eq!(round_sig(123.456, 4), 123.5);
        assert_eq!(round_sig(0.0012345, 3), 0.00123);
        assert_eq!(round_sig(0.0, 3), 0.0);
        assert_eq!(round_sig(97.0, 4), 97.0);
    }
}
