//! The named calibration-target registry.
//!
//! A [`CalibrationTarget`] bundles everything one calibration run
//! needs: the shipped measurement set, the topology it was measured
//! on, the free-parameter space the curves can identify, and the
//! pinned residual tolerance the CI gate enforces. Adding a device
//! model to the harness is exactly one measurement file plus one
//! registry entry.
//!
//! The shipped data files are *synthetic digitizations*: each target
//! declares the "truth" parameter vector its curves were generated
//! from ([`CalibrationTarget::synthetic_truth`]), and
//! [`CalibrationTarget::regenerate`] reproduces the file bit-for-bit
//! (a unit test pins this). For the paper target the truth is the
//! shipped defaults — themselves hand-calibrated to the §3 tables —
//! so its anchors (97 ns DDR idle, 250.42 ns CXL idle, 20.6 GB/s
//! remote-CXL cap, …) equal the published numbers by construction.
//! The external-simulator targets perturb the device-facing knobs to
//! stand in for digitized CXL-DMSim / CXLMemSim curves.

use cxl_mlc::{Mlc, MlcConfig};
use cxl_perf::{AccessMix, Distance, MemSystem, ModelParams};
use cxl_topology::{SncMode, Topology};

use crate::measurement::{synthesize, MeasurementSet};
use crate::space::ParamSpace;

/// Sweep steps per curve in the shipped data files.
const GEN_STEPS: usize = 10;

/// Significant digits the shipped observables are rounded to
/// (digitization precision).
const GEN_DIGITS: u32 = 4;

/// One named calibration target.
#[derive(Debug, Clone, Copy)]
pub struct CalibrationTarget {
    /// Registry name (also the measurement-set and data-file name).
    pub name: &'static str,
    /// What the target models.
    pub description: &'static str,
    /// CI gate: max point residual (percent) the *shipped defaults*
    /// must stay within on this target after a standard fit from the
    /// perturbed start (see `cxl_core::experiments::calib`).
    pub tolerance_pct: f64,
    data: &'static str,
    topology_label: &'static str,
    topology: fn() -> Topology,
    space: fn() -> ParamSpace,
    truth: fn() -> ModelParams,
    plan: fn() -> Vec<(Distance, AccessMix)>,
}

impl CalibrationTarget {
    /// The full registry, in canonical order.
    pub fn registry() -> Vec<Self> {
        vec![
            Self {
                name: "paper_s3",
                description: "EuroSys '24 paper §3 loaded-latency tables (SPR + 2x A1000)",
                tolerance_pct: 5.0,
                data: include_str!("../data/paper_s3.json"),
                topology_label: "paper_testbed(Snc4)",
                topology: || Topology::paper_testbed(SncMode::Snc4),
                space: || {
                    ParamSpace::new(&[
                        ("mmem_read_idle_ns", 80.0, 120.0),
                        ("upi_hop_ns", 20.0, 50.0),
                        ("ddr_read_efficiency", 0.75, 0.95),
                        ("ddr_write_efficiency", 0.55, 0.85),
                        ("ddr_queue_scale_ns", 30.0, 90.0),
                        ("controller_latency_scale", 0.5, 2.0),
                        ("cxl_backing_efficiency", 0.7, 1.0),
                        ("rsf_cap_gbps", 10.0, 40.0),
                        ("upi_write_credit_gbps", 10.0, 40.0),
                    ])
                },
                truth: ModelParams::default,
                plan: || {
                    let mixes = ["1:0", "2:1", "1:1", "0:1"];
                    let mut plan = Vec::new();
                    for m in mixes {
                        plan.push((Distance::LocalDram, mix(m)));
                    }
                    for m in mixes {
                        plan.push((Distance::LocalCxl, mix(m)));
                    }
                    for m in ["1:0", "0:1"] {
                        plan.push((Distance::RemoteDram, mix(m)));
                    }
                    for m in ["1:0", "2:1"] {
                        plan.push((Distance::RemoteCxl, mix(m)));
                    }
                    plan
                },
            },
            Self {
                name: "cxl_dmsim_a1000",
                description: "digitized CXL-DMSim (arXiv:2411.02282) A1000 loaded-latency curves",
                tolerance_pct: 5.0,
                data: include_str!("../data/cxl_dmsim_a1000.json"),
                topology_label: "snc_domain_with_cxl",
                topology: Topology::snc_domain_with_cxl,
                space: || {
                    ParamSpace::new(&[
                        ("controller_latency_scale", 0.5, 2.0),
                        ("cxl_backing_efficiency", 0.7, 1.0),
                        ("cxl_queue_scale_ns", 10.0, 150.0),
                        ("cxl_link_knee", 0.55, 0.95),
                    ])
                },
                truth: || ModelParams {
                    controller_latency_scale: 1.18,
                    cxl_backing_efficiency: 0.945,
                    cxl_queue_scale_ns: 62.0,
                    cxl_link_knee: 0.7,
                    ..ModelParams::default()
                },
                plan: || {
                    vec![
                        (Distance::LocalCxl, mix("1:0")),
                        (Distance::LocalCxl, mix("2:1")),
                        (Distance::LocalCxl, mix("0:1")),
                        (Distance::LocalDram, mix("1:0")),
                    ]
                },
            },
            Self {
                name: "cxlmemsim_pure",
                description: "digitized CXLMemSim (arXiv:2303.06153) pure-latency-model curves",
                tolerance_pct: 5.0,
                data: include_str!("../data/cxlmemsim_pure.json"),
                topology_label: "snc_domain_with_cxl",
                topology: Topology::snc_domain_with_cxl,
                space: || {
                    ParamSpace::new(&[
                        ("controller_latency_scale", 0.5, 2.0),
                        ("cxl_backing_efficiency", 0.7, 1.0),
                        ("cxl_queue_scale_ns", 10.0, 150.0),
                        ("cxl_write_msg_fraction", 0.5, 1.0),
                    ])
                },
                truth: || ModelParams {
                    controller_latency_scale: 0.86,
                    cxl_backing_efficiency: 0.88,
                    cxl_queue_scale_ns: 38.0,
                    cxl_write_msg_fraction: 0.8,
                    ..ModelParams::default()
                },
                plan: || {
                    vec![
                        (Distance::LocalCxl, mix("1:0")),
                        (Distance::LocalCxl, mix("1:1")),
                    ]
                },
            },
            Self {
                name: "slow_asic",
                description: "hypothetical slower ASIC controller (latency-scaled A1000)",
                tolerance_pct: 6.0,
                data: include_str!("../data/slow_asic.json"),
                topology_label: "snc_domain_with_cxl",
                topology: Topology::snc_domain_with_cxl,
                space: || {
                    ParamSpace::new(&[
                        ("controller_latency_scale", 0.5, 3.0),
                        ("cxl_backing_efficiency", 0.6, 1.0),
                        ("cxl_queue_scale_ns", 10.0, 150.0),
                    ])
                },
                truth: || ModelParams {
                    controller_latency_scale: 2.2,
                    cxl_backing_efficiency: 0.8,
                    cxl_queue_scale_ns: 95.0,
                    ..ModelParams::default()
                },
                plan: || {
                    vec![
                        (Distance::LocalCxl, mix("1:0")),
                        (Distance::LocalCxl, mix("2:1")),
                        (Distance::LocalCxl, mix("0:1")),
                    ]
                },
            },
            Self {
                name: "cxl2_switch",
                description: "CXL 2.0 switch-attached pool (hop latency under calibration)",
                tolerance_pct: 6.0,
                data: include_str!("../data/cxl2_switch.json"),
                topology_label: "pooled_host(256, 256, 70ns)",
                topology: || Topology::pooled_host(256, 256, 70.0),
                space: || {
                    ParamSpace::new(&[
                        ("switch_hop_scale", 0.5, 2.5),
                        ("controller_latency_scale", 0.5, 2.0),
                        ("cxl_queue_scale_ns", 10.0, 150.0),
                    ])
                },
                truth: || ModelParams {
                    switch_hop_scale: 1.3,
                    controller_latency_scale: 1.05,
                    cxl_queue_scale_ns: 52.0,
                    ..ModelParams::default()
                },
                plan: || {
                    vec![
                        (Distance::LocalCxl, mix("1:0")),
                        (Distance::LocalCxl, mix("2:1")),
                        (Distance::LocalDram, mix("1:0")),
                    ]
                },
            },
        ]
    }

    /// Looks a target up by name.
    pub fn by_name(name: &str) -> Option<Self> {
        Self::registry().into_iter().find(|t| t.name == name)
    }

    /// The registry's names, in canonical order.
    pub fn names() -> Vec<&'static str> {
        Self::registry().into_iter().map(|t| t.name).collect()
    }

    /// Parses the shipped measurement set.
    ///
    /// # Panics
    ///
    /// Panics if the in-repo data file is malformed — a build problem,
    /// not a runtime condition.
    pub fn measurements(&self) -> MeasurementSet {
        MeasurementSet::from_json(self.data)
            .unwrap_or_else(|e| panic!("shipped data for '{}' invalid: {e}", self.name))
    }

    /// Builds the topology the measurements were taken on.
    pub fn topology(&self) -> Topology {
        (self.topology)()
    }

    /// The target's free-parameter space.
    pub fn space(&self) -> ParamSpace {
        (self.space)()
    }

    /// The synthetic truth vector the shipped data file was generated
    /// from (the shipped defaults for `paper_s3`).
    pub fn synthetic_truth(&self) -> ModelParams {
        (self.truth)()
    }

    /// Regenerates the measurement set exactly as shipped (same truth,
    /// sweep grid, and digitization) — the provenance anchor used by
    /// `src/bin/regen_data.rs` and the data-drift test.
    pub fn regenerate(&self) -> MeasurementSet {
        let topo = self.topology();
        let truth = self.synthetic_truth();
        let sys = MemSystem::with_params(&topo, &truth);
        let mlc = Mlc::new(MlcConfig {
            steps: GEN_STEPS,
            ..Default::default()
        });
        synthesize(
            &sys,
            &mlc,
            self.name,
            self.description,
            self.topology_label,
            &(self.plan)(),
            Some(GEN_DIGITS),
        )
    }
}

fn mix(s: &str) -> AccessMix {
    AccessMix::parse(s).expect("registry mixes parse")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_the_five_named_targets() {
        assert_eq!(
            CalibrationTarget::names(),
            vec![
                "paper_s3",
                "cxl_dmsim_a1000",
                "cxlmemsim_pure",
                "slow_asic",
                "cxl2_switch"
            ]
        );
        assert!(CalibrationTarget::by_name("paper_s3").is_some());
        assert!(CalibrationTarget::by_name("nope").is_none());
    }

    #[test]
    fn every_target_is_internally_consistent() {
        for t in CalibrationTarget::registry() {
            let set = t.measurements();
            assert_eq!(set.name, t.name, "data file name matches registry");
            assert!(set.point_count() > 0);
            assert!(t.tolerance_pct > 0.0);
            let space = t.space();
            assert!(!space.dims.is_empty());
            assert!(
                space.contains(&t.synthetic_truth()),
                "'{}': truth must lie inside its own space",
                t.name
            );
            // Every distance the set references must exist on the
            // target's topology (evaluate would panic otherwise).
            let sys = MemSystem::with_params(&t.topology(), &ModelParams::default());
            let have: Vec<Distance> = Mlc::distance_endpoints(&sys)
                .into_iter()
                .map(|(d, _, _)| d)
                .collect();
            for c in &set.curves {
                assert!(
                    have.contains(&c.parsed_distance()),
                    "'{}': curve '{}' needs {}",
                    t.name,
                    c.label,
                    c.distance
                );
            }
        }
    }

    #[test]
    fn shipped_data_files_match_their_generator() {
        for t in CalibrationTarget::registry() {
            assert_eq!(
                t.measurements(),
                t.regenerate(),
                "'{}': data file drifted from its generation spec — \
                 run `cargo run -p cxl-calib --bin regen_data`",
                t.name
            );
        }
    }
}
