//! Calibration & validation harness for the performance model.
//!
//! The model in `cxl-perf` is only as good as its constants. This
//! crate closes the loop: it ships external measurement sets as data
//! files, fits the model's free parameters to them with a
//! deterministic seeded coordinate descent, and reports residuals that
//! CI gates on — so a change that silently drags the model away from
//! the paper's §3 tables (or from the external simulators we
//! cross-validate against) fails the build instead of shipping.
//!
//! The pieces:
//!
//! - [`MeasurementSet`] (`measurement`): named offered-load →
//!   latency/bandwidth point sets with mix/topology labels, parsed
//!   from in-repo JSON.
//! - [`ParamSpace`] (`space`): which [`cxl_perf::ModelParams`] fields
//!   a target may move, and within what brackets.
//! - [`fit`] (`fitter`): seeded coordinate descent — a pure function
//!   of `(set, space, start, config)`, sharded through a
//!   [`CandidateMap`] so `cxl-core`'s parallel runner can score
//!   candidate grids bit-identically at any `--jobs`.
//! - [`evaluate`] (`report`): the shared scoring path; per-curve RMSE
//!   and max point residual, plus shipped-vs-fitted
//!   [`param_deltas`].
//! - [`CalibrationTarget`] (`target`): the named registry —
//!   `paper_s3`, `cxl_dmsim_a1000`, `cxlmemsim_pure`, `slow_asic`,
//!   `cxl2_switch` — each pairing a data file with a topology, a
//!   space, and a pinned tolerance.
//!
//! The crate deliberately depends only on the model stack (`cxl-perf`,
//! `cxl-mlc`, `cxl-topology`, `cxl-stats`); the experiment driver in
//! `cxl-core::experiments::calib` layers the parallel runner and
//! `cxl-obs` export on top.

#![warn(missing_docs)]

pub mod fitter;
pub mod measurement;
pub mod report;
pub mod space;
pub mod target;

pub use fitter::{fit, CandidateMap, FitConfig, FitResult, FitStep, SerialMap};
pub use measurement::{synthesize, MeasuredCurve, MeasuredPoint, MeasurementSet};
pub use report::{evaluate, loss, param_deltas, CurveResidual, ParamDelta, ResidualReport};
pub use space::{ParamDim, ParamSpace};
pub use target::CalibrationTarget;
