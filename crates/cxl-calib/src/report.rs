//! Residual evaluation: drive the model at a measurement set's offered
//! rates and report how far it lands from the measured observables.
//!
//! [`evaluate`] is the single scoring path shared by the fitter, the
//! acceptance tests, and the CI gate. Residuals are *relative*: a
//! point's residual is the worse of its latency and bandwidth relative
//! errors, so "max residual 5%" reads directly as "every point of every
//! curve is within 5% on both channels".

use serde::{Deserialize, Serialize};

use cxl_mlc::{Mlc, MlcConfig};
use cxl_perf::{MemSystem, ModelParams};
use cxl_topology::Topology;

use crate::measurement::MeasurementSet;
use crate::space::ParamSpace;

/// Residual summary for one measured curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveResidual {
    /// Curve label from the measurement set.
    pub label: String,
    /// Points in the curve.
    pub points: usize,
    /// Root-mean-square relative residual over both channels, percent.
    pub rmse_pct: f64,
    /// Worst single-point residual (max of |rel latency|, |rel
    /// bandwidth|), percent.
    pub max_residual_pct: f64,
}

/// Residual report for a full measurement set under one parameter
/// vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResidualReport {
    /// Name of the measurement set evaluated.
    pub set: String,
    /// Per-curve summaries, in set order.
    pub curves: Vec<CurveResidual>,
    /// Mean squared relative residual over all points and both
    /// channels — the fitter's loss.
    pub loss: f64,
    /// Overall RMSE, percent.
    pub rmse_pct: f64,
    /// Overall worst point residual, percent.
    pub max_residual_pct: f64,
}

/// Shipped-vs-fitted delta for one free dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamDelta {
    /// Field name.
    pub field: String,
    /// Value in the shipped defaults.
    pub shipped: f64,
    /// Value the fitter landed on.
    pub fitted: f64,
    /// Relative change, percent (0 when the shipped value is 0).
    pub delta_pct: f64,
}

/// Per-dimension deltas between a shipped and a fitted vector, in
/// space order.
pub fn param_deltas(
    space: &ParamSpace,
    shipped: &ModelParams,
    fitted: &ModelParams,
) -> Vec<ParamDelta> {
    space
        .dims
        .iter()
        .map(|d| {
            let s = shipped.get(d.field).expect("dim field exists");
            let f = fitted.get(d.field).expect("dim field exists");
            let delta_pct = if s == 0.0 { 0.0 } else { (f - s) / s * 100.0 };
            ParamDelta {
                field: d.field.to_string(),
                shipped: s,
                fitted: f,
                delta_pct,
            }
        })
        .collect()
}

/// Evaluates `params` against `set` on `topo`: replays every curve's
/// offered rates through the loaded-latency harness and scores the
/// relative residuals.
///
/// Pure function of its arguments — no clock, no global state — so the
/// fitter's sharded evaluations are bit-identical at any worker count.
///
/// # Panics
///
/// Panics if the set references a distance the topology lacks; the
/// target registry pairs sets with matching topologies, and
/// [`MeasurementSet::validate`] has already rejected malformed labels.
pub fn evaluate(topo: &Topology, params: &ModelParams, set: &MeasurementSet) -> ResidualReport {
    let sys = MemSystem::with_params(topo, params);
    let mlc = Mlc::new(MlcConfig::default());
    let endpoints = Mlc::distance_endpoints(&sys);
    let mut curves = Vec::with_capacity(set.curves.len());
    let mut sq_sum = 0.0f64;
    let mut n = 0usize;
    let mut worst = 0.0f64;
    for c in &set.curves {
        let d = c.parsed_distance();
        let (from, node) = endpoints
            .iter()
            .find(|&&(dd, _, _)| dd == d)
            .map(|&(_, f, nn)| (f, nn))
            .unwrap_or_else(|| {
                panic!(
                    "set '{}' needs distance {} absent from topology",
                    set.name, c.distance
                )
            });
        let rates: Vec<f64> = c.points.iter().map(|p| p.offered_gbps).collect();
        let model = mlc.sweep_at(&sys, from, node, c.parsed_mix(), &rates);
        let mut c_sq = 0.0f64;
        let mut c_worst = 0.0f64;
        for (meas, got) in c.points.iter().zip(&model) {
            let rel_lat = (got.latency_ns - meas.latency_ns) / meas.latency_ns;
            let rel_bw = (got.bandwidth_gbps - meas.bandwidth_gbps) / meas.bandwidth_gbps;
            c_sq += rel_lat * rel_lat + rel_bw * rel_bw;
            c_worst = c_worst.max(rel_lat.abs().max(rel_bw.abs()));
        }
        let pts = c.points.len();
        sq_sum += c_sq;
        n += pts;
        worst = worst.max(c_worst);
        curves.push(CurveResidual {
            label: c.label.clone(),
            points: pts,
            rmse_pct: (c_sq / (2 * pts) as f64).sqrt() * 100.0,
            max_residual_pct: c_worst * 100.0,
        });
    }
    let loss = sq_sum / (2 * n.max(1)) as f64;
    ResidualReport {
        set: set.name.clone(),
        curves,
        loss,
        rmse_pct: loss.sqrt() * 100.0,
        max_residual_pct: worst * 100.0,
    }
}

/// The fitter's scalar objective: [`evaluate`]'s mean squared relative
/// residual.
pub fn loss(topo: &Topology, params: &ModelParams, set: &MeasurementSet) -> f64 {
    evaluate(topo, params, set).loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::synthesize;
    use cxl_perf::{AccessMix, Distance};

    #[test]
    fn exact_synthesis_scores_zero_residual() {
        let topo = Topology::snc_domain_with_cxl();
        let params = ModelParams::default();
        let sys = MemSystem::with_params(&topo, &params);
        let mlc = Mlc::new(MlcConfig::default());
        let set = synthesize(
            &sys,
            &mlc,
            "anchor",
            "exact synthesis",
            "snc_domain_with_cxl",
            &[(Distance::LocalCxl, AccessMix::ratio(2, 1))],
            None,
        );
        let report = evaluate(&topo, &params, &set);
        assert_eq!(report.max_residual_pct, 0.0);
        assert_eq!(report.loss, 0.0);
    }

    #[test]
    fn perturbed_params_score_nonzero_and_deltas_track() {
        let topo = Topology::snc_domain_with_cxl();
        let base = ModelParams::default();
        let sys = MemSystem::with_params(&topo, &base);
        let mlc = Mlc::new(MlcConfig::default());
        let set = synthesize(
            &sys,
            &mlc,
            "anchor",
            "exact synthesis",
            "snc_domain_with_cxl",
            &[(Distance::LocalCxl, AccessMix::read_only())],
            None,
        );
        let mut off = base;
        off.controller_latency_scale = 1.5;
        let report = evaluate(&topo, &off, &set);
        assert!(report.max_residual_pct > 1.0);
        assert!(report.loss > 0.0);
        let space = ParamSpace::new(&[("controller_latency_scale", 0.5, 2.0)]);
        let deltas = param_deltas(&space, &base, &off);
        assert_eq!(deltas.len(), 1);
        assert!((deltas[0].delta_pct - 50.0).abs() < 1e-9);
    }
}
