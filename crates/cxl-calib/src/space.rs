//! The fitter's search space: which [`ModelParams`] fields are free,
//! and over what brackets.
//!
//! A [`ParamSpace`] is a small, explicit list of free dimensions; every
//! field not listed stays pinned at its starting value. Targets in the
//! registry each carry their own space — the paper target frees the
//! DDR/UPI/CXL service constants, the external-simulator targets free
//! only the device-facing knobs their curves can identify.

use rand::Rng;
use serde::{Deserialize, Serialize};

use cxl_perf::ModelParams;
use cxl_stats::rng::stream_rng;

/// One free dimension of the search: a [`ModelParams`] field name plus
/// the closed bracket the fitter may move it within.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ParamDim {
    /// Field name, as listed in [`ModelParams::FIELDS`].
    pub field: &'static str,
    /// Lower bracket edge (inclusive).
    pub lo: f64,
    /// Upper bracket edge (inclusive).
    pub hi: f64,
}

impl ParamDim {
    /// A dimension spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `field` is not a [`ModelParams`] field or the bracket
    /// is empty or non-finite.
    pub fn new(field: &'static str, lo: f64, hi: f64) -> Self {
        assert!(
            ModelParams::FIELDS.contains(&field),
            "unknown ModelParams field '{field}'"
        );
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "bad bracket [{lo}, {hi}] for '{field}'"
        );
        Self { field, lo, hi }
    }
}

/// An ordered set of free dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpace {
    /// The free dimensions, in fit order.
    pub dims: Vec<ParamDim>,
}

impl ParamSpace {
    /// Builds a space from `(field, lo, hi)` triples.
    ///
    /// # Panics
    ///
    /// Panics on an unknown field, a bad bracket, or a repeated field.
    pub fn new(dims: &[(&'static str, f64, f64)]) -> Self {
        let dims: Vec<ParamDim> = dims
            .iter()
            .map(|&(field, lo, hi)| ParamDim::new(field, lo, hi))
            .collect();
        for (i, d) in dims.iter().enumerate() {
            assert!(
                dims[..i].iter().all(|e| e.field != d.field),
                "field '{}' listed twice",
                d.field
            );
        }
        Self { dims }
    }

    /// Clamps every free dimension of `params` into its bracket.
    pub fn clamp(&self, params: &mut ModelParams) {
        for d in &self.dims {
            let v = params.get(d.field).expect("dim field exists");
            params.set(d.field, v.clamp(d.lo, d.hi));
        }
    }

    /// True when every free dimension of `params` lies inside its
    /// bracket.
    pub fn contains(&self, params: &ModelParams) -> bool {
        self.dims.iter().all(|d| {
            let v = params.get(d.field).expect("dim field exists");
            (d.lo..=d.hi).contains(&v)
        })
    }

    /// A deterministically perturbed copy of `base`: each free
    /// dimension is moved by up to `±frac` of its value (clamped into
    /// the bracket), seeded per field so the result is a pure function
    /// of `(base, seed, frac)`.
    pub fn perturbed_start(&self, base: &ModelParams, seed: u64, frac: f64) -> ModelParams {
        let mut out = *base;
        for d in &self.dims {
            let mut rng = stream_rng(seed, &format!("perturb/{}", d.field));
            let u: f64 = rng.gen::<f64>() * 2.0 - 1.0;
            let v = out.get(d.field).expect("dim field exists");
            out.set(d.field, (v * (1.0 + frac * u)).clamp(d.lo, d.hi));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ParamSpace {
        ParamSpace::new(&[
            ("mmem_read_idle_ns", 80.0, 120.0),
            ("controller_latency_scale", 0.5, 2.0),
        ])
    }

    #[test]
    #[should_panic(expected = "unknown ModelParams field")]
    fn unknown_field_is_rejected() {
        ParamSpace::new(&[("warp_drive_ns", 0.0, 1.0)]);
    }

    #[test]
    fn clamp_and_contains_agree() {
        let s = space();
        let mut p = ModelParams::default();
        p.set("mmem_read_idle_ns", 500.0);
        assert!(!s.contains(&p));
        s.clamp(&mut p);
        assert!(s.contains(&p));
        assert_eq!(p.get("mmem_read_idle_ns"), Some(120.0));
    }

    #[test]
    fn perturbed_start_is_deterministic_and_in_bracket() {
        let s = space();
        let base = ModelParams::default();
        let a = s.perturbed_start(&base, 7, 0.3);
        let b = s.perturbed_start(&base, 7, 0.3);
        assert_eq!(a, b, "same seed gives the same start");
        assert!(s.contains(&a));
        let c = s.perturbed_start(&base, 8, 0.3);
        assert_ne!(a, c, "different seed moves somewhere else");
        // Pinned fields are untouched.
        assert_eq!(a.upi_hop_ns, base.upi_hop_ns);
    }
}
