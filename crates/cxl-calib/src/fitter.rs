//! Deterministic seeded coordinate descent over a [`ParamSpace`].
//!
//! Each round visits every free dimension in a seed-shuffled order,
//! lays a uniform candidate grid across a bracket centred on the
//! current value (the bracket shrinks geometrically per round), scores
//! all candidates, and accepts the grid minimum only on strict
//! improvement — so the recorded descent trace is strictly decreasing
//! by construction.
//!
//! The fit is a pure function of `(measurement set, space, start,
//! config)`: candidate scoring goes through a [`CandidateMap`], and as
//! long as the map is order-preserving (the serial one trivially is;
//! `cxl-core` adapts its deterministic parallel runner) the result is
//! bit-identical at any worker count. Ties on the candidate grid break
//! to the lowest index.

use serde::{Deserialize, Serialize};

use cxl_perf::ModelParams;
use cxl_stats::rng::derive_seed;
use cxl_topology::Topology;

use crate::measurement::MeasurementSet;
use crate::report::loss;
use crate::space::ParamSpace;

/// Strategy for scoring a batch of candidate parameter vectors.
///
/// Implementations must preserve order: `map_losses(c, eval)[i]` must
/// equal `eval(&c[i])`. That contract is what lets a parallel
/// implementation shard the batch while keeping the fit bit-identical
/// to the serial one.
pub trait CandidateMap {
    /// Scores each candidate, preserving order.
    fn map_losses(
        &self,
        candidates: Vec<ModelParams>,
        eval: &(dyn Fn(&ModelParams) -> f64 + Sync),
    ) -> Vec<f64>;
}

/// The trivial in-thread [`CandidateMap`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialMap;

impl CandidateMap for SerialMap {
    fn map_losses(
        &self,
        candidates: Vec<ModelParams>,
        eval: &(dyn Fn(&ModelParams) -> f64 + Sync),
    ) -> Vec<f64> {
        candidates.iter().map(eval).collect()
    }
}

/// Fitter configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitConfig {
    /// Coordinate-descent rounds (full passes over the space).
    pub rounds: usize,
    /// Candidate grid points per dimension per zoom level (min 2).
    pub candidates_per_dim: usize,
    /// Zoom levels per dimension visit: each level re-grids around the
    /// previous level's best candidate, multiplying the line-search
    /// resolution by `candidates_per_dim - 1` per level.
    pub zooms: usize,
    /// Seed for the per-round dimension shuffle.
    pub seed: u64,
    /// Geometric bracket shrink per round, in `(0, 1]`: round `r`
    /// searches a window of `shrink^r` times the full bracket, centred
    /// on the current value.
    pub shrink: f64,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self {
            rounds: 6,
            candidates_per_dim: 9,
            zooms: 3,
            seed: 42,
            shrink: 0.5,
        }
    }
}

/// One accepted move of the descent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitStep {
    /// Round the move happened in.
    pub round: usize,
    /// Field that moved.
    pub field: String,
    /// Value it moved to.
    pub value: f64,
    /// Loss after the move (strictly below the previous step's).
    pub loss: f64,
}

/// Outcome of a fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitResult {
    /// Starting vector (after clamping into the space).
    pub start: ModelParams,
    /// Fitted vector.
    pub fitted: ModelParams,
    /// Loss at the start.
    pub start_loss: f64,
    /// Loss at the end (`<=` start loss).
    pub final_loss: f64,
    /// Accepted moves, in order; `loss` is strictly decreasing.
    pub steps: Vec<FitStep>,
    /// Total objective evaluations performed.
    pub evaluations: u64,
}

/// Seed-shuffled visit order for `n` dimensions in `round`
/// (Fisher–Yates on indices, driven by [`derive_seed`] splitmix
/// streams so it needs no live RNG state).
fn visit_order(seed: u64, round: usize, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let r = derive_seed(seed, &format!("visit/{round}/{i}"));
        let j = (r % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// Runs the coordinate descent and returns the fitted vector with its
/// full descent trace.
///
/// # Panics
///
/// Panics if the space is empty, on invalid config values, or if the
/// set references a distance absent from `topo` (see
/// [`crate::report::evaluate`]).
pub fn fit(
    map: &dyn CandidateMap,
    topo: &Topology,
    set: &MeasurementSet,
    space: &ParamSpace,
    start: ModelParams,
    cfg: &FitConfig,
) -> FitResult {
    assert!(!space.dims.is_empty(), "empty parameter space");
    assert!(
        cfg.shrink > 0.0 && cfg.shrink <= 1.0,
        "shrink must be in (0, 1]"
    );
    let eval = |p: &ModelParams| loss(topo, p, set);

    let mut params = start;
    space.clamp(&mut params);
    let start = params;
    let start_loss = eval(&params);
    let mut cur_loss = start_loss;
    let mut evaluations: u64 = 1;
    let mut steps = Vec::new();

    for round in 0..cfg.rounds {
        for dim in visit_order(cfg.seed, round, space.dims.len()) {
            let d = &space.dims[dim];
            let cur = params.get(d.field).expect("dim field exists");
            let width = (d.hi - d.lo) * cfg.shrink.powi(round as i32);
            let mut lo = (cur - width / 2.0).max(d.lo);
            let mut hi = (cur + width / 2.0).min(d.hi);
            if hi <= lo {
                continue;
            }
            let k = cfg.candidates_per_dim.max(2);
            // Iterated line search: grid the window, then re-grid around
            // the grid minimum, `zooms` times. Only the best value seen
            // across all levels competes for acceptance.
            let mut best_val = cur;
            let mut best_loss = f64::INFINITY;
            for _ in 0..cfg.zooms.max(1) {
                let values: Vec<f64> = (0..k)
                    .map(|i| lo + (hi - lo) * i as f64 / (k - 1) as f64)
                    .collect();
                let candidates: Vec<ModelParams> = values
                    .iter()
                    .map(|&v| {
                        let mut c = params;
                        c.set(d.field, v);
                        c
                    })
                    .collect();
                let losses = map.map_losses(candidates, &eval);
                assert_eq!(losses.len(), values.len(), "CandidateMap dropped results");
                evaluations += losses.len() as u64;
                let mut grid_best = 0;
                for (i, &l) in losses.iter().enumerate() {
                    if l < losses[grid_best] {
                        grid_best = i;
                    }
                }
                if losses[grid_best] < best_loss {
                    best_loss = losses[grid_best];
                    best_val = values[grid_best];
                }
                let step = (hi - lo) / (k - 1) as f64;
                lo = (values[grid_best] - step).max(d.lo);
                hi = (values[grid_best] + step).min(d.hi);
                if hi <= lo {
                    break;
                }
            }
            if best_loss < cur_loss {
                params.set(d.field, best_val);
                cur_loss = best_loss;
                steps.push(FitStep {
                    round,
                    field: d.field.to_string(),
                    value: best_val,
                    loss: cur_loss,
                });
            }
        }
    }

    FitResult {
        start,
        fitted: params,
        start_loss,
        final_loss: cur_loss,
        steps,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measurement::synthesize;
    use cxl_mlc::{Mlc, MlcConfig};
    use cxl_perf::{AccessMix, Distance, MemSystem};

    fn small_set(truth: &ModelParams, topo: &Topology) -> MeasurementSet {
        let sys = MemSystem::with_params(topo, truth);
        let mlc = Mlc::new(MlcConfig {
            steps: 5,
            ..Default::default()
        });
        synthesize(
            &sys,
            &mlc,
            "unit",
            "exact synthesis",
            "snc_domain_with_cxl",
            &[(Distance::LocalCxl, AccessMix::ratio(2, 1))],
            None,
        )
    }

    #[test]
    fn fit_recovers_a_single_perturbed_knob() {
        let topo = Topology::snc_domain_with_cxl();
        let truth = ModelParams::default();
        let set = small_set(&truth, &topo);
        let space = ParamSpace::new(&[("controller_latency_scale", 0.5, 2.0)]);
        let mut start = truth;
        start.controller_latency_scale = 1.7;
        let r = fit(
            &SerialMap,
            &topo,
            &set,
            &space,
            start,
            &FitConfig {
                rounds: 4,
                ..Default::default()
            },
        );
        assert!(r.final_loss < r.start_loss);
        assert!(
            (r.fitted.controller_latency_scale - 1.0).abs() < 0.05,
            "recovered scale {}",
            r.fitted.controller_latency_scale
        );
    }

    #[test]
    fn descent_trace_is_strictly_decreasing_and_below_start() {
        let topo = Topology::snc_domain_with_cxl();
        let truth = ModelParams::default();
        let set = small_set(&truth, &topo);
        let space = ParamSpace::new(&[
            ("controller_latency_scale", 0.5, 2.0),
            ("cxl_queue_scale_ns", 10.0, 150.0),
        ]);
        let start = space.perturbed_start(&truth, 3, 0.4);
        let r = fit(
            &SerialMap,
            &topo,
            &set,
            &space,
            start,
            &FitConfig::default(),
        );
        let mut prev = r.start_loss;
        for s in &r.steps {
            assert!(s.loss < prev, "step did not improve: {s:?}");
            prev = s.loss;
        }
        assert_eq!(
            r.final_loss,
            r.steps.last().map_or(r.start_loss, |s| s.loss)
        );
    }

    #[test]
    fn visit_order_is_a_permutation_and_seed_sensitive() {
        let a = visit_order(1, 0, 6);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
        assert_eq!(a, visit_order(1, 0, 6));
        assert_ne!(visit_order(1, 0, 6), visit_order(2, 0, 6));
    }
}
