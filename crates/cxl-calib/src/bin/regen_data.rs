//! Regenerates the shipped measurement data files under
//! `crates/cxl-calib/data/` from each target's declared generation
//! spec (synthetic truth + sweep plan + digitization).
//!
//! Run after changing a target's spec:
//! `cargo run --release -p cxl-calib --bin regen_data`
//!
//! The `shipped_data_files_match_their_generator` test pins the files
//! to the specs, so forgetting to re-run this fails `cargo test`.

use std::path::Path;

use cxl_calib::CalibrationTarget;

fn main() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("data");
    for t in CalibrationTarget::registry() {
        let set = t.regenerate();
        let path = dir.join(format!("{}.json", t.name));
        let mut json = set.to_json();
        json.push('\n');
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!(
            "wrote {} ({} curves, {} points)",
            path.display(),
            set.curves.len(),
            set.point_count()
        );
    }
}
