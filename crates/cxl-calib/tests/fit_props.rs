//! Property tests for the calibration fitter.
//!
//! Three invariants across the configuration space, not just the
//! registry defaults:
//!
//! * **purity** — a fit is a pure function of `(set, space, start,
//!   config)`: same inputs, bit-identical outputs;
//! * **monotone descent** — the recorded trace is strictly decreasing
//!   and the final loss never exceeds the start loss;
//! * **round-trip** — a set synthesized from parameters `p` with no
//!   digitization scores exactly zero residual under `p`.

use cxl_calib::{evaluate, fit, synthesize, FitConfig, MeasurementSet, ParamSpace, SerialMap};
use cxl_mlc::{Mlc, MlcConfig};
use cxl_perf::{AccessMix, Distance, MemSystem, ModelParams};
use cxl_topology::Topology;
use proptest::prelude::*;

fn small_space() -> ParamSpace {
    ParamSpace::new(&[
        ("controller_latency_scale", 0.5, 2.5),
        ("cxl_backing_efficiency", 0.7, 1.0),
        ("cxl_queue_scale_ns", 10.0, 150.0),
    ])
}

fn small_set(truth: &ModelParams, topo: &Topology) -> MeasurementSet {
    let sys = MemSystem::with_params(topo, truth);
    let mlc = Mlc::new(MlcConfig {
        steps: 5,
        ..Default::default()
    });
    synthesize(
        &sys,
        &mlc,
        "prop",
        "exact synthesis",
        "snc_domain_with_cxl",
        &[(Distance::LocalCxl, AccessMix::ratio(2, 1))],
        None,
    )
}

fn small_cfg(seed: u64) -> FitConfig {
    FitConfig {
        rounds: 2,
        candidates_per_dim: 4,
        zooms: 2,
        seed,
        shrink: 0.5,
    }
}

proptest! {
    /// Same inputs → bit-identical fit, whatever the seed and start.
    #[test]
    fn fit_is_pure(seed in 0u64..1_000_000, frac in 0.0..0.4f64) {
        let topo = Topology::snc_domain_with_cxl();
        let truth = ModelParams::default();
        let set = small_set(&truth, &topo);
        let space = small_space();
        let start = space.perturbed_start(&truth, seed, frac);
        let cfg = small_cfg(seed);
        let a = fit(&SerialMap, &topo, &set, &space, start, &cfg);
        let b = fit(&SerialMap, &topo, &set, &space, start, &cfg);
        prop_assert_eq!(a, b);
    }

    /// The descent trace is strictly decreasing, ends at the final
    /// loss, and never rises above the start.
    #[test]
    fn descent_is_monotone(seed in 0u64..1_000_000, frac in 0.05..0.5f64) {
        let topo = Topology::snc_domain_with_cxl();
        let truth = ModelParams::default();
        let set = small_set(&truth, &topo);
        let space = small_space();
        let start = space.perturbed_start(&truth, seed, frac);
        let r = fit(&SerialMap, &topo, &set, &space, start, &small_cfg(seed));
        prop_assert!(r.final_loss <= r.start_loss);
        let mut prev = r.start_loss;
        for s in &r.steps {
            prop_assert!(s.loss < prev, "non-improving step {:?}", s);
            prev = s.loss;
        }
        prop_assert_eq!(
            r.final_loss,
            r.steps.last().map_or(r.start_loss, |s| s.loss)
        );
        prop_assert!(space.contains(&r.fitted));
    }

    /// Synthesize-then-evaluate at the same parameters is exact: the
    /// measurement format and the scoring path share one model drive,
    /// so the round trip loses nothing.
    #[test]
    fn exact_round_trip_scores_zero(seed in 0u64..1_000_000, frac in 0.0..0.6f64) {
        let topo = Topology::snc_domain_with_cxl();
        let space = small_space();
        let p = space.perturbed_start(&ModelParams::default(), seed, frac);
        let set = small_set(&p, &topo);
        let report = evaluate(&topo, &p, &set);
        prop_assert_eq!(report.loss, 0.0);
        prop_assert_eq!(report.max_residual_pct, 0.0);
        prop_assert_eq!(report.rmse_pct, 0.0);
    }
}
