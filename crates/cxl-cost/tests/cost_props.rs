//! Property tests for the pooling and revenue models.
//!
//! The pooling sizing is a Monte-Carlo quantile study, so the classic
//! statistical-multiplexing laws it encodes — more hosts multiplex
//! better, wider demand needs a larger pool — should hold across the
//! whole configuration space, not just the defaults the unit tests pin.
//! The revenue model is closed-form, so its monotonicities are exact.

use cxl_cost::pooling::evaluate;
use cxl_cost::{DemandModel, PoolingConfig, RevenueModel};
use proptest::prelude::*;

fn cfg(hosts: usize, mean: f64, std: f64, samples: usize) -> PoolingConfig {
    PoolingConfig {
        hosts,
        demand: DemandModel {
            mean_gib: mean,
            std_gib: std,
        },
        percentile: 0.99,
        local_dram_gib: mean,
        cxl_cost_per_gib_rel: 0.9,
        samples,
        seed: 42,
    }
}

proptest! {
    /// More hosts sharing one pool → capacity saving non-decreasing.
    ///
    /// Uncorrelated peaks align ever more rarely as the pool fans out,
    /// so quadrupling the host count must not shrink the saving. The
    /// small tolerance absorbs Monte-Carlo quantile noise (the two
    /// host counts consume their sample streams differently).
    #[test]
    fn more_hosts_saving_non_decreasing(
        hosts in 1usize..9,
        mean in 128.0..768.0f64,
        rel_std in 0.08..0.45f64,
    ) {
        let std = mean * rel_std;
        let small = evaluate(cfg(hosts, mean, std, 4_000));
        let large = evaluate(cfg(hosts * 4, mean, std, 4_000));
        prop_assert!(
            large.capacity_saving >= small.capacity_saving - 0.05,
            "hosts {} saving {} vs hosts {} saving {}",
            hosts,
            small.capacity_saving,
            hosts * 4,
            large.capacity_saving
        );
    }

    /// Higher demand variance → larger pool.
    ///
    /// With base DRAM sized at the mean, each sample's pool excess is
    /// `(z·σ)⁺` for a shared `z` draw, which is pointwise non-decreasing
    /// in σ — so the p99 pool size is monotone exactly, not just in
    /// expectation.
    #[test]
    fn higher_variance_needs_a_larger_pool(
        hosts in 1usize..17,
        mean in 128.0..768.0f64,
        rel_std in 0.05..0.30f64,
        widen in 1.05..4.0f64,
    ) {
        let narrow = evaluate(cfg(hosts, mean, mean * rel_std, 2_000));
        let wide = evaluate(cfg(hosts, mean, mean * rel_std * widen, 2_000));
        prop_assert!(
            wide.pool_gib >= narrow.pool_gib - 1e-9,
            "σ {} pool {} vs σ {} pool {}",
            mean * rel_std,
            narrow.pool_gib,
            mean * rel_std * widen,
            wide.pool_gib
        );
    }

    /// Pooling outcomes stay internally consistent: the pool never
    /// exceeds what per-host provisioning would install, and the
    /// capacity saving matches its defining totals.
    #[test]
    fn pooling_outcome_is_internally_consistent(
        hosts in 1usize..17,
        mean in 128.0..768.0f64,
        rel_std in 0.0..0.45f64,
    ) {
        let out = evaluate(cfg(hosts, mean, mean * rel_std, 2_000));
        prop_assert!(out.pool_gib >= 0.0);
        prop_assert!(out.total_pool_gib <= out.total_no_pool_gib + 1e-9);
        prop_assert!(out.capacity_saving >= -1e-9 && out.capacity_saving < 1.0);
        let recomputed = 1.0 - out.total_pool_gib / out.total_no_pool_gib;
        prop_assert!((out.capacity_saving - recomputed).abs() < 1e-12);
    }

    /// Revenue model: more installed memory strands fewer vCPUs and
    /// needs less CXL backfill (exact, closed-form).
    #[test]
    fn more_memory_strands_fewer_vcpus(
        vcpus in 16u32..256,
        mem in 1u32..2048,
        extra in 1u32..512,
    ) {
        let a = RevenueModel { vcpus, memory_gib: mem, gib_per_vcpu: 4.0, cxl_discount: 0.2 };
        let b = RevenueModel { vcpus, memory_gib: mem + extra, ..a };
        prop_assert!(b.stranded_vcpus() <= a.stranded_vcpus());
        prop_assert!(b.required_cxl_gib() <= a.required_cxl_gib());
        prop_assert!(b.revenue_uplift() <= a.revenue_uplift() + 1e-12);
        prop_assert!((0.0..=1.0).contains(&a.revenue_loss()));
    }

    /// Revenue model: a deeper discount recovers less of the stranded
    /// revenue, and the uplift is bounded by the undiscounted loss ratio.
    #[test]
    fn deeper_discount_recovers_less(
        vcpus in 16u32..256,
        mem in 1u32..1024,
        d1 in 0.0..0.9f64,
        widen in 0.01..0.5f64,
    ) {
        let shallow = RevenueModel {
            vcpus,
            memory_gib: mem,
            gib_per_vcpu: 4.0,
            cxl_discount: d1,
        };
        let deep = RevenueModel {
            cxl_discount: (d1 + widen).min(1.0),
            ..shallow
        };
        prop_assert!(deep.revenue_uplift() <= shallow.revenue_uplift() + 1e-12);
        prop_assert!((shallow.recovery_fraction() - (1.0 - d1)).abs() < 1e-12);
        if shallow.sellable_vcpus() > 0.0 {
            let cap = shallow.stranded_vcpus() / shallow.sellable_vcpus();
            prop_assert!(shallow.revenue_uplift() <= cap + 1e-12);
        }
    }
}
