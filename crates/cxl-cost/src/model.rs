//! The Abstract Cost Model (§6, Table 3).
//!
//! A capacity-bound workload's execution time splits into segments
//! processed from MMEM, CXL memory, and SSD spill. Normalizing SSD-spill
//! throughput to 1, the model needs only the relative throughputs
//! `R_d` (all-in-MMEM) and `R_c` (all-in-CXL), the MMEM:CXL capacity
//! ratio `C`, and the relative server cost `R_t` to predict how many
//! CXL servers deliver baseline-cluster performance and what the TCO
//! saving is — no internal or sensitive data required.

use serde::{Deserialize, Serialize};

/// Input parameters (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModelParams {
    /// `R_d`: throughput with the working set in MMEM, relative to the
    /// SSD-spill baseline `P_s = 1`. Table 3 example: 10.
    pub rd: f64,
    /// `R_c`: throughput with the working set in CXL memory, relative to
    /// `P_s`. Table 3 example: 8.
    pub rc: f64,
    /// `C`: MMEM:CXL capacity ratio on a CXL server (2 means twice as
    /// much MMEM as CXL memory). Table 3 example: 2.
    pub c: f64,
    /// `R_t`: relative TCO of a CXL server vs. a baseline server.
    /// Table 3 example: 1.1.
    pub rt: f64,
}

impl Default for CostModelParams {
    /// The worked example of §6.
    fn default() -> Self {
        Self {
            rd: 10.0,
            rc: 8.0,
            c: 2.0,
            rt: 1.1,
        }
    }
}

/// The evaluated Abstract Cost Model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CostModel {
    params: CostModelParams,
}

impl CostModel {
    /// Builds the model after validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `rd > 1`, `rc > 1`, `rd >= rc` (CXL is no faster
    /// than DRAM), `c > 0`, and `rt > 0`.
    pub fn new(params: CostModelParams) -> Self {
        assert!(params.rd > 1.0, "R_d must exceed the SSD baseline (1)");
        assert!(params.rc > 1.0, "R_c must exceed the SSD baseline (1)");
        assert!(
            params.rd >= params.rc,
            "R_d >= R_c: CXL cannot outrun MMEM for capacity-bound work"
        );
        assert!(params.c > 0.0, "capacity ratio C must be positive");
        assert!(params.rt > 0.0, "relative TCO R_t must be positive");
        Self { params }
    }

    /// The parameters.
    pub fn params(&self) -> CostModelParams {
        self.params
    }

    /// Baseline cluster execution time for working set `w` with
    /// `n_baseline` servers of MMEM capacity `d` (arbitrary units;
    /// only ratios matter).
    ///
    /// `T = N·D/R_d + (W − N·D)` — the in-memory segment plus the
    /// SSD-spill remainder at unit throughput.
    pub fn t_baseline(&self, w: f64, n_baseline: f64, d: f64) -> f64 {
        let in_mem = n_baseline * d;
        in_mem / self.params.rd + (w - in_mem)
    }

    /// CXL cluster execution time: MMEM segment + CXL segment + spill.
    pub fn t_cxl(&self, w: f64, n_cxl: f64, d: f64) -> f64 {
        let p = self.params;
        let mmem = n_cxl * d;
        let cxl = n_cxl * d / p.c;
        mmem / p.rd + cxl / p.rc + (w - mmem - cxl)
    }

    /// `N_cxl / N_baseline`: the fraction of servers needed with CXL
    /// memory to match baseline performance (§6):
    ///
    /// `C·R_c·(R_d − 1) / (R_c·R_d·(C+1) − C·R_c − R_d)`
    pub fn server_ratio(&self) -> f64 {
        let p = self.params;
        let num = p.c * p.rc * (p.rd - 1.0);
        let den = p.rc * p.rd * (p.c + 1.0) - p.c * p.rc - p.rd;
        num / den
    }

    /// TCO saving: `1 − (N_cxl/N_baseline)·R_t`.
    pub fn tco_saving(&self) -> f64 {
        1.0 - self.server_ratio() * self.params.rt
    }

    /// Extended model (§6): adds per-server fixed CXL infrastructure
    /// cost (controllers, switches, PCBs, cables) expressed as a
    /// fraction of a baseline server's TCO.
    pub fn tco_saving_with_fixed_cost(&self, fixed_fraction: f64) -> f64 {
        1.0 - self.server_ratio() * (self.params.rt + fixed_fraction)
    }

    /// Derives `R_d`/`R_c` from raw measured throughputs, normalizing
    /// to the SSD baseline.
    ///
    /// # Panics
    ///
    /// Panics if `p_s` is not positive.
    pub fn from_measurements(p_s: f64, p_mmem: f64, p_cxl: f64, c: f64, rt: f64) -> Self {
        assert!(p_s > 0.0, "SSD baseline throughput must be positive");
        Self::new(CostModelParams {
            rd: p_mmem / p_s,
            rc: p_cxl / p_s,
            c,
            rt,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example() -> CostModel {
        CostModel::new(CostModelParams::default())
    }

    #[test]
    fn worked_example_matches_paper() {
        // §6: Rd=10, Rc=8, C=2 => Ncxl/Nbaseline = 67.29 %.
        let m = example();
        let ratio = m.server_ratio();
        assert!((ratio - 0.6729).abs() < 0.0001, "ratio {ratio}");
        // With Rt=1.1 the TCO saving is 25.98 %.
        let saving = m.tco_saving();
        assert!((saving - 0.2598).abs() < 0.0005, "saving {saving}");
    }

    #[test]
    fn server_ratio_equalizes_execution_times() {
        // The ratio is derived from T_baseline = T_cxl; verify the
        // closed form against the time model directly.
        let m = example();
        let (w, d, n_base) = (100.0, 1.0, 30.0);
        let n_cxl = n_base * m.server_ratio();
        let tb = m.t_baseline(w, n_base, d);
        let tc = m.t_cxl(w, n_cxl, d);
        assert!((tb - tc).abs() < 1e-9, "tb {tb} tc {tc}");
    }

    #[test]
    fn faster_cxl_needs_fewer_servers() {
        let slow = CostModel::new(CostModelParams {
            rc: 4.0,
            ..Default::default()
        });
        let fast = CostModel::new(CostModelParams {
            rc: 9.0,
            ..Default::default()
        });
        assert!(fast.server_ratio() < slow.server_ratio());
    }

    #[test]
    fn more_cxl_capacity_needs_fewer_servers() {
        // Smaller C = more CXL per server = fewer servers.
        let lots = CostModel::new(CostModelParams {
            c: 1.0,
            ..Default::default()
        });
        let little = CostModel::new(CostModelParams {
            c: 8.0,
            ..Default::default()
        });
        assert!(lots.server_ratio() < little.server_ratio());
    }

    #[test]
    fn ratio_stays_in_unit_interval() {
        for rd in [2.0, 5.0, 10.0, 50.0] {
            for rc in [1.5, 3.0, 8.0] {
                if rc > rd {
                    continue;
                }
                for c in [0.5, 1.0, 2.0, 4.0] {
                    let m = CostModel::new(CostModelParams { rd, rc, c, rt: 1.1 });
                    let r = m.server_ratio();
                    assert!((0.0..=1.0).contains(&r), "rd={rd} rc={rc} c={c}: ratio {r}");
                }
            }
        }
    }

    #[test]
    fn expensive_cxl_servers_erode_saving() {
        let cheap = CostModel::new(CostModelParams {
            rt: 1.0,
            ..Default::default()
        });
        let pricey = CostModel::new(CostModelParams {
            rt: 1.3,
            ..Default::default()
        });
        assert!(cheap.tco_saving() > pricey.tco_saving());
        // Fixed infrastructure costs reduce it further.
        assert!(cheap.tco_saving_with_fixed_cost(0.05) < cheap.tco_saving());
    }

    #[test]
    fn from_measurements_normalizes() {
        // 10 kops SSD, 100 kops MMEM, 80 kops CXL == the worked example.
        let m = CostModel::from_measurements(10.0, 100.0, 80.0, 2.0, 1.1);
        assert!((m.server_ratio() - 0.6729).abs() < 0.0001);
    }

    #[test]
    #[should_panic(expected = "R_d >= R_c")]
    fn cxl_faster_than_mmem_rejected() {
        CostModel::new(CostModelParams {
            rd: 5.0,
            rc: 6.0,
            c: 2.0,
            rt: 1.0,
        });
    }

    #[test]
    #[should_panic(expected = "R_d must exceed")]
    fn degenerate_rd_rejected() {
        CostModel::new(CostModelParams {
            rd: 1.0,
            rc: 1.0,
            c: 2.0,
            rt: 1.0,
        });
    }
}
