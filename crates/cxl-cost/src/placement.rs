//! Discrete VM placement over pooled CXL memory.
//!
//! The [`crate::pooling`] model sizes a pool from demand quantiles; this
//! module cross-validates it with an operational simulation: VMs with
//! random memory demands arrive and depart on a cluster of hosts that
//! share one CXL pool, and the admission controller places each VM's
//! overflow (demand beyond host DRAM) into the pool. The measured
//! rejection rate at a given pool size should agree with the quantile
//! model's provisioning percentile.

use rand::Rng;
use serde::Serialize;

use crate::pooling::DemandModel;

// (Demand sampling is shared with the pooling module.)

/// Placement-simulation configuration.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PlacementConfig {
    /// Hosts sharing the pool.
    pub hosts: usize,
    /// DRAM per host, GiB.
    pub host_dram_gib: f64,
    /// Shared pool capacity, GiB.
    pub pool_gib: f64,
    /// One VM per host at a time (the pooling model's granularity):
    /// each arrival replaces the host's previous tenant.
    pub demand: DemandModel,
    /// Arrival/departure rounds to simulate.
    pub rounds: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlacementConfig {
    fn default() -> Self {
        Self {
            hosts: 16,
            host_dram_gib: 512.0,
            pool_gib: 1_600.0,
            demand: DemandModel {
                mean_gib: 512.0,
                std_gib: 128.0,
            },
            rounds: 20_000,
            seed: 42,
        }
    }
}

/// Outcome of a placement simulation.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PlacementOutcome {
    /// Tenant placements attempted.
    pub attempts: u64,
    /// Placements rejected (overflow did not fit the pool).
    pub rejections: u64,
    /// Mean pool occupancy, GiB.
    pub mean_pool_used_gib: f64,
    /// Peak pool occupancy, GiB.
    pub peak_pool_used_gib: f64,
}

impl PlacementOutcome {
    /// Fraction of placements rejected.
    pub fn rejection_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.rejections as f64 / self.attempts as f64
        }
    }
}

/// Runs the discrete placement simulation.
///
/// Every round, one random host's tenant departs and a new tenant with a
/// fresh demand arrives. Demand up to the host's DRAM is served locally;
/// the excess must fit in the pool's free space or the tenant is
/// rejected (the host keeps its previous tenant's reservation at zero —
/// i.e. the slot idles, which is the revenue loss pooling avoids).
///
/// # Panics
///
/// Panics on a degenerate configuration.
pub fn simulate(cfg: PlacementConfig) -> PlacementOutcome {
    assert!(cfg.hosts > 0, "need hosts");
    assert!(cfg.rounds > 0, "need rounds");
    assert!(cfg.pool_gib >= 0.0, "negative pool");
    let mut rng = cxl_stats::rng::stream_rng(cfg.seed, "placement");
    // Per-host pool usage, GiB (0 when the slot idles).
    let mut pool_use = vec![0.0f64; cfg.hosts];
    let mut pool_used: f64 = 0.0;
    let mut attempts = 0u64;
    let mut rejections = 0u64;
    let mut occupancy_sum = 0.0;
    let mut peak: f64 = 0.0;

    for _ in 0..cfg.rounds {
        let host = rng.gen_range(0..cfg.hosts);
        // Departure frees the host's pool share.
        pool_used -= pool_use[host];
        pool_use[host] = 0.0;

        // Arrival.
        let demand = cfg.demand.sample(&mut rng);
        let overflow = (demand - cfg.host_dram_gib).max(0.0);
        attempts += 1;
        if pool_used + overflow <= cfg.pool_gib {
            pool_use[host] = overflow;
            pool_used += overflow;
        } else {
            rejections += 1;
        }
        occupancy_sum += pool_used;
        peak = peak.max(pool_used);
    }

    PlacementOutcome {
        attempts,
        rejections,
        mean_pool_used_gib: occupancy_sum / cfg.rounds as f64,
        peak_pool_used_gib: peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pooling::{evaluate, PoolingConfig};

    #[test]
    fn quantile_sized_pool_meets_its_percentile_operationally() {
        // Size the pool for p99 with the quantile model, then verify the
        // discrete simulation rejects ~1 % or less of placements.
        let pooled = evaluate(PoolingConfig::default());
        let out = simulate(PlacementConfig {
            pool_gib: pooled.pool_gib,
            ..Default::default()
        });
        let rate = out.rejection_rate();
        assert!(rate < 0.03, "rejection rate {rate} for a p99-sized pool");
        // And the pool is actually used.
        assert!(out.mean_pool_used_gib > 0.2 * pooled.pool_gib);
    }

    #[test]
    fn undersized_pool_rejects_often() {
        let pooled = evaluate(PoolingConfig::default());
        let out = simulate(PlacementConfig {
            pool_gib: pooled.pool_gib * 0.3,
            ..Default::default()
        });
        assert!(
            out.rejection_rate() > 0.05,
            "rate {} with a 30% pool",
            out.rejection_rate()
        );
    }

    #[test]
    fn infinite_pool_never_rejects() {
        let out = simulate(PlacementConfig {
            pool_gib: f64::INFINITY,
            ..Default::default()
        });
        assert_eq!(out.rejections, 0);
        assert!(out.peak_pool_used_gib.is_finite());
    }

    #[test]
    fn zero_variance_needs_no_pool() {
        let out = simulate(PlacementConfig {
            demand: DemandModel {
                mean_gib: 400.0,
                std_gib: 0.0,
            },
            pool_gib: 0.0,
            ..Default::default()
        });
        assert_eq!(out.rejections, 0);
        assert_eq!(out.peak_pool_used_gib, 0.0);
    }

    #[test]
    fn deterministic() {
        let a = simulate(PlacementConfig::default());
        let b = simulate(PlacementConfig::default());
        assert_eq!(a.rejections, b.rejections);
        assert_eq!(a.peak_pool_used_gib, b.peak_pool_used_gib);
    }
}
