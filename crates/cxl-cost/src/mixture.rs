//! Multi-application cost mixtures.
//!
//! §6 notes that the Abstract Cost Model covers "only one type of
//! application at a time" and flags multi-application estates as future
//! work. This module provides the straightforward composition: a fleet
//! is a weighted mixture of application classes, each with its own
//! measured `(R_d, R_c)`; server counts compose linearly because each
//! class runs on its own slice of the fleet.

use serde::{Deserialize, Serialize};

use crate::error::CostError;
use crate::model::{CostModel, CostModelParams};

/// One application class within a fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppClass {
    /// Display name, e.g. `"Spark SQL"`.
    pub name: String,
    /// Fraction of the baseline fleet this class occupies (weights must
    /// sum to 1).
    pub fleet_fraction: f64,
    /// The class's cost-model parameters.
    pub params: CostModelParams,
}

/// A weighted mixture of application classes.
#[derive(Debug, Clone, Serialize)]
pub struct FleetMixture {
    classes: Vec<AppClass>,
}

impl FleetMixture {
    /// Builds a mixture.
    ///
    /// # Panics
    ///
    /// Panics if there are no classes, a weight is non-positive, or the
    /// weights do not sum to 1 (±1e-6). Use
    /// [`FleetMixture::try_new`] for user-supplied fleet descriptions.
    pub fn new(classes: Vec<AppClass>) -> Self {
        Self::try_new(classes).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible twin of [`FleetMixture::new`]: malformed fleet
    /// descriptions come back as a [`CostError`] instead of a panic.
    pub fn try_new(classes: Vec<AppClass>) -> Result<Self, CostError> {
        if classes.is_empty() {
            return Err(CostError::EmptyMixture);
        }
        let total: f64 = classes.iter().map(|c| c.fleet_fraction).sum();
        if (total - 1.0).abs() >= 1e-6 {
            return Err(CostError::UnnormalizedWeights(total));
        }
        if let Some(c) = classes.iter().find(|c| c.fleet_fraction <= 0.0) {
            return Err(CostError::NonPositiveWeight(c.name.clone()));
        }
        Ok(Self { classes })
    }

    /// The classes.
    pub fn classes(&self) -> &[AppClass] {
        &self.classes
    }

    /// Fleet-wide `N_cxl / N_baseline`: the weighted sum of per-class
    /// ratios.
    pub fn server_ratio(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.fleet_fraction * CostModel::new(c.params).server_ratio())
            .sum()
    }

    /// Fleet-wide TCO saving with a common relative server cost `R_t`
    /// (taken from each class's params, weighted).
    pub fn tco_saving(&self) -> f64 {
        1.0 - self
            .classes
            .iter()
            .map(|c| c.fleet_fraction * CostModel::new(c.params).server_ratio() * c.params.rt)
            .sum::<f64>()
    }

    /// Per-class `(name, server_ratio, tco_saving)` breakdown.
    pub fn breakdown(&self) -> Vec<(String, f64, f64)> {
        self.classes
            .iter()
            .map(|c| {
                let m = CostModel::new(c.params);
                (c.name.clone(), m.server_ratio(), m.tco_saving())
            })
            .collect()
    }

    /// The class with the largest absolute contribution to fleet savings
    /// (weight × saving).
    pub fn biggest_contributor(&self) -> &AppClass {
        let score = |c: &AppClass| c.fleet_fraction * CostModel::new(c.params).tco_saving();
        // `try_new` rejects empty class lists, so the fold has a seed.
        let (mut best, rest) = match self.classes.split_first() {
            Some(parts) => parts,
            None => unreachable!("FleetMixture::try_new guarantees at least one class"),
        };
        for c in rest {
            if score(c) >= score(best) {
                best = c;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(name: &str, w: f64, rd: f64, rc: f64) -> AppClass {
        AppClass {
            name: name.to_string(),
            fleet_fraction: w,
            params: CostModelParams {
                rd,
                rc,
                c: 2.0,
                rt: 1.1,
            },
        }
    }

    #[test]
    fn single_class_matches_plain_model() {
        let m = FleetMixture::new(vec![class("kv", 1.0, 10.0, 8.0)]);
        assert!((m.server_ratio() - 0.6729).abs() < 1e-3);
        assert!((m.tco_saving() - 0.2598).abs() < 1e-3);
    }

    #[test]
    fn mixture_interpolates_between_classes() {
        let fast = class("kv", 0.5, 10.0, 9.0);
        let slow = class("spark", 0.5, 10.0, 3.0);
        let mix = FleetMixture::new(vec![fast.clone(), slow.clone()]);
        let rf = CostModel::new(fast.params).server_ratio();
        let rs = CostModel::new(slow.params).server_ratio();
        let r = mix.server_ratio();
        assert!(r > rf.min(rs) && r < rf.max(rs));
        assert!((r - 0.5 * (rf + rs)).abs() < 1e-12);
    }

    #[test]
    fn breakdown_and_contributor() {
        let mix = FleetMixture::new(vec![
            class("kv", 0.7, 10.0, 9.0),
            class("spark", 0.3, 10.0, 3.0),
        ]);
        let b = mix.breakdown();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].0, "kv");
        // kv: higher weight and better Rc → bigger contributor.
        assert_eq!(mix.biggest_contributor().name, "kv");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn unnormalized_weights_rejected() {
        FleetMixture::new(vec![class("a", 0.5, 10.0, 8.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mixture_rejected() {
        FleetMixture::new(vec![]);
    }

    #[test]
    fn try_new_returns_typed_errors() {
        assert_eq!(
            FleetMixture::try_new(vec![]).unwrap_err(),
            crate::error::CostError::EmptyMixture
        );
        let err = FleetMixture::try_new(vec![class("a", 0.5, 10.0, 8.0)]).unwrap_err();
        assert!(matches!(
            err,
            crate::error::CostError::UnnormalizedWeights(t) if (t - 0.5).abs() < 1e-12
        ));
        let mut bad = vec![class("a", 1.0, 10.0, 8.0), class("b", 0.0, 10.0, 8.0)];
        bad[0].fleet_fraction = 1.0;
        let err = FleetMixture::try_new(bad).unwrap_err();
        assert!(matches!(
            err,
            crate::error::CostError::NonPositiveWeight(n) if n == "b"
        ));
        assert!(FleetMixture::try_new(vec![class("kv", 1.0, 10.0, 8.0)]).is_ok());
    }
}
