//! Multi-application cost mixtures.
//!
//! §6 notes that the Abstract Cost Model covers "only one type of
//! application at a time" and flags multi-application estates as future
//! work. This module provides the straightforward composition: a fleet
//! is a weighted mixture of application classes, each with its own
//! measured `(R_d, R_c)`; server counts compose linearly because each
//! class runs on its own slice of the fleet.

use serde::{Deserialize, Serialize};

use crate::model::{CostModel, CostModelParams};

/// One application class within a fleet.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppClass {
    /// Display name, e.g. `"Spark SQL"`.
    pub name: String,
    /// Fraction of the baseline fleet this class occupies (weights must
    /// sum to 1).
    pub fleet_fraction: f64,
    /// The class's cost-model parameters.
    pub params: CostModelParams,
}

/// A weighted mixture of application classes.
#[derive(Debug, Clone, Serialize)]
pub struct FleetMixture {
    classes: Vec<AppClass>,
}

impl FleetMixture {
    /// Builds a mixture.
    ///
    /// # Panics
    ///
    /// Panics if there are no classes, a weight is non-positive, or the
    /// weights do not sum to 1 (±1e-6).
    pub fn new(classes: Vec<AppClass>) -> Self {
        assert!(!classes.is_empty(), "mixture needs at least one class");
        let total: f64 = classes.iter().map(|c| c.fleet_fraction).sum();
        assert!(
            (total - 1.0).abs() < 1e-6,
            "fleet fractions must sum to 1, got {total}"
        );
        for c in &classes {
            assert!(
                c.fleet_fraction > 0.0,
                "class {} has non-positive weight",
                c.name
            );
        }
        Self { classes }
    }

    /// The classes.
    pub fn classes(&self) -> &[AppClass] {
        &self.classes
    }

    /// Fleet-wide `N_cxl / N_baseline`: the weighted sum of per-class
    /// ratios.
    pub fn server_ratio(&self) -> f64 {
        self.classes
            .iter()
            .map(|c| c.fleet_fraction * CostModel::new(c.params).server_ratio())
            .sum()
    }

    /// Fleet-wide TCO saving with a common relative server cost `R_t`
    /// (taken from each class's params, weighted).
    pub fn tco_saving(&self) -> f64 {
        1.0 - self
            .classes
            .iter()
            .map(|c| c.fleet_fraction * CostModel::new(c.params).server_ratio() * c.params.rt)
            .sum::<f64>()
    }

    /// Per-class `(name, server_ratio, tco_saving)` breakdown.
    pub fn breakdown(&self) -> Vec<(String, f64, f64)> {
        self.classes
            .iter()
            .map(|c| {
                let m = CostModel::new(c.params);
                (c.name.clone(), m.server_ratio(), m.tco_saving())
            })
            .collect()
    }

    /// The class with the largest absolute contribution to fleet savings
    /// (weight × saving).
    pub fn biggest_contributor(&self) -> &AppClass {
        self.classes
            .iter()
            .max_by(|a, b| {
                let sa = a.fleet_fraction * CostModel::new(a.params).tco_saving();
                let sb = b.fleet_fraction * CostModel::new(b.params).tco_saving();
                sa.total_cmp(&sb)
            })
            .expect("non-empty mixture")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class(name: &str, w: f64, rd: f64, rc: f64) -> AppClass {
        AppClass {
            name: name.to_string(),
            fleet_fraction: w,
            params: CostModelParams {
                rd,
                rc,
                c: 2.0,
                rt: 1.1,
            },
        }
    }

    #[test]
    fn single_class_matches_plain_model() {
        let m = FleetMixture::new(vec![class("kv", 1.0, 10.0, 8.0)]);
        assert!((m.server_ratio() - 0.6729).abs() < 1e-3);
        assert!((m.tco_saving() - 0.2598).abs() < 1e-3);
    }

    #[test]
    fn mixture_interpolates_between_classes() {
        let fast = class("kv", 0.5, 10.0, 9.0);
        let slow = class("spark", 0.5, 10.0, 3.0);
        let mix = FleetMixture::new(vec![fast.clone(), slow.clone()]);
        let rf = CostModel::new(fast.params).server_ratio();
        let rs = CostModel::new(slow.params).server_ratio();
        let r = mix.server_ratio();
        assert!(r > rf.min(rs) && r < rf.max(rs));
        assert!((r - 0.5 * (rf + rs)).abs() < 1e-12);
    }

    #[test]
    fn breakdown_and_contributor() {
        let mix = FleetMixture::new(vec![
            class("kv", 0.7, 10.0, 9.0),
            class("spark", 0.3, 10.0, 3.0),
        ]);
        let b = mix.breakdown();
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].0, "kv");
        // kv: higher weight and better Rc → bigger contributor.
        assert_eq!(mix.biggest_contributor().name, "kv");
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn unnormalized_weights_rejected() {
        FleetMixture::new(vec![class("a", 0.5, 10.0, 8.0)]);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mixture_rejected() {
        FleetMixture::new(vec![]);
    }
}
