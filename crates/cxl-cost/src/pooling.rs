//! CXL memory pooling economics (§6 extension, §7.1).
//!
//! CXL 2.0 lets up to 16 hosts share a pooled expander. The saving comes
//! from statistical multiplexing: without a pool every host provisions
//! DRAM for its own peak demand, while a pool only needs to absorb the
//! *aggregate* excess over the hosts' base DRAM — and uncorrelated peaks
//! rarely align. This module sizes pool and per-host DRAM against a
//! deterministic Monte-Carlo demand model and prices the result.

use cxl_stats::{nearest_rank as quantile, Normal};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-host memory demand distribution (truncated normal, GiB).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DemandModel {
    /// Mean demand, GiB.
    pub mean_gib: f64,
    /// Standard deviation, GiB.
    pub std_gib: f64,
}

impl DemandModel {
    /// Draws one demand sample (non-negative).
    pub(crate) fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Normal::new(self.mean_gib, self.std_gib).sample_non_negative(rng)
    }
}

/// Pooling study configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolingConfig {
    /// Hosts sharing one pool (CXL 2.0 allows up to 16).
    pub hosts: usize,
    /// Per-host demand model.
    pub demand: DemandModel,
    /// Provisioning percentile (e.g. 0.99: demand must fit 99 % of the
    /// time).
    pub percentile: f64,
    /// Base DRAM per host with pooling, GiB (sized for typical demand;
    /// the pool absorbs the excess).
    pub local_dram_gib: f64,
    /// Relative cost of pooled CXL capacity per GiB versus DRAM
    /// (includes controller/switch amortization; >1 means CXL GiB costs
    /// more, <1 less).
    pub cxl_cost_per_gib_rel: f64,
    /// Monte-Carlo samples.
    pub samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PoolingConfig {
    fn default() -> Self {
        Self {
            hosts: 16,
            demand: DemandModel {
                mean_gib: 512.0,
                std_gib: 128.0,
            },
            percentile: 0.99,
            local_dram_gib: 512.0,
            cxl_cost_per_gib_rel: 0.9,
            samples: 20_000,
            seed: 42,
        }
    }
}

/// Result of a pooling study.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PoolingOutcome {
    /// Per-host DRAM without pooling (individual p-quantile), GiB.
    pub dram_per_host_no_pool_gib: f64,
    /// Total memory without pooling, GiB.
    pub total_no_pool_gib: f64,
    /// Pool size required with pooling, GiB.
    pub pool_gib: f64,
    /// Total memory with pooling (host DRAM + pool), GiB.
    pub total_pool_gib: f64,
    /// Capacity saving fraction.
    pub capacity_saving: f64,
    /// Cost saving fraction after pricing CXL GiB vs DRAM GiB.
    pub cost_saving: f64,
}

/// Runs the pooling study.
///
/// # Panics
///
/// Panics on degenerate configuration (no hosts/samples, percentile out
/// of `(0, 1)`).
pub fn evaluate(cfg: PoolingConfig) -> PoolingOutcome {
    assert!(cfg.hosts > 0, "need at least one host");
    assert!(cfg.samples > 0, "need samples");
    assert!(
        cfg.percentile > 0.0 && cfg.percentile < 1.0,
        "percentile out of range"
    );
    let mut rng = cxl_stats::rng::stream_rng(cfg.seed, "pooling");

    let mut per_host: Vec<f64> = Vec::with_capacity(cfg.samples);
    let mut aggregate_excess: Vec<f64> = Vec::with_capacity(cfg.samples);
    for _ in 0..cfg.samples {
        let mut excess = 0.0;
        for _ in 0..cfg.hosts {
            let d = cfg.demand.sample(&mut rng);
            per_host.push(d);
            excess += (d - cfg.local_dram_gib).max(0.0);
        }
        aggregate_excess.push(excess);
    }
    per_host.sort_by(f64::total_cmp);
    aggregate_excess.sort_by(f64::total_cmp);

    let dram_no_pool = quantile(&per_host, cfg.percentile);
    let total_no_pool = dram_no_pool * cfg.hosts as f64;
    let pool = quantile(&aggregate_excess, cfg.percentile);
    let total_pool = cfg.local_dram_gib * cfg.hosts as f64 + pool;
    let cost_no_pool = total_no_pool;
    let cost_pool = cfg.local_dram_gib * cfg.hosts as f64 + pool * cfg.cxl_cost_per_gib_rel;
    PoolingOutcome {
        dram_per_host_no_pool_gib: dram_no_pool,
        total_no_pool_gib: total_no_pool,
        pool_gib: pool,
        total_pool_gib: total_pool,
        capacity_saving: 1.0 - total_pool / total_no_pool,
        cost_saving: 1.0 - cost_pool / cost_no_pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pooling_saves_capacity_via_multiplexing() {
        let out = evaluate(PoolingConfig::default());
        // Individual p99 needs mean + ~2.33 sigma per host; the pool only
        // needs the aggregate p99 of the excesses.
        assert!(out.dram_per_host_no_pool_gib > 700.0);
        assert!(out.capacity_saving > 0.15, "saving {}", out.capacity_saving);
        assert!(out.capacity_saving < 0.60);
        assert!(out.cost_saving > out.capacity_saving - 0.1);
        assert!(out.total_pool_gib < out.total_no_pool_gib);
    }

    #[test]
    fn more_hosts_multiplex_better() {
        let small = evaluate(PoolingConfig {
            hosts: 2,
            ..Default::default()
        });
        let large = evaluate(PoolingConfig {
            hosts: 16,
            ..Default::default()
        });
        assert!(
            large.capacity_saving > small.capacity_saving,
            "16 hosts {} vs 2 hosts {}",
            large.capacity_saving,
            small.capacity_saving
        );
    }

    #[test]
    fn zero_variance_leaves_nothing_to_pool() {
        let out = evaluate(PoolingConfig {
            demand: DemandModel {
                mean_gib: 512.0,
                std_gib: 0.0,
            },
            ..Default::default()
        });
        assert!(out.pool_gib < 1.0, "pool {}", out.pool_gib);
        assert!(out.capacity_saving.abs() < 0.01);
    }

    #[test]
    fn expensive_cxl_erodes_cost_saving() {
        let cheap = evaluate(PoolingConfig {
            cxl_cost_per_gib_rel: 0.8,
            ..Default::default()
        });
        let pricey = evaluate(PoolingConfig {
            cxl_cost_per_gib_rel: 1.5,
            ..Default::default()
        });
        assert!(cheap.cost_saving > pricey.cost_saving);
        // Capacity saving is price-independent.
        assert!((cheap.capacity_saving - pricey.capacity_saving).abs() < 1e-12);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = evaluate(PoolingConfig::default());
        let b = evaluate(PoolingConfig::default());
        assert_eq!(a.pool_gib, b.pool_gib);
        assert_eq!(a.capacity_saving, b.capacity_saving);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn bad_percentile_rejected() {
        evaluate(PoolingConfig {
            percentile: 1.0,
            ..Default::default()
        });
    }
}
