//! Typed errors for the cost models.
//!
//! User-supplied fleet descriptions (mixture weights, class lists) are
//! ordinary runtime inputs, not caller bugs, so malformed ones surface
//! as [`CostError`] values instead of panics — the same convention as
//! `TierError`/`PerfError`. The panicking constructors remain as thin
//! wrappers for literal, known-good inputs.

/// A recoverable cost-model input failure.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// A mixture needs at least one class.
    EmptyMixture,
    /// Fleet fractions must sum to 1; carries the actual total.
    UnnormalizedWeights(f64),
    /// A class's fleet fraction is zero or negative; carries the class
    /// name.
    NonPositiveWeight(String),
}

impl std::fmt::Display for CostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CostError::EmptyMixture => write!(f, "mixture needs at least one class"),
            CostError::UnnormalizedWeights(total) => {
                write!(f, "fleet fractions must sum to 1, got {total}")
            }
            CostError::NonPositiveWeight(name) => {
                write!(f, "class {name} has non-positive weight")
            }
        }
    }
}

impl std::error::Error for CostError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_panic_phrases() {
        // Callers that upgraded from catching panics grep these.
        assert!(CostError::EmptyMixture
            .to_string()
            .contains("at least one class"));
        assert!(CostError::UnnormalizedWeights(0.5)
            .to_string()
            .contains("sum to 1"));
        assert!(CostError::NonPositiveWeight("kv".into())
            .to_string()
            .contains("non-positive weight"));
    }
}
