#![warn(missing_docs)]

//! Cost and revenue models from the paper.
//!
//! * [`model`] — the Abstract Cost Model of §6 (Table 3): given relative
//!   throughputs of SSD-spill / MMEM / CXL execution and the memory
//!   capacity ratio, how many CXL-equipped servers replace the baseline
//!   cluster, and what TCO saving follows.
//! * [`revenue`] — the §4.3 elastic-compute analysis: revenue recovered
//!   by selling memory-stranded vCPUs backed by CXL memory at a
//!   discount.
//! * [`processors`] — Table 2: Intel processor generations, their vCPU
//!   counts and memory ceilings, and the 1:4 vCPU:GiB requirement.
//! * [`mixture`] — §6's stated future work: fleets mixing multiple
//!   application classes, composed from per-class cost models.
//! * [`pooling`] — §7.1's CXL 2.0 pooling: statistical-multiplexing
//!   sizing of a shared expander pool and its cost saving.
//! * [`placement`] — a discrete VM-placement simulation cross-validating
//!   the pooling quantile model operationally.
//! * [`error`] — typed input-validation errors ([`CostError`]) for
//!   user-supplied fleet descriptions.

pub mod error;
pub mod mixture;
pub mod model;
pub mod placement;
pub mod pooling;
pub mod processors;
pub mod revenue;

pub use error::CostError;
pub use mixture::{AppClass, FleetMixture};
pub use model::{CostModel, CostModelParams};
pub use pooling::{DemandModel, PoolingConfig, PoolingOutcome};
pub use processors::{processor_series, Processor};
pub use revenue::RevenueModel;
