//! Intel processor series and the vCPU:memory squeeze (Table 2).

use serde::{Deserialize, Serialize};

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    /// Launch year (as listed; some delayed).
    pub year: &'static str,
    /// Product name.
    pub name: &'static str,
    /// Maximum vCPUs in a 2-socket server.
    pub max_vcpus_per_server: u32,
    /// DDR channels per socket (`None` where the paper lists TBD).
    pub memory_channels_per_socket: Option<u32>,
    /// Maximum supported memory, TB.
    pub max_memory_tb: f64,
}

impl Processor {
    /// Memory required to sell every vCPU at the 1:4 ratio, TB
    /// (4 GiB per vCPU; the paper's "Required Memory (1:4)" column).
    pub fn required_memory_tb(&self) -> f64 {
        self.max_vcpus_per_server as f64 * 4.0 / 1000.0
    }

    /// True when the platform cannot supply the 1:4 ratio from DDR
    /// alone — the CXL opportunity (§4.3).
    pub fn memory_constrained(&self) -> bool {
        self.required_memory_tb() > self.max_memory_tb
    }
}

/// Table 2 verbatim.
pub fn processor_series() -> Vec<Processor> {
    vec![
        Processor {
            year: "2021",
            name: "IceLake-SP",
            max_vcpus_per_server: 160,
            memory_channels_per_socket: Some(8),
            max_memory_tb: 4.0,
        },
        Processor {
            year: "2022 (delayed)",
            name: "Sapphire Rapids",
            max_vcpus_per_server: 192,
            memory_channels_per_socket: Some(8),
            max_memory_tb: 4.0,
        },
        Processor {
            year: "2023 (delayed)",
            name: "Emerald Rapids",
            max_vcpus_per_server: 256,
            memory_channels_per_socket: Some(8),
            max_memory_tb: 4.0,
        },
        Processor {
            year: "2024+",
            name: "Sierra Forest",
            max_vcpus_per_server: 1152,
            memory_channels_per_socket: Some(12),
            max_memory_tb: 4.0,
        },
        Processor {
            year: "2025+",
            name: "Clearwater Forest",
            max_vcpus_per_server: 1152,
            memory_channels_per_socket: None,
            max_memory_tb: 4.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_generations() {
        let t = processor_series();
        assert_eq!(t.len(), 5);
        assert_eq!(t[0].name, "IceLake-SP");
        assert_eq!(t[4].name, "Clearwater Forest");
    }

    #[test]
    fn required_memory_matches_table() {
        let t = processor_series();
        // Table 2: 0.64, 0.768, 1, 4.5, 4.5 TB.
        let expected = [0.64, 0.768, 1.024, 4.608, 4.608];
        for (p, e) in t.iter().zip(expected) {
            assert!(
                (p.required_memory_tb() - e).abs() < 0.03,
                "{}: {} vs {}",
                p.name,
                p.required_memory_tb(),
                e
            );
        }
    }

    #[test]
    fn sierra_forest_is_memory_constrained() {
        // §4.3: Sierra Forest supports 1152 vCPUs but <4 TB of memory,
        // short of the ~4.5 TB the 1:4 ratio demands.
        let t = processor_series();
        let sf = t.iter().find(|p| p.name == "Sierra Forest").unwrap();
        assert!(sf.memory_constrained());
        // Earlier generations were not.
        let il = t.iter().find(|p| p.name == "IceLake-SP").unwrap();
        assert!(!il.memory_constrained());
    }

    #[test]
    fn vcpu_growth_is_monotone() {
        let t = processor_series();
        for w in t.windows(2) {
            assert!(w[1].max_vcpus_per_server >= w[0].max_vcpus_per_server);
        }
    }
}
