//! Elastic-compute revenue recovery (§4.3).
//!
//! Cloud servers sell vCPUs with an "optimal" 1:4 vCPU:GiB ratio. When a
//! server's memory falls short (e.g. 1:3), a share of vCPUs cannot be
//! sold; CXL memory expansion lets the provider sell them as
//! CXL-backed instances at a discount that reflects their measured
//! performance penalty (§4.3.2: ≈12.5 % slower KeyDB, offered at a 20 %
//! discount, recovering ≈26.8 % of revenue).

use serde::{Deserialize, Serialize};

/// The vCPU/memory revenue model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RevenueModel {
    /// vCPUs per server.
    pub vcpus: u32,
    /// Installed memory in GiB.
    pub memory_gib: u32,
    /// GiB of memory required per sellable vCPU (4 for the 1:4 ratio).
    pub gib_per_vcpu: f64,
    /// Price discount applied to CXL-backed instances (0.2 = 20 %).
    pub cxl_discount: f64,
}

impl RevenueModel {
    /// The §4.3 example: a server at a 1:3 vCPU:memory ratio.
    pub fn paper_example() -> Self {
        Self {
            vcpus: 128,
            memory_gib: 384, // 1:3 instead of the optimal 1:4 (512).
            gib_per_vcpu: 4.0,
            cxl_discount: 0.2,
        }
    }

    /// vCPUs sellable at the optimal ratio from installed memory.
    pub fn sellable_vcpus(&self) -> f64 {
        (self.memory_gib as f64 / self.gib_per_vcpu).min(self.vcpus as f64)
    }

    /// vCPUs stranded by the memory shortfall.
    pub fn stranded_vcpus(&self) -> f64 {
        self.vcpus as f64 - self.sellable_vcpus()
    }

    /// Fraction of nominal revenue lost without CXL.
    pub fn revenue_loss(&self) -> f64 {
        self.stranded_vcpus() / self.vcpus as f64
    }

    /// Extra memory (GiB) CXL must supply to sell every vCPU.
    pub fn required_cxl_gib(&self) -> f64 {
        (self.vcpus as f64 * self.gib_per_vcpu - self.memory_gib as f64).max(0.0)
    }

    /// Revenue uplift from selling the stranded vCPUs as discounted
    /// CXL-backed instances, relative to the non-CXL revenue.
    ///
    /// §4.3.2: 25 % stranded at a 20 % discount → `0.25·0.8/0.75 ≈
    /// 26.8 %` improvement.
    pub fn revenue_uplift(&self) -> f64 {
        let base = self.sellable_vcpus();
        if base == 0.0 {
            return 0.0;
        }
        self.stranded_vcpus() * (1.0 - self.cxl_discount) / base
    }

    /// Fraction of the lost revenue recovered.
    pub fn recovery_fraction(&self) -> f64 {
        1.0 - self.cxl_discount
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_numbers() {
        let m = RevenueModel::paper_example();
        assert_eq!(m.sellable_vcpus(), 96.0);
        assert_eq!(m.stranded_vcpus(), 32.0);
        assert!((m.revenue_loss() - 0.25).abs() < 1e-12);
        // 20/75 = 26.77 % in the paper's arithmetic.
        let uplift = m.revenue_uplift();
        assert!((uplift - 0.26667).abs() < 0.001, "uplift {uplift}");
        assert!((m.recovery_fraction() - 0.8).abs() < 1e-12);
        assert_eq!(m.required_cxl_gib(), 128.0);
    }

    #[test]
    fn balanced_server_has_no_uplift() {
        let m = RevenueModel {
            vcpus: 128,
            memory_gib: 512,
            gib_per_vcpu: 4.0,
            cxl_discount: 0.2,
        };
        assert_eq!(m.stranded_vcpus(), 0.0);
        assert_eq!(m.revenue_uplift(), 0.0);
        assert_eq!(m.required_cxl_gib(), 0.0);
    }

    #[test]
    fn deeper_discount_recovers_less() {
        let mut m = RevenueModel::paper_example();
        let small = m.revenue_uplift();
        m.cxl_discount = 0.5;
        assert!(m.revenue_uplift() < small);
    }

    #[test]
    fn oversized_memory_caps_at_vcpus() {
        let m = RevenueModel {
            vcpus: 64,
            memory_gib: 1024,
            gib_per_vcpu: 4.0,
            cxl_discount: 0.2,
        };
        assert_eq!(m.sellable_vcpus(), 64.0);
    }
}
