#![warn(missing_docs)]

//! An Intel-MLC-style loaded-latency harness.
//!
//! Methodology (§3.1): MLC assigns a private memory segment to each of 16
//! worker threads and steps up the per-thread operation rate, recording
//! `(bandwidth, latency)` at every step until bandwidth saturates. This
//! harness reproduces that sweep against the `cxl-perf` model: each step
//! offers a byte rate to the flow solver and records the achieved
//! bandwidth and the loaded latency.
//!
//! # Examples
//!
//! ```
//! use cxl_mlc::{Mlc, MlcConfig};
//! use cxl_perf::{AccessMix, MemSystem};
//! use cxl_topology::{NodeId, SncMode, SocketId, Topology};
//!
//! let sys = MemSystem::new(&Topology::paper_testbed(SncMode::Snc4));
//! let mlc = Mlc::new(MlcConfig::default());
//! let curve = mlc.loaded_latency(&sys, SocketId(0), NodeId(0), AccessMix::read_only());
//! // The sweep starts near idle latency and ends near peak bandwidth.
//! assert!(curve.first().unwrap().latency_ns < 110.0);
//! assert!(curve.iter().map(|p| p.bandwidth_gbps).fold(0.0, f64::max) > 60.0);
//! ```

use serde::{Deserialize, Serialize};

use cxl_perf::{AccessMix, Distance, FlowSpec, MemSystem};
use cxl_stats::report::{Figure, Series, Table};
use cxl_topology::{MemoryTier, NodeId, SocketId};

/// Harness configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MlcConfig {
    /// Worker threads issuing traffic (16 in the paper, enough to reach
    /// idle and loaded latency and the saturation point).
    pub threads: usize,
    /// Access granularity in bytes (64 B, matching prior CXL studies).
    pub access_bytes: u64,
    /// Number of injection-rate steps in a sweep.
    pub steps: usize,
    /// Highest offered load as a multiple of the measured peak.
    pub overdrive: f64,
}

impl Default for MlcConfig {
    fn default() -> Self {
        Self {
            threads: 16,
            access_bytes: 64,
            steps: 24,
            overdrive: 1.25,
        }
    }
}

/// One step of a loaded-latency sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadedPoint {
    /// Offered load, GB/s.
    pub offered_gbps: f64,
    /// Achieved bandwidth, GB/s.
    pub bandwidth_gbps: f64,
    /// Loaded latency, ns.
    pub latency_ns: f64,
}

impl LoadedPoint {
    /// The injection rate the worker set actually sustains at this
    /// step: the offered rate until saturation, the achieved bandwidth
    /// past it.
    ///
    /// A closed-loop MLC worker cannot issue faster than the system
    /// retires its requests, so overdriven steps all operate at the
    /// saturated rate — real measurement sweeps plot that achieved
    /// rate, never the nominal one. Earlier consumers read
    /// `offered_gbps` as the operating rate, conflating unreachable
    /// nominal rates with the saturation point past the knee; rate
    /// comparisons against external measurements must use this instead.
    pub fn achieved_rate_gbps(&self) -> f64 {
        self.offered_gbps.min(self.bandwidth_gbps)
    }
}

/// The MLC-style benchmark harness.
#[derive(Debug, Clone)]
pub struct Mlc {
    cfg: MlcConfig,
}

impl Mlc {
    /// Creates a harness.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no threads or steps).
    pub fn new(cfg: MlcConfig) -> Self {
        assert!(cfg.threads > 0, "need at least one thread");
        assert!(cfg.steps >= 2, "need at least two sweep steps");
        assert!(cfg.overdrive > 0.0, "overdrive must be positive");
        Self { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &MlcConfig {
        &self.cfg
    }

    /// Idle latency for a mix, ns (the first point of a sweep).
    pub fn idle_latency(
        &self,
        sys: &MemSystem,
        from: SocketId,
        node: NodeId,
        mix: AccessMix,
    ) -> f64 {
        sys.idle_latency_ns(from, node, mix)
    }

    /// Runs a full loaded-latency sweep for one distance and mix.
    ///
    /// Points are ordered by increasing offered load. Achieved bandwidth
    /// is monotonically non-decreasing and clamps at the saturation
    /// point; latency rises along the §3.2 contention curve.
    pub fn loaded_latency(
        &self,
        sys: &MemSystem,
        from: SocketId,
        node: NodeId,
        mix: AccessMix,
    ) -> Vec<LoadedPoint> {
        let peak = sys.max_bandwidth_gbps(from, node, mix);
        let top = peak * self.cfg.overdrive;
        (1..=self.cfg.steps)
            .map(|i| {
                let offered = top * i as f64 / self.cfg.steps as f64;
                let out = sys.loaded_point(FlowSpec::new(from, node, mix, offered));
                LoadedPoint {
                    offered_gbps: offered,
                    bandwidth_gbps: out.achieved_gbps,
                    latency_ns: out.latency_ns,
                }
            })
            .collect()
    }

    /// Machine-readable loaded-latency sweep: `(rate_gbps, latency_ns,
    /// bandwidth_gbps)` tuples in step order.
    ///
    /// The rate column is the *achieved* injection rate
    /// ([`LoadedPoint::achieved_rate_gbps`]): equal to the nominal
    /// offered rate below saturation and clamped to the achieved
    /// bandwidth past it, which is what external measurement sweeps
    /// report. This is the export the `cxl-calib` fitter compares
    /// against digitized curves.
    pub fn sweep_points(
        &self,
        sys: &MemSystem,
        from: SocketId,
        node: NodeId,
        mix: AccessMix,
    ) -> Vec<(f64, f64, f64)> {
        self.loaded_latency(sys, from, node, mix)
            .into_iter()
            .map(|p| (p.achieved_rate_gbps(), p.latency_ns, p.bandwidth_gbps))
            .collect()
    }

    /// Evaluates the model at an explicit list of offered rates (GB/s),
    /// one solved point per rate, in input order.
    ///
    /// This is how the `cxl-calib` fitter drives the model at exactly
    /// the offered rates of a measurement set — through the same
    /// single-flow solve path [`Mlc::loaded_latency`] uses — instead of
    /// interpolating between grid steps.
    pub fn sweep_at(
        &self,
        sys: &MemSystem,
        from: SocketId,
        node: NodeId,
        mix: AccessMix,
        offered_gbps: &[f64],
    ) -> Vec<LoadedPoint> {
        offered_gbps
            .iter()
            .map(|&offered| {
                let out = sys.loaded_point(FlowSpec::new(from, node, mix, offered));
                LoadedPoint {
                    offered_gbps: offered,
                    bandwidth_gbps: out.achieved_gbps,
                    latency_ns: out.latency_ns,
                }
            })
            .collect()
    }

    /// The read:write mixes plotted in Fig. 3 and Fig. 4.
    pub fn paper_mixes() -> Vec<AccessMix> {
        vec![
            AccessMix::ratio(1, 0),
            AccessMix::ratio(3, 1),
            AccessMix::ratio(2, 1),
            AccessMix::ratio(1, 1),
            AccessMix::ratio(1, 3),
            AccessMix::ratio(0, 1),
        ]
    }

    /// Picks representative `(from, node)` pairs for the four §3
    /// distances on the paper's testbed.
    ///
    /// Returns `(distance, from, node)` tuples for every distance that
    /// exists in the system's topology.
    pub fn distance_endpoints(sys: &MemSystem) -> Vec<(Distance, SocketId, NodeId)> {
        let sockets = sys.sockets().to_vec();
        let mut out = Vec::new();
        let nodes = sys.nodes().to_vec();
        let dram0 = nodes
            .iter()
            .find(|n| n.tier == MemoryTier::LocalDram && n.socket == sockets[0]);
        let cxl0 = nodes
            .iter()
            .find(|n| n.tier == MemoryTier::CxlExpander && n.socket == sockets[0]);
        if let Some(n) = dram0 {
            out.push((Distance::LocalDram, sockets[0], n.id));
            if sockets.len() > 1 {
                out.push((Distance::RemoteDram, sockets[1], n.id));
            }
        }
        if let Some(n) = cxl0 {
            out.push((Distance::LocalCxl, sockets[0], n.id));
            if sockets.len() > 1 {
                out.push((Distance::RemoteCxl, sockets[1], n.id));
            }
        }
        out
    }

    /// Builds one Fig. 3 panel: all paper mixes for one distance.
    pub fn fig3_panel(&self, sys: &MemSystem, distance: Distance) -> Figure {
        let (_, from, node) = Self::distance_endpoints(sys)
            .into_iter()
            .find(|&(d, _, _)| d == distance)
            .expect("distance not available on this topology");
        let mut fig = Figure::new(
            format!("fig3-{}", distance.label()),
            format!("{} loaded latency under read:write mixes", distance.label()),
            "bandwidth (GB/s)",
            "latency (ns)",
        );
        for mix in Self::paper_mixes() {
            let mut s = Series::new(mix.label());
            for p in self.loaded_latency(sys, from, node, mix) {
                s.push(p.bandwidth_gbps, p.latency_ns);
            }
            fig.push(s);
        }
        fig
    }

    /// Builds one Fig. 4 panel: all distances for one mix.
    pub fn fig4_panel(&self, sys: &MemSystem, mix: AccessMix) -> Figure {
        let mut fig = Figure::new(
            format!("fig4-{}", mix.label()),
            format!("MMEM vs CXL across distances, {} mix", mix.label()),
            "bandwidth (GB/s)",
            "latency (ns)",
        );
        for (d, from, node) in Self::distance_endpoints(sys) {
            let mut s = Series::new(d.label());
            for p in self.loaded_latency(sys, from, node, mix) {
                s.push(p.bandwidth_gbps, p.latency_ns);
            }
            fig.push(s);
        }
        fig
    }

    /// Bandwidth-scaling curve: achieved bandwidth as worker threads are
    /// added (each contributing `per_thread_gbps` of demand), MLC's
    /// `--max_bandwidth` methodology.
    pub fn bandwidth_scaling(
        &self,
        sys: &MemSystem,
        from: SocketId,
        node: NodeId,
        mix: AccessMix,
        per_thread_gbps: f64,
        max_threads: usize,
    ) -> Vec<LoadedPoint> {
        (1..=max_threads)
            .map(|t| {
                let offered = per_thread_gbps * t as f64;
                let out = sys.loaded_point(FlowSpec::new(from, node, mix, offered));
                LoadedPoint {
                    offered_gbps: offered,
                    bandwidth_gbps: out.achieved_gbps,
                    latency_ns: out.latency_ns,
                }
            })
            .collect()
    }

    /// Summary matrix: idle latency per (distance × mix), like the §3.2
    /// headline numbers.
    pub fn idle_latency_matrix(&self, sys: &MemSystem) -> Table {
        self.matrix(sys, "mlc-idle", "Idle latency (ns)", |from, node, mix| {
            format!("{:.1}", sys.idle_latency_ns(from, node, mix))
        })
    }

    /// Summary matrix: peak bandwidth per (distance × mix), GB/s.
    pub fn peak_bandwidth_matrix(&self, sys: &MemSystem) -> Table {
        self.matrix(
            sys,
            "mlc-peak",
            "Peak bandwidth (GB/s)",
            |from, node, mix| format!("{:.1}", sys.max_bandwidth_gbps(from, node, mix)),
        )
    }

    fn matrix(
        &self,
        sys: &MemSystem,
        id: &str,
        title: &str,
        cell: impl Fn(SocketId, NodeId, AccessMix) -> String,
    ) -> Table {
        let mixes = Self::paper_mixes();
        let mut headers = vec!["distance".to_string()];
        headers.extend(mixes.iter().map(|m| m.label()));
        let href: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(id, title, &href);
        for (d, from, node) in Self::distance_endpoints(sys) {
            let mut row = vec![d.label().to_string()];
            for &mix in &mixes {
                row.push(cell(from, node, mix));
            }
            t.push_row(row);
        }
        t
    }

    /// Peak bandwidth across a sweep, GB/s.
    pub fn peak_bandwidth(points: &[LoadedPoint]) -> f64 {
        points.iter().map(|p| p.bandwidth_gbps).fold(0.0, f64::max)
    }

    /// Utilization (fraction of peak) at which latency first exceeds
    /// `factor ×` the idle latency — the observable knee.
    pub fn knee_utilization(points: &[LoadedPoint], factor: f64) -> Option<f64> {
        let peak = Self::peak_bandwidth(points);
        let idle = points.first()?.latency_ns;
        points
            .iter()
            .find(|p| p.latency_ns > idle * factor)
            .map(|p| p.bandwidth_gbps / peak)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_perf::Pattern;
    use cxl_topology::{SncMode, Topology};

    fn sys() -> MemSystem {
        MemSystem::new(&Topology::paper_testbed(SncMode::Snc4))
    }

    fn mlc() -> Mlc {
        Mlc::new(MlcConfig::default())
    }

    #[test]
    fn sweep_is_ordered_and_saturates() {
        let s = sys();
        let m = mlc();
        let pts = m.loaded_latency(&s, SocketId(0), NodeId(0), AccessMix::read_only());
        assert_eq!(pts.len(), 24);
        for w in pts.windows(2) {
            assert!(w[1].offered_gbps > w[0].offered_gbps);
            assert!(w[1].bandwidth_gbps >= w[0].bandwidth_gbps - 1e-9);
            assert!(w[1].latency_ns >= w[0].latency_ns - 1e-9);
        }
        let peak = Mlc::peak_bandwidth(&pts);
        assert!((peak - 66.8).abs() < 1.0, "peak {peak}");
        // Overdriven steps achieve no more than peak.
        assert!(pts.last().unwrap().bandwidth_gbps <= peak + 1e-9);
    }

    #[test]
    fn sweep_points_report_achieved_rate_at_saturation() {
        let s = sys();
        let m = mlc();
        let pts = m.loaded_latency(&s, SocketId(0), NodeId(0), AccessMix::read_only());
        let tuples = m.sweep_points(&s, SocketId(0), NodeId(0), AccessMix::read_only());
        assert_eq!(tuples.len(), pts.len());
        let peak = Mlc::peak_bandwidth(&pts);
        for (p, &(rate, lat, bw)) in pts.iter().zip(tuples.iter()) {
            assert_eq!(lat, p.latency_ns);
            assert_eq!(bw, p.bandwidth_gbps);
            // Below saturation the rate is the offered rate; past it the
            // nominal offered rate is unreachable and the reported rate
            // clamps to what the workers actually sustain.
            if p.bandwidth_gbps < p.offered_gbps {
                assert_eq!(rate, p.bandwidth_gbps, "saturated step reports achieved");
                assert!((rate - peak).abs() < 1e-9);
            } else {
                assert_eq!(rate, p.offered_gbps);
            }
        }
        // The default sweep overdrives to 1.25x peak, so the conflation
        // is actually exercised: some steps must clamp.
        assert!(tuples
            .iter()
            .any(|&(r, _, _)| r < pts.last().unwrap().offered_gbps - 1.0));
    }

    #[test]
    fn sweep_at_matches_the_grid_sweep_pointwise() {
        let s = sys();
        let m = mlc();
        let grid = m.loaded_latency(&s, SocketId(0), NodeId(0), AccessMix::ratio(2, 1));
        let rates: Vec<f64> = grid.iter().map(|p| p.offered_gbps).collect();
        let explicit = m.sweep_at(&s, SocketId(0), NodeId(0), AccessMix::ratio(2, 1), &rates);
        assert_eq!(explicit.len(), grid.len());
        for (a, b) in grid.iter().zip(explicit.iter()) {
            assert_eq!(a, b, "same offered rate must solve identically");
        }
    }

    #[test]
    fn knee_lands_in_the_papers_band_for_reads() {
        let s = sys();
        let m = mlc();
        let pts = m.loaded_latency(&s, SocketId(0), NodeId(0), AccessMix::read_only());
        let knee = Mlc::knee_utilization(&pts, 1.3).expect("sweep must pass the knee");
        assert!((0.70..=0.92).contains(&knee), "knee at {knee}");
    }

    #[test]
    fn knee_shifts_left_for_writes() {
        let s = sys();
        let m = mlc();
        let read = m.loaded_latency(&s, SocketId(0), NodeId(0), AccessMix::read_only());
        let write = m.loaded_latency(&s, SocketId(0), NodeId(0), AccessMix::write_only());
        let kr = Mlc::knee_utilization(&read, 1.3).unwrap();
        let kw = Mlc::knee_utilization(&write, 1.3).unwrap();
        assert!(kw < kr, "write knee {kw} not left of read knee {kr}");
    }

    #[test]
    fn fig3_panels_have_six_mixes() {
        let s = sys();
        let m = mlc();
        for d in [
            Distance::LocalDram,
            Distance::RemoteDram,
            Distance::LocalCxl,
            Distance::RemoteCxl,
        ] {
            let fig = m.fig3_panel(&s, d);
            assert_eq!(fig.series.len(), 6, "distance {d:?}");
            for series in &fig.series {
                assert_eq!(series.points.len(), 24);
            }
        }
    }

    #[test]
    fn fig4_panel_orders_distances_by_latency() {
        let s = sys();
        let m = mlc();
        let fig = m.fig4_panel(&s, AccessMix::read_only());
        assert_eq!(fig.series.len(), 4);
        // First points (near idle): MMEM < MMEM-r < CXL < CXL-r.
        let firsts: Vec<f64> = fig.series.iter().map(|s| s.points[0].1).collect();
        assert!(firsts[0] < firsts[1]);
        assert!(firsts[1] < firsts[2]);
        assert!(firsts[2] < firsts[3]);
    }

    #[test]
    fn random_equals_sequential() {
        let s = sys();
        let m = mlc();
        let seq = m.loaded_latency(&s, SocketId(0), NodeId(0), AccessMix::read_only());
        let rnd = m.loaded_latency(
            &s,
            SocketId(0),
            NodeId(0),
            AccessMix::read_only().with_pattern(Pattern::Random),
        );
        for (a, b) in seq.iter().zip(rnd.iter()) {
            assert_eq!(a.bandwidth_gbps, b.bandwidth_gbps);
            assert_eq!(a.latency_ns, b.latency_ns);
        }
    }

    #[test]
    fn remote_cxl_peak_is_collapsed() {
        let s = sys();
        let m = mlc();
        let eps = Mlc::distance_endpoints(&s);
        let (_, from, node) = eps
            .into_iter()
            .find(|&(d, _, _)| d == Distance::RemoteCxl)
            .unwrap();
        let pts = m.loaded_latency(&s, from, node, AccessMix::ratio(2, 1));
        let peak = Mlc::peak_bandwidth(&pts);
        assert!(peak < 22.0, "remote CXL peak {peak}");
    }

    #[test]
    fn endpoints_cover_all_distances_on_testbed() {
        let s = sys();
        let eps = Mlc::distance_endpoints(&s);
        assert_eq!(eps.len(), 4);
    }

    #[test]
    fn bandwidth_scaling_saturates_at_peak() {
        let s = sys();
        let m = mlc();
        let curve =
            m.bandwidth_scaling(&s, SocketId(0), NodeId(0), AccessMix::read_only(), 4.0, 32);
        assert_eq!(curve.len(), 32);
        // Linear until saturation, then flat at the peak.
        assert!((curve[4].bandwidth_gbps - 20.0).abs() < 1e-6);
        let peak = Mlc::peak_bandwidth(&curve);
        assert!((peak - 66.8).abs() < 0.5);
        assert!((curve[31].bandwidth_gbps - peak).abs() < 1e-6);
        // Latency monotone along the curve.
        for w in curve.windows(2) {
            assert!(w[1].latency_ns >= w[0].latency_ns - 1e-9);
        }
    }

    #[test]
    fn matrices_cover_distances_and_mixes() {
        let s = sys();
        let m = mlc();
        let idle = m.idle_latency_matrix(&s);
        assert_eq!(idle.rows.len(), 4);
        assert_eq!(idle.headers.len(), 7);
        // Local DRAM read-only idle is the calibrated 97 ns.
        assert!(idle.rows[0][1].starts_with("97"));
        let peak = m.peak_bandwidth_matrix(&s);
        assert_eq!(peak.rows.len(), 4);
        assert!(peak.render().contains("CXL-r"));
    }

    #[test]
    #[should_panic(expected = "at least two sweep steps")]
    fn degenerate_config_panics() {
        Mlc::new(MlcConfig {
            steps: 1,
            ..Default::default()
        });
    }
}
