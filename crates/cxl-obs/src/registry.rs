//! The metrics registry: named counters, maxima, gauges, histograms.

use std::collections::BTreeMap;
use std::sync::Mutex;

use cxl_stats::Histogram;
use serde::Value;

/// Determinism class of a metric.
///
/// [`Class::Sim`] values are functions of simulated time and simulated
/// state: across runs of the same cells — at any worker count — the
/// aggregated value is bit-identical, because every mutation (counter
/// add, bucket increment, max) is commutative. [`Class::Wall`] values
/// depend on the wall clock or thread scheduling and are excluded from
/// determinism comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Deterministic in simulated time; safe to diff across `--jobs`.
    Sim,
    /// Wall-clock or scheduling dependent.
    Wall,
}

/// Current value of one metric (see [`Registry::metrics`]).
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotonically increasing count.
    Counter(u64),
    /// High-water mark.
    Max(u64),
    /// Last-written value.
    Gauge(f64),
    /// Distribution of `u64` samples.
    Histogram(Histogram),
}

impl MetricValue {
    fn type_name(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Max(_) => "max",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Metric {
    class: Class,
    value: MetricValue,
}

/// A thread-safe collection of named metrics.
///
/// Names are free-form `/`-separated paths (`tier/promotions`,
/// `kv/access_ns/cxl`). The first write fixes a name's shape and
/// [`Class`]; a later write of a different shape panics (instrumentation
/// bug), while class is required to match only in debug builds.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn update(
        &self,
        class: Class,
        name: &str,
        apply: impl FnOnce(&mut MetricValue),
        init: impl FnOnce() -> MetricValue,
    ) {
        let mut m = self.metrics.lock().expect("metrics registry poisoned");
        let entry = m.entry(name.to_string()).or_insert_with(|| Metric {
            class,
            value: init(),
        });
        debug_assert!(
            entry.class == class,
            "metric {name:?} re-registered with a different determinism class"
        );
        apply(&mut entry.value);
    }

    /// Adds `n` to the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a non-counter metric.
    pub fn counter_add(&self, class: Class, name: &str, n: u64) {
        self.update(
            class,
            name,
            |v| match v {
                MetricValue::Counter(c) => *c += n,
                other => panic!("metric {name:?} is a {}, not a counter", other.type_name()),
            },
            || MetricValue::Counter(0),
        );
    }

    /// Raises the high-water mark `name` to at least `v`.
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a non-max metric.
    pub fn counter_max(&self, class: Class, name: &str, v: u64) {
        self.update(
            class,
            name,
            |val| match val {
                MetricValue::Max(m) => *m = (*m).max(v),
                other => panic!("metric {name:?} is a {}, not a max", other.type_name()),
            },
            || MetricValue::Max(0),
        );
    }

    /// Sets the gauge `name` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a non-gauge metric.
    pub fn gauge_set(&self, class: Class, name: &str, v: f64) {
        self.update(
            class,
            name,
            |val| match val {
                MetricValue::Gauge(g) => *g = v,
                other => panic!("metric {name:?} is a {}, not a gauge", other.type_name()),
            },
            || MetricValue::Gauge(0.0),
        );
    }

    /// Records one sample into the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a non-histogram metric.
    pub fn record(&self, class: Class, name: &str, value: u64) {
        self.update(
            class,
            name,
            |val| match val {
                MetricValue::Histogram(h) => h.record(value),
                other => panic!(
                    "metric {name:?} is a {}, not a histogram",
                    other.type_name()
                ),
            },
            || MetricValue::Histogram(Histogram::new()),
        );
    }

    /// Merges `samples` into the histogram `name` (worker-side
    /// aggregation: bucket counts add, so merge order cannot matter).
    ///
    /// # Panics
    ///
    /// Panics if `name` already holds a non-histogram metric.
    pub fn record_histogram(&self, class: Class, name: &str, samples: &Histogram) {
        self.update(
            class,
            name,
            |val| match val {
                MetricValue::Histogram(h) => h.merge(samples),
                other => panic!(
                    "metric {name:?} is a {}, not a histogram",
                    other.type_name()
                ),
            },
            || MetricValue::Histogram(Histogram::new()),
        );
    }

    /// Value of the counter `name` (`None` when absent or another shape).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self
            .metrics
            .lock()
            .expect("metrics registry poisoned")
            .get(name)
        {
            Some(Metric {
                value: MetricValue::Counter(c),
                ..
            }) => Some(*c),
            _ => None,
        }
    }

    /// Value of the high-water mark `name`.
    pub fn max(&self, name: &str) -> Option<u64> {
        match self
            .metrics
            .lock()
            .expect("metrics registry poisoned")
            .get(name)
        {
            Some(Metric {
                value: MetricValue::Max(m),
                ..
            }) => Some(*m),
            _ => None,
        }
    }

    /// Value of the gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self
            .metrics
            .lock()
            .expect("metrics registry poisoned")
            .get(name)
        {
            Some(Metric {
                value: MetricValue::Gauge(g),
                ..
            }) => Some(*g),
            _ => None,
        }
    }

    /// Clone of the histogram `name`.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        match self
            .metrics
            .lock()
            .expect("metrics registry poisoned")
            .get(name)
        {
            Some(Metric {
                value: MetricValue::Histogram(h),
                ..
            }) => Some(h.clone()),
            _ => None,
        }
    }

    /// Snapshot of every metric as `(name, class, value)`, sorted by name.
    pub fn metrics(&self) -> Vec<(String, Class, MetricValue)> {
        self.metrics
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, m)| (k.clone(), m.class, m.value.clone()))
            .collect()
    }

    /// Non-destructive point-in-time copy of the registry.
    ///
    /// The registry keeps accumulating afterwards — a snapshot never
    /// drains or resets anything, so a controller can sample mid-run
    /// without perturbing the final [`Registry::export_json`] payload.
    /// Pair two snapshots with [`Snapshot::counter_delta`] /
    /// [`Snapshot::histogram_count_delta`] to read per-interval rates.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            metrics: self
                .metrics
                .lock()
                .expect("metrics registry poisoned")
                .iter()
                .map(|(k, m)| (k.clone(), m.value.clone()))
                .collect(),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics
            .lock()
            .expect("metrics registry poisoned")
            .len()
    }

    /// True when no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every metric (cold-start for measurements and tests).
    pub fn reset(&self) {
        self.metrics
            .lock()
            .expect("metrics registry poisoned")
            .clear();
    }

    fn section(&self, class: Class) -> Value {
        let m = self.metrics.lock().expect("metrics registry poisoned");
        Value::Object(
            m.iter()
                .filter(|(_, metric)| metric.class == class)
                .map(|(name, metric)| (name.clone(), metric_value_json(&metric.value)))
                .collect(),
        )
    }

    /// Full JSON export: `{"schema": "cxl-obs/v1", "sim": {…}, "wall": {…}}`.
    ///
    /// Metric names are sorted, numbers print with shortest-round-trip
    /// formatting, and the `sim` section is a pure function of the
    /// simulated work — two runs of the same cells produce byte-equal
    /// `sim` sections at any worker count.
    pub fn export_json(&self) -> String {
        let v = Value::Object(vec![
            ("schema".to_string(), Value::Str("cxl-obs/v1".to_string())),
            ("sim".to_string(), self.section(Class::Sim)),
            ("wall".to_string(), self.section(Class::Wall)),
        ]);
        serde_json::to_string_pretty(&v).expect("metrics serialize")
    }

    /// JSON export of the deterministic ([`Class::Sim`]) section only —
    /// the byte-comparable payload for `--jobs` cross-checks.
    pub fn export_sim_json(&self) -> String {
        serde_json::to_string_pretty(&self.section(Class::Sim)).expect("metrics serialize")
    }
}

/// Immutable point-in-time copy of a [`Registry`] (see
/// [`Registry::snapshot`]).
///
/// Accessors mirror the registry's (`counter`, `max`, `gauge`,
/// `histogram`); the `*_delta` methods subtract an **earlier** snapshot
/// to turn cumulative metrics into per-interval values — the read path
/// a periodic controller needs, since draining the registry mid-run
/// would corrupt the end-of-run export.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// An empty snapshot (what sampling an inactive registry yields).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Value of the counter `name` at snapshot time.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Value of the high-water mark `name` at snapshot time.
    pub fn max(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Max(m)) => Some(*m),
            _ => None,
        }
    }

    /// Value of the gauge `name` at snapshot time.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Clone of the histogram `name` at snapshot time.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.clone()),
            _ => None,
        }
    }

    /// Sample count of the histogram `name` at snapshot time.
    pub fn histogram_count(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.count()),
            _ => None,
        }
    }

    /// Counter growth since `earlier`: `self[name] - earlier[name]`.
    ///
    /// A metric absent from either side reads as 0, so the first
    /// interval after a counter appears reports its full value.
    /// Saturates at 0 (counters are monotonic; a negative delta means
    /// the snapshots were passed in the wrong order).
    pub fn counter_delta(&self, earlier: &Snapshot, name: &str) -> u64 {
        self.counter(name)
            .unwrap_or(0)
            .saturating_sub(earlier.counter(name).unwrap_or(0))
    }

    /// Histogram sample-count growth since `earlier` (same absent-as-0
    /// and saturation rules as [`Snapshot::counter_delta`]).
    pub fn histogram_count_delta(&self, earlier: &Snapshot, name: &str) -> u64 {
        self.histogram_count(name)
            .unwrap_or(0)
            .saturating_sub(earlier.histogram_count(name).unwrap_or(0))
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when the snapshot captured no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }
}

fn metric_value_json(v: &MetricValue) -> Value {
    use serde::Serialize as _;
    match v {
        MetricValue::Counter(c) => Value::Object(vec![
            ("type".into(), Value::Str("counter".into())),
            ("value".into(), c.to_value()),
        ]),
        MetricValue::Max(m) => Value::Object(vec![
            ("type".into(), Value::Str("max".into())),
            ("value".into(), m.to_value()),
        ]),
        MetricValue::Gauge(g) => Value::Object(vec![
            ("type".into(), Value::Str("gauge".into())),
            ("value".into(), Value::F64(*g)),
        ]),
        MetricValue::Histogram(h) => {
            let (p50, p95, p99, p999) = h.tail();
            Value::Object(vec![
                ("type".into(), Value::Str("histogram".into())),
                ("count".into(), h.count().to_value()),
                ("min".into(), h.min().to_value()),
                ("max".into(), h.max().to_value()),
                ("mean".into(), Value::F64(h.mean())),
                ("p50".into(), p50.to_value()),
                ("p95".into(), p95.to_value()),
                ("p99".into(), p99.to_value()),
                ("p999".into(), p999.to_value()),
            ])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let r = Registry::new();
        r.counter_add(Class::Sim, "a", 1);
        r.counter_add(Class::Sim, "a", 41);
        assert_eq!(r.counter("a"), Some(42));
        assert_eq!(r.counter("missing"), None);
    }

    #[test]
    fn max_keeps_high_water_mark() {
        let r = Registry::new();
        r.counter_max(Class::Sim, "hwm", 10);
        r.counter_max(Class::Sim, "hwm", 3);
        r.counter_max(Class::Sim, "hwm", 17);
        assert_eq!(r.max("hwm"), Some(17));
    }

    #[test]
    fn gauges_take_last_write() {
        let r = Registry::new();
        r.gauge_set(Class::Sim, "g", 0.25);
        r.gauge_set(Class::Sim, "g", 0.75);
        assert_eq!(r.gauge("g"), Some(0.75));
    }

    #[test]
    fn histograms_record_and_merge() {
        let r = Registry::new();
        r.record(Class::Sim, "h", 100);
        r.record(Class::Sim, "h", 300);
        let mut extra = Histogram::new();
        extra.record(200);
        r.record_histogram(Class::Sim, "h", &extra);
        let h = r.histogram("h").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 100);
        assert_eq!(h.max(), 300);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn shape_mismatch_panics() {
        let r = Registry::new();
        r.record(Class::Sim, "x", 1);
        r.counter_add(Class::Sim, "x", 1);
    }

    #[test]
    fn export_is_sorted_and_parses() {
        let r = Registry::new();
        r.counter_add(Class::Sim, "z/last", 1);
        r.counter_add(Class::Sim, "a/first", 2);
        r.record(Class::Wall, "wall/hist", 5);
        let full = r.export_json();
        let v = serde_json::parse_value(&full).expect("export parses");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("cxl-obs/v1"));
        let sim = v.get("sim").expect("sim section");
        assert!(sim.get("a/first").is_some());
        assert!(sim.get("wall/hist").is_none());
        assert!(v.get("wall").and_then(|w| w.get("wall/hist")).is_some());
        // Sorted: "a/first" appears before "z/last".
        assert!(full.find("a/first").unwrap() < full.find("z/last").unwrap());
    }

    #[test]
    fn sim_export_excludes_wall_metrics() {
        let r = Registry::new();
        r.counter_add(Class::Sim, "det", 1);
        r.counter_add(Class::Wall, "sched", 1);
        let sim = r.export_sim_json();
        assert!(sim.contains("det"));
        assert!(!sim.contains("sched"));
    }

    #[test]
    fn reset_clears_everything() {
        let r = Registry::new();
        r.counter_add(Class::Sim, "a", 1);
        assert!(!r.is_empty());
        r.reset();
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn export_after_snapshot_is_unchanged() {
        let r = Registry::new();
        r.counter_add(Class::Sim, "c", 3);
        r.counter_max(Class::Sim, "m", 9);
        r.gauge_set(Class::Sim, "g", 0.5);
        r.record(Class::Wall, "h", 120);
        let before = r.export_json();
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(
            r.export_json(),
            before,
            "snapshot() must not drain or mutate the registry"
        );
        // The registry keeps accumulating after the snapshot, which
        // stays frozen at its capture point.
        r.counter_add(Class::Sim, "c", 1);
        assert_eq!(snap.counter("c"), Some(3));
        assert_eq!(r.counter("c"), Some(4));
    }

    #[test]
    fn snapshot_reads_every_shape() {
        let r = Registry::new();
        r.counter_add(Class::Sim, "c", 3);
        r.counter_max(Class::Sim, "m", 9);
        r.gauge_set(Class::Sim, "g", 0.5);
        r.record(Class::Sim, "h", 120);
        r.record(Class::Sim, "h", 360);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c"), Some(3));
        assert_eq!(snap.max("m"), Some(9));
        assert_eq!(snap.gauge("g"), Some(0.5));
        assert_eq!(snap.histogram_count("h"), Some(2));
        assert_eq!(snap.histogram("h").unwrap().max(), 360);
        // Shape-mismatched reads yield None, like the registry's.
        assert_eq!(snap.counter("g"), None);
        assert_eq!(snap.gauge("missing"), None);
    }

    #[test]
    fn counter_deltas_between_snapshots() {
        let r = Registry::new();
        r.counter_add(Class::Sim, "ops", 10);
        let t0 = r.snapshot();
        r.counter_add(Class::Sim, "ops", 7);
        r.record(Class::Sim, "lat", 100);
        let t1 = r.snapshot();
        assert_eq!(t1.counter_delta(&t0, "ops"), 7);
        // Metric absent at t0: full value counts as the first interval.
        assert_eq!(t1.histogram_count_delta(&t0, "lat"), 1);
        // Absent everywhere reads as zero, and reversed-order deltas
        // saturate instead of wrapping.
        assert_eq!(t1.counter_delta(&t0, "nope"), 0);
        assert_eq!(t0.counter_delta(&t1, "ops"), 0);
    }

    #[test]
    fn empty_snapshot_reads_zeroes() {
        let snap = Snapshot::empty();
        assert!(snap.is_empty());
        assert_eq!(snap.counter("x"), None);
        assert_eq!(snap.counter_delta(&Snapshot::empty(), "x"), 0);
    }

    #[test]
    fn snapshot_lists_all_metrics() {
        let r = Registry::new();
        r.counter_add(Class::Sim, "one", 1);
        r.gauge_set(Class::Wall, "two", 2.0);
        let all = r.metrics();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "one");
        assert_eq!(all[0].1, Class::Sim);
    }
}
