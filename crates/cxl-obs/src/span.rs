//! Scoped wall-clock timing.

use std::time::Instant;

/// A wall-clock span: created by [`crate::span`], records its elapsed
/// nanoseconds into a [`crate::Class::Wall`] histogram when dropped.
///
/// When no registry is [`crate::active`] at start, the span is inert —
/// it never reads the clock and drop does nothing, keeping instrumented
/// hot paths at ~zero cost while metrics are off.
#[derive(Debug)]
pub struct Span {
    armed: Option<(String, Instant)>,
}

impl Span {
    /// Starts timing `name` if any registry is active on this thread.
    pub(crate) fn start(name: &str) -> Self {
        let armed = crate::active().then(|| (name.to_string(), Instant::now()));
        Span { armed }
    }

    /// Discards the span without recording (e.g. on an error path the
    /// timing of which would pollute the distribution).
    pub fn cancel(mut self) {
        self.armed = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, started)) = self.armed.take() {
            let ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::wall_record(&name, ns);
        }
    }
}
