#![warn(missing_docs)]

//! Simulation-wide observability for the CXL reproduction.
//!
//! The paper's conclusions hang on per-tier traffic shape — where pages
//! land, how often they migrate, where each experiment spends its
//! latency budget. End-of-run aggregates hide placement bugs (a
//! demotion landing on remote-socket CXL at 485 ns while a local node
//! at 250 ns has room is invisible until a figure looks wrong), so this
//! crate gives every layer a shared metrics spine to record into and
//! every test a registry to assert against.
//!
//! # Model
//!
//! A [`Registry`] holds named metrics of four shapes:
//!
//! * **counter** — monotonically increasing `u64` (`tier/promotions`),
//! * **max** — high-water mark (`sim/heap_depth_max`),
//! * **gauge** — last-written `f64` (`tier/dram_bw_util`),
//! * **histogram** — [`cxl_stats::Histogram`] of `u64` samples
//!   (`kv/access_ns/cxl`).
//!
//! Every metric carries a [`Class`]:
//!
//! * [`Class::Sim`] — derived from simulated time or simulated state.
//!   Counter adds and histogram-bucket increments are commutative, so
//!   aggregate values are **bit-identical across worker counts** when
//!   the same cells run; CI diffs the `sim` export section between
//!   `--jobs 1` and `--jobs 8`.
//! * [`Class::Wall`] — wall clock or scheduling dependent (cell
//!   runtimes, solve-cache hit/miss splits, worker occupancy).
//!   Excluded from determinism comparisons.
//!
//! # Dispatch and the zero-cost no-op mode
//!
//! Instrumented crates call the free functions ([`counter_add`],
//! [`record`], [`span`], …). Each call resolves its target registry:
//!
//! 1. a thread-scoped registry installed with [`scope`], if any —
//!    always recording (tests use this for isolation; the experiment
//!    runner propagates the caller's scope into its workers), else
//! 2. the process [`global`] registry, only if [`enable`]d.
//!
//! With no scope installed and the global registry disabled (the
//! default), every recording call is a thread-local read plus one
//! relaxed atomic load — the hot layers stay instrumented at ~zero
//! cost until a `--metrics` run or a test turns collection on.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//!
//! let reg = Arc::new(cxl_obs::Registry::new());
//! {
//!     let _guard = cxl_obs::scope(reg.clone());
//!     cxl_obs::counter_add("tier/promotions", 3);
//!     cxl_obs::record("kv/access_ns/mmem", 97);
//! }
//! assert_eq!(reg.counter("tier/promotions"), Some(3));
//! let json = reg.export_json();
//! assert!(json.contains("tier/promotions"));
//! ```

mod registry;
mod span;

pub use registry::{Class, MetricValue, Registry, Snapshot};
pub use span::Span;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    static SCOPED: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// The process-wide registry (disabled until [`enable`] is called).
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Turns on recording into the [`global`] registry.
pub fn enable() {
    GLOBAL_ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording into the [`global`] registry back off.
pub fn disable() {
    GLOBAL_ENABLED.store(false, Ordering::Relaxed);
}

/// True when the [`global`] registry is recording.
pub fn enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

/// True when a recording call on this thread would reach any registry.
///
/// Gate expensive label construction (`format!`) on this.
pub fn active() -> bool {
    enabled() || SCOPED.with(|s| !s.borrow().is_empty())
}

/// The innermost thread-scoped registry, if one is installed.
pub fn current() -> Option<Arc<Registry>> {
    SCOPED.with(|s| s.borrow().last().cloned())
}

/// Guard returned by [`scope`]; uninstalls the registry on drop.
pub struct ScopeGuard {
    _private: (),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPED.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Installs `registry` as this thread's recording target until the
/// returned guard drops. Scopes nest; the innermost wins.
pub fn scope(registry: Arc<Registry>) -> ScopeGuard {
    SCOPED.with(|s| s.borrow_mut().push(registry));
    ScopeGuard { _private: () }
}

fn dispatch(f: impl FnOnce(&Registry)) {
    SCOPED.with(|s| {
        if let Some(reg) = s.borrow().last() {
            f(reg);
        } else if enabled() {
            f(global());
        }
    });
}

/// Adds `n` to a deterministic ([`Class::Sim`]) counter.
pub fn counter_add(name: &str, n: u64) {
    dispatch(|r| r.counter_add(Class::Sim, name, n));
}

/// Adds `n` to a scheduling-dependent ([`Class::Wall`]) counter.
pub fn wall_counter_add(name: &str, n: u64) {
    dispatch(|r| r.counter_add(Class::Wall, name, n));
}

/// Raises a deterministic high-water mark to at least `v`.
pub fn counter_max(name: &str, v: u64) {
    dispatch(|r| r.counter_max(Class::Sim, name, v));
}

/// Raises a scheduling-dependent high-water mark to at least `v`.
pub fn wall_counter_max(name: &str, v: u64) {
    dispatch(|r| r.counter_max(Class::Wall, name, v));
}

/// Sets a deterministic gauge. Only meaningful from a single logical
/// stream — parallel writers make the final value scheduling-dependent,
/// in which case use [`wall_gauge_set`].
pub fn gauge_set(name: &str, v: f64) {
    dispatch(|r| r.gauge_set(Class::Sim, name, v));
}

/// Sets a scheduling-dependent gauge.
pub fn wall_gauge_set(name: &str, v: f64) {
    dispatch(|r| r.gauge_set(Class::Wall, name, v));
}

/// Records one sample into a deterministic histogram.
pub fn record(name: &str, value: u64) {
    dispatch(|r| r.record(Class::Sim, name, value));
}

/// Records one sample into a scheduling-dependent histogram.
pub fn wall_record(name: &str, value: u64) {
    dispatch(|r| r.record(Class::Wall, name, value));
}

/// Starts a wall-clock span; its elapsed nanoseconds are recorded into
/// the [`Class::Wall`] histogram `name` when the returned guard drops.
/// A no-op (no clock read) when nothing is [`active`].
pub fn span(name: &str) -> Span {
    Span::start(name)
}

/// Non-destructive snapshot of the registry a recording call would
/// reach (innermost scope, else the enabled global). Returns
/// [`Snapshot::empty`] when nothing is [`active`], so periodic samplers
/// can run unconditionally.
pub fn snapshot() -> Snapshot {
    SCOPED.with(|s| {
        if let Some(reg) = s.borrow().last() {
            reg.snapshot()
        } else if enabled() {
            global().snapshot()
        } else {
            Snapshot::empty()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global-state tests share this lock so enable()/disable() from one
    // test cannot race another's assertions.
    static GLOBAL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_global_records_nothing() {
        let _l = GLOBAL_LOCK.lock().unwrap();
        disable();
        counter_add("test/disabled_counter", 5);
        assert_eq!(global().counter("test/disabled_counter"), None);
    }

    #[test]
    fn enabled_global_records() {
        let _l = GLOBAL_LOCK.lock().unwrap();
        enable();
        counter_add("test/enabled_counter", 2);
        counter_add("test/enabled_counter", 3);
        disable();
        assert_eq!(global().counter("test/enabled_counter"), Some(5));
    }

    #[test]
    fn scoped_registry_shadows_global() {
        let reg = Arc::new(Registry::new());
        {
            let _g = scope(reg.clone());
            assert!(active());
            counter_add("test/scoped", 7);
            record("test/scoped_hist", 42);
        }
        assert_eq!(reg.counter("test/scoped"), Some(7));
        assert_eq!(reg.histogram("test/scoped_hist").unwrap().count(), 1);
        // Nothing leaked to the global registry.
        assert_eq!(global().counter("test/scoped"), None);
    }

    #[test]
    fn scopes_nest_innermost_wins() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        let _a = scope(outer.clone());
        {
            let _b = scope(inner.clone());
            counter_add("test/nested", 1);
        }
        counter_add("test/nested", 10);
        assert_eq!(inner.counter("test/nested"), Some(1));
        assert_eq!(outer.counter("test/nested"), Some(10));
    }

    #[test]
    fn span_records_into_wall_histogram() {
        let reg = Arc::new(Registry::new());
        {
            let _g = scope(reg.clone());
            let _s = span("test/span_ns");
        }
        let h = reg.histogram("test/span_ns").expect("span recorded");
        assert_eq!(h.count(), 1);
        // Wall metrics stay out of the deterministic export.
        assert!(!reg.export_sim_json().contains("test/span_ns"));
        assert!(reg.export_json().contains("test/span_ns"));
    }

    #[test]
    fn free_snapshot_follows_dispatch() {
        let _l = GLOBAL_LOCK.lock().unwrap();
        disable();
        assert!(snapshot().is_empty(), "inactive → empty snapshot");
        let reg = Arc::new(Registry::new());
        let _g = scope(reg.clone());
        counter_add("test/free_snapshot", 4);
        let snap = snapshot();
        assert_eq!(snap.counter("test/free_snapshot"), Some(4));
        // Sampling did not perturb the live registry.
        assert_eq!(reg.counter("test/free_snapshot"), Some(4));
    }

    #[test]
    fn span_without_active_registry_is_noop() {
        let _l = GLOBAL_LOCK.lock().unwrap();
        disable();
        let s = span("test/noop_span");
        drop(s);
        assert!(global().histogram("test/noop_span").is_none());
    }
}
