//! Table 1: the capacity-experiment configurations.

use serde::{Deserialize, Serialize};

use cxl_sim::SimTime;
use cxl_tier::{AllocPolicy, HotPageConfig, MigrationMode, NumaBalancingConfig, TierConfig};
use cxl_topology::{MemoryTier, NodeId, Topology};

/// The seven configurations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CapacityConfig {
    /// Entire working set in main memory.
    Mmem,
    /// 20 % of the working set spilled to SSD.
    MmemSsd02,
    /// 40 % of the working set spilled to SSD.
    MmemSsd04,
    /// 75 % MMEM + 25 % CXL, 3:1 interleaved.
    Interleave31,
    /// 50 % MMEM + 50 % CXL, 1:1 interleaved.
    Interleave11,
    /// 25 % MMEM + 75 % CXL, 1:3 interleaved.
    Interleave13,
    /// 50 % MMEM + 50 % CXL with hot-page promotion (§2.3 patches).
    HotPromote,
}

impl CapacityConfig {
    /// All configurations in Table 1 order.
    pub fn all() -> [CapacityConfig; 7] {
        [
            CapacityConfig::Mmem,
            CapacityConfig::MmemSsd02,
            CapacityConfig::MmemSsd04,
            CapacityConfig::Interleave31,
            CapacityConfig::Interleave11,
            CapacityConfig::Interleave13,
            CapacityConfig::HotPromote,
        ]
    }

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            CapacityConfig::Mmem => "MMEM",
            CapacityConfig::MmemSsd02 => "MMEM-SSD-0.2",
            CapacityConfig::MmemSsd04 => "MMEM-SSD-0.4",
            CapacityConfig::Interleave31 => "3:1",
            CapacityConfig::Interleave11 => "1:1",
            CapacityConfig::Interleave13 => "1:3",
            CapacityConfig::HotPromote => "Hot-Promote",
        }
    }

    /// True for configurations that spill to SSD.
    pub fn uses_ssd(self) -> bool {
        matches!(self, CapacityConfig::MmemSsd02 | CapacityConfig::MmemSsd04)
    }

    /// True for configurations that place data on CXL.
    pub fn uses_cxl(self) -> bool {
        matches!(
            self,
            CapacityConfig::Interleave31
                | CapacityConfig::Interleave11
                | CapacityConfig::Interleave13
                | CapacityConfig::HotPromote
        )
    }

    /// Builds the tier-manager configuration for a working set of
    /// `dataset_bytes` on `topo`, returning `(config, flash)` where
    /// `flash` enables KeyDB-FLASH SSD caching.
    ///
    /// Uses the first DRAM node of socket 0 as "MMEM" and the first CXL
    /// node as the expander, matching the paper's single-instance KeyDB
    /// deployment with SNC disabled (§4.1.1).
    ///
    /// # Panics
    ///
    /// Panics if the topology lacks the needed nodes.
    pub fn tier_config(self, topo: &Topology, dataset_bytes: u64) -> (TierConfig, bool) {
        let nodes = topo.nodes();
        let dram = nodes
            .iter()
            .find(|n| n.tier == MemoryTier::LocalDram)
            .expect("topology needs DRAM")
            .id;
        let cxl = nodes
            .iter()
            .find(|n| n.tier == MemoryTier::CxlExpander)
            .map(|n| n.id);
        let other_dram: Vec<NodeId> = nodes
            .iter()
            .filter(|n| n.tier == MemoryTier::LocalDram && n.id != dram)
            .map(|n| n.id)
            .collect();
        let zero_others = |cfg: &mut TierConfig| {
            // Confine the experiment to the chosen nodes, like numactl.
            for &n in &other_dram {
                cfg.capacity_override.push((n, 0));
            }
        };
        let need_cxl = || cxl.expect("configuration requires a CXL node");

        match self {
            CapacityConfig::Mmem => {
                let mut cfg = TierConfig::bind(vec![dram]);
                zero_others(&mut cfg);
                (cfg, false)
            }
            CapacityConfig::MmemSsd02 | CapacityConfig::MmemSsd04 => {
                let keep = if self == CapacityConfig::MmemSsd02 {
                    0.8
                } else {
                    0.6
                };
                let mut cfg = TierConfig::bind(vec![dram]);
                cfg.capacity_override
                    .push((dram, (dataset_bytes as f64 * keep) as u64));
                zero_others(&mut cfg);
                (cfg, true)
            }
            CapacityConfig::Interleave31
            | CapacityConfig::Interleave11
            | CapacityConfig::Interleave13 => {
                let (n, m) = match self {
                    CapacityConfig::Interleave31 => (3, 1),
                    CapacityConfig::Interleave11 => (1, 1),
                    _ => (1, 3),
                };
                let mut cfg = TierConfig::bind(vec![dram]);
                cfg.policy = AllocPolicy::interleave(vec![dram], vec![need_cxl()], n, m);
                zero_others(&mut cfg);
                (cfg, false)
            }
            CapacityConfig::HotPromote => {
                let mut cfg = TierConfig::bind(vec![dram]);
                cfg.policy = AllocPolicy::interleave(vec![dram], vec![need_cxl()], 1, 1);
                // Main memory limited to half the dataset (§4.1.1).
                cfg.capacity_override.push((dram, dataset_bytes / 2));
                zero_others(&mut cfg);
                cfg.migration = MigrationMode::HotPageSelection(hot_promote_params());
                (cfg, false)
            }
        }
    }
}

/// The hot-page-selection parameters used by the Hot-Promote runs.
///
/// Scan pacing is compressed to the simulation's virtual-time scale (the
/// real kernel converges over minutes; the simulated runs last under a
/// second) and the hint-fault cost is amortized per faulting access.
pub fn hot_promote_params() -> HotPageConfig {
    HotPageConfig {
        balancing: NumaBalancingConfig {
            scan_period: SimTime::from_ms(5),
            scan_pages: 4096,
            hot_threshold: SimTime::from_ms(100),
            hint_fault_cost: SimTime::from_ns(300),
        },
        promote_rate_limit_bytes_per_sec: 4e9,
        dynamic_threshold: false,
        adjust_period: SimTime::from_ms(100),
        promote_after_faults: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxl_topology::SncMode;

    fn topo() -> Topology {
        Topology::paper_testbed(SncMode::Disabled)
    }

    #[test]
    fn seven_configs_with_table1_labels() {
        let labels: Vec<&str> = CapacityConfig::all().iter().map(|c| c.label()).collect();
        assert_eq!(
            labels,
            [
                "MMEM",
                "MMEM-SSD-0.2",
                "MMEM-SSD-0.4",
                "3:1",
                "1:1",
                "1:3",
                "Hot-Promote"
            ]
        );
    }

    #[test]
    fn ssd_configs_limit_dram_capacity() {
        let bytes = 1_000_000_000u64;
        let (cfg, flash) = CapacityConfig::MmemSsd04.tier_config(&topo(), bytes);
        assert!(flash);
        let dram_cap = cfg
            .capacity_override
            .iter()
            .find(|&&(n, _)| n == NodeId(0))
            .map(|&(_, b)| b)
            .unwrap();
        assert_eq!(dram_cap, 600_000_000);
    }

    #[test]
    fn interleave_configs_use_cxl() {
        let (cfg, flash) = CapacityConfig::Interleave13.tier_config(&topo(), 1 << 30);
        assert!(!flash);
        match cfg.policy {
            AllocPolicy::InterleaveNm { n, m, .. } => {
                assert_eq!((n, m), (1, 3));
            }
            ref p => panic!("unexpected policy {p:?}"),
        }
    }

    #[test]
    fn hot_promote_is_rate_limited_migration() {
        let (cfg, _) = CapacityConfig::HotPromote.tier_config(&topo(), 1 << 30);
        assert!(matches!(cfg.migration, MigrationMode::HotPageSelection(_)));
        // DRAM limited to half the dataset.
        let dram_cap = cfg
            .capacity_override
            .iter()
            .find(|&&(n, _)| n == NodeId(0))
            .map(|&(_, b)| b)
            .unwrap();
        assert_eq!(dram_cap, (1u64 << 30) / 2);
    }

    #[test]
    fn classification_helpers() {
        assert!(CapacityConfig::MmemSsd02.uses_ssd());
        assert!(!CapacityConfig::Mmem.uses_ssd());
        assert!(CapacityConfig::HotPromote.uses_cxl());
        assert!(!CapacityConfig::MmemSsd04.uses_cxl());
    }

    #[test]
    fn mmem_config_confines_to_one_node() {
        let (cfg, _) = CapacityConfig::Mmem.tier_config(&topo(), 1 << 30);
        // Socket 1's DRAM is zeroed so everything lands on node 0.
        assert!(cfg
            .capacity_override
            .iter()
            .any(|&(n, b)| n == NodeId(1) && b == 0));
    }
}
