//! Deterministic parallel execution of experiment cells.
//!
//! Every study in [`crate::experiments`] is a grid of independent cells
//! (configuration × workload, policy × intensity, …). This module runs
//! such grids on a bounded worker pool while keeping the output
//! **bit-identical** to a serial run:
//!
//! * results are written back by cell index, so completion order never
//!   reorders a study;
//! * cells that consume randomness receive a seed derived from the root
//!   seed and a stable cell label via [`cxl_stats::rng::derive_seed`],
//!   never from shared generator state, so scheduling cannot perturb any
//!   random stream.
//!
//! The worker count comes from [`Runner::from_env`]: the `CXL_JOBS`
//! environment variable if set, otherwise the machine's available
//! parallelism. `Runner::new(1)` degenerates to a plain in-place loop
//! with no threads spawned at all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use cxl_stats::rng::derive_seed;

/// Environment variable bounding the worker pool.
pub const JOBS_ENV: &str = "CXL_JOBS";

/// A bounded worker pool for experiment cells.
#[derive(Debug, Clone, Copy)]
pub struct Runner {
    jobs: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Runner {
    /// A runner with exactly `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Runner { jobs: jobs.max(1) }
    }

    /// A single-worker runner: cells run in a plain loop on the calling
    /// thread.
    pub fn serial() -> Self {
        Runner::new(1)
    }

    /// Reads `CXL_JOBS`, falling back to the available parallelism.
    pub fn from_env() -> Self {
        let jobs = std::env::var(JOBS_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&j| j > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        Runner::new(jobs)
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items` on the pool, preserving input order.
    ///
    /// Workers claim cells from a shared counter (dynamic scheduling, so
    /// an expensive cell does not stall the tail of the grid) and write
    /// results into the slot of the cell they claimed. A panic in any
    /// cell propagates to the caller.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .map(|item| {
                    cxl_obs::counter_add("runner/cells", 1);
                    let _cell = cxl_obs::span("runner/cell_wall_ns");
                    f(item)
                })
                .collect();
        }

        let work: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let in_flight = AtomicUsize::new(0);
        let f = &f;
        // Thread-scoped metric registries don't cross thread boundaries
        // on their own; carry the caller's innermost scope into every
        // worker so cells record where the caller expects.
        let obs = cxl_obs::current();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    let _obs_scope = obs.clone().map(cxl_obs::scope);
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let item = work[i]
                            .lock()
                            .expect("work slot poisoned")
                            .take()
                            .expect("cell claimed twice");
                        let busy = in_flight.fetch_add(1, Ordering::Relaxed) + 1;
                        cxl_obs::wall_counter_max("runner/in_flight_max", busy as u64);
                        cxl_obs::counter_add("runner/cells", 1);
                        let out = {
                            let _cell = cxl_obs::span("runner/cell_wall_ns");
                            f(item)
                        };
                        in_flight.fetch_sub(1, Ordering::Relaxed);
                        *slots[i].lock().expect("result slot poisoned") = Some(out);
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("cell produced no result")
            })
            .collect()
    }

    /// Like [`Runner::map`], but hands each cell a seed derived from
    /// `root_seed` and the cell's label.
    ///
    /// The label — not the scheduling order — keys the derivation, so a
    /// cell's random stream is a pure function of `(root_seed, label)`.
    /// Cells that must share a stream by experimental design (paired
    /// comparisons over one workload trace) simply share a label.
    pub fn map_seeded<I, T, F>(&self, root_seed: u64, items: Vec<(String, I)>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I, u64) -> T + Sync,
    {
        let cells: Vec<(I, u64)> = items
            .into_iter()
            .map(|(label, item)| {
                let seed = derive_seed(root_seed, &label);
                (item, seed)
            })
            .collect();
        self.map(cells, |(item, seed)| f(item, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let r = Runner::new(8);
        let out = r.map((0..100).collect(), |i: usize| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial() {
        let work = |i: u64| {
            // A cell with some arithmetic so threads interleave.
            (0..1000u64).fold(i, |acc, k| acc.wrapping_mul(31).wrapping_add(k))
        };
        let serial = Runner::serial().map((0..64).collect(), work);
        let parallel = Runner::new(8).map((0..64).collect(), work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn seeds_depend_on_label_not_schedule() {
        let items = |n: usize| (0..n).map(|i| (format!("cell/{i}"), i)).collect::<Vec<_>>();
        let serial = Runner::serial().map_seeded(42, items(32), |_, seed| seed);
        let parallel = Runner::new(8).map_seeded(42, items(32), |_, seed| seed);
        assert_eq!(serial, parallel);
        // Distinct labels get distinct seeds.
        let mut sorted = serial.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), serial.len());
    }

    #[test]
    fn jobs_clamps_to_one() {
        assert_eq!(Runner::new(0).jobs(), 1);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = Runner::new(4).map(Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }
}
