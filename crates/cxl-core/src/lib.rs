#![warn(missing_docs)]

//! Facade API for the reproduction of *"Exploring Performance and Cost
//! Optimization with ASIC-Based CXL Memory"* (EuroSys '24).
//!
//! Downstream users interact with two things:
//!
//! * [`config::CapacityConfig`] — the seven Table-1 configurations
//!   (`MMEM`, `MMEM-SSD-0.2/0.4`, `3:1`, `1:1`, `1:3`, `Hot-Promote`)
//!   as builders over a [`cxl_topology::Topology`].
//! * [`experiments`] — one runner per paper table/figure. Each runner
//!   returns a typed result that renders to the plain-text
//!   figures/tables the bench binaries print and that the integration
//!   tests assert shape properties on.
//!
//! Experiment grids execute on a [`runner::Runner`] worker pool; the
//! `CXL_JOBS` environment variable (or an explicit
//! [`runner::Runner::new`]) bounds the parallelism, and output is
//! bit-identical across worker counts.
//!
//! # Examples
//!
//! ```
//! use cxl_core::experiments::cost;
//!
//! let r = cost::run();
//! assert!((r.server_ratio - 0.6729).abs() < 1e-3);
//! ```

pub mod config;
pub mod experiments;
pub mod runner;

pub use config::CapacityConfig;
pub use runner::Runner;
