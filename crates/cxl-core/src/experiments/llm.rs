//! Fig. 10: CPU LLM inference serving over CXL bandwidth (§5).

use serde::Serialize;

use cxl_llm::{LlmCluster, LlmConfig, LlmPlacement, ServingPoint};
use cxl_stats::report::{Figure, Series};

use crate::runner::Runner;

/// The thread counts swept in Fig. 10(a).
pub fn thread_axis() -> Vec<usize> {
    (1..=8).map(|b| b * 12).collect()
}

/// The placements compared in Fig. 10(a).
pub fn placements() -> Vec<LlmPlacement> {
    vec![
        LlmPlacement::MmemOnly,
        LlmPlacement::Interleave { n: 3, m: 1 },
        LlmPlacement::Interleave { n: 1, m: 1 },
        LlmPlacement::Interleave { n: 1, m: 3 },
    ]
}

/// The Fig. 10 study.
#[derive(Debug, Clone, Serialize)]
pub struct LlmStudy {
    /// `(placement label, sweep)` pairs for Fig. 10(a).
    pub serving: Vec<(String, Vec<ServingPoint>)>,
    /// Fig. 10(b): `(threads, GB/s)` for a single backend.
    pub backend_bw: Vec<(usize, f64)>,
    /// Fig. 10(c): `(KV cache GB, GB/s)` for a single backend.
    pub kv_bw: Vec<(f64, f64)>,
}

impl LlmStudy {
    /// Serving rate for a placement at a thread count, tokens/s.
    pub fn rate(&self, label: &str, threads: usize) -> f64 {
        self.serving
            .iter()
            .find(|(l, _)| l == label)
            .expect("placement present")
            .1
            .iter()
            .find(|p| p.threads == threads)
            .expect("thread count present")
            .tokens_per_sec
    }

    /// Fig. 10(a) as a renderable figure.
    pub fn fig10a(&self) -> Figure {
        let mut fig = Figure::new(
            "fig10a",
            "LLM inference serving rate vs threads",
            "threads",
            "tokens/s",
        );
        for (label, points) in &self.serving {
            let mut s = Series::new(label.clone());
            for p in points {
                s.push(p.threads as f64, p.tokens_per_sec);
            }
            fig.push(s);
        }
        fig
    }

    /// Fig. 10(b) as a renderable figure.
    pub fn fig10b(&self) -> Figure {
        let mut fig = Figure::new(
            "fig10b",
            "Single-backend memory bandwidth vs threads",
            "threads",
            "bandwidth (GB/s)",
        );
        let mut s = Series::new("backend");
        for &(t, bw) in &self.backend_bw {
            s.push(t as f64, bw);
        }
        fig.push(s);
        fig
    }

    /// Fig. 10(c) as a renderable figure.
    pub fn fig10c(&self) -> Figure {
        let mut fig = Figure::new(
            "fig10c",
            "Single-backend bandwidth vs KV-cache size",
            "KV cache (GB)",
            "bandwidth (GB/s)",
        );
        let mut s = Series::new("backend");
        for &(kv, bw) in &self.kv_bw {
            s.push(kv, bw);
        }
        fig.push(s);
        fig
    }
}

/// Runs the Fig. 10 sweeps on the §5.1 platform with the
/// environment-configured runner.
pub fn run() -> LlmStudy {
    run_with(&Runner::from_env())
}

/// Runs the Fig. 10 sweeps on an explicit runner. All three sweeps are
/// analytic; the placement sweep (the expensive one) parallelizes per
/// placement, the single-backend scans per point.
pub fn run_with(runner: &Runner) -> LlmStudy {
    let cluster = LlmCluster::new(LlmConfig::default());
    let axis = thread_axis();
    let serving = runner.map(placements(), |p| (p.label(), cluster.sweep(p, &axis)));
    let backend_bw = runner.map((1..=32).collect(), |t| {
        (t, cluster.backend_bandwidth_gbps(t))
    });
    let kv_bw = runner.map((0..=40).collect(), |i: usize| {
        let kv = i as f64 * 0.2;
        (kv, cluster.kv_bandwidth_gbps(kv))
    });
    LlmStudy {
        serving,
        backend_bw,
        kv_bw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_shape() {
        let s = run();
        assert_eq!(s.serving.len(), 4);
        for (_, pts) in &s.serving {
            assert_eq!(pts.len(), 8);
        }
        assert_eq!(s.fig10a().series.len(), 4);
        assert_eq!(s.fig10b().series.len(), 1);
        assert!(!s.fig10c().render().is_empty());
    }

    #[test]
    fn headline_comparisons() {
        let s = run();
        // 3:1 beats MMEM by ~95 % at 60 threads.
        let gain = s.rate("3:1", 60) / s.rate("MMEM", 60) - 1.0;
        assert!((0.7..=1.25).contains(&gain), "gain {gain}");
        // MMEM below 1:3 beyond 64 threads.
        assert!(s.rate("MMEM", 72) < s.rate("1:3", 72));
        // MMEM wins at low thread counts.
        assert!(s.rate("MMEM", 24) >= s.rate("1:3", 24));
    }
}
