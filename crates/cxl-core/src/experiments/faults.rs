//! Fault tolerance: KeyDB serving across expander failures of rising
//! severity.
//!
//! No paper figure shows this — the paper's testbed never loses a card
//! mid-run — but the §6 cost case assumes fleets of commodity ASIC
//! expanders, and fleets see faults. Each scenario runs the same YCSB-C
//! store through a healthy phase, injects one fault (link downgrade,
//! latency inflation, capacity loss, or full expander death), lets the
//! tiering layer react (evacuation under the promotion rate limiter,
//! repricing on the degraded topology), and measures the post-fault
//! phase. The sweep shows graceful degradation: throughput steps down
//! with severity instead of the process dying.

use serde::Serialize;

use cxl_fault::FaultKind;
use cxl_kv::{KvConfig, KvStore};
use cxl_perf::{AccessMix, MemSystem};
use cxl_stats::report::{fmt_f64, Table};
use cxl_tier::{AllocPolicy, HotPageConfig, MigrationMode, TierConfig};
use cxl_topology::{NodeId, SncMode, SocketId, Topology};
use cxl_ycsb::Workload;

use crate::runner::Runner;

/// SNC-disabled paper testbed: 0,1 = DRAM sockets; 2,3 = CXL on s0.
const DRAM0: NodeId = NodeId(0);
const CXL0: NodeId = NodeId(2);

/// Sizing knobs for the fault-tolerance sweep.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FaultParams {
    /// Records in the store (1 KiB each).
    pub record_count: u64,
    /// Operations per phase (healthy and degraded).
    pub ops: u64,
    /// Evacuation/promotion budget, bytes per second.
    pub promote_rate_bytes_per_sec: f64,
    /// Root seed.
    pub seed: u64,
}

impl Default for FaultParams {
    fn default() -> Self {
        Self {
            record_count: 150_000,
            ops: 120_000,
            // Low enough that evacuating half the dataset overruns the
            // bucket's one-second burst: recovery takes measurable time.
            promote_rate_bytes_per_sec: 32.0 * 1024.0 * 1024.0,
            seed: 42,
        }
    }
}

impl FaultParams {
    /// A fast variant for tests.
    pub fn smoke() -> Self {
        Self {
            record_count: 40_000,
            ops: 25_000,
            promote_rate_bytes_per_sec: 8.0 * 1024.0 * 1024.0,
            ..Default::default()
        }
    }
}

/// One scenario of the severity sweep.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FaultCell {
    /// Scenario label ("healthy", "link-x4", "offline", ...).
    pub scenario: &'static str,
    /// Healthy-phase throughput, kops/s.
    pub pre_kops: f64,
    /// Post-fault throughput, kops/s.
    pub post_kops: f64,
    /// Healthy-phase p99 sojourn latency, µs.
    pub pre_p99_us: f64,
    /// Post-fault p99 sojourn latency, µs.
    pub post_p99_us: f64,
    /// Pages drained off the faulted node (offline/capacity scenarios).
    pub pages_evacuated: u64,
    /// Drained pages that spilled to SSD.
    pub pages_to_ssd: u64,
    /// Rate-limited evacuation duration, ms (recovery time).
    pub recovery_ms: f64,
    /// Pages still resident on the faulted node after recovery.
    pub pages_left_on_node: u64,
    /// Idle CXL read latency after the fault from the store's degraded
    /// solve, ns (0 when the expander is offline — there is no path).
    pub post_idle_cxl_ns: f64,
    /// The same latency recomputed from a fresh solve of the degraded
    /// topology; must equal `post_idle_cxl_ns`.
    pub expected_idle_cxl_ns: f64,
}

/// The severity sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FaultStudy {
    /// One cell per scenario, severity-ordered.
    pub cells: Vec<FaultCell>,
    /// Parameters used.
    pub params: FaultParams,
}

impl FaultStudy {
    /// Renders the sweep as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "fault_tolerance",
            "KeyDB YCSB-C across expander faults (1:1 interleave, flash on)",
            &[
                "scenario",
                "pre kops",
                "post kops",
                "keep %",
                "pre p99 us",
                "post p99 us",
                "evacuated",
                "to ssd",
                "recovery ms",
            ],
        );
        for c in &self.cells {
            t.push_row(vec![
                c.scenario.to_string(),
                fmt_f64(c.pre_kops),
                fmt_f64(c.post_kops),
                fmt_f64(100.0 * c.post_kops / c.pre_kops),
                fmt_f64(c.pre_p99_us),
                fmt_f64(c.post_p99_us),
                c.pages_evacuated.to_string(),
                c.pages_to_ssd.to_string(),
                fmt_f64(c.recovery_ms),
            ]);
        }
        t
    }

    /// The named cell.
    pub fn cell(&self, scenario: &str) -> &FaultCell {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario)
            .unwrap_or_else(|| panic!("no scenario {scenario}"))
    }
}

/// The scenarios, mildest first. `None` is the healthy baseline.
fn scenarios() -> Vec<(&'static str, Option<FaultKind>)> {
    vec![
        ("healthy", None),
        (
            "link-x8",
            Some(FaultKind::LinkDowngrade {
                node: CXL0,
                lanes: 8,
            }),
        ),
        (
            "link-x4",
            Some(FaultKind::LinkDowngrade {
                node: CXL0,
                lanes: 4,
            }),
        ),
        (
            "latency-2x",
            Some(FaultKind::LatencyInflation {
                node: CXL0,
                factor: 2.0,
            }),
        ),
        (
            "latency-4x",
            Some(FaultKind::LatencyInflation {
                node: CXL0,
                factor: 4.0,
            }),
        ),
        // Hot promotion keeps the expander's resident set well under
        // its capacity, so a mild capacity loss is absorbed without a
        // single move; 10% has to drain pages.
        (
            "capacity-50",
            Some(FaultKind::CapacityLoss {
                node: CXL0,
                remaining: 0.5,
            }),
        ),
        (
            "capacity-10",
            Some(FaultKind::CapacityLoss {
                node: CXL0,
                remaining: 0.1,
            }),
        ),
        ("offline", Some(FaultKind::ExpanderOffline { node: CXL0 })),
    ]
}

fn run_cell(
    label: &'static str,
    fault: Option<FaultKind>,
    params: FaultParams,
    seed: u64,
) -> FaultCell {
    let topo = Topology::paper_testbed(SncMode::Disabled);
    let dataset_bytes = params.record_count * 1024;
    let mut tc = TierConfig::bind(vec![DRAM0]);
    tc.policy = AllocPolicy::interleave(vec![DRAM0], vec![CXL0], 1, 1);
    // DRAM holds 3/4 of the dataset at most: a full evacuation cannot
    // fit entirely in DRAM and must exercise the SSD spill path.
    tc.capacity_override = vec![
        (DRAM0, dataset_bytes * 3 / 4),
        (NodeId(1), 0),
        (CXL0, dataset_bytes),
        (NodeId(3), 0),
    ];
    tc.migration = MigrationMode::HotPageSelection(HotPageConfig {
        promote_rate_limit_bytes_per_sec: params.promote_rate_bytes_per_sec,
        ..Default::default()
    });
    let kv_cfg = KvConfig {
        record_count: params.record_count,
        seed,
        ..Default::default()
    };
    let mut store = KvStore::new(&topo, tc, kv_cfg, true);

    let pre = store.run(Workload::C, params.ops);

    let mut degraded = topo.clone();
    let mut pages_evacuated = 0;
    let mut pages_to_ssd = 0;
    let mut recovery_ms = 0.0;
    if let Some(kind) = &fault {
        kind.apply(&mut degraded)
            .expect("scenario faults are valid");
        match *kind {
            FaultKind::ExpanderOffline { node } => {
                let report = store
                    .fail_expander(&degraded, node)
                    .expect("evacuation survives with flash on");
                pages_evacuated = report.total_pages();
                pages_to_ssd = report.pages_to_ssd;
                recovery_ms = report.duration().as_secs_f64() * 1e3;
            }
            FaultKind::CapacityLoss { node, remaining } => {
                let new_bytes = (dataset_bytes as f64 * remaining) as u64;
                let report = store
                    .shrink_expander(&degraded, node, new_bytes)
                    .expect("shrink survives with flash on");
                pages_evacuated = report.total_pages();
                pages_to_ssd = report.pages_to_ssd;
                recovery_ms = report.duration().as_secs_f64() * 1e3;
            }
            FaultKind::LinkDowngrade { .. } | FaultKind::LatencyInflation { .. } => {
                store.apply_topology(&degraded);
            }
        }
    }

    let post = store.run(Workload::C, params.ops);

    let mix = AccessMix::read_only();
    let degraded_sys = MemSystem::new(&degraded);
    let expected_idle_cxl_ns = degraded_sys
        .try_idle_latency_ns(SocketId(0), CXL0, mix)
        .unwrap_or(0.0);
    // The store's own post-fault solve must agree with the fresh one.
    let post_idle_cxl_ns = store.idle_latency_ns(CXL0).unwrap_or(0.0);

    FaultCell {
        scenario: label,
        pre_kops: pre.throughput_ops / 1e3,
        post_kops: post.throughput_ops / 1e3,
        pre_p99_us: pre
            .latency
            .try_percentile(99.0)
            .expect("pre-fault run has ops") as f64
            / 1e3,
        post_p99_us: post
            .latency
            .try_percentile(99.0)
            .expect("post-fault run has ops") as f64
            / 1e3,
        pages_evacuated,
        pages_to_ssd,
        recovery_ms,
        pages_left_on_node: store.tier().node_usage(CXL0).0,
        post_idle_cxl_ns,
        expected_idle_cxl_ns,
    }
}

/// Runs the sweep on the environment-configured runner.
pub fn run(params: FaultParams) -> FaultStudy {
    run_with(&Runner::from_env(), params)
}

/// Runs the sweep on an explicit runner. Each scenario is seeded from
/// the root seed and its label, so the study is bit-identical for any
/// worker count.
pub fn run_with(runner: &Runner, params: FaultParams) -> FaultStudy {
    let grid: Vec<(String, (&'static str, Option<FaultKind>))> = scenarios()
        .into_iter()
        .map(|(label, fault)| (format!("fault/{label}"), (label, fault)))
        .collect();
    let cells = runner.map_seeded(params.seed, grid, |(label, fault), seed| {
        run_cell(label, fault, params, seed)
    });
    FaultStudy { cells, params }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_baseline_runs_clean() {
        let p = FaultParams::smoke();
        let c = run_cell("healthy", None, p, 7);
        assert!(c.pre_kops > 0.0 && c.post_kops > 0.0);
        assert_eq!(c.pages_evacuated, 0);
        assert!((c.post_idle_cxl_ns - c.expected_idle_cxl_ns).abs() < 1e-9);
    }

    #[test]
    fn offline_scenario_empties_the_node_and_keeps_serving() {
        let p = FaultParams::smoke();
        let c = run_cell(
            "offline",
            Some(FaultKind::ExpanderOffline { node: CXL0 }),
            p,
            7,
        );
        assert_eq!(c.pages_left_on_node, 0, "pages survived on a dead node");
        assert!(c.pages_evacuated > 0);
        assert!(c.pages_to_ssd > 0, "DRAM cap must force SSD spill");
        assert!(c.recovery_ms > 0.0, "rate-limited drain takes time");
        assert!(c.post_kops > 0.0, "store must keep serving");
        assert!(c.post_kops < c.pre_kops, "losing a tier is not free");
    }

    #[test]
    fn degraded_latency_matches_fresh_solve() {
        let p = FaultParams::smoke();
        let c = run_cell(
            "latency-2x",
            Some(FaultKind::LatencyInflation {
                node: CXL0,
                factor: 2.0,
            }),
            p,
            7,
        );
        // 97 ns DRAM base + 2x the 153.4 ns CXL adder (§3.1 anchors).
        assert!(
            (c.expected_idle_cxl_ns - (97.0 + 2.0 * 153.4)).abs() < 2.0,
            "expected idle {}",
            c.expected_idle_cxl_ns
        );
        assert!((c.post_idle_cxl_ns - c.expected_idle_cxl_ns).abs() < 1e-9);
        assert!(c.post_kops < c.pre_kops);
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let p = FaultParams {
            record_count: 20_000,
            ops: 8_000,
            ..Default::default()
        };
        let a = run_with(&Runner::new(1), p);
        let b = run_with(&Runner::new(8), p);
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.scenario, y.scenario);
            assert_eq!(x.post_kops, y.post_kops);
            assert_eq!(x.post_p99_us, y.post_p99_us);
            assert_eq!(x.pages_evacuated, y.pages_evacuated);
        }
    }
}
