//! Fig. 8 and the §4.3 elastic-compute analysis.
//!
//! §4.3 asks what happens when a VM's memory lives entirely on CXL: the
//! paper measures KeyDB/YCSB-C at 100 GB bound via `numactl` to MMEM or
//! CXL, finding ≈12.5 % lower throughput and a 9–27 % read-latency
//! penalty — mild enough that discounted CXL-backed instances recover
//! most of the revenue stranded by memory-constrained servers.

use serde::Serialize;

use cxl_cost::RevenueModel;
use cxl_kv::{KvConfig, KvStore, MemProfile};
use cxl_stats::report::{Figure, Series, Table};
use cxl_stats::Histogram;
use cxl_tier::TierConfig;
use cxl_topology::{MemoryTier, SncMode, Topology};
use cxl_ycsb::Workload;

use crate::runner::Runner;

/// Sizing knobs for the Fig. 8 runs.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig8Params {
    /// Records in the store (1 KiB each; the paper uses 100 GB total).
    pub record_count: u64,
    /// Measured operations.
    pub ops: u64,
    /// Root seed.
    pub seed: u64,
}

impl Default for Fig8Params {
    fn default() -> Self {
        Self {
            record_count: 100_000,
            ops: 150_000,
            seed: 42,
        }
    }
}

/// The Fig. 8 + §4.3 study.
#[derive(Debug, Clone, Serialize)]
pub struct VmStudy {
    /// Throughput with the instance bound to MMEM, ops/s.
    pub mmem_throughput: f64,
    /// Throughput bound to CXL, ops/s.
    pub cxl_throughput: f64,
    /// Read-latency histograms (ns).
    pub mmem_latency: Histogram,
    /// Read-latency histogram on CXL (ns).
    pub cxl_latency: Histogram,
    /// The revenue model evaluated on the §4.3 example.
    pub revenue: RevenueModel,
}

impl VmStudy {
    /// Fractional throughput loss on CXL (paper: ≈12.5 %).
    pub fn throughput_loss(&self) -> f64 {
        1.0 - self.cxl_throughput / self.mmem_throughput
    }

    /// Read-latency penalty at a percentile (paper band: 9–27 %).
    ///
    /// # Panics
    ///
    /// Panics if either run recorded no reads — a 0/0 here would report
    /// a fabricated penalty instead of a broken run.
    pub fn latency_penalty(&self, percentile: f64) -> f64 {
        let m = self
            .mmem_latency
            .try_percentile(percentile)
            .expect("MMEM run recorded reads") as f64;
        let c = self
            .cxl_latency
            .try_percentile(percentile)
            .expect("CXL run recorded reads") as f64;
        c / m - 1.0
    }

    /// Fig. 8(a): the two read-latency CDFs.
    pub fn fig8a(&self) -> Figure {
        let mut fig = Figure::new(
            "fig8a",
            "KeyDB YCSB-C read latency CDF: MMEM vs CXL",
            "latency (us)",
            "cumulative fraction",
        );
        for (label, h) in [("MMEM", &self.mmem_latency), ("CXL", &self.cxl_latency)] {
            let mut s = Series::new(label);
            for (v, f) in h.cdf() {
                s.push(v as f64 / 1e3, f);
            }
            fig.push(s);
        }
        fig
    }

    /// Fig. 8(b): throughput comparison.
    pub fn fig8b(&self) -> Table {
        let mut t = Table::new(
            "fig8b",
            "KeyDB YCSB-C throughput",
            &["binding", "kops/s", "relative"],
        );
        t.push_row(vec![
            "MMEM".into(),
            format!("{:.1}", self.mmem_throughput / 1e3),
            "1.000".into(),
        ]);
        t.push_row(vec![
            "CXL".into(),
            format!("{:.1}", self.cxl_throughput / 1e3),
            format!("{:.3}", self.cxl_throughput / self.mmem_throughput),
        ]);
        t
    }

    /// §4.3 revenue table.
    pub fn revenue_table(&self) -> Table {
        let mut t = Table::new(
            "revenue",
            "Elastic-compute revenue recovery (§4.3)",
            &["metric", "value"],
        );
        let r = &self.revenue;
        t.push_row(vec![
            "sellable vCPUs (1:4)".into(),
            format!("{}", r.sellable_vcpus()),
        ]);
        t.push_row(vec![
            "stranded vCPUs".into(),
            format!("{}", r.stranded_vcpus()),
        ]);
        t.push_row(vec![
            "revenue loss w/o CXL".into(),
            format!("{:.1}%", 100.0 * r.revenue_loss()),
        ]);
        t.push_row(vec![
            "CXL instance discount".into(),
            format!("{:.0}%", 100.0 * r.cxl_discount),
        ]);
        t.push_row(vec![
            "revenue uplift with CXL".into(),
            format!("{:.2}%", 100.0 * r.revenue_uplift()),
        ]);
        t
    }
}

fn run_binding(topo: &Topology, on_cxl: bool, params: Fig8Params) -> (f64, Histogram) {
    let nodes = topo.nodes();
    let target = nodes
        .iter()
        .find(|n| {
            if on_cxl {
                n.tier == MemoryTier::CxlExpander
            } else {
                n.tier == MemoryTier::LocalDram
            }
        })
        .expect("node available")
        .id;
    let kv = KvConfig {
        record_count: params.record_count,
        value_size: 1024,
        server_threads: 7,
        client_concurrency: 28,
        profile: MemProfile::standard(),
        epoch_ops: 2_000,
        eviction: cxl_kv::EvictionPolicy::Clock,
        seed: params.seed,
    };
    let mut store = KvStore::new(topo, TierConfig::bind(vec![target]), kv, false);
    let r = store.run(Workload::C, params.ops);
    (r.throughput_ops, r.read_latency)
}

/// Runs the Fig. 8 comparison and the §4.3 revenue arithmetic on the
/// environment-configured runner.
pub fn run(params: Fig8Params) -> VmStudy {
    run_with(&Runner::from_env(), params)
}

/// Runs the Fig. 8 comparison on an explicit runner. Both bindings
/// deliberately replay the same seed — the experiment compares one
/// workload trace across placements — so the cells are independent and
/// the paired comparison survives parallel execution bit-for-bit.
pub fn run_with(runner: &Runner, params: Fig8Params) -> VmStudy {
    let topo = Topology::paper_testbed(SncMode::Disabled);
    let mut results = runner.map(vec![false, true], |on_cxl| {
        run_binding(&topo, on_cxl, params)
    });
    let (cxl_throughput, cxl_latency) = results.pop().expect("CXL binding ran");
    let (mmem_throughput, mmem_latency) = results.pop().expect("MMEM binding ran");
    VmStudy {
        mmem_throughput,
        cxl_throughput,
        mmem_latency,
        cxl_latency,
        revenue: RevenueModel::paper_example(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> VmStudy {
        run(Fig8Params {
            record_count: 50_000,
            ops: 60_000,
            seed: 42,
        })
    }

    #[test]
    fn throughput_loss_near_12_5_percent() {
        let s = study();
        let loss = s.throughput_loss();
        assert!((0.08..=0.20).contains(&loss), "loss {loss}");
    }

    #[test]
    fn latency_penalty_in_9_to_27_band() {
        let s = study();
        for p in [50.0, 90.0, 99.0] {
            let pen = s.latency_penalty(p);
            assert!((0.03..=0.35).contains(&pen), "p{p} penalty {pen}");
        }
    }

    #[test]
    fn revenue_uplift_matches_section_4_3() {
        let s = study();
        let uplift = s.revenue.revenue_uplift();
        assert!((uplift - 0.2667).abs() < 0.005, "uplift {uplift}");
    }

    #[test]
    fn reports_render() {
        let s = study();
        assert_eq!(s.fig8a().series.len(), 2);
        assert!(s.fig8b().render().contains("CXL"));
        assert!(s.revenue_table().render().contains("uplift"));
    }
}
