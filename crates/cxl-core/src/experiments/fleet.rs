//! Fleet dynamics: multi-rack pooling over a rack/spine CXL fabric.
//!
//! The pool sweep ([`super::pool`]) studies eight hosts behind one
//! switch; this sweep scales the control plane to ROADMAP item 2's
//! fleet: racks of hosts on a [`cxl_topology::Fabric`], where every
//! lease's latency is the looked-up fabric path (one ToR hop
//! intra-rack, ToR + cable + spine + cable + ToR across racks), a
//! cluster scheduler places a heterogeneous KV/Spark/LLM mix onto
//! hosts, and per-rack lend controllers (`cxl-ctl` EWMA series)
//! coordinate cross-rack leases under a global capacity budget. The
//! world model is built host-by-host on the runner — [`build_host`] is
//! a pure function of `(config, spec)`, so any `--jobs` count
//! assembles a bit-identical fleet.

use serde::Serialize;

use cxl_pool::fleet::{build_host, run_planned, FleetConfig, FleetPlan, FleetReport, HostSpec};
use cxl_sim::SimTime;
use cxl_stats::report::{fmt_f64, Table};
use cxl_stats::rng::derive_seed;

use crate::runner::Runner;

/// Sizing knobs for the fleet-dynamics sweep.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FleetParams {
    /// Racks in the baseline scenarios.
    pub racks: usize,
    /// Hosts per rack in the baseline scenarios.
    pub hosts_per_rack: usize,
    /// Pooled capacity per rack, GiB.
    pub rack_pool_gib: u64,
    /// Global budget on outstanding leases, GiB.
    pub global_budget_gib: u64,
    /// Simulated horizon, seconds.
    pub horizon_s: u64,
    /// Control-loop tick, milliseconds.
    pub step_ms: u64,
    /// Root seed.
    pub seed: u64,
}

impl Default for FleetParams {
    fn default() -> Self {
        Self {
            racks: 2,
            hosts_per_rack: 32,
            rack_pool_gib: 1792,
            global_budget_gib: 3584,
            horizon_s: 60,
            step_ms: 250,
            seed: 42,
        }
    }
}

impl FleetParams {
    /// A fast variant for tests: 2 racks × 4 hosts, 20 s.
    pub fn smoke() -> Self {
        Self {
            hosts_per_rack: 4,
            rack_pool_gib: 448,
            global_budget_gib: 896,
            horizon_s: 20,
            ..Default::default()
        }
    }
}

/// One scenario of the fleet sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FleetCell {
    /// Scenario label.
    pub scenario: &'static str,
    /// Full fleet-simulation report.
    pub report: FleetReport,
}

/// The fleet-dynamics sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FleetStudy {
    /// One cell per scenario.
    pub cells: Vec<FleetCell>,
    /// Parameters used.
    pub params: FleetParams,
}

impl FleetStudy {
    /// Renders the sweep as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "fleet_dynamics",
            "Multi-rack pooling over a rack/spine fabric (KV/Spark/LLM mix)",
            &[
                "scenario",
                "racks×hosts",
                "pool GiB/rack",
                "dyn GiB",
                "static GiB",
                "saving %",
                "dyn miss %",
                "static miss %",
                "cross %",
                "cross grants",
                "unmet",
                "peak/budget slabs",
                "intra ns",
                "cross ns",
            ],
        );
        for c in &self.cells {
            let r = &c.report;
            t.push_row(vec![
                c.scenario.to_string(),
                format!("{}×{}", r.racks, r.hosts_per_rack),
                r.rack_pool_gib.to_string(),
                fmt_f64(r.dynamic_total_gib),
                fmt_f64(r.static_total_gib),
                fmt_f64(100.0 * r.capacity_saving),
                fmt_f64(100.0 * r.dynamic_violation_frac),
                fmt_f64(100.0 * r.static_violation_frac),
                fmt_f64(100.0 * r.cross_share),
                r.cross_grants.to_string(),
                r.unmet_slab_steps.to_string(),
                format!("{}/{}", r.peak_outstanding_slabs, r.budget_slabs),
                fmt_f64(r.intra_idle_read_ns),
                fmt_f64(r.cross_idle_read_ns),
            ]);
        }
        t
    }

    /// The named cell.
    pub fn cell(&self, scenario: &str) -> &FleetCell {
        self.cells
            .iter()
            .find(|c| c.scenario == scenario)
            .unwrap_or_else(|| panic!("no scenario {scenario}"))
    }
}

/// One scenario spec:
/// `(label, racks, hosts_per_rack, pool GiB, budget GiB, fault second)`.
type Scenario = (&'static str, usize, usize, u64, u64, Option<u64>);

/// The scenarios of the sweep.
fn scenarios(p: FleetParams) -> Vec<Scenario> {
    vec![
        // The headline fleet: balanced racks, budget covering the pools.
        (
            "fleet",
            p.racks,
            p.hosts_per_rack,
            p.rack_pool_gib,
            p.global_budget_gib,
            None,
        ),
        // The operator commits well under the installed pools: the
        // global budget binds and demand goes unmet at peaks.
        (
            "tight-budget",
            p.racks,
            p.hosts_per_rack,
            p.rack_pool_gib,
            p.global_budget_gib * 5 / 8,
            None,
        ),
        // Same fleet re-racked twice as wide: more, smaller pools, so
        // transient imbalance pushes more leases across the spine.
        (
            "4-racks",
            p.racks * 2,
            p.hosts_per_rack / 2,
            p.rack_pool_gib / 2,
            p.global_budget_gib,
            None,
        ),
        // Rack 1's expander dies mid-run: mass revocation, fleet-wide
        // evacuation (cross-rack borrowers included), zero stranding.
        (
            "rack-fault",
            p.racks,
            p.hosts_per_rack,
            p.rack_pool_gib,
            p.global_budget_gib,
            Some(p.horizon_s / 2),
        ),
    ]
}

fn cell_config(s: &Scenario, params: FleetParams) -> FleetConfig {
    let (label, racks, hosts_per_rack, pool, budget, fault_s) = *s;
    FleetConfig {
        racks,
        hosts_per_rack,
        rack_pool_gib: pool,
        global_budget_gib: budget,
        horizon: SimTime::from_secs(params.horizon_s),
        step: SimTime::from_ms(params.step_ms),
        fault_at: fault_s.map(|at| (1, SimTime::from_secs(at))),
        seed: derive_seed(params.seed, &format!("fleet/{label}")),
        ..Default::default()
    }
}

/// Runs the sweep on the environment-configured runner.
pub fn run(params: FleetParams) -> FleetStudy {
    run_with(&Runner::from_env(), params)
}

/// Runs the sweep on an explicit runner.
///
/// Two sharded phases keep the study bit-identical for any worker
/// count: first every `(scenario, host)` world build fans out over the
/// runner (pure per-host construction, order restored by index), then
/// the assembled scenarios run as independent cells.
pub fn run_with(runner: &Runner, params: FleetParams) -> FleetStudy {
    let labeled: Vec<(&'static str, FleetConfig)> = scenarios(params)
        .iter()
        .map(|s| (s.0, cell_config(s, params)))
        .collect();
    let plans: Vec<FleetPlan> = labeled
        .iter()
        .map(|(_, cfg)| FleetPlan::compute(cfg))
        .collect();
    // Phase 1: shard the world model host-by-host across the workers.
    let items: Vec<(usize, HostSpec)> = plans
        .iter()
        .enumerate()
        .flat_map(|(i, plan)| plan.specs.iter().map(move |spec| (i, *spec)))
        .collect();
    let configs = &labeled;
    let mut built = runner.map(items, |(i, spec)| build_host(&configs[i].1, &spec));
    // Phase 2: reassemble each scenario's world and run the cells.
    let mut worlds = Vec::new();
    for ((label, cfg), plan) in labeled.iter().cloned().zip(plans) {
        let hosts: Vec<_> = built.drain(..cfg.hosts()).collect();
        worlds.push((label, cfg, plan, hosts));
    }
    let cells = runner.map(worlds, |(label, cfg, plan, hosts)| FleetCell {
        scenario: label,
        report: run_planned(&cfg, &plan, hosts),
    });
    FleetStudy { cells, params }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_scenario_saves_capacity_and_prices_the_fabric() {
        let study = run_with(&Runner::serial(), FleetParams::default());
        let r = &study.cell("fleet").report;
        assert!(
            r.dynamic_total_gib < r.static_total_gib,
            "fleet must install less memory: {} vs {}",
            r.dynamic_total_gib,
            r.static_total_gib
        );
        assert!(r.capacity_saving > 0.0);
        assert!(
            r.dynamic_violation_frac <= r.static_violation_frac + 0.05,
            "fleet must roughly hold the SLO: dyn {} vs static {}",
            r.dynamic_violation_frac,
            r.static_violation_frac
        );
        // Path-dependent latency: cross-rack accesses pay strictly
        // more hops, and the solve prices them strictly higher.
        assert_eq!(r.intra_hops, 1);
        assert_eq!(r.cross_hops, 3);
        assert!(r.cross_idle_read_ns > r.intra_idle_read_ns);
        // And cross-rack leases actually happen in the headline cell.
        assert!(r.cross_grants > 0, "{r:?}");
        // Both racks host every workload class.
        for row in &r.placement {
            assert!(row.iter().all(|&n| n > 0), "placement {:?}", r.placement);
        }
    }

    #[test]
    fn tight_budget_binds_and_wide_fleet_crosses_more() {
        let study = run_with(&Runner::serial(), FleetParams::smoke());
        let fleet = &study.cell("fleet").report;
        let tight = &study.cell("tight-budget").report;
        assert_eq!(
            tight.peak_outstanding_slabs, tight.budget_slabs,
            "a binding budget is pinned at its cap"
        );
        assert!(tight.unmet_slab_steps > fleet.unmet_slab_steps);
        let wide = &study.cell("4-racks").report;
        assert_eq!(wide.racks, 4);
        assert_eq!(wide.host_steps, fleet.host_steps, "same fleet size");
    }

    #[test]
    fn rack_fault_strands_nothing() {
        let study = run_with(&Runner::serial(), FleetParams::smoke());
        let r = &study.cell("rack-fault").report;
        assert!(r.fault_fired);
        assert_eq!(r.stranded_pages, 0);
        assert_eq!(r.rack_stats[1].mass_revocations, 1);
    }

    #[test]
    fn sweep_is_deterministic_across_worker_counts() {
        let p = FleetParams::smoke();
        let a = run_with(&Runner::new(1), p);
        let b = run_with(&Runner::new(8), p);
        assert_eq!(a.cells.len(), b.cells.len());
        for (x, y) in a.cells.iter().zip(&b.cells) {
            assert_eq!(x.scenario, y.scenario);
            assert_eq!(x.report, y.report);
        }
    }
}
