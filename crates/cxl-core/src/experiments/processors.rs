//! Table 2: the processor-series memory squeeze.

use cxl_cost::processor_series;
use cxl_stats::report::Table;

/// Renders Table 2 with the derived 1:4 requirement and constraint flag.
pub fn tab2() -> Table {
    let mut t = Table::new(
        "tab2",
        "Intel processor series and the 1:4 memory requirement",
        &[
            "year",
            "CPU",
            "max vCPU/server",
            "channels/socket",
            "max memory (TB)",
            "required 1:4 (TB)",
            "constrained",
        ],
    );
    for p in processor_series() {
        t.push_row(vec![
            p.year.to_string(),
            p.name.to_string(),
            p.max_vcpus_per_server.to_string(),
            p.memory_channels_per_socket
                .map(|c| c.to_string())
                .unwrap_or_else(|| "TBD".to_string()),
            format!("{}", p.max_memory_tb),
            format!("{:.2}", p.required_memory_tb()),
            if p.memory_constrained() { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_all_rows() {
        let t = tab2();
        assert_eq!(t.rows.len(), 5);
        let r = t.render();
        assert!(r.contains("Sierra Forest"));
        assert!(r.contains("TBD"));
        assert!(r.contains("yes"));
    }
}
