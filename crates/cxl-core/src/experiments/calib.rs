//! Calibration & validation: fit the performance model to every
//! registered measurement set and report the residuals CI gates on.
//!
//! For each [`CalibrationTarget`] the study evaluates the shipped
//! [`ModelParams`] defaults against the target's measurement set,
//! deliberately perturbs every free dimension, re-fits with the
//! deterministic coordinate descent, and reports start/fitted
//! residuals plus shipped-vs-fitted parameter deltas. The fitter's
//! candidate grids are sharded across [`Runner::map`] through the
//! [`RunnerMap`] adapter, so the whole study is bit-identical at any
//! `--jobs` while still using every core.
//!
//! Two properties are load-bearing:
//!
//! * **`paper_s3` guards the defaults.** Its measurement set *is* the
//!   §3 calibration surface, so its fitted residual staying inside the
//!   pinned tolerance means the shipped constants still reproduce the
//!   paper's tables after whatever change is under review.
//! * **The external targets guard the fitter.** Their sets were
//!   generated from deliberately different device parameters
//!   (slower controllers, switch hops, CXL-DMSim/CXLMemSim stand-ins);
//!   landing inside tolerance from the shipped defaults shows the
//!   harness can actually *recover* a foreign device, not just score
//!   the one it started on.

use serde::Serialize;

use cxl_calib::{
    evaluate, fit, param_deltas, CalibrationTarget, CandidateMap, FitConfig, ParamDelta,
    ResidualReport,
};
use cxl_perf::ModelParams;
use cxl_stats::report::{fmt_f64, Table};
use cxl_stats::rng::derive_seed;

use crate::runner::Runner;

/// [`CandidateMap`] adapter: scores the fitter's candidate grids on
/// the deterministic parallel runner. `Runner::map` preserves input
/// order, which is exactly the contract `CandidateMap` requires.
#[derive(Debug, Clone, Copy)]
pub struct RunnerMap<'a>(pub &'a Runner);

impl CandidateMap for RunnerMap<'_> {
    fn map_losses(
        &self,
        candidates: Vec<ModelParams>,
        eval: &(dyn Fn(&ModelParams) -> f64 + Sync),
    ) -> Vec<f64> {
        self.0.map(candidates, |p| eval(&p))
    }
}

/// Knobs for the calibration study.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CalibParams {
    /// Descent schedule (the per-target seed is derived from `seed`,
    /// overriding `fit.seed`).
    pub fit: FitConfig,
    /// Relative perturbation applied to every free dimension of the
    /// shipped defaults before fitting.
    pub perturb_frac: f64,
    /// Root seed for perturbation and dimension visit order.
    pub seed: u64,
}

impl Default for CalibParams {
    fn default() -> Self {
        Self {
            fit: FitConfig::default(),
            perturb_frac: 0.10,
            seed: 42,
        }
    }
}

impl CalibParams {
    /// A faster schedule for tests: fewer rounds and a coarser grid,
    /// still covering every target.
    pub fn smoke() -> Self {
        Self {
            fit: FitConfig {
                rounds: 4,
                candidates_per_dim: 5,
                ..FitConfig::default()
            },
            ..Self::default()
        }
    }
}

/// One target's calibration run.
#[derive(Debug, Clone, Serialize)]
pub struct CalibCell {
    /// Target name.
    pub target: String,
    /// What the target models.
    pub description: String,
    /// Pinned CI tolerance on the fitted max point residual, percent.
    pub tolerance_pct: f64,
    /// Residuals of the *unfitted* shipped defaults on this set.
    pub shipped: ResidualReport,
    /// Residuals at the perturbed start the fit ran from.
    pub start: ResidualReport,
    /// Residuals after the fit.
    pub fitted: ResidualReport,
    /// Shipped-vs-fitted values of every free dimension.
    pub deltas: Vec<ParamDelta>,
    /// Accepted descent moves.
    pub steps: usize,
    /// Objective evaluations spent.
    pub evaluations: u64,
    /// Whether the fitted max residual is within the pinned tolerance
    /// — the CI gate.
    pub within_tolerance: bool,
}

/// Output of the calibration study.
#[derive(Debug, Clone, Serialize)]
pub struct CalibStudy {
    /// The knobs the study ran with.
    pub params: CalibParams,
    /// One cell per registered target, in registry order.
    pub cells: Vec<CalibCell>,
}

/// Runs the study on the environment-configured runner.
pub fn run() -> CalibStudy {
    run_with(&Runner::from_env(), CalibParams::default())
}

/// Runs the study on an explicit runner. Targets run serially; within
/// each target the fitter's candidate grids fan out across the runner.
pub fn run_with(runner: &Runner, params: CalibParams) -> CalibStudy {
    let cells: Vec<CalibCell> = CalibrationTarget::registry()
        .iter()
        .map(|t| run_target(runner, &params, t))
        .collect();

    cxl_obs::counter_add("calib/targets", cells.len() as u64);
    for c in &cells {
        let g = |k: &str, v: f64| cxl_obs::gauge_set(&format!("calib/{}/{k}", c.target), v);
        g("shipped_max_residual_pct", c.shipped.max_residual_pct);
        g("start_max_residual_pct", c.start.max_residual_pct);
        g("max_residual_pct", c.fitted.max_residual_pct);
        g("rmse_pct", c.fitted.rmse_pct);
        g("tolerance_pct", c.tolerance_pct);
        g(
            "within_tolerance",
            if c.within_tolerance { 1.0 } else { 0.0 },
        );
        cxl_obs::counter_add(&format!("calib/{}/evaluations", c.target), c.evaluations);
        cxl_obs::counter_add(&format!("calib/{}/steps", c.target), c.steps as u64);
        cxl_obs::counter_add(
            &format!("calib/{}/points", c.target),
            c.fitted.curves.iter().map(|r| r.points as u64).sum(),
        );
    }

    CalibStudy { params, cells }
}

fn run_target(runner: &Runner, params: &CalibParams, t: &CalibrationTarget) -> CalibCell {
    let topo = t.topology();
    let set = t.measurements();
    let space = t.space();
    let shipped = ModelParams::default();
    let seed = derive_seed(params.seed, &format!("calib/{}", t.name));

    let shipped_report = evaluate(&topo, &shipped, &set);
    let start = space.perturbed_start(&shipped, seed, params.perturb_frac);
    let cfg = FitConfig { seed, ..params.fit };
    let r = fit(&RunnerMap(runner), &topo, &set, &space, start, &cfg);
    let start_report = evaluate(&topo, &r.start, &set);
    let fitted_report = evaluate(&topo, &r.fitted, &set);
    let within = fitted_report.max_residual_pct <= t.tolerance_pct;

    CalibCell {
        target: t.name.to_string(),
        description: t.description.to_string(),
        tolerance_pct: t.tolerance_pct,
        shipped: shipped_report,
        start: start_report,
        fitted: fitted_report,
        deltas: param_deltas(&space, &shipped, &r.fitted),
        steps: r.steps.len(),
        evaluations: r.evaluations,
        within_tolerance: within,
    }
}

impl CalibStudy {
    /// The cell for `target`.
    ///
    /// # Panics
    ///
    /// Panics when the target is not in the study.
    pub fn cell(&self, target: &str) -> &CalibCell {
        self.cells
            .iter()
            .find(|c| c.target == target)
            .unwrap_or_else(|| panic!("no calibration cell '{target}'"))
    }

    /// Fitted max point residual for `target`, percent.
    pub fn max_residual_pct(&self, target: &str) -> f64 {
        self.cell(target).fitted.max_residual_pct
    }

    /// True when every target's fitted residual is inside its pinned
    /// tolerance — the condition CI enforces.
    pub fn all_within_tolerance(&self) -> bool {
        self.cells.iter().all(|c| c.within_tolerance)
    }

    /// Fitted value of a free dimension on `target`.
    ///
    /// # Panics
    ///
    /// Panics when the target or field is not in the study.
    pub fn fitted_value(&self, target: &str, field: &str) -> f64 {
        self.cell(target)
            .deltas
            .iter()
            .find(|d| d.field == field)
            .unwrap_or_else(|| panic!("'{target}' does not fit '{field}'"))
            .fitted
    }

    /// The residual table (one row per target).
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "calibration",
            "Model calibration: fitted residuals per measurement set (max point residual gated by the pinned tolerance)",
            &[
                "target",
                "points",
                "shipped max %",
                "start max %",
                "fitted max %",
                "fitted rmse %",
                "tol %",
                "ok",
                "steps",
                "evals",
            ],
        );
        for c in &self.cells {
            t.push_row(vec![
                c.target.clone(),
                c.fitted
                    .curves
                    .iter()
                    .map(|r| r.points)
                    .sum::<usize>()
                    .to_string(),
                fmt_f64(c.shipped.max_residual_pct),
                fmt_f64(c.start.max_residual_pct),
                fmt_f64(c.fitted.max_residual_pct),
                fmt_f64(c.fitted.rmse_pct),
                fmt_f64(c.tolerance_pct),
                if c.within_tolerance { "yes" } else { "NO" }.to_string(),
                c.steps.to_string(),
                c.evaluations.to_string(),
            ]);
        }
        t
    }

    /// The shipped-vs-fitted parameter-delta table (one row per free
    /// dimension per target).
    pub fn delta_table(&self) -> Table {
        let mut t = Table::new(
            "calibration_deltas",
            "Fitted vs shipped model parameters, per target and free dimension",
            &["target", "field", "shipped", "fitted", "delta %"],
        );
        for c in &self.cells {
            for d in &c.deltas {
                t.push_row(vec![
                    c.target.clone(),
                    d.field.clone(),
                    fmt_f64(d.shipped),
                    fmt_f64(d.fitted),
                    fmt_f64(d.delta_pct),
                ]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_every_registered_target() {
        let s = run_with(&Runner::serial(), CalibParams::smoke());
        assert_eq!(s.cells.len(), CalibrationTarget::registry().len());
        for c in &s.cells {
            assert!(
                c.start.max_residual_pct > 0.0,
                "{}: start not perturbed",
                c.target
            );
            assert!(
                c.fitted.max_residual_pct <= c.start.max_residual_pct,
                "{}: fit made things worse",
                c.target
            );
            assert!(c.evaluations > 0);
        }
    }

    #[test]
    fn parallel_candidate_scoring_matches_serial() {
        let p = CalibParams::smoke();
        let a = run_with(&Runner::serial(), p);
        let b = run_with(&Runner::new(8), p);
        let ja = serde_json::to_string(&a).expect("serializes");
        let jb = serde_json::to_string(&b).expect("serializes");
        assert_eq!(ja, jb, "study must be bit-identical at any worker count");
    }

    #[test]
    fn default_schedule_lands_every_target_inside_tolerance() {
        let s = run_with(&Runner::from_env(), CalibParams::default());
        for c in &s.cells {
            assert!(
                c.within_tolerance,
                "{}: fitted max residual {:.3}% vs tolerance {:.1}%",
                c.target, c.fitted.max_residual_pct, c.tolerance_pct
            );
        }
        assert!(s.all_within_tolerance());
    }
}
