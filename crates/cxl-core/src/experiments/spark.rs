//! Fig. 7: Spark TPC-H execution time and shuffle share (§4.2).

use serde::Serialize;

use cxl_spark::runner::run_all;
use cxl_spark::{ClusterConfig, QueryResult};
use cxl_stats::report::{fmt_f64, Table};

use crate::runner::Runner;

/// The Fig. 7 study: every configuration × query.
#[derive(Debug, Clone, Serialize)]
pub struct SparkStudy {
    /// Results per configuration (Table 1 order), each with the four
    /// queries.
    pub configs: Vec<(String, Vec<QueryResult>)>,
}

/// The configurations of §4.2.1.
pub fn paper_configs() -> Vec<ClusterConfig> {
    vec![
        ClusterConfig::baseline(),
        ClusterConfig::cxl_interleave(3, 1),
        ClusterConfig::cxl_interleave(1, 1),
        ClusterConfig::cxl_interleave(1, 3),
        ClusterConfig::spill(0.8),
        ClusterConfig::spill(0.6),
        ClusterConfig::hot_promote(),
    ]
}

/// Runs every configuration over Q5/Q7/Q8/Q9 on the
/// environment-configured runner.
pub fn run() -> SparkStudy {
    run_with(&Runner::from_env())
}

/// Runs every configuration over Q5/Q7/Q8/Q9 on an explicit runner.
/// The query model is analytic (no randomness), so each configuration
/// is an independent cell.
pub fn run_with(runner: &Runner) -> SparkStudy {
    let configs = runner.map(paper_configs(), |c| (c.placement.label(), run_all(&c)));
    SparkStudy { configs }
}

impl SparkStudy {
    /// Baseline (MMEM) execution times per query.
    fn baseline(&self) -> &[QueryResult] {
        &self
            .configs
            .iter()
            .find(|(l, _)| l == "MMEM")
            .expect("baseline present")
            .1
    }

    /// Normalized execution time of a configuration for a query.
    pub fn normalized(&self, config: &str, query: &str) -> f64 {
        let base = self
            .baseline()
            .iter()
            .find(|r| r.name == query)
            .expect("query present")
            .exec_time_s;
        let t = self
            .configs
            .iter()
            .find(|(l, _)| l == config)
            .expect("config present")
            .1
            .iter()
            .find(|r| r.name == query)
            .expect("query present")
            .exec_time_s;
        t / base
    }

    /// Fig. 7(a): normalized execution times.
    pub fn fig7a(&self) -> Table {
        let mut t = Table::new(
            "fig7a",
            "TPC-H execution time normalized to MMEM",
            &["config", "Q5", "Q7", "Q8", "Q9"],
        );
        for (label, results) in &self.configs {
            let mut row = vec![label.clone()];
            for r in results {
                row.push(format!(
                    "{:.2}x",
                    r.exec_time_s / self.baseline_time(r.name)
                ));
            }
            t.push_row(row);
        }
        t
    }

    fn baseline_time(&self, query: &str) -> f64 {
        self.baseline()
            .iter()
            .find(|r| r.name == query)
            .expect("query present")
            .exec_time_s
    }

    /// Fig. 7(b): shuffle time percentage, split into write and read.
    pub fn fig7b(&self) -> Table {
        let mut t = Table::new(
            "fig7b",
            "Shuffle share of execution time (%)",
            &["config", "query", "shuffle write", "shuffle read", "total"],
        );
        for (label, results) in &self.configs {
            for r in results {
                t.push_row(vec![
                    label.clone(),
                    r.name.to_string(),
                    fmt_f64(100.0 * r.shuffle_write_s / r.exec_time_s),
                    fmt_f64(100.0 * r.shuffle_read_s / r.exec_time_s),
                    fmt_f64(100.0 * r.shuffle_fraction()),
                ]);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_runs() {
        let s = run();
        assert_eq!(s.configs.len(), 7);
        for (_, rs) in &s.configs {
            assert_eq!(rs.len(), 4);
        }
    }

    #[test]
    fn normalized_band_matches_paper() {
        let s = run();
        // §4.2.2: interleave slowdowns 1.4x–9.8x.
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for cfg in ["3:1", "1:1", "1:3"] {
            for q in ["Q5", "Q7", "Q8", "Q9"] {
                let n = s.normalized(cfg, q);
                min = min.min(n);
                max = max.max(n);
            }
        }
        assert!((1.2..=2.0).contains(&min), "min {min}");
        assert!((4.0..=12.0).contains(&max), "max {max}");
        // Hot-Promote: >34 % slowdown (§4.2.2).
        assert!(s.normalized("Hot-Promote", "Q9") > 1.34);
    }

    #[test]
    fn tables_render() {
        let s = run();
        let a = s.fig7a();
        assert_eq!(a.rows.len(), 7);
        assert!(a.render().contains("Q9"));
        let b = s.fig7b();
        assert_eq!(b.rows.len(), 28);
    }
}
