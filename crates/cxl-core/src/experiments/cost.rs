//! Table 3 and the §6 worked example.

use serde::Serialize;

use cxl_cost::{CostModel, CostModelParams};
use cxl_stats::report::Table;

/// The evaluated cost model.
#[derive(Debug, Clone, Serialize)]
pub struct CostStudy {
    /// Parameters (Table 3 example values).
    pub params: CostModelParams,
    /// `N_cxl / N_baseline` (paper: 67.29 %).
    pub server_ratio: f64,
    /// TCO saving (paper: 25.98 %).
    pub tco_saving: f64,
}

impl CostStudy {
    /// Table 3: parameters and example values.
    pub fn tab3(&self) -> Table {
        let mut t = Table::new(
            "tab3",
            "Abstract Cost Model parameters",
            &["parameter", "description", "example"],
        );
        let p = self.params;
        t.push_row(vec![
            "Ps".into(),
            "throughput with working set on SSD (normalized)".into(),
            "1".into(),
        ]);
        t.push_row(vec![
            "Rd".into(),
            "relative throughput, working set in MMEM".into(),
            format!("{}", p.rd),
        ]);
        t.push_row(vec![
            "Rc".into(),
            "relative throughput, working set in CXL".into(),
            format!("{}", p.rc),
        ]);
        t.push_row(vec![
            "C".into(),
            "MMEM:CXL capacity ratio per CXL server".into(),
            format!("{}", p.c),
        ]);
        t.push_row(vec![
            "Rt".into(),
            "relative TCO of a CXL server".into(),
            format!("{}", p.rt),
        ]);
        t
    }

    /// The §6 worked-example table.
    pub fn example_table(&self) -> Table {
        let mut t = Table::new(
            "cost-example",
            "Worked example (§6)",
            &["quantity", "value"],
        );
        t.push_row(vec![
            "Ncxl / Nbaseline".into(),
            format!("{:.2}%", 100.0 * self.server_ratio),
        ]);
        t.push_row(vec![
            "server reduction".into(),
            format!("{:.2}%", 100.0 * (1.0 - self.server_ratio)),
        ]);
        t.push_row(vec![
            "TCO saving".into(),
            format!("{:.2}%", 100.0 * self.tco_saving),
        ]);
        t
    }

    /// Sensitivity sweep of the TCO saving over `R_c` (ablation).
    pub fn rc_sensitivity(&self) -> Vec<(f64, f64)> {
        (2..=9)
            .map(|rc| {
                let m = CostModel::new(CostModelParams {
                    rc: rc as f64,
                    ..self.params
                });
                (rc as f64, m.tco_saving())
            })
            .collect()
    }
}

/// Evaluates the model at the Table 3 example values.
pub fn run() -> CostStudy {
    run_with(CostModelParams::default())
}

/// Evaluates the model at arbitrary parameters.
pub fn run_with(params: CostModelParams) -> CostStudy {
    let m = CostModel::new(params);
    CostStudy {
        params,
        server_ratio: m.server_ratio(),
        tco_saving: m.tco_saving(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worked_example() {
        let s = run();
        assert!((s.server_ratio - 0.6729).abs() < 1e-3);
        assert!((s.tco_saving - 0.2598).abs() < 1e-3);
    }

    #[test]
    fn tables_render() {
        let s = run();
        assert_eq!(s.tab3().rows.len(), 5);
        assert!(s.example_table().render().contains("TCO saving"));
    }

    #[test]
    fn sensitivity_is_monotone_in_rc() {
        let s = run();
        let sweep = s.rc_sensitivity();
        for w in sweep.windows(2) {
            assert!(w[1].1 >= w[0].1, "saving not monotone in Rc: {sweep:?}");
        }
    }
}
