//! SLO capacity: maximum sustainable open-loop load per placement.
//!
//! Production stores are sized by "how much load fits under the p99
//! budget", not by peak throughput. Queueing amplifies the CXL
//! service-time gap at the tail, so the *sellable capacity* cost of a
//! placement exceeds its raw throughput cost — an operational corollary
//! of §4.1/§4.3 that matters for the §6 cost model's `R_c` input.

use serde::Serialize;

use cxl_kv::{KvConfig, KvStore, MemProfile};
use cxl_topology::{SncMode, Topology};
use cxl_ycsb::Workload;

use crate::config::CapacityConfig;
use crate::experiments::error::ExperimentError;
use crate::runner::Runner;

/// Sizing of an SLO study.
#[derive(Debug, Clone, Serialize)]
pub struct SloParams {
    /// Records in the store (1 KiB each).
    pub record_count: u64,
    /// Warm-up (closed-loop) operations before measuring.
    pub warmup_ops: u64,
    /// Measured operations per rate point.
    pub ops: u64,
    /// p99 budget in microseconds.
    pub slo_p99_us: f64,
    /// Offered rates to probe, ops/s (ascending).
    pub rates: Vec<f64>,
    /// Workload.
    pub workload: Workload,
    /// Root seed.
    pub seed: u64,
}

impl Default for SloParams {
    fn default() -> Self {
        Self {
            record_count: 100_000,
            warmup_ops: 100_000,
            ops: 60_000,
            slo_p99_us: 40.0,
            rates: vec![4e5, 6e5, 8e5, 1e6, 1.1e6, 1.2e6],
            workload: Workload::B,
            seed: 42,
        }
    }
}

impl SloParams {
    /// A fast variant for tests.
    pub fn smoke() -> Self {
        Self {
            record_count: 30_000,
            warmup_ops: 20_000,
            ops: 25_000,
            rates: vec![4e5, 8e5, 1.1e6],
            ..Default::default()
        }
    }
}

/// Result for one placement.
#[derive(Debug, Clone, Serialize)]
pub struct SloRow {
    /// Table 1 label.
    pub config: &'static str,
    /// `(offered rate, p99 µs)` points.
    pub points: Vec<(f64, f64)>,
    /// Highest probed rate meeting the budget (0 when none).
    pub max_rate: f64,
}

/// Looks up the SLO capacity (`max_rate`) of the row labelled `label`.
///
/// Returns [`ExperimentError::UnknownConfig`] — naming the labels that
/// do exist — when no row matches, instead of panicking inside a
/// comparison chain.
pub fn max_rate_of(rows: &[SloRow], label: &str) -> Result<f64, ExperimentError> {
    rows.iter()
        .find(|r| r.config == label)
        .map(|r| r.max_rate)
        .ok_or_else(|| ExperimentError::UnknownConfig {
            label: label.to_string(),
            available: rows.iter().map(|r| r.config.to_string()).collect(),
        })
}

/// Probes one placement across the configured rates.
pub fn probe(config: CapacityConfig, params: &SloParams) -> SloRow {
    let topo = Topology::paper_testbed(SncMode::Disabled);
    let mut points = Vec::new();
    let mut max_rate = 0.0f64;
    for &rate in &params.rates {
        let kv = KvConfig {
            record_count: params.record_count,
            profile: MemProfile::capacity_strained(),
            seed: params.seed,
            ..Default::default()
        };
        let (tier, flash) = config.tier_config(&topo, kv.record_count * kv.value_size);
        let mut store = KvStore::new(&topo, tier, kv, flash);
        if params.warmup_ops > 0 {
            store.run(params.workload, params.warmup_ops);
        }
        let r = store.run_open_loop(params.workload, rate, params.ops);
        let p99 = r
            .latency
            .try_percentile(99.0)
            .expect("open-loop run records every op");
        let p99_us = p99 as f64 / 1e3;
        if p99_us <= params.slo_p99_us {
            max_rate = max_rate.max(rate);
        }
        points.push((rate, p99_us));
    }
    SloRow {
        config: config.label(),
        points,
        max_rate,
    }
}

/// Runs the study for a set of placements on the
/// environment-configured runner.
pub fn run(configs: &[CapacityConfig], params: &SloParams) -> Vec<SloRow> {
    run_with(&Runner::from_env(), configs, params)
}

/// Runs the study on an explicit runner. Every placement probes the
/// same workload trace (shared seed): capacity is compared across
/// placements at fixed load, so the cells stay paired and each probe is
/// an independent cell.
pub fn run_with(runner: &Runner, configs: &[CapacityConfig], params: &SloParams) -> Vec<SloRow> {
    runner.map(configs.to_vec(), |c| probe(c, params))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p99_grows_with_offered_rate() {
        let row = probe(CapacityConfig::Mmem, &SloParams::smoke());
        assert_eq!(row.points.len(), 3);
        for w in row.points.windows(2) {
            assert!(w[1].1 >= w[0].1 * 0.8, "p99 collapsed: {:?}", row.points);
        }
        assert!(row.max_rate > 0.0);
    }

    #[test]
    fn slo_capacity_orders_mmem_above_cxl_heavy() {
        let p = SloParams::smoke();
        let rows = run(
            &[
                CapacityConfig::Mmem,
                CapacityConfig::Interleave11,
                CapacityConfig::Interleave13,
            ],
            &p,
        );
        let cap = |label: &str| max_rate_of(&rows, label).expect("probed config");
        assert!(cap("MMEM") >= cap("1:1"), "{rows:?}");
        assert!(cap("1:1") >= cap("1:3"), "{rows:?}");
        // The heavy-CXL placement loses capacity under the budget.
        assert!(cap("1:3") < cap("MMEM"));
        // A label that never ran is a typed error, not a panic.
        let missing = max_rate_of(&rows, "3:1").unwrap_err();
        assert!(matches!(
            missing,
            ExperimentError::UnknownConfig { ref label, ref available }
                if label == "3:1" && available.len() == 3
        ));
    }

    #[test]
    fn tail_amplification_exceeds_mean_gap() {
        // At a rate near MMEM's knee, the 1:1 p99 gap is larger than the
        // ~1.4x service-time gap — queueing amplification.
        let p = SloParams::smoke();
        let mmem = probe(CapacityConfig::Mmem, &p);
        let il = probe(CapacityConfig::Interleave11, &p);
        let last = p.rates.len() - 1;
        let ratio = il.points[last].1 / mmem.points[last].1;
        assert!(ratio > 1.6, "tail ratio {ratio}");
    }
}
