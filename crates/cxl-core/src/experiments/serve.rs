//! Open-loop multi-tenant serving: adaptive leasing vs static
//! provisioning on a diurnal trace with a mid-run expander fault.
//!
//! Every other experiment drives the stack closed-loop. This one runs
//! the `cxl-serve` front end: tenants submit Poisson/bursty arrivals on
//! their own schedule, each behind a token-budget admission gate and a
//! bounded FIFO, with requests priced on the real KeyDB and LLM
//! backends. The question is the operator's, not the benchmarker's —
//! under a day/night load shape with a fault in the middle of it, does
//! SLO-aware admission plus autoscaled `cxl-pool` leases beat static
//! provisioning on *both* tail latency and cost-per-request?
//!
//! Four cells over the identical trace:
//!
//! * `adaptive` — the autoscaler leases slabs as tenants ramp and
//!   releases them on the night trough; post-fault it can climb past
//!   any sane static choice because it only pays for the excursion.
//! * `static-lean` — no lease, base capacity only. Cheapest until the
//!   fault, at which point the KV tenants fall off the flash cliff and
//!   the p99 explodes.
//! * `static-peak` — a fixed lease sized for the diurnal peak, held
//!   for the whole run. Survives the peak, pays for capacity all night,
//!   and still degrades post-fault because the fault needs more than
//!   the peak needed.
//! * `overload` — the adaptive cell at a multiple of nominal rates
//!   against unchanged admission budgets: the shed path must engage
//!   (gated > 0 in CI), while at nominal load the same budgets shed
//!   nothing (gated == 0).

use serde::Serialize;

use cxl_serve::{
    run_serve, AutoscaleConfig, BurstConfig, CostConfig, Phase, ServeConfig, ServeReport,
    TenantClass, TenantConfig,
};
use cxl_sim::SimTime;
use cxl_stats::report::{fmt_f64, Table};
use cxl_ycsb::Workload;

use crate::runner::Runner;

/// Sizing knobs for the serving study.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServeParams {
    /// Records per KV tenant store (1 KiB each).
    pub record_count: u64,
    /// YCSB ops batched into one KV request.
    pub ops_per_request: u64,
    /// Base arrival rate of the first KV tenant, requests/s.
    pub kv_rate_rps: f64,
    /// Base arrival rate of the LLM tenant, requests/s.
    pub llm_rate_rps: f64,
    /// Duration of each diurnal phase, ms (four phases: ramp, peak,
    /// evening, night).
    pub phase_ms: u64,
    /// Autoscale control period, ms.
    pub autoscale_period_ms: u64,
    /// The lease the `static-peak` cell holds for the whole run, slabs.
    pub static_peak_slabs: u64,
    /// Rate multiplier for the `overload` cell.
    pub overload_mult: f64,
    /// Root seed.
    pub seed: u64,
}

impl Default for ServeParams {
    fn default() -> Self {
        Self {
            record_count: 40_000,
            ops_per_request: 64,
            kv_rate_rps: 1_200.0,
            llm_rate_rps: 3.0,
            phase_ms: 3_000,
            autoscale_period_ms: 250,
            static_peak_slabs: 2,
            overload_mult: 6.0,
            seed: 42,
        }
    }
}

impl ServeParams {
    /// A fast variant for tests. Rates and dataset stay at the default
    /// — the post-fault overload regime is the point of the study, and
    /// it only exists when demand clears the degraded flash-cliff
    /// capacity — so smoke shrinks only the clock (shorter phases,
    /// proportionally faster control ticks).
    pub fn smoke() -> Self {
        Self {
            phase_ms: 1_200,
            autoscale_period_ms: 120,
            ..Default::default()
        }
    }

    /// The fault instant: the middle of the day peak — the worst
    /// moment for an expander to die. The evening then keeps demand
    /// above degraded base capacity (so static cells cannot quietly
    /// recover), and the night trough tests whether the autoscaler
    /// lets go of the recovery lease.
    pub fn fault_at(&self) -> SimTime {
        SimTime::from_ms(self.phase_ms * 3 / 2)
    }
}

/// One provisioning scheme's run over the shared trace.
#[derive(Debug, Clone, Serialize)]
pub struct ServeCell {
    /// Cell label (`adaptive`, `static-lean`, `static-peak`,
    /// `overload`).
    pub label: String,
    /// True for autoscaled cells.
    pub adaptive: bool,
    /// The full serving report.
    pub report: ServeReport,
}

/// The serving study: four provisioning cells over one diurnal trace.
#[derive(Debug, Clone, Serialize)]
pub struct ServeStudy {
    /// Cells in grid order: adaptive, static-lean, static-peak,
    /// overload.
    pub cells: Vec<ServeCell>,
    /// Parameters used.
    pub params: ServeParams,
}

impl ServeStudy {
    /// Looks a cell up by label.
    ///
    /// # Panics
    ///
    /// Panics when the label names no cell.
    pub fn cell(&self, label: &str) -> &ServeCell {
        self.cells
            .iter()
            .find(|c| c.label == label)
            .unwrap_or_else(|| panic!("no cell labelled {label}"))
    }

    /// The autoscaled nominal-load cell.
    pub fn adaptive(&self) -> &ServeCell {
        self.cell("adaptive")
    }

    /// Worst per-tenant p99 for a cell, ms.
    pub fn worst_p99_ms(&self, label: &str) -> f64 {
        self.cell(label).report.worst_p99_ms()
    }

    /// Worst per-tenant p99-to-SLO ratio for a cell (the cross-class
    /// tail metric: an LLM tenant's healthy p99 is three orders of
    /// magnitude above a KV tenant's, so raw worst-of-p99s would only
    /// ever describe the LLM tenant).
    pub fn worst_slo_frac(&self, label: &str) -> f64 {
        self.cell(label).report.worst_slo_frac()
    }

    /// True when the adaptive cell beats the named static cell on both
    /// axes of the headline claim: SLO-normalized tail latency and
    /// cost-per-request.
    pub fn adaptive_beats_on_both(&self, static_label: &str) -> bool {
        let a = &self.adaptive().report;
        let s = &self.cell(static_label).report;
        a.worst_slo_frac() < s.worst_slo_frac() && a.cost_per_request < s.cost_per_request
    }

    /// Guardrail invariant violations summed over every cell — the CI
    /// gate, must be zero.
    pub fn total_guardrail_violations(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.report.guardrail_violations)
            .sum()
    }

    /// Renders the study as a table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "serve_dynamics",
            "Diurnal multi-tenant serving + mid-run expander fault: adaptive leases vs static",
            &[
                "config",
                "served",
                "shed",
                "rejected",
                "worst p99 ms",
                "p99/slo",
                "post-fault p99 ms",
                "cost units",
                "cost/kreq",
                "peak lease",
                "grows",
                "shrinks",
                "violations",
            ],
        );
        for c in &self.cells {
            let worst_post = c
                .report
                .tenants
                .iter()
                .filter_map(|t| t.p99_post_fault_ms)
                .fold(0.0, f64::max);
            let peak_lease: u64 = c.report.tenants.iter().map(|t| t.peak_lease_slabs).sum();
            t.push_row(vec![
                c.label.clone(),
                c.report.served.to_string(),
                c.report.shed.to_string(),
                c.report.rejected.to_string(),
                fmt_f64(c.report.worst_p99_ms()),
                fmt_f64(c.report.worst_slo_frac()),
                fmt_f64(worst_post),
                fmt_f64(c.report.cost_units),
                fmt_f64(c.report.cost_per_request * 1_000.0),
                peak_lease.to_string(),
                c.report.lease_grows.to_string(),
                c.report.lease_shrinks.to_string(),
                c.report.guardrail_violations.to_string(),
            ]);
        }
        t
    }
}

/// Builds the shared diurnal scenario. Every cell runs this exact
/// trace; cells differ only in provisioning (autoscale vs static) and,
/// for the overload cell, a rate multiplier against unchanged budgets.
fn scenario(p: &ServeParams, rate_mult: f64, adaptive: bool, static_slabs: u64) -> ServeConfig {
    let phase = SimTime::from_ms(p.phase_ms);
    let mk_kv = |name: &str, workload, rate: f64, mults: Vec<f64>, burst| TenantConfig {
        name: name.to_string(),
        class: TenantClass::Kv {
            workload,
            ops_per_request: p.ops_per_request,
            record_count: p.record_count,
        },
        base_rate_rps: rate * rate_mult,
        phase_mults: mults,
        burst,
        queue_cap: 4_096,
        // The admission contract: 8x the tenant's base rate, which
        // clears every nominal phase/burst combination but not the
        // overload cell's multiplied offered load.
        admission_rate_rps: rate * 8.0,
        admission_burst: 64.0,
        // Two workers put the post-fault flash cliff in overload
        // territory: degraded per-worker throughput times two sits
        // below peak/evening demand unless leased capacity restores it.
        workers: 2,
        // ~100x the healthy p99 (~2 ms): the headroom a real serving
        // SLO carries. A sub-second fault-recovery transient holds it;
        // sustained post-fault overload does not.
        slo_p99_ms: 200.0,
    };
    ServeConfig {
        tenants: vec![
            mk_kv(
                "kv-a",
                Workload::B,
                p.kv_rate_rps,
                // Peak demand (1.7x) clears lease-0 capacity but not
                // leased capacity: the ramp itself makes kv-a lease, so
                // it holds slabs when the expander dies mid-peak and
                // the relocated pages land in them.
                vec![1.0, 1.7, 1.4, 0.3],
                Some(BurstConfig {
                    mult: 1.3,
                    mean_on_s: 0.3,
                    mean_off_s: 0.9,
                }),
            ),
            // kv-b peaks inside lease-0 capacity, so it never leases
            // pre-fault and exercises the purely reactive recovery
            // path (lease granted only after the fault).
            mk_kv(
                "kv-b",
                Workload::C,
                p.kv_rate_rps * 0.75,
                vec![0.6, 1.6, 1.9, 0.4],
                None,
            ),
            TenantConfig {
                name: "llm-a".to_string(),
                class: TenantClass::Llm {
                    prompt_tokens: 32,
                    mean_output_tokens: 8,
                },
                base_rate_rps: p.llm_rate_rps * rate_mult,
                phase_mults: vec![1.0, 1.5, 1.0, 0.3],
                burst: None,
                queue_cap: 256,
                admission_rate_rps: p.llm_rate_rps * 8.0,
                admission_burst: 16.0,
                workers: 3,
                slo_p99_ms: 4_000.0,
            },
        ],
        phases: vec![
            Phase::new("ramp", phase),
            Phase::new("peak", phase),
            Phase::new("evening", phase),
            // A long trough: most of what static-peak pays for its
            // always-on lease is bought here, serving nothing.
            Phase::new("night", phase + phase),
        ],
        autoscale: adaptive.then(|| AutoscaleConfig {
            period: SimTime::from_ms(p.autoscale_period_ms),
            ladder: vec![0, 1, 2, 4, 6],
            ..AutoscaleConfig::default()
        }),
        static_lease_slabs: static_slabs,
        fault_at: Some(p.fault_at()),
        // Three tenants can each reach the 6-slab ladder top without
        // starving each other at the 4-slab typical excursion.
        pool_slabs: 18,
        cost: CostConfig::default(),
        seed: 0, // overwritten per cell by the seeded runner
    }
}

/// One grid cell: (rate multiplier, adaptive, static slabs).
type CellSpec = (f64, bool, u64);

/// The cell grid: (label, cell spec).
fn grid(p: &ServeParams) -> Vec<(String, CellSpec)> {
    vec![
        ("adaptive".to_string(), (1.0, true, 0)),
        ("static-lean".to_string(), (1.0, false, 0)),
        ("static-peak".to_string(), (1.0, false, p.static_peak_slabs)),
        ("overload".to_string(), (p.overload_mult, true, 0)),
    ]
}

/// Runs the study on the environment-configured runner.
pub fn run(params: ServeParams) -> ServeStudy {
    run_with(&Runner::from_env(), params)
}

/// Runs the study on an explicit runner. Every cell is seeded from the
/// root seed and its label, so the study is bit-identical for any
/// worker count.
pub fn run_with(runner: &Runner, params: ServeParams) -> ServeStudy {
    let jobs: Vec<(String, (String, CellSpec))> = grid(&params)
        .into_iter()
        .map(|(label, job)| (format!("serve/{label}"), (label, job)))
        .collect();
    let cells = runner.map_seeded(
        params.seed,
        jobs,
        move |(label, (rate_mult, adaptive, static_slabs)), seed| {
            let mut cfg = scenario(&params, rate_mult, adaptive, static_slabs);
            cfg.seed = seed;
            ServeCell {
                label,
                adaptive,
                report: run_serve(&cfg),
            }
        },
    );
    ServeStudy { cells, params }
}
