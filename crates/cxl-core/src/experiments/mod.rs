//! One runner per paper table/figure.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`latency`] | Fig. 3 (loaded latency per distance) and Fig. 4 (per-mix distance comparison, random vs sequential) |
//! | [`keydb`] | Fig. 5 (YCSB throughput/tail latency across Table 1 configs) |
//! | [`spark`] | Fig. 7 (TPC-H normalized execution time, shuffle share) |
//! | [`vm`] | Fig. 8 (KeyDB on CXL vs MMEM) and the §4.3 revenue analysis |
//! | [`llm`] | Fig. 10 (LLM serving rate, backend bandwidth, KV-cache bandwidth) |
//! | [`cost`] | Table 3 and the §6 worked example |
//! | [`processors`] | Table 2 |
//! | [`balancer`] | §5.3's insight operationalized: bandwidth-aware tiering vs capacity-only tiering |
//! | [`colocation`] | Multi-tenant isolation: parking the bandwidth hog on CXL (§3.4) |
//! | [`slo`] | Open-loop tail-latency capacity per placement |
//! | [`replication`] | Multi-seed mean ± std for any experiment metric |
//! | [`faults`] | Graceful degradation: KeyDB across expander faults of rising severity |
//! | [`pool`] | §7.1 projection: dynamic multi-host pooling vs static per-host provisioning |
//! | [`fleet`] | ROADMAP item 2: multi-rack pooling over a rack/spine fabric with path-priced leases |
//! | [`autotune`] | Online adaptive control (`cxl-ctl`) vs every static config on a phased trace |
//! | [`serve`] | Open-loop multi-tenant serving (`cxl-serve`): adaptive leases vs static provisioning on a diurnal trace with a mid-run fault |
//! | [`heap`] | Managed-heap GC on tiered memory (`cxl-heap`): promotion storms vs storm-aware promotion and generational segregation |
//! | [`calib`] | ROADMAP item 5: calibration & validation — fit the model to every registered measurement set (`cxl-calib`), gate on residual tolerances |

pub mod autotune;
pub mod balancer;
pub mod calib;
pub mod colocation;
pub mod cost;
pub mod error;
pub mod faults;
pub mod fleet;
pub mod heap;
pub mod keydb;
pub mod latency;
pub mod llm;
pub mod pool;
pub mod processors;
pub mod replication;
pub mod serve;
pub mod slo;
pub mod spark;
pub mod vm;
