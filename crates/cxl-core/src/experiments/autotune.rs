//! Online auto-tuning: the `cxl-ctl` control plane versus every static
//! configuration on a phased trace.
//!
//! The paper's sweeps pick the best *static* configuration per workload
//! (interleave ratio in §4.2, promotion rate in §4.4, pool provisioning
//! in §5). This experiment closes the loop online and asks the question
//! the sweeps cannot: when the workload changes phase mid-run, can a
//! feedback controller riding the live system beat every static choice?
//!
//! Two plants, both driven by the same [`cxl_ctl::Controller`] hill
//! climber:
//!
//! * **KV plant** — a flash-backed KeyDB store on the paper testbed,
//!   running a phased YCSB trace (C read-only → A update-heavy →
//!   D insert/growth, the last phase twice as long), with the fixed
//!   expander dying at the phase-3 boundary so the insert-growth phase
//!   runs entirely on degraded capacity. The controller tunes a pool-lease knob that grows or
//!   shrinks a lease-backed expander through `cxl-pool` grants and the
//!   rate-limited evacuation path, plus the promotion rate limit. The objective is throughput minus a
//!   per-slab lease cost, so holding capacity "just in case" is not
//!   free — exactly the pooling economics of §5.
//! * **LLM plant** — the §4.5 serving model under a thread ramp that
//!   rises and falls (48 → 84 → 96 → 48). The controller walks the
//!   placement ladder (MMEM, 3:1 … 1:3); DRAM-heavy placements win at
//!   low thread counts but collapse one by one as DRAM bandwidth
//!   saturates (MMEM ≥ 60T, 3:1 ≥ 72T, 2:1 ≥ 96T), and the final
//!   descent forces the climber to walk back up the ladder — so no
//!   static placement wins every stage.
//!
//! The adaptive cells run as periodic ticks on the `cxl-sim` engine
//! ([`cxl_ctl::run_on_engine`]) with the fault scheduled between two
//! ticks; the static cells run the identical tick grid in a plain loop
//! with the identical fault boundary. Every cell goes through
//! [`Runner::map_seeded`], so the whole study is bit-identical for any
//! `--jobs`.

use serde::Serialize;

use cxl_ctl::{
    run_on_engine, Controller, ControllerConfig, CtlError, KnobSpec, Plant, SignalPlane,
};
use cxl_fault::FaultKind;
use cxl_kv::{KvConfig, KvStore};
use cxl_llm::{LlmCluster, LlmConfig, LlmPlacement};
use cxl_pool::{HostId, PoolManager};
use cxl_sim::SimTime;
use cxl_stats::report::{fmt_f64, Table};
use cxl_tier::{AllocPolicy, HotPageConfig, MigrationMode, TierConfig};
use cxl_topology::{NodeId, SncMode, Topology};
use cxl_ycsb::Workload;

use crate::runner::Runner;

/// SNC-disabled paper testbed: 0,1 = DRAM sockets; 2,3 = CXL on s0.
const DRAM0: NodeId = NodeId(0);
/// The fixed expander that dies mid-run.
const CXL_FIXED: NodeId = NodeId(2);
/// The lease-backed expander whose capacity the pool knob controls.
const CXL_LEASED: NodeId = NodeId(3);
/// The single KV host on the pool.
const HOST: HostId = HostId(0);

/// Promotion-rate ladder, MiB/s.
const PROMO_MIB: [f64; 4] = [8.0, 32.0, 128.0, 512.0];
/// Lease ladder, slabs (one slab = 1/8 of the dataset): none, or the
/// full four-slab entitlement. Binary on purpose — the §5 economics
/// question is whether leasing pays at all at the going rate, and a
/// single committed probe crosses the whole capacity gap inside one
/// recovery window instead of paying a full probe cycle per rung.
const LEASE_SLABS: [u64; 2] = [0, 4];
/// Total slabs in the shared pool.
const POOL_SLABS: u64 = 6;
/// LLM thread-ramp stages: rise to saturation, then fall back. Each
/// stage has a different best placement (MMEM, 2:1, 1:1, MMEM).
const LLM_STAGES: [usize; 4] = [48, 84, 96, 48];

/// Sizing knobs for the auto-tuning study.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct AutotuneParams {
    /// Records in the KV store (1 KiB each).
    pub record_count: u64,
    /// KV operations executed per control tick.
    pub ops_per_tick: u64,
    /// Control ticks per healthy workload phase; the capacity-pressure
    /// phase runs twice this long so re-convergence fits inside it.
    pub ticks_per_phase: u64,
    /// Acceptance window: mean of the last `window` ticks of a phase.
    pub window: usize,
    /// Lease cost, kops/s of objective per held slab. Makes capacity
    /// hoarding lose during healthy phases (§5 pooling economics).
    pub lease_cost_kops: f64,
    /// Control ticks per LLM thread-ramp stage.
    pub llm_ticks_per_stage: u64,
    /// Root seed.
    pub seed: u64,
}

impl Default for AutotuneParams {
    fn default() -> Self {
        Self {
            record_count: 100_000,
            ops_per_tick: 8_000,
            ticks_per_phase: 48,
            window: 8,
            lease_cost_kops: 35.0,
            llm_ticks_per_stage: 32,
            seed: 42,
        }
    }
}

impl AutotuneParams {
    /// A fast variant for tests.
    pub fn smoke() -> Self {
        Self {
            record_count: 30_000,
            ops_per_tick: 3_000,
            ticks_per_phase: 32,
            window: 4,
            llm_ticks_per_stage: 28,
            ..Default::default()
        }
    }

    /// Total KV control ticks: two healthy phases plus the doubled
    /// capacity-pressure phase.
    pub fn kv_ticks(&self) -> u64 {
        4 * self.ticks_per_phase
    }

    /// The tick after which the fixed expander dies: the phase-2/3
    /// boundary, so the capacity-pressure phase opens degraded.
    pub fn fault_tick(&self) -> u64 {
        2 * self.ticks_per_phase
    }
}

/// One configuration's run over the phased KV trace.
#[derive(Debug, Clone, Serialize)]
pub struct KvCell {
    /// Configuration label (`adaptive` or `static-p<rate>-l<slabs>`).
    pub label: String,
    /// True for the controller-driven cell.
    pub adaptive: bool,
    /// Objective per tick (kops minus lease cost), tick order.
    pub objectives: Vec<f64>,
    /// Mean objective over the last `window` ticks of each phase; the
    /// third window closes the doubled capacity-pressure phase, long
    /// after the expander death.
    pub phase_windows: [f64; 3],
    /// Sum of the objective over the whole trace.
    pub total: f64,
    /// Slabs held when the run ended.
    pub final_slabs: u64,
    /// Final settings, `knob=label` pairs (adaptive cell only).
    pub final_settings: String,
    /// Probes started (adaptive cell only).
    pub probes: u64,
    /// Probes committed.
    pub commits: u64,
    /// Probes rolled back (including emergencies).
    pub rollbacks: u64,
    /// Emergency (collapse) rollbacks.
    pub emergency_rollbacks: u64,
    /// Actuations the plant rejected (pool exhaustion etc.).
    pub rejected: u64,
    /// Guardrail invariant violations — must stay zero.
    pub violations: u64,
}

/// One placement's run over the LLM thread ramp.
#[derive(Debug, Clone, Serialize)]
pub struct LlmCell {
    /// Configuration label (`adaptive` or a static placement).
    pub label: String,
    /// True for the controller-driven cell.
    pub adaptive: bool,
    /// Serving rate per tick, ktokens/s, tick order.
    pub objectives: Vec<f64>,
    /// Mean serving rate over the last `window` ticks of each stage.
    pub stage_windows: Vec<f64>,
    /// Sum of the serving rate over the whole ramp.
    pub total: f64,
    /// Placement in force when the run ended.
    pub final_placement: String,
    /// Probes committed (adaptive cell only).
    pub commits: u64,
    /// Guardrail invariant violations — must stay zero.
    pub violations: u64,
}

/// The full study: adaptive-vs-static on both plants.
#[derive(Debug, Clone, Serialize)]
pub struct AutotuneStudy {
    /// KV cells, adaptive first.
    pub kv_cells: Vec<KvCell>,
    /// LLM cells, adaptive first.
    pub llm_cells: Vec<LlmCell>,
    /// Parameters used.
    pub params: AutotuneParams,
}

impl AutotuneStudy {
    /// The controller-driven KV cell.
    pub fn kv_adaptive(&self) -> &KvCell {
        self.kv_cells
            .iter()
            .find(|c| c.adaptive)
            .expect("adaptive kv cell")
    }

    /// The static KV cells.
    pub fn kv_statics(&self) -> Vec<&KvCell> {
        self.kv_cells.iter().filter(|c| !c.adaptive).collect()
    }

    /// Best static phase-window mean for phase `i` (0-based).
    pub fn kv_best_static_window(&self, i: usize) -> f64 {
        self.kv_statics()
            .iter()
            .map(|c| c.phase_windows[i])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Best static total over the whole trace.
    pub fn kv_best_static_total(&self) -> f64 {
        self.kv_statics()
            .iter()
            .map(|c| c.total)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The controller-driven LLM cell.
    pub fn llm_adaptive(&self) -> &LlmCell {
        self.llm_cells
            .iter()
            .find(|c| c.adaptive)
            .expect("adaptive llm cell")
    }

    /// The static LLM cells.
    pub fn llm_statics(&self) -> Vec<&LlmCell> {
        self.llm_cells.iter().filter(|c| !c.adaptive).collect()
    }

    /// Best static stage-window mean for ramp stage `i`.
    pub fn llm_best_static_window(&self, i: usize) -> f64 {
        self.llm_statics()
            .iter()
            .map(|c| c.stage_windows[i])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Best static LLM total over the whole ramp.
    pub fn llm_best_static_total(&self) -> f64 {
        self.llm_statics()
            .iter()
            .map(|c| c.total)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Guardrail violations summed over every cell — the CI gate.
    pub fn total_violations(&self) -> u64 {
        self.kv_cells.iter().map(|c| c.violations).sum::<u64>()
            + self.llm_cells.iter().map(|c| c.violations).sum::<u64>()
    }

    /// True when the adaptive KV cell's window mean is within `frac` of
    /// the best static in every phase (the convergence claim).
    pub fn kv_adaptive_within(&self, frac: f64) -> bool {
        let a = self.kv_adaptive();
        (0..3).all(|i| a.phase_windows[i] >= (1.0 - frac) * self.kv_best_static_window(i))
    }

    /// True when the adaptive LLM cell's window mean is within `frac`
    /// of the best static at every ramp stage.
    pub fn llm_adaptive_within(&self, frac: f64) -> bool {
        let a = self.llm_adaptive();
        (0..LLM_STAGES.len())
            .all(|i| a.stage_windows[i] >= (1.0 - frac) * self.llm_best_static_window(i))
    }

    /// Renders the KV half as a table.
    pub fn kv_table(&self) -> Table {
        let mut t = Table::new(
            "autotune_kv",
            "KeyDB phased trace (C -> A -> D + expander death): adaptive vs static",
            &[
                "config",
                "P1 window",
                "P2 window",
                "post-fault window",
                "total",
                "final slabs",
                "commits",
                "rollbacks",
                "rejected",
                "violations",
            ],
        );
        for c in &self.kv_cells {
            t.push_row(vec![
                c.label.clone(),
                fmt_f64(c.phase_windows[0]),
                fmt_f64(c.phase_windows[1]),
                fmt_f64(c.phase_windows[2]),
                fmt_f64(c.total),
                c.final_slabs.to_string(),
                c.commits.to_string(),
                c.rollbacks.to_string(),
                c.rejected.to_string(),
                c.violations.to_string(),
            ]);
        }
        t
    }

    /// Renders the LLM half as a table.
    pub fn llm_table(&self) -> Table {
        let mut t = Table::new(
            "autotune_llm",
            "LLM serving thread ramp (48 -> 84 -> 96 -> 48): adaptive vs static placements",
            &[
                "config",
                "48T window",
                "84T window",
                "96T window",
                "48T' window",
                "total",
                "final placement",
                "commits",
            ],
        );
        for c in &self.llm_cells {
            t.push_row(vec![
                c.label.clone(),
                fmt_f64(c.stage_windows[0]),
                fmt_f64(c.stage_windows[1]),
                fmt_f64(c.stage_windows[2]),
                fmt_f64(c.stage_windows[3]),
                fmt_f64(c.total),
                c.final_placement.clone(),
                c.commits.to_string(),
            ]);
        }
        t
    }
}

/// Mean of `objs[end - window .. end]` (`end` is a 1-based tick count).
fn window_mean(objs: &[f64], end: u64, window: usize) -> f64 {
    let end = end as usize;
    let start = end.saturating_sub(window);
    let slice = &objs[start..end];
    slice.iter().sum::<f64>() / slice.len() as f64
}

// ---------------------------------------------------------------------
// KV plant
// ---------------------------------------------------------------------

/// The flash-backed KeyDB store plus the pool lease it draws on.
struct KvPlant {
    store: KvStore,
    /// Current (possibly degraded) topology.
    topo: Topology,
    pool: PoolManager,
    slab_bytes: u64,
    held_slabs: u64,
    ticks_done: u64,
    ticks_per_phase: u64,
    ops_per_tick: u64,
    lease_cost_kops: f64,
}

impl KvPlant {
    fn new(params: &AutotuneParams, seed: u64) -> Self {
        let topo = Topology::paper_testbed(SncMode::Disabled);
        let dataset_bytes = params.record_count * 1024;
        let mut tc = TierConfig::bind(vec![DRAM0]);
        tc.policy = AllocPolicy::interleave(vec![DRAM0], vec![CXL_FIXED, CXL_LEASED], 1, 1);
        // DRAM + the fixed expander barely cover the initial dataset;
        // workload-D growth and any evacuation must go to the leased
        // expander or spill to SSD.
        tc.capacity_override = vec![
            (DRAM0, dataset_bytes * 9 / 20),
            (NodeId(1), 0),
            (CXL_FIXED, dataset_bytes * 5 / 8),
            (CXL_LEASED, 0),
        ];
        tc.migration = MigrationMode::HotPageSelection(HotPageConfig {
            promote_rate_limit_bytes_per_sec: PROMO_MIB[1] * 1024.0 * 1024.0,
            ..Default::default()
        });
        let kv_cfg = KvConfig {
            record_count: params.record_count,
            seed,
            ..Default::default()
        };
        let store = KvStore::new(&topo, tc, kv_cfg, true);
        // One slab = 1/8 of the dataset, rounded to whole pages so a
        // grown node's page capacity matches the lease exactly.
        let page = store.tier().page_size();
        let slab_bytes = ((dataset_bytes / 8) / page).max(1) * page;
        Self {
            store,
            topo,
            pool: PoolManager::new(POOL_SLABS, 1, 0.25),
            slab_bytes,
            held_slabs: 0,
            ticks_done: 0,
            ticks_per_phase: params.ticks_per_phase,
            ops_per_tick: params.ops_per_tick,
            lease_cost_kops: params.lease_cost_kops,
        }
    }

    /// Moves the lease to `target` slabs: grows through a pool grant
    /// (all-or-nothing — a partial grant is returned and the action
    /// rejected), shrinks through the rate-limited evacuation path.
    fn set_lease(&mut self, target: u64) -> Result<(), CtlError> {
        let cur = self.held_slabs;
        if target == cur {
            return Ok(());
        }
        if target > cur {
            let want = target - cur;
            let resp = self.pool.request(HOST, want, self.store.now());
            let granted = resp.outcome.granted_now();
            if granted < want {
                self.pool.cancel_queued(HOST);
                if granted > 0 {
                    self.pool.release(HOST, granted, self.store.now());
                }
                return Err(CtlError::Rejected(format!(
                    "pool granted {granted}/{want} slabs"
                )));
            }
            if let Err(e) = self
                .store
                .grow_expander(CXL_LEASED, target * self.slab_bytes)
            {
                self.pool.release(HOST, want, self.store.now());
                return Err(CtlError::Rejected(e.to_string()));
            }
        } else {
            self.store
                .shrink_expander(&self.topo, CXL_LEASED, target * self.slab_bytes)
                .map_err(|e| CtlError::Rejected(e.to_string()))?;
            self.pool.release(HOST, cur - target, self.store.now());
        }
        self.held_slabs = target;
        Ok(())
    }

    /// Runs one control interval of the phased trace and returns the
    /// objective: delivered kops minus the lease bill.
    fn tick(&mut self) -> f64 {
        self.ticks_done += 1;
        let phase = (self.ticks_done - 1) / self.ticks_per_phase;
        let workload = match phase {
            0 => Workload::C,
            1 => Workload::A,
            _ => Workload::D,
        };
        let res = self.store.run(workload, self.ops_per_tick);
        res.kops() - self.lease_cost_kops * self.held_slabs as f64
    }

    /// Kills the fixed expander: the fault lands on the topology, the
    /// store fences and drains the node under the rate limiter.
    fn inject_fault(&mut self) {
        FaultKind::ExpanderOffline { node: CXL_FIXED }
            .apply(&mut self.topo)
            .expect("offline fault is valid on the paper testbed");
        self.store
            .fail_expander(&self.topo, CXL_FIXED)
            .expect("evacuation survives with flash on");
    }
}

impl Plant for KvPlant {
    fn apply(&mut self, knob: usize, setting: usize) -> Result<(), CtlError> {
        match knob {
            0 => self.set_lease(LEASE_SLABS[setting]),
            1 => self
                .store
                .set_promote_rate(PROMO_MIB[setting] * 1024.0 * 1024.0)
                .map_err(|e| CtlError::Rejected(e.to_string())),
            k => Err(CtlError::UnknownKnob(k)),
        }
    }

    fn check_invariants(&self) -> Result<(), String> {
        let page = self.store.tier().page_size();
        let (used, cap) = self.store.tier().node_usage(CXL_LEASED);
        let expect_cap = self.held_slabs * self.slab_bytes / page;
        if cap != expect_cap {
            return Err(format!(
                "leased node capacity {cap} pages != {expect_cap} for {} slabs",
                self.held_slabs
            ));
        }
        if used > cap {
            return Err(format!("leased node holds {used} pages > capacity {cap}"));
        }
        if self.pool.granted_slabs(HOST) != self.held_slabs {
            return Err(format!(
                "pool grant {} != held lease {}",
                self.pool.granted_slabs(HOST),
                self.held_slabs
            ));
        }
        if self.pool.used_slabs() > self.pool.total_slabs() {
            return Err("pool oversubscribed".to_string());
        }
        Ok(())
    }
}

// The lease knob comes first: the round-robin restarts at knob 0 after
// a disturbance, so capacity is the first thing re-probed post-fault.
fn kv_knobs() -> Vec<KnobSpec> {
    vec![
        KnobSpec::new(
            "lease_slabs",
            LEASE_SLABS.iter().map(|&s| (format!("{s}slabs"), s as f64)),
            2,
        ),
        KnobSpec::new(
            "promote_rate",
            PROMO_MIB
                .iter()
                .map(|&m| (format!("{m:.0}MiB/s"), m * 1024.0 * 1024.0)),
            4,
        ),
    ]
}

fn kv_controller_config() -> ControllerConfig {
    // Settle 12 / measure 8: a lease grow pays its bill instantly but
    // earns through cache-in and insert placement over the following
    // dozens of ticks, so measurement must start after that transient
    // or every capacity probe reads as a regression; and the post-fault
    // objective has deep one-tick cache-in stalls, so the window must
    // be wide enough that one stall cannot veto a paying probe.
    ControllerConfig {
        warmup_ticks: 3,
        settle_ticks: 12,
        measure_ticks: 8,
        hysteresis: 0.02,
        // A grow probe drops the *net* objective by the full lease bill
        // the instant it starts, before any throughput gain lands — so
        // the crash floor must sit well below baseline-minus-bill, or
        // the emergency path reads the bill as a collapse. 0.85 keeps
        // it armed for true collapses (near-zero throughput) only.
        crash_tolerance: 0.85,
        min_action_gap_ticks: 1,
        shift_tolerance: 0.12,
        ewma_alpha: 0.4,
        history: 64,
        // A lease grow's earnings arrive over a Zipf cache-warm-up
        // horizon (~50 ticks) no affordable settle window covers; the
        // extension rule bridges it, one window at a time, for as long
        // as the window keeps showing the transient arriving.
        max_probe_extensions: 4,
    }
}

fn make_kv_cell(
    label: String,
    adaptive: bool,
    objectives: Vec<f64>,
    plant: &KvPlant,
    ctl: Option<&Controller>,
    params: &AutotuneParams,
) -> KvCell {
    let tpp = params.ticks_per_phase;
    let phase_windows = [
        window_mean(&objectives, tpp, params.window),
        window_mean(&objectives, 2 * tpp, params.window),
        window_mean(&objectives, params.kv_ticks(), params.window),
    ];
    let total = objectives.iter().sum();
    KvCell {
        label,
        adaptive,
        phase_windows,
        total,
        objectives,
        final_slabs: plant.held_slabs,
        final_settings: ctl.map(|c| c.describe_settings()).unwrap_or_default(),
        probes: ctl.map_or(0, |c| c.probes()),
        commits: ctl.map_or(0, |c| c.commits()),
        rollbacks: ctl.map_or(0, |c| c.rollbacks()),
        emergency_rollbacks: ctl.map_or(0, |c| c.emergency_rollbacks()),
        rejected: ctl.map_or(0, |c| c.guardrails().actions_rejected),
        violations: ctl.map_or(0, |c| c.guardrails().violations),
    }
}

fn run_kv_adaptive(params: AutotuneParams, seed: u64) -> KvCell {
    let plant = KvPlant::new(&params, seed);
    let ctl = Controller::new(kv_controller_config(), kv_knobs(), vec![0, 1])
        .expect("kv controller config is valid");
    let period = SimTime::from_ms(1);
    // The fault fires between tick `fault_tick` and the next one.
    let fault_at = SimTime::from_us(params.fault_tick() * 1_000 + 500);
    let run = run_on_engine(
        ctl,
        plant,
        SignalPlane::new(128, 0.4),
        period,
        SimTime::from_ms(params.kv_ticks()),
        |p: &mut KvPlant, _now| p.tick(),
        move |e| {
            e.schedule_at(fault_at, |e| {
                let s = e.state_mut();
                s.plant.inject_fault();
                s.controller.notify_disturbance();
            });
        },
    );
    let objectives: Vec<f64> = run.trace.iter().map(|t| t.objective).collect();
    make_kv_cell(
        "adaptive".to_string(),
        true,
        objectives,
        &run.plant,
        Some(&run.controller),
        &params,
    )
}

fn run_kv_static(
    label: String,
    promo_idx: usize,
    lease_idx: usize,
    params: AutotuneParams,
    seed: u64,
) -> KvCell {
    let mut plant = KvPlant::new(&params, seed);
    plant.apply(0, lease_idx).expect("static lease applies");
    plant
        .apply(1, promo_idx)
        .expect("static promote rate applies");
    let mut objectives = Vec::with_capacity(params.kv_ticks() as usize);
    for t in 1..=params.kv_ticks() {
        objectives.push(plant.tick());
        if t == params.fault_tick() {
            plant.inject_fault();
        }
    }
    make_kv_cell(label, false, objectives, &plant, None, &params)
}

// ---------------------------------------------------------------------
// LLM plant
// ---------------------------------------------------------------------

/// The §4.5 serving model with a routeable placement knob.
struct LlmPlant {
    cluster: LlmCluster,
    ladder: Vec<LlmPlacement>,
    setting: usize,
    ticks_done: u64,
    ticks_per_stage: u64,
}

impl LlmPlant {
    fn new(params: &AutotuneParams) -> Self {
        Self {
            cluster: LlmCluster::new(LlmConfig::default()),
            ladder: llm_ladder(),
            setting: 0,
            ticks_done: 0,
            ticks_per_stage: params.llm_ticks_per_stage,
        }
    }

    /// One control interval: serve at the current ramp stage's thread
    /// count and report ktokens/s.
    fn tick(&mut self) -> f64 {
        self.ticks_done += 1;
        let stage = ((self.ticks_done - 1) / self.ticks_per_stage) as usize;
        let threads = LLM_STAGES[stage.min(LLM_STAGES.len() - 1)];
        self.cluster
            .serving_rate(self.ladder[self.setting], threads)
            .tokens_per_sec
            / 1e3
    }
}

impl Plant for LlmPlant {
    fn apply(&mut self, _knob: usize, setting: usize) -> Result<(), CtlError> {
        // Placement is a routing decision; swapping it is always legal.
        self.setting = setting;
        Ok(())
    }
}

/// Placement ladder ordered by falling DRAM fraction.
fn llm_ladder() -> Vec<LlmPlacement> {
    vec![
        LlmPlacement::MmemOnly,
        LlmPlacement::Interleave { n: 3, m: 1 },
        LlmPlacement::Interleave { n: 2, m: 1 },
        LlmPlacement::Interleave { n: 1, m: 1 },
        LlmPlacement::Interleave { n: 1, m: 2 },
        LlmPlacement::Interleave { n: 1, m: 3 },
    ]
}

fn llm_controller_config() -> ControllerConfig {
    // The serving model is analytic, so one measure tick is exact and
    // hysteresis can sit near zero. A tight action gap plus the
    // quiescence machinery (probe directions close once known-worse,
    // reopened by shift detection) means the climber sprints to the
    // stage optimum and then pays no probe overhead until the ramp
    // moves the objective by more than `shift_tolerance`.
    ControllerConfig {
        warmup_ticks: 2,
        settle_ticks: 0,
        measure_ticks: 1,
        hysteresis: 0.01,
        crash_tolerance: 0.6,
        min_action_gap_ticks: 1,
        shift_tolerance: 0.05,
        ewma_alpha: 0.5,
        history: 64,
        max_probe_extensions: 0,
    }
}

fn llm_ticks(params: &AutotuneParams) -> u64 {
    LLM_STAGES.len() as u64 * params.llm_ticks_per_stage
}

fn make_llm_cell(
    label: String,
    adaptive: bool,
    objectives: Vec<f64>,
    plant: &LlmPlant,
    ctl: Option<&Controller>,
    params: &AutotuneParams,
) -> LlmCell {
    let tps = params.llm_ticks_per_stage;
    let window = params.window.min(tps as usize);
    let stage_windows = (1..=LLM_STAGES.len() as u64)
        .map(|s| window_mean(&objectives, s * tps, window))
        .collect();
    let total = objectives.iter().sum();
    LlmCell {
        label,
        adaptive,
        stage_windows,
        total,
        objectives,
        final_placement: plant.ladder[plant.setting].label(),
        commits: ctl.map_or(0, |c| c.commits()),
        violations: ctl.map_or(0, |c| c.guardrails().violations),
    }
}

fn run_llm_adaptive(params: AutotuneParams) -> LlmCell {
    let plant = LlmPlant::new(&params);
    let knob = KnobSpec::new(
        "placement",
        llm_ladder().iter().map(|p| (p.label(), p.dram_fraction())),
        0,
    );
    let ctl = Controller::new(llm_controller_config(), vec![knob], vec![0])
        .expect("llm controller config is valid");
    let run = run_on_engine(
        ctl,
        plant,
        SignalPlane::new(128, 0.5),
        SimTime::from_ms(1),
        SimTime::from_ms(llm_ticks(&params)),
        |p: &mut LlmPlant, _now| p.tick(),
        |_| {},
    );
    let objectives: Vec<f64> = run.trace.iter().map(|t| t.objective).collect();
    make_llm_cell(
        "adaptive".to_string(),
        true,
        objectives,
        &run.plant,
        Some(&run.controller),
        &params,
    )
}

fn run_llm_static(setting: usize, params: AutotuneParams) -> LlmCell {
    let mut plant = LlmPlant::new(&params);
    plant.setting = setting;
    let objectives: Vec<f64> = (0..llm_ticks(&params)).map(|_| plant.tick()).collect();
    let label = format!("static-{}", plant.ladder[setting].label());
    make_llm_cell(label, false, objectives, &plant, None, &params)
}

// ---------------------------------------------------------------------
// Study assembly
// ---------------------------------------------------------------------

/// One cell of the combined grid (KV and LLM cells share the runner).
#[derive(Clone)]
enum Job {
    KvAdaptive,
    KvStatic {
        label: String,
        promo_idx: usize,
        lease_idx: usize,
    },
    LlmAdaptive,
    LlmStatic {
        setting: usize,
    },
}

enum CellResult {
    Kv(KvCell),
    Llm(LlmCell),
}

/// The static KV grid: promotion-rate endpoints crossed with lease
/// sizes, covering "never lease", "modest lease", "max lease".
fn kv_static_grid() -> Vec<(String, usize, usize)> {
    let mut grid = Vec::new();
    for &promo_idx in &[1usize, 3] {
        for &lease_idx in &[0usize, 1] {
            grid.push((
                format!(
                    "static-p{:.0}M-l{}",
                    PROMO_MIB[promo_idx], LEASE_SLABS[lease_idx]
                ),
                promo_idx,
                lease_idx,
            ));
        }
    }
    grid
}

/// Runs the study on the environment-configured runner.
pub fn run(params: AutotuneParams) -> AutotuneStudy {
    run_with(&Runner::from_env(), params)
}

/// Runs the study on an explicit runner. Every cell is seeded from the
/// root seed and its label, so the study is bit-identical for any
/// worker count.
pub fn run_with(runner: &Runner, params: AutotuneParams) -> AutotuneStudy {
    let mut grid: Vec<(String, Job)> = vec![("autotune/kv/adaptive".to_string(), Job::KvAdaptive)];
    for (label, promo_idx, lease_idx) in kv_static_grid() {
        grid.push((
            format!("autotune/kv/{label}"),
            Job::KvStatic {
                label,
                promo_idx,
                lease_idx,
            },
        ));
    }
    grid.push(("autotune/llm/adaptive".to_string(), Job::LlmAdaptive));
    for setting in 0..llm_ladder().len() {
        grid.push((
            format!("autotune/llm/static-{setting}"),
            Job::LlmStatic { setting },
        ));
    }

    let results = runner.map_seeded(params.seed, grid, move |job, seed| match job {
        Job::KvAdaptive => CellResult::Kv(run_kv_adaptive(params, seed)),
        Job::KvStatic {
            label,
            promo_idx,
            lease_idx,
        } => CellResult::Kv(run_kv_static(label, promo_idx, lease_idx, params, seed)),
        // The LLM model is analytic: no seed enters it.
        Job::LlmAdaptive => CellResult::Llm(run_llm_adaptive(params)),
        Job::LlmStatic { setting } => CellResult::Llm(run_llm_static(setting, params)),
    });

    let mut kv_cells = Vec::new();
    let mut llm_cells = Vec::new();
    for r in results {
        match r {
            CellResult::Kv(c) => kv_cells.push(c),
            CellResult::Llm(c) => llm_cells.push(c),
        }
    }
    AutotuneStudy {
        kv_cells,
        llm_cells,
        params,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn llm_adaptive_beats_every_static_placement() {
        let p = AutotuneParams::smoke();
        let adaptive = run_llm_adaptive(p);
        assert_eq!(adaptive.violations, 0);
        assert!(adaptive.commits >= 1, "the ramp forces at least one move");
        for setting in 0..llm_ladder().len() {
            let s = run_llm_static(setting, p);
            assert!(
                adaptive.total > s.total,
                "adaptive {} must beat {} ({})",
                adaptive.total,
                s.label,
                s.total
            );
        }
    }

    #[test]
    fn kv_lease_knob_is_transactional_against_the_pool() {
        let p = AutotuneParams::smoke();
        let mut plant = KvPlant::new(&p, 7);
        // The pool holds 6 slabs; the full entitlement fits.
        plant.apply(0, 1).expect("lease of 4 slabs fits the pool");
        assert_eq!(plant.held_slabs, 4);
        plant
            .check_invariants()
            .expect("invariants hold at 4 slabs");
        // Shrink drains the leased node through evacuation and returns
        // the slabs to the pool.
        plant.apply(0, 0).expect("shrink back to no lease");
        assert_eq!(plant.held_slabs, 0);
        assert_eq!(plant.pool.granted_slabs(HOST), 0);
        plant
            .check_invariants()
            .expect("invariants hold at 0 slabs");
    }

    #[test]
    fn kv_adaptive_survives_the_fault_and_grows_the_lease() {
        let p = AutotuneParams::smoke();
        let c = run_kv_adaptive(p, 7);
        assert_eq!(c.violations, 0, "no guardrail violations");
        assert_eq!(c.objectives.len() as u64, p.kv_ticks());
        assert!(
            c.objectives.iter().all(|o| o.is_finite()),
            "store keeps serving through the fault"
        );
        assert!(
            c.final_slabs > 0,
            "post-fault capacity pressure must make the controller lease"
        );
    }

    #[test]
    fn study_is_deterministic_across_worker_counts() {
        let p = AutotuneParams::smoke();
        let a = run_with(&Runner::new(1), p);
        let b = run_with(&Runner::new(8), p);
        for (x, y) in a.kv_cells.iter().zip(&b.kv_cells) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.objectives, y.objectives, "kv {} diverged", x.label);
            assert_eq!(x.final_slabs, y.final_slabs);
            assert_eq!(x.commits, y.commits);
        }
        for (x, y) in a.llm_cells.iter().zip(&b.llm_cells) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.objectives, y.objectives, "llm {} diverged", x.label);
        }
    }
}
