//! Fig. 5: KeyDB under YCSB across the Table 1 configurations (§4.1).

use serde::Serialize;

use cxl_kv::{KvConfig, KvStore, MemProfile};
use cxl_stats::report::{Figure, Series, Table};
use cxl_stats::Histogram;
use cxl_topology::{SncMode, Topology};
use cxl_ycsb::Workload;

use crate::config::CapacityConfig;
use crate::runner::Runner;

/// Sizing knobs for the Fig. 5 runs.
///
/// The paper loads 512 GB; the simulation scales the dataset down (the
/// placement/caching dynamics are size-invariant at fixed skew) and runs
/// enough operations for migration to converge.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Fig5Params {
    /// Records in the store (1 KiB each).
    pub record_count: u64,
    /// Measured operations per workload.
    pub ops: u64,
    /// Warm-up operations before measuring (hot-set migration).
    pub warmup_ops: u64,
    /// Root seed.
    pub seed: u64,
}

impl Default for Fig5Params {
    fn default() -> Self {
        Self {
            record_count: 200_000,
            ops: 200_000,
            warmup_ops: 200_000,
            seed: 42,
        }
    }
}

impl Fig5Params {
    /// A fast variant for tests. The warm-up is still long enough for
    /// Hot-Promote's migration to converge.
    pub fn smoke() -> Self {
        Self {
            record_count: 50_000,
            ops: 40_000,
            warmup_ops: 150_000,
            seed: 42,
        }
    }
}

/// One cell of Fig. 5(a) plus its latency histograms.
#[derive(Debug, Clone, Serialize)]
pub struct KeydbCell {
    /// Configuration label.
    pub config: &'static str,
    /// Workload label.
    pub workload: &'static str,
    /// Throughput, ops/s.
    pub throughput_ops: f64,
    /// Full sojourn-latency histogram (ns).
    pub latency: Histogram,
    /// Read-only latency histogram (ns).
    pub read_latency: Histogram,
    /// SSD hits during measurement.
    pub ssd_hits: u64,
}

/// The Fig. 5 study.
#[derive(Debug, Clone, Serialize)]
pub struct KeydbStudy {
    /// All `(config × workload)` cells.
    pub cells: Vec<KeydbCell>,
    /// Parameters used.
    pub params: Fig5Params,
}

impl KeydbStudy {
    /// Throughput of one cell, ops/s.
    pub fn throughput(&self, config: CapacityConfig, workload: Workload) -> f64 {
        self.cell(config, workload).throughput_ops
    }

    /// Looks up a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell was not run.
    pub fn cell(&self, config: CapacityConfig, workload: Workload) -> &KeydbCell {
        self.cells
            .iter()
            .find(|c| c.config == config.label() && c.workload == workload.label())
            .expect("cell not present")
    }

    /// Fig. 5(a): throughput bars (one series per workload).
    pub fn fig5a(&self) -> Figure {
        let mut fig = Figure::new(
            "fig5a",
            "KeyDB YCSB throughput across configurations",
            "configuration index (Table 1 order)",
            "throughput (kops/s)",
        );
        for w in Workload::all() {
            let mut s = Series::new(w.label());
            for (i, c) in CapacityConfig::all().iter().enumerate() {
                s.push(i as f64, self.throughput(*c, w) / 1e3);
            }
            fig.push(s);
        }
        fig
    }

    /// Fig. 5(b): YCSB-A tail latencies per configuration.
    pub fn fig5b(&self) -> Table {
        let mut t = Table::new(
            "fig5b",
            "YCSB-A tail latency (us)",
            &["config", "p50", "p95", "p99", "p99.9"],
        );
        for c in CapacityConfig::all() {
            let cell = self.cell(c, Workload::A);
            let (p50, p95, p99, p999) =
                cell.latency.try_tail().expect("fig5 cells record every op");
            t.push_row(vec![
                c.label().to_string(),
                format!("{:.1}", p50 as f64 / 1e3),
                format!("{:.1}", p95 as f64 / 1e3),
                format!("{:.1}", p99 as f64 / 1e3),
                format!("{:.1}", p999 as f64 / 1e3),
            ]);
        }
        t
    }

    /// Fig. 5(c): YCSB-C latency CDFs per configuration.
    pub fn fig5c(&self) -> Figure {
        let mut fig = Figure::new(
            "fig5c",
            "YCSB-C latency CDF",
            "latency (us)",
            "cumulative fraction",
        );
        for c in CapacityConfig::all() {
            let cell = self.cell(c, Workload::C);
            let mut s = Series::new(c.label());
            for (v, f) in cell.read_latency.cdf() {
                s.push(v as f64 / 1e3, f);
            }
            fig.push(s);
        }
        fig
    }
}

fn build_store(config: CapacityConfig, params: Fig5Params) -> KvStore {
    let topo = Topology::paper_testbed(SncMode::Disabled);
    let kv = KvConfig {
        record_count: params.record_count,
        value_size: 1024,
        server_threads: 7,
        client_concurrency: 28,
        profile: MemProfile::capacity_strained(),
        epoch_ops: 2_000,
        eviction: cxl_kv::EvictionPolicy::Clock,
        seed: params.seed,
    };
    let dataset = params.record_count * 1024;
    let (tier, flash) = config.tier_config(&topo, dataset);
    KvStore::new(&topo, tier, kv, flash)
}

/// Runs one cell.
pub fn run_cell(config: CapacityConfig, workload: Workload, params: Fig5Params) -> KeydbCell {
    let mut store = build_store(config, params);
    if params.warmup_ops > 0 {
        store.run(workload, params.warmup_ops);
    }
    let r = store.run(workload, params.ops);
    KeydbCell {
        config: config.label(),
        workload: workload.label(),
        throughput_ops: r.throughput_ops,
        latency: r.latency,
        read_latency: r.read_latency,
        ssd_hits: r.ssd_hits,
    }
}

/// Runs the full Fig. 5 grid on the environment-configured runner.
pub fn run(params: Fig5Params) -> KeydbStudy {
    run_with(&Runner::from_env(), params)
}

/// Runs the full Fig. 5 grid on an explicit runner.
///
/// Each cell's store is seeded from the root seed and the workload
/// label: configurations stay paired on one workload trace (the paper
/// runs the same YCSB stream against every Table 1 configuration), and
/// the stream is a pure function of the label, so the output is
/// bit-identical for any worker count.
pub fn run_with(runner: &Runner, params: Fig5Params) -> KeydbStudy {
    let mut grid = Vec::new();
    for config in CapacityConfig::all() {
        for workload in Workload::all() {
            grid.push((format!("fig5/{}", workload.label()), (config, workload)));
        }
    }
    let cells = runner.map_seeded(params.seed, grid, |(config, workload), seed| {
        run_cell(config, workload, Fig5Params { seed, ..params })
    });
    KeydbStudy { cells, params }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cell_runs() {
        let cell = run_cell(CapacityConfig::Mmem, Workload::C, Fig5Params::smoke());
        assert!(cell.throughput_ops > 0.0);
        assert_eq!(cell.latency.count(), Fig5Params::smoke().ops);
        assert_eq!(cell.ssd_hits, 0);
    }

    #[test]
    fn ordering_holds_on_workload_c_smoke() {
        let p = Fig5Params::smoke();
        let mmem = run_cell(CapacityConfig::Mmem, Workload::C, p).throughput_ops;
        let il = run_cell(CapacityConfig::Interleave11, Workload::C, p).throughput_ops;
        let ssd = run_cell(CapacityConfig::MmemSsd04, Workload::C, p).throughput_ops;
        let hp = run_cell(CapacityConfig::HotPromote, Workload::C, p).throughput_ops;
        assert!(mmem > il, "MMEM {mmem} vs 1:1 {il}");
        assert!(il > ssd, "1:1 {il} vs SSD {ssd}");
        assert!(hp > il, "Hot-Promote {hp} vs 1:1 {il}");
    }

    #[test]
    fn figures_render() {
        // Tiny grid to exercise the report paths.
        let p = Fig5Params {
            record_count: 20_000,
            ops: 8_000,
            warmup_ops: 0,
            seed: 1,
        };
        let study = run(p);
        assert_eq!(study.cells.len(), 28);
        let a = study.fig5a();
        assert_eq!(a.series.len(), 4);
        assert_eq!(a.series[0].points.len(), 7);
        let b = study.fig5b();
        assert_eq!(b.rows.len(), 7);
        let c = study.fig5c();
        assert_eq!(c.series.len(), 7);
        assert!(!c.render().is_empty());
    }
}
