//! §5.3 operationalized: bandwidth-aware tiering vs. capacity-only
//! tiering under a bandwidth-bound workload.
//!
//! The paper's closing insight in §5.3: existing tiered-memory policies
//! migrate hot data from CXL into MMEM whenever capacity allows, even
//! when MMEM bandwidth is already contended — pushing utilization past
//! the knee, spiking latency, and slowing the workload down. "The
//! definition of tiered memory requires rethinking."
//!
//! This experiment builds that exact scenario on the real substrates: a
//! streaming, mildly skewed workload over a [`TierManager`] heap, priced
//! by the `cxl-perf` flow solver every epoch. Four policies compete:
//!
//! * `MMEM` — everything in DRAM (bind).
//! * `1:1` — static interleave.
//! * `Hot-Promote` — hot-page selection; promotes the hot set into DRAM
//!   regardless of bandwidth (the §5.3 pathology).
//! * `BW-Aware` — the paper's recommended policy: hot-page selection
//!   that suspends promotion and sheds load to CXL when DRAM bandwidth
//!   utilization crosses a watermark ([`cxl_tier::BandwidthAwareConfig`]).

use serde::Serialize;

use cxl_perf::{FlowSpec, MemSystem, ResourceKind};
use cxl_sim::SimTime;
use cxl_stats::dist::{KeyChooser, Zipfian};
use cxl_stats::report::{Series, Table};
use cxl_stats::rng::stream_rng;
use cxl_tier::{
    AllocPolicy, BandwidthAwareConfig, HotPageConfig, Location, MigrationMode, NumaBalancingConfig,
    Rw, TierConfig, TierManager,
};
use cxl_topology::{MemoryTier, NodeId, Topology};

use crate::runner::Runner;

/// The policies compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum BalancerPolicy {
    /// Bind to DRAM.
    MmemOnly,
    /// Static 1:1 interleave.
    Interleave11,
    /// Hot-page selection (capacity-only tiering).
    HotPromote,
    /// Bandwidth-aware tiering (§5.3 recommendation).
    BandwidthAware,
}

impl BalancerPolicy {
    /// All policies in report order.
    pub fn all() -> [BalancerPolicy; 4] {
        [
            BalancerPolicy::MmemOnly,
            BalancerPolicy::Interleave11,
            BalancerPolicy::HotPromote,
            BalancerPolicy::BandwidthAware,
        ]
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            BalancerPolicy::MmemOnly => "MMEM",
            BalancerPolicy::Interleave11 => "1:1",
            BalancerPolicy::HotPromote => "Hot-Promote",
            BalancerPolicy::BandwidthAware => "BW-Aware",
        }
    }
}

/// Experiment sizing.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BalancerParams {
    /// Pages in the streaming heap.
    pub pages: u64,
    /// Page touches sampled per epoch.
    pub touches_per_epoch: usize,
    /// Virtual epoch length.
    pub epoch: SimTime,
    /// Warm-up epochs (migration convergence).
    pub warmup_epochs: usize,
    /// Measured epochs.
    pub measure_epochs: usize,
    /// Zipf skew over pages (mild: streaming working sets are flat-ish).
    pub theta: f64,
    /// Root seed.
    pub seed: u64,
}

impl Default for BalancerParams {
    fn default() -> Self {
        Self {
            pages: 20_000,
            touches_per_epoch: 2_000,
            epoch: SimTime::from_ms(5),
            warmup_epochs: 120,
            measure_epochs: 40,
            theta: 0.6,
            seed: 42,
        }
    }
}

/// Outcome for one (policy, intensity) cell.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct BalancerCell {
    /// Offered streaming intensity, GB/s.
    pub offered_gbps: f64,
    /// Delivered effective throughput, GB/s (achieved × latency derate).
    pub delivered_gbps: f64,
    /// Mean DRAM bandwidth utilization over the measured window.
    pub dram_util: f64,
    /// Fraction of pages DRAM-resident at the end.
    pub dram_resident: f64,
    /// Promotions suppressed by the bandwidth guard.
    pub suppressed: u64,
}

/// The full study: intensity sweep × policies.
#[derive(Debug, Clone, Serialize)]
pub struct BalancerStudy {
    /// Swept offered intensities, GB/s.
    pub intensities: Vec<f64>,
    /// `(policy label, cells)` rows.
    pub rows: Vec<(&'static str, Vec<BalancerCell>)>,
}

impl BalancerStudy {
    /// Cell lookup.
    ///
    /// # Panics
    ///
    /// Panics if the cell was not run.
    pub fn cell(&self, policy: BalancerPolicy, intensity: f64) -> BalancerCell {
        let idx = self
            .intensities
            .iter()
            .position(|&i| (i - intensity).abs() < 1e-9)
            .expect("intensity present");
        self.rows
            .iter()
            .find(|(l, _)| *l == policy.label())
            .expect("policy present")
            .1[idx]
    }

    /// Renders the delivered-throughput table.
    pub fn table(&self) -> Table {
        let mut headers: Vec<String> = vec!["policy".into()];
        headers.extend(self.intensities.iter().map(|i| format!("{i:.0} GB/s")));
        let href: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "balancer",
            "Delivered throughput (GB/s) vs offered streaming intensity",
            &href,
        );
        for (label, cells) in &self.rows {
            let mut row = vec![label.to_string()];
            row.extend(cells.iter().map(|c| format!("{:.1}", c.delivered_gbps)));
            t.push_row(row);
        }
        t
    }

    /// One policy's curve as a plot series.
    pub fn series(&self, policy: BalancerPolicy) -> Series {
        let mut s = Series::new(policy.label());
        for (i, c) in self.intensities.iter().zip(
            &self
                .rows
                .iter()
                .find(|(l, _)| *l == policy.label())
                .unwrap()
                .1,
        ) {
            s.push(*i, c.delivered_gbps);
        }
        s
    }
}

/// Latency derate identical in spirit to the §5 LLM model: spiking
/// loaded latency stalls the consumer.
fn penalty(latency_ns: f64) -> f64 {
    1.0 / (1.0 + (latency_ns - 97.0).max(0.0) / 635.0)
}

fn scan_cfg() -> NumaBalancingConfig {
    NumaBalancingConfig {
        scan_period: SimTime::from_ms(5),
        scan_pages: 4096,
        hot_threshold: SimTime::from_ms(100),
        hint_fault_cost: SimTime::from_ns(300),
    }
}

fn hot_cfg() -> HotPageConfig {
    HotPageConfig {
        balancing: scan_cfg(),
        promote_rate_limit_bytes_per_sec: 4e9,
        dynamic_threshold: false,
        adjust_period: SimTime::from_ms(100),
        promote_after_faults: 1,
    }
}

fn tier_config(policy: BalancerPolicy, dram: NodeId, cxl: NodeId) -> TierConfig {
    let mut cfg = TierConfig::bind(vec![dram]);
    match policy {
        BalancerPolicy::MmemOnly => {}
        BalancerPolicy::Interleave11 => {
            cfg.policy = AllocPolicy::interleave(vec![dram], vec![cxl], 1, 1);
        }
        BalancerPolicy::HotPromote => {
            cfg.policy = AllocPolicy::interleave(vec![dram], vec![cxl], 1, 1);
            cfg.migration = MigrationMode::HotPageSelection(hot_cfg());
        }
        BalancerPolicy::BandwidthAware => {
            cfg.policy = AllocPolicy::interleave(vec![dram], vec![cxl], 1, 1);
            cfg.migration = MigrationMode::BandwidthAware(BandwidthAwareConfig {
                base: hot_cfg(),
                high_watermark: 0.72,
                low_watermark: 0.55,
                demote_batch: 256,
            });
        }
    }
    cfg
}

/// Runs one (policy, intensity) cell.
pub fn run_cell(policy: BalancerPolicy, intensity_gbps: f64, p: BalancerParams) -> BalancerCell {
    // One SNC domain + one expander, like the §5 platform.
    let topo = Topology::snc_domain_with_cxl();
    let sys = MemSystem::new(&topo);
    let nodes = sys.nodes().to_vec();
    let dram = nodes
        .iter()
        .find(|n| n.tier == MemoryTier::LocalDram)
        .expect("DRAM node")
        .id;
    let cxl = nodes
        .iter()
        .find(|n| n.tier == MemoryTier::CxlExpander)
        .expect("CXL node")
        .id;
    let socket = sys.sockets()[0];

    let mut tm = TierManager::new(&topo, tier_config(policy, dram, cxl));
    let pages = tm
        .alloc_n(p.pages, SimTime::ZERO)
        .expect("heap fits in memory");
    tm.drain_epoch();

    let mut zipf = Zipfian::with_theta(p.pages, p.theta);
    let mut rng = stream_rng(p.seed, &format!("balancer.{}", policy.label()));
    let bytes_per_touch =
        (intensity_gbps * p.epoch.as_secs_f64() / p.touches_per_epoch as f64 * 1e9) as u64;

    let mut now = SimTime::ZERO;
    let mut delivered_acc = 0.0;
    let mut util_acc = 0.0;
    let mut measured = 0usize;

    for e in 0..(p.warmup_epochs + p.measure_epochs) {
        for _ in 0..p.touches_per_epoch {
            let page = pages[zipf.next_key(&mut rng) as usize];
            tm.touch(page, Rw::Read, bytes_per_touch, now);
        }
        now += p.epoch;
        let epoch = tm.drain_epoch();
        let flows: Vec<FlowSpec> = epoch.flows(socket, p.epoch, true);
        let solved = sys.solve(&flows);
        let dram_util = solved.utilization_of(ResourceKind::DdrGroup(dram));
        tm.set_dram_bandwidth_util(dram_util);
        tm.tick(now);

        if e >= p.warmup_epochs {
            // Latency is priced at the steady-state operating point: a
            // closed system hovers just under saturation rather than at
            // the clamp (same treatment as the Spark and LLM models).
            let lat_flows: Vec<FlowSpec> = flows
                .iter()
                .zip(&solved.flows)
                .map(|(f, o)| {
                    let mut f2 = *f;
                    let scale = if f.offered_gbps > 0.0 {
                        (o.achieved_gbps / f.offered_gbps).min(1.0)
                    } else {
                        1.0
                    };
                    f2.offered_gbps = f.offered_gbps * scale * 0.93;
                    f2
                })
                .collect();
            let lat_solved = sys.solve(&lat_flows);
            let mut delivered = 0.0;
            for (out, lat) in solved.flows.iter().zip(&lat_solved.flows) {
                delivered += out.achieved_gbps * penalty(lat.latency_ns);
            }
            delivered_acc += delivered;
            util_acc += dram_util;
            measured += 1;
        }
    }

    let dram_resident = pages
        .iter()
        .filter(|&&pg| tm.location(pg) == Location::Node(dram))
        .count() as f64
        / pages.len() as f64;
    BalancerCell {
        offered_gbps: intensity_gbps,
        delivered_gbps: delivered_acc / measured.max(1) as f64,
        dram_util: util_acc / measured.max(1) as f64,
        dram_resident,
        suppressed: tm.stats().promotions_bw_suppressed,
    }
}

/// Runs the full sweep on the environment-configured runner.
pub fn run(p: BalancerParams) -> BalancerStudy {
    run_with(&Runner::from_env(), p)
}

/// Runs the full sweep on an explicit runner. Each `(policy,
/// intensity)` cell builds its own tier manager and derives its page
/// stream from the root seed and the policy label (inside
/// [`run_cell`]), so the grid parallelizes without any shared state.
pub fn run_with(runner: &Runner, p: BalancerParams) -> BalancerStudy {
    let intensities = vec![20.0, 40.0, 60.0, 80.0, 100.0];
    let mut grid = Vec::new();
    for policy in BalancerPolicy::all() {
        for &i in &intensities {
            grid.push((policy, i));
        }
    }
    let cells = runner.map(grid, |(policy, i)| run_cell(policy, i, p));
    let rows = BalancerPolicy::all()
        .into_iter()
        .enumerate()
        .map(|(r, policy)| {
            let start = r * intensities.len();
            (
                policy.label(),
                cells[start..start + intensities.len()].to_vec(),
            )
        })
        .collect();
    BalancerStudy { intensities, rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BalancerParams {
        BalancerParams {
            pages: 8_000,
            touches_per_epoch: 1_000,
            warmup_epochs: 60,
            measure_epochs: 20,
            ..Default::default()
        }
    }

    #[test]
    fn low_load_favors_dram_heavy_policies() {
        let p = quick();
        let mmem = run_cell(BalancerPolicy::MmemOnly, 30.0, p);
        let il = run_cell(BalancerPolicy::Interleave11, 30.0, p);
        assert!(
            mmem.delivered_gbps >= il.delivered_gbps * 0.98,
            "MMEM {} vs 1:1 {}",
            mmem.delivered_gbps,
            il.delivered_gbps
        );
        // Everything delivered: no contention at 30 GB/s.
        assert!(mmem.delivered_gbps > 28.0);
    }

    #[test]
    fn hot_promote_saturates_dram_at_high_load() {
        // The §5.3 pathology: promotion pushes DRAM past the knee.
        let p = quick();
        let hp = run_cell(BalancerPolicy::HotPromote, 80.0, p);
        assert!(hp.dram_util > 0.85, "dram util {}", hp.dram_util);
        assert!(hp.dram_resident > 0.6, "resident {}", hp.dram_resident);
    }

    #[test]
    fn bandwidth_aware_beats_capacity_only_tiering_under_pressure() {
        let p = quick();
        for intensity in [80.0, 100.0] {
            let hp = run_cell(BalancerPolicy::HotPromote, intensity, p);
            let bw = run_cell(BalancerPolicy::BandwidthAware, intensity, p);
            let mmem = run_cell(BalancerPolicy::MmemOnly, intensity, p);
            assert!(
                bw.delivered_gbps > hp.delivered_gbps,
                "{intensity}: BW {} vs HP {}",
                bw.delivered_gbps,
                hp.delivered_gbps
            );
            assert!(
                bw.delivered_gbps > mmem.delivered_gbps,
                "{intensity}: BW {} vs MMEM {}",
                bw.delivered_gbps,
                mmem.delivered_gbps
            );
            // The guard actually fired and kept DRAM near the watermark.
            assert!(bw.suppressed > 0);
            assert!(bw.dram_util < hp.dram_util);
        }
    }

    #[test]
    fn table_renders_all_cells() {
        let p = BalancerParams {
            pages: 2_000,
            touches_per_epoch: 300,
            warmup_epochs: 10,
            measure_epochs: 5,
            ..Default::default()
        };
        let s = run(p);
        assert_eq!(s.rows.len(), 4);
        let t = s.table();
        assert_eq!(t.rows.len(), 4);
        assert!(t.render().contains("BW-Aware"));
        let series = s.series(BalancerPolicy::BandwidthAware);
        assert_eq!(series.points.len(), 5);
    }
}
